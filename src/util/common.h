// Common utilities: error checking, small helpers shared across all modules.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tx {

/// Exception type thrown by all TX_CHECK failures. Carrying a dedicated type
/// lets tests assert on library errors without catching unrelated failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

inline void format_parts(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_parts(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  format_parts(os, rest...);
}

template <typename... Args>
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const Args&... args) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if constexpr (sizeof...(args) > 0) {
    os << " — ";
    format_parts(os, args...);
  }
  throw Error(os.str());
}

}  // namespace detail

/// Always-on invariant check (kept in release builds: these guard shape and
/// API misuse, not hot inner loops).
#define TX_CHECK(cond, ...)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tx::detail::check_failed(#cond, __FILE__, __LINE__, ##__VA_ARGS__); \
    }                                                                     \
  } while (false)

#define TX_THROW(...)                                                     \
  ::tx::detail::check_failed("explicit throw", __FILE__, __LINE__, ##__VA_ARGS__)

/// Join a container into "a, b, c" for error messages.
template <typename Container>
std::string join(const Container& c, const std::string& sep = ", ") {
  std::ostringstream os;
  bool first = true;
  for (const auto& v : c) {
    if (!first) os << sep;
    os << v;
    first = false;
  }
  return os.str();
}

}  // namespace tx
