// Plain-text table printer used by the benchmark harnesses so every bench
// emits the same row/column layout the paper's tables use.
#pragma once

#include <string>
#include <vector>

namespace tx {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string fmt(double v, int precision = 2);

  /// Format "mean ± err".
  static std::string fmt_pm(double mean, double err, int precision = 2);

  /// Render the table with a separator under the header.
  std::string to_string() const;

  /// Print to stdout with an optional caption line above.
  void print(const std::string& caption = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tx
