#include "util/random.h"

namespace tx {

Generator& global_generator() {
  static Generator gen;
  return gen;
}

void manual_seed(std::uint64_t seed) { global_generator().seed(seed); }

}  // namespace tx
