// Small statistics helpers for aggregating repeated runs (mean, standard
// error) the way the paper reports "mean and two standard errors over 5 runs".
#pragma once

#include <cmath>
#include <vector>

#include "util/common.h"

namespace tx {

inline double mean_of(const std::vector<double>& xs) {
  TX_CHECK(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double variance_of(const std::vector<double>& xs) {
  TX_CHECK(xs.size() >= 2, "variance needs >= 2 samples");
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

/// Standard error of the mean.
inline double stderr_of(const std::vector<double>& xs) {
  return std::sqrt(variance_of(xs) / static_cast<double>(xs.size()));
}

/// Two standard errors, the interval the paper's tables report.
inline double two_stderr_of(const std::vector<double>& xs) {
  return 2.0 * stderr_of(xs);
}

}  // namespace tx
