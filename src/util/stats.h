// Small statistics helpers for aggregating repeated runs (mean, standard
// error) the way the paper reports "mean and two standard errors over 5 runs".
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/common.h"

namespace tx {

inline double mean_of(const std::vector<double>& xs) {
  TX_CHECK(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double variance_of(const std::vector<double>& xs) {
  TX_CHECK(xs.size() >= 2, "variance needs >= 2 samples");
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

/// Standard error of the mean.
inline double stderr_of(const std::vector<double>& xs) {
  return std::sqrt(variance_of(xs) / static_cast<double>(xs.size()));
}

/// Two standard errors, the interval the paper's tables report.
inline double two_stderr_of(const std::vector<double>& xs) {
  return 2.0 * stderr_of(xs);
}

/// q-quantile (q in [0, 1]) with linear interpolation between order
/// statistics (numpy's default). Takes a copy so callers keep their order.
inline double quantile_of(std::vector<double> xs, double q) {
  TX_CHECK(!xs.empty(), "quantile of empty vector");
  TX_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1], got ", q);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

inline double median_of(const std::vector<double>& xs) {
  return quantile_of(xs, 0.5);
}

}  // namespace tx
