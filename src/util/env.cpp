#include "util/env.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

extern char** environ;

namespace tx::env {

const std::vector<Var>& known_vars() {
  static const std::vector<Var> vars = {
      {"TYXE_ARENA", "on",
       "per-step buffer-recycling arena for autograd temporaries (off "
       "disables)"},
      {"TYXE_ARENA_CAP_MB", "256",
       "per-thread cap on pooled arena bytes, in MiB"},
      {"TYXE_DIAG", "",
       "path for the tx.diag.v1 inference-health snapshot (enables diag)"},
      {"TYXE_FAULT", "",
       "deterministic fault-injection plan (resil harness; inert when unset)"},
      {"TYXE_HEALTH_STALE_S", "30",
       "heartbeat age in seconds before /healthz reports stale (also the "
       "watchdog stall threshold)"},
      {"TYXE_NUM_THREADS", "hardware",
       "tx::par pool size; results are bitwise-identical at every count"},
      {"TYXE_OBS_HTTP", "",
       "live telemetry HTTP port (/metrics, /healthz, /snapshot, /manifest); "
       "off|0 disables, auto = ephemeral"},
      {"TYXE_PQ", "0",
       "enable streaming predictive-quality telemetry (tx::obs::pq)"},
      {"TYXE_PROF", "0",
       "enable the kernel roofline / allocator-churn profiler"},
      {"TYXE_SANITIZE", "",
       "sanitizer preset consumed by CMake at configure time "
       "(address|thread|undefined)", /*build_time=*/true},
      {"TYXE_SIMD", "auto",
       "SIMD dispatch level override (off|scalar|avx2|neon|auto)"},
      {"TYXE_TRACE", "",
       "path for the tx.trace.v1 Chrome-trace timeline (enables tracing)"},
      {"TYXE_WATCHDOG", "0",
       "enable the stall watchdog (forensic dump + 503 /healthz on a stalled "
       "heartbeat)"},
  };
  return vars;
}

bool is_known(const std::string& name) {
  for (const Var& v : known_vars()) {
    if (name == v.name) return true;
  }
  return false;
}

std::vector<std::string> unknown_set_vars() {
  std::vector<std::string> out;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "TYXE_", 5) != 0) continue;
    const char* eq = std::strchr(*e, '=');
    const std::string name =
        eq ? std::string(*e, static_cast<std::size_t>(eq - *e))
           : std::string(*e);
    if (!is_known(name)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t warn_unknown_once() {
  static std::once_flag flag;
  static std::size_t count = 0;
  std::call_once(flag, [] {
    const auto unknown = unknown_set_vars();
    count = unknown.size();
    for (const auto& name : unknown) {
      std::fprintf(stderr,
                   "warning: unrecognized environment variable %s (no TYXE_* "
                   "knob by that name; typo? see docs/configuration.md)\n",
                   name.c_str());
    }
  });
  return count;
}

}  // namespace tx::env
