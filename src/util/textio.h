// Stable text-token serialization shared by the optimizer, MCMC-kernel, and
// tx.ckpt.v1 checkpoint writers. Floats are printed as C hexfloats ("%a") and
// parsed with strtof/strtod, so every value round-trips bitwise — the
// property that makes checkpoint resume exact. Tokens are whitespace
// separated; readers throw tx::Error (never half-parse) on truncation or
// malformed numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/common.h"

namespace tx::textio {

inline void write_double(std::ostream& os, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  os << buf;
}

inline void write_float(std::ostream& os, float v) {
  // Print as double: float -> double is exact, so the round-trip is too.
  write_double(os, static_cast<double>(v));
}

inline std::string next_token(std::istream& is, const char* what) {
  std::string tok;
  TX_CHECK(static_cast<bool>(is >> tok), "serialized state: truncated while reading ",
           what);
  return tok;
}

inline double read_double(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  TX_CHECK(end != tok.c_str() && *end == '\0', "serialized state: bad number '",
           tok, "' for ", what);
  return v;
}

inline float read_float(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  char* end = nullptr;
  const float v = std::strtof(tok.c_str(), &end);
  TX_CHECK(end != tok.c_str() && *end == '\0', "serialized state: bad number '",
           tok, "' for ", what);
  return v;
}

inline std::int64_t read_int(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  TX_CHECK(end != tok.c_str() && *end == '\0', "serialized state: bad integer '",
           tok, "' for ", what);
  return static_cast<std::int64_t>(v);
}

inline void expect_tag(std::istream& is, const char* tag) {
  const std::string tok = next_token(is, tag);
  TX_CHECK(tok == tag, "serialized state: expected '", tag, "', got '", tok,
           "'");
}

inline void write_vec_f(std::ostream& os, const std::vector<float>& v) {
  os << v.size();
  for (const float x : v) {
    os << ' ';
    write_float(os, x);
  }
  os << '\n';
}

inline std::vector<float> read_vec_f(std::istream& is, const char* what) {
  const std::int64_t n = read_int(is, what);
  TX_CHECK(n >= 0, "serialized state: negative vector size for ", what);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = read_float(is, what);
  return v;
}

inline void write_vec_d(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (const double x : v) {
    os << ' ';
    write_double(os, x);
  }
  os << '\n';
}

inline std::vector<double> read_vec_d(std::istream& is, const char* what) {
  const std::int64_t n = read_int(is, what);
  TX_CHECK(n >= 0, "serialized state: negative vector size for ", what);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = read_double(is, what);
  return v;
}

}  // namespace tx::textio
