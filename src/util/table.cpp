#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/common.h"

namespace tx {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  TX_CHECK(row.size() == header_.size(), "row arity ", row.size(),
           " != header arity ", header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pm(double mean, double err, int precision) {
  return fmt(mean, precision) + " ± " + fmt(err, precision);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::cout << caption << '\n';
  std::cout << to_string() << std::flush;
}

}  // namespace tx
