// tx::env — the one registry of every TYXE_* environment knob.
//
// Every subsystem that reads a TYXE_* variable declares it here (name,
// default, one-line description). Three consumers:
//
//   * audit: warn_unknown_once() scans the process environment for TYXE_*
//     variables that no subsystem registered and prints one stderr warning
//     per process — catching TYXE_TREADS-style typos that were silently
//     ignored before. Called from obs::parse_bench_flags, so every bench
//     audits at startup.
//   * the tx.manifest.v1 run manifest (obs/manifest.h) embeds the full
//     table — which knobs exist, which are set, to what — in every BENCH
//     snapshot and serves it live on /manifest.
//   * docs/configuration.md mirrors this table for humans; keep the two in
//     sync when adding a knob.
#pragma once

#include <string>
#include <vector>

namespace tx::env {

struct Var {
  const char* name;           // e.g. "TYXE_NUM_THREADS"
  const char* default_value;  // human-readable default, e.g. "hardware"
  const char* description;    // one line
  bool build_time = false;    // consumed by CMake at configure, not runtime
};

/// The full knob table, sorted by name.
const std::vector<Var>& known_vars();

/// True when `name` is a registered knob.
bool is_known(const std::string& name);

/// Every TYXE_*-prefixed variable set in the environment that is NOT in the
/// registry (sorted). Empty in a healthy environment.
std::vector<std::string> unknown_set_vars();

/// Print one stderr warning per process naming every unrecognized TYXE_*
/// variable (no-op when there are none). Returns the number found.
std::size_t warn_unknown_once();

}  // namespace tx::env
