// Global and local random number generation. All stochastic components in the
// library draw from a Generator; the global one is controlled by manual_seed()
// so every experiment is replayable from a printed seed.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>

namespace tx {

/// Thin wrapper around std::mt19937_64 with the sampling primitives the
/// library needs. Copyable; copies continue the same stream independently.
class Generator {
 public:
  explicit Generator(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  void seed(std::uint64_t s) { engine_.seed(s); }

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  double normal(double mean, double std) {
    return std::normal_distribution<double>(mean, std)(engine_);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double gamma(double shape, double scale) {
    return std::gamma_distribution<double>(shape, scale)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Exact engine-state serialization (the standard's text format for
  /// mt19937_64). Distributions are constructed fresh per draw, so the
  /// engine is the complete RNG state: save/load round-trips reproduce the
  /// stream bit-for-bit, which is what makes checkpoint resume exact.
  void save(std::ostream& os) const { os << engine_; }
  void load(std::istream& is) { is >> engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Process-wide generator used by default tensor factories and samplers.
Generator& global_generator();

/// Seed the global generator (analogue of torch.manual_seed).
void manual_seed(std::uint64_t seed);

}  // namespace tx
