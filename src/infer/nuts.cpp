#include "infer/nuts.h"

#include <cmath>

#include "obs/obs.h"
#include "resil/guard.h"

namespace tx::infer {

namespace {
constexpr double kDeltaMax = 1000.0;  // divergence threshold
}  // namespace

NUTS::NUTS(double step_size, int max_tree_depth, bool adapt_step_size,
           double target_accept)
    : HMC(step_size, /*num_steps=*/1, adapt_step_size, target_accept),
      max_depth_(max_tree_depth) {
  TX_CHECK(max_tree_depth >= 1 && max_tree_depth <= 12,
           "NUTS: max_tree_depth out of range");
}

bool NUTS::no_u_turn(const Tree& t) {
  double dot_minus = 0.0, dot_plus = 0.0;
  for (std::size_t i = 0; i < t.q_plus.size(); ++i) {
    const double dq = t.q_plus[i] - t.q_minus[i];
    dot_minus += dq * t.p_minus[i];
    dot_plus += dq * t.p_plus[i];
  }
  return dot_minus >= 0.0 && dot_plus >= 0.0;
}

NUTS::Tree NUTS::build_tree(const std::vector<double>& q,
                            const std::vector<double>& p,
                            const std::vector<double>& grad, double log_u,
                            int direction, int depth, double eps, double h0) {
  Generator& g = gen_ ? *gen_ : global_generator();
  if (depth == 0) {
    // One leapfrog step in the chosen direction; same per-leapfrog budget
    // checkpoint as HMC::leapfrog.
    guard::check_expiry("nuts.leapfrog");
    std::vector<double> q1 = q, p1 = p, grad1 = grad;
    const double step = direction * eps;
    for (std::size_t i = 0; i < p1.size(); ++i) p1[i] -= 0.5 * step * grad1[i];
    for (std::size_t i = 0; i < q1.size(); ++i) q1[i] += step * p1[i];
    const double u1 = potential_->value_and_grad(q1, grad1);
    for (std::size_t i = 0; i < p1.size(); ++i) p1[i] -= 0.5 * step * grad1[i];
    const double h1 = u1 + kinetic(p1);

    Tree t;
    t.q_minus = t.q_plus = t.q_proposal = q1;
    t.p_minus = t.p_plus = p1;
    t.grad_minus = t.grad_plus = grad1;
    t.n = (std::isfinite(h1) && log_u <= -h1) ? 1 : 0;
    t.valid = std::isfinite(h1) && (log_u < kDeltaMax - h1);
    if (!t.valid) {
      ++divergences_;  // leaf invalidity is exactly a divergence
      if (obs::diag::enabled()) {
        obs::diag::mcmc_record_divergence(diag_layout(*potential_), q1, p1,
                                          grad1, inv_mass_, h0, h1);
      }
    }
    t.alpha = std::isfinite(h1) ? std::min(1.0, std::exp(h0 - h1)) : 0.0;
    t.n_alpha = 1;
    return t;
  }

  Tree left = build_tree(q, p, grad, log_u, direction, depth - 1, eps, h0);
  if (!left.valid) return left;

  // Extend in the same direction from the appropriate edge.
  Tree right = direction == 1
                   ? build_tree(left.q_plus, left.p_plus, left.grad_plus,
                                log_u, direction, depth - 1, eps, h0)
                   : build_tree(left.q_minus, left.p_minus, left.grad_minus,
                                log_u, direction, depth - 1, eps, h0);

  Tree merged;
  if (direction == 1) {
    merged.q_minus = left.q_minus;
    merged.p_minus = left.p_minus;
    merged.grad_minus = left.grad_minus;
    merged.q_plus = right.q_plus;
    merged.p_plus = right.p_plus;
    merged.grad_plus = right.grad_plus;
  } else {
    merged.q_minus = right.q_minus;
    merged.p_minus = right.p_minus;
    merged.grad_minus = right.grad_minus;
    merged.q_plus = left.q_plus;
    merged.p_plus = left.p_plus;
    merged.grad_plus = left.grad_plus;
  }
  merged.n = left.n + right.n;
  const double p_right = merged.n > 0
                             ? static_cast<double>(right.n) /
                                   static_cast<double>(merged.n)
                             : 0.0;
  merged.q_proposal =
      (g.uniform() < p_right) ? right.q_proposal : left.q_proposal;
  merged.valid = left.valid && right.valid && no_u_turn(merged);
  merged.alpha = left.alpha + right.alpha;
  merged.n_alpha = left.n_alpha + right.n_alpha;
  return merged;
}

std::vector<double> NUTS::step(const std::vector<double>& q0, bool warmup) {
  Generator& g = gen_ ? *gen_ : global_generator();
  if (!warmup && adapt_ && !frozen_) {
    averager_.freeze();
    step_size_ = averager_.final_step();
    frozen_ = true;
  }
  const double eps = (warmup && adapt_) ? averager_.current() : step_size_;

  std::vector<double> p0(q0.size());
  for (auto& v : p0) v = g.normal();
  std::vector<double> grad0;
  const double u0 = potential_->value_and_grad(q0, grad0);
  const double h0 = u0 + kinetic(p0);
  const double log_u = std::log(g.uniform() + 1e-300) - h0;

  Tree state;
  state.q_minus = state.q_plus = q0;
  state.p_minus = state.p_plus = p0;
  state.grad_minus = state.grad_plus = grad0;
  state.q_proposal = q0;
  state.n = 1;
  state.valid = true;

  double alpha_sum = 0.0;
  std::int64_t n_alpha_sum = 0;
  obs::ScopedTimer trajectory_span(
      "nuts.trajectory",
      obs::tracing() ? obs::Event()
                           .set("dim", static_cast<std::int64_t>(q0.size()))
                           .set("warmup", warmup)
                           .to_json()
                     : std::string());
  for (int depth = 0; depth < max_depth_ && state.valid; ++depth) {
    const int direction = g.bernoulli(0.5) ? 1 : -1;
    // Trace-only: one slice per doubling, so the timeline shows how deep
    // each trajectory grew (2^depth leapfrog steps per slice).
    obs::TraceSpan tree_span(
        "nuts.tree", obs::tracing() ? obs::Event()
                                          .set("depth", depth)
                                          .set("direction", direction)
                                          .to_json()
                                    : std::string());
    Tree sub = direction == 1
                   ? build_tree(state.q_plus, state.p_plus, state.grad_plus,
                                log_u, direction, depth, eps, h0)
                   : build_tree(state.q_minus, state.p_minus, state.grad_minus,
                                log_u, direction, depth, eps, h0);
    alpha_sum += sub.alpha;
    n_alpha_sum += sub.n_alpha;
    if (sub.valid && sub.n > 0) {
      const double accept = std::min(
          1.0, static_cast<double>(sub.n) / static_cast<double>(state.n));
      if (g.uniform() < accept) state.q_proposal = sub.q_proposal;
    }
    if (direction == 1) {
      state.q_plus = sub.q_plus;
      state.p_plus = sub.p_plus;
      state.grad_plus = sub.grad_plus;
    } else {
      state.q_minus = sub.q_minus;
      state.p_minus = sub.p_minus;
      state.grad_minus = sub.grad_minus;
    }
    state.n += sub.n;
    state.valid = sub.valid && no_u_turn(state);
  }

  const double mean_alpha =
      n_alpha_sum > 0 ? alpha_sum / static_cast<double>(n_alpha_sum) : 0.0;
  accept_stat_ += mean_alpha;
  ++accept_count_;
  last_accept_prob_ = mean_alpha;
  if (warmup && adapt_) averager_.update(mean_alpha);
  return state.q_proposal;
}

}  // namespace tx::infer
