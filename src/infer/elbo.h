// Evidence lower bound estimators. TraceELBO is the generic single/multi
// particle estimator (log p − log q on sampled traces); TraceMeanFieldELBO
// replaces per-site KL terms with their closed forms when registered — the
// variance reduction the paper's AutoNormal guide is designed to enable.
#pragma once

#include <functional>

#include "ppl/ppl.h"

namespace tx::infer {

using Program = std::function<void()>;

class ELBO {
 public:
  virtual ~ELBO() = default;
  /// Differentiable loss = -ELBO estimate (gradients flow to guide params and
  /// any deterministic params touched by the model).
  virtual Tensor differentiable_loss(const Program& model,
                                     const Program& guide) = 0;
};

class TraceELBO : public ELBO {
 public:
  explicit TraceELBO(int num_particles = 1) : num_particles_(num_particles) {
    TX_CHECK(num_particles >= 1, "TraceELBO: num_particles must be >= 1");
  }
  Tensor differentiable_loss(const Program& model, const Program& guide) override;

 private:
  int num_particles_;
};

/// Requires guide latent sites to pair one-to-one with model latent sites by
/// name. Sites with an analytic KL use it; others fall back to the sampled
/// difference.
class TraceMeanFieldELBO : public ELBO {
 public:
  explicit TraceMeanFieldELBO(int num_particles = 1)
      : num_particles_(num_particles) {
    TX_CHECK(num_particles >= 1, "TraceMeanFieldELBO: num_particles must be >= 1");
  }
  Tensor differentiable_loss(const Program& model, const Program& guide) override;

 private:
  int num_particles_;
};

/// Shared plumbing: run guide under a trace, then replay the model against it
/// and trace that too.
std::pair<ppl::Trace, ppl::Trace> trace_model_guide(const Program& model,
                                                    const Program& guide);

}  // namespace tx::infer
