// Hamiltonian Monte Carlo over the latent sites of a probabilistic program,
// with dual-averaging step-size adaptation (Hoffman & Gelman, 2014). The
// kernel works on a flattened coordinate vector; Potential maps it back to
// named sites and scores the model via the same autograd used by SVI.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "infer/elbo.h"
#include "obs/diag.h"

namespace tx::infer {

/// Negative log-joint of a model as a function of a flat latent vector.
class Potential {
 public:
  explicit Potential(Program model);

  std::int64_t dim() const { return dim_; }
  const std::vector<std::pair<std::string, Shape>>& layout() const {
    return layout_;
  }

  /// Prior draw, flattened (the chain's initial position).
  std::vector<double> initial_position(Generator* gen = nullptr) const;

  /// U(q) = -log p(q, observations).
  double value(const std::vector<double>& q) const;
  /// U(q) and dU/dq.
  double value_and_grad(const std::vector<double>& q,
                        std::vector<double>& grad) const;

  /// Named site values for a position (for predictives / inspection).
  std::map<std::string, Tensor> unflatten(const std::vector<double>& q) const;

 private:
  Tensor log_joint(const std::map<std::string, Tensor>& latents) const;

  Program model_;
  std::vector<std::pair<std::string, Shape>> layout_;
  std::vector<dist::DistPtr> priors_;  // aligned with layout_, for init draws
  std::int64_t dim_ = 0;
};

/// Flat-coordinate spans of the potential's named sites, in layout order —
/// the per-site attribution map handed to tx::obs::diag (transition
/// statistics, divergence localization, per-coordinate R̂/ESS grouping).
std::vector<obs::diag::SiteSpan> diag_layout(const Potential& potential);

/// Base interface shared by HMC and NUTS.
class MCMCKernel {
 public:
  virtual ~MCMCKernel() = default;
  virtual void setup(Program model, Generator* gen);
  virtual std::vector<double> initial_position();
  /// Advance the chain one transition; `warmup` enables adaptation.
  virtual std::vector<double> step(const std::vector<double>& q,
                                   bool warmup) = 0;
  const Potential& potential() const { return *potential_; }
  double mean_accept_prob() const {
    return accept_count_ > 0 ? accept_stat_ / accept_count_ : 0.0;
  }
  /// Accept probability of the most recent transition.
  double last_accept_prob() const { return last_accept_prob_; }
  /// Transitions whose energy error exceeded the divergence threshold
  /// (or went non-finite) — the classic silent-failure signal for BNN HMC.
  std::int64_t divergence_count() const { return divergences_; }

  /// Stable tag used in checkpoint headers ("hmc", "nuts").
  virtual const char* kind() const = 0;
  /// Serialize / restore the kernel's dynamic state — adaptation position,
  /// mass estimate, acceptance statistics — as stable hexfloat text. The
  /// chain position itself lives with the driver. load_state parses fully
  /// before mutating, so corrupt input throws without touching live state.
  virtual void save_state(std::ostream& os) const;
  virtual void load_state(std::istream& is);

 protected:
  std::shared_ptr<Potential> potential_;
  Generator* gen_ = nullptr;
  double accept_stat_ = 0.0;
  std::int64_t accept_count_ = 0;
  double last_accept_prob_ = 0.0;
  std::int64_t divergences_ = 0;
};

/// Dual-averaging adaptation of the leapfrog step size.
class DualAveraging {
 public:
  explicit DualAveraging(double initial_step, double target_accept = 0.8);
  void update(double accept_prob);
  /// Step size to use while still adapting.
  double current() const { return step_; }
  /// Smoothed step size to freeze after warmup.
  double final_step() const { return final_; }
  void freeze() { step_ = final_; }

  /// Exact state serialization for checkpoint resume.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  double mu_, target_;
  double step_, final_;
  double h_bar_ = 0.0, log_eps_bar_ = 0.0;
  std::int64_t t_ = 0;
};

class HMC : public MCMCKernel {
 public:
  /// num_steps leapfrog steps of size step_size; step size adapts during
  /// warmup when adapt_step_size is true (trajectory length is preserved by
  /// keeping num_steps fixed). With adapt_mass_matrix the diagonal mass is
  /// estimated from the first part of warmup (Stan-style regularized
  /// variances), which reconditions poorly scaled posteriors.
  HMC(double step_size, int num_steps, bool adapt_step_size = true,
      double target_accept = 0.8, bool adapt_mass_matrix = false);

  std::vector<double> step(const std::vector<double>& q, bool warmup) override;

  /// Current diagonal inverse mass (empty until adapted; identity before).
  const std::vector<double>& inverse_mass() const { return inv_mass_; }

  const char* kind() const override { return "hmc"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  double step_size() const { return step_size_; }
  /// Force a new step size (tx::resil divergence-storm backoff). While
  /// adaptation is still live the dual-averaging state is re-seeded from the
  /// new value so warmup continues from there instead of snapping back.
  void set_step_size(double eps);

 protected:
  /// One leapfrog integration; grad holds dU/dq at q on entry and exit.
  void leapfrog(std::vector<double>& q, std::vector<double>& p,
                std::vector<double>& grad, double eps, int steps) const;
  double kinetic(const std::vector<double>& p) const;
  /// Draw momenta matching the current mass matrix.
  std::vector<double> sample_momentum(std::size_t dim, Generator& g) const;
  /// Warmup-phase bookkeeping for the mass estimate.
  void accumulate_mass_sample(const std::vector<double>& q);

  double step_size_;
  int num_steps_;
  bool adapt_;
  double target_accept_;
  DualAveraging averager_;
  bool frozen_ = false;

  bool adapt_mass_;
  std::vector<double> inv_mass_;        // empty = identity
  std::vector<double> welford_mean_, welford_m2_;
  std::int64_t welford_count_ = 0;
  std::int64_t warmup_seen_ = 0;
};

}  // namespace tx::infer
