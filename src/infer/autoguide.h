// Automatic guides (pyro.infer.autoguide). An AutoGuide inspects a model's
// latent sites by tracing it once, allocates variational parameters in the
// ParamStore, and acts as a guide Program that samples every latent site.
//
// AutoNormal here matches the paper's tyxe.guides.AutoNormal rather than
// Pyro's: sites are sampled directly from diagonal Normals (no Delta
// wrapping), which is what makes local reparameterization and closed-form KL
// possible. It additionally supports the paper's pragmatic knobs: clipping
// the posterior standard deviation, freezing means or scales, and
// initializing means to pre-trained values.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/normal.h"
#include "infer/elbo.h"

namespace tx::infer {

/// Strategy for initializing a site's variational mean.
using InitLocFn = std::function<Tensor(const ppl::SiteRecord& site)>;

/// Draw from the prior.
InitLocFn init_to_sample(Generator* gen = nullptr);
/// Prior mean (the "median" initializer for symmetric priors).
InitLocFn init_to_median();
/// Fixed values by site name (pre-trained network weights); missing sites
/// fall back to the prior mean.
InitLocFn init_to_value(std::map<std::string, Tensor> values);

class Guide {
 public:
  virtual ~Guide() = default;
  /// The guide program: samples every latent site of the model.
  virtual void operator()() = 0;
  /// Per-site variational distributions with detached parameters; the hook
  /// variational continual learning uses to turn a posterior into a prior.
  virtual std::map<std::string, dist::DistPtr> get_detached_distributions(
      const std::vector<std::string>& sites) = 0;
};

using GuidePtr = std::shared_ptr<Guide>;
/// Factory signature expected by VariationalBNN: builds a guide for a model,
/// allocating its variational parameters in the given store (null = global).
using GuideFactory =
    std::function<GuidePtr(const Program& model, ppl::ParamStore* store)>;

/// Shared site-discovery logic.
class AutoGuide : public Guide {
 public:
  /// Latent sites of the model (discovered on first use).
  const std::vector<ppl::SiteRecord>& latent_sites();

 protected:
  AutoGuide(Program model, std::string prefix, ppl::ParamStore* store);

  Program model_;
  std::string prefix_;
  ppl::ParamStore* store_;

 private:
  bool discovered_ = false;
  std::vector<ppl::SiteRecord> sites_;
};

struct AutoNormalConfig {
  float init_scale = 0.1f;
  InitLocFn init_loc;        // default: init_to_sample()
  float max_scale = 0.0f;    // > 0 clips the posterior std (paper Sec. 3)
  bool train_loc = true;     // false = "sd only" guide (Table 1, MF sd-only)
  bool train_scale = true;
};

class AutoNormal : public AutoGuide {
 public:
  AutoNormal(Program model, AutoNormalConfig config = {},
             std::string prefix = "guide", ppl::ParamStore* store = nullptr);

  void operator()() override;
  std::map<std::string, dist::DistPtr> get_detached_distributions(
      const std::vector<std::string>& sites) override;

  /// Current (constrained, possibly clipped) posterior over a site.
  std::shared_ptr<dist::Normal> site_distribution(const std::string& site);

 private:
  Tensor loc_param(const ppl::SiteRecord& site);
  Tensor scale_param(const ppl::SiteRecord& site);

  AutoNormalConfig config_;
};

/// Point-estimate guide: optimizing the ELBO with AutoDelta is MAP.
class AutoDelta : public AutoGuide {
 public:
  AutoDelta(Program model, InitLocFn init_loc = nullptr,
            std::string prefix = "guide", ppl::ParamStore* store = nullptr);

  void operator()() override;
  std::map<std::string, dist::DistPtr> get_detached_distributions(
      const std::vector<std::string>& sites) override;

 private:
  InitLocFn init_loc_;
};

/// Joint Gaussian guide with low-rank-plus-diagonal covariance over all
/// latent sites (the "LL low rank" configuration of Table 1). The joint draw
/// is emitted at an auxiliary site "<prefix>._latent"; per-model-site values
/// are emitted as Deltas sliced out of the joint sample.
class AutoLowRankMultivariateNormal : public AutoGuide {
 public:
  AutoLowRankMultivariateNormal(Program model, std::int64_t rank,
                                float init_scale = 0.1f,
                                InitLocFn init_loc = nullptr,
                                std::string prefix = "guide",
                                ppl::ParamStore* store = nullptr);

  void operator()() override;
  std::map<std::string, dist::DistPtr> get_detached_distributions(
      const std::vector<std::string>& sites) override;

 private:
  void ensure_params();

  std::int64_t rank_;
  float init_scale_;
  InitLocFn init_loc_;
  std::int64_t total_ = 0;
  std::vector<std::pair<std::string, Shape>> layout_;
};

/// Numerically safe softplus inverse used for scale parameterization.
float softplus_inverse(float y);

}  // namespace tx::infer
