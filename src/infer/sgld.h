// Stochastic-gradient Langevin dynamics (Welling & Teh, 2011) — the
// mini-batch MCMC method the paper's Appendix D lists as planned future work
// for TyXe/Pyro. Implemented as an MCMCKernel so MCMC_BNN can use it as a
// drop-in kernel factory; every step is
//   q <- q - (eps/2) dU(q) + N(0, eps I),
// with a polynomially decaying step size eps_t = a (b + t)^{-gamma} and no
// Metropolis correction (exact in the decreasing-step limit).
#pragma once

#include "infer/hmc.h"

namespace tx::infer {

class SGLD : public MCMCKernel {
 public:
  /// a: initial step size; gamma in (0.5, 1] controls the decay; b offsets
  /// the schedule. With gamma = 0 the step size is constant (a common
  /// practical choice that trades bias for mixing).
  explicit SGLD(double a, double gamma = 0.55, double b = 10.0);

  std::vector<double> step(const std::vector<double>& q, bool warmup) override;

  const char* kind() const override { return "sgld"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  double current_step_size() const;

 private:
  double a_, gamma_, b_;
  std::int64_t t_ = 0;
};

}  // namespace tx::infer
