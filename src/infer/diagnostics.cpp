#include "infer/diagnostics.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace tx::infer {

namespace {

double mean_of(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double var_of(const std::vector<double>& x) {
  const double m = mean_of(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

}  // namespace

double effective_sample_size(const std::vector<double>& chain) {
  const std::size_t n = chain.size();
  TX_CHECK(n >= 4, "effective_sample_size: chain too short");
  const double m = mean_of(chain);
  const double var0 = var_of(chain);
  if (var0 <= 0.0) return static_cast<double>(n);
  // Autocovariances.
  auto rho = [&](std::size_t lag) {
    double s = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      s += (chain[i] - m) * (chain[i + lag] - m);
    }
    return s / (static_cast<double>(n) * var0);
  };
  // Geyer initial positive sequence: tau = 1 + 2 * sum of consecutive
  // autocorrelation pairs (rho_{2t-1} + rho_{2t}) while they stay positive.
  double tau = 1.0;
  for (std::size_t t = 1; 2 * t < n; ++t) {
    const double pair = rho(2 * t - 1) + rho(2 * t);
    if (pair <= 0.0) break;
    tau += 2.0 * pair;
  }
  // tau >= 1 by construction, so this also caps ESS at the chain length.
  return static_cast<double>(n) / std::max(tau, 1.0);
}

double split_r_hat(const std::vector<double>& chain) {
  const std::size_t n = chain.size();
  TX_CHECK(n >= 8, "split_r_hat: chain too short");
  const std::size_t half = n / 2;
  std::vector<double> a(chain.begin(), chain.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<double> b(chain.begin() + static_cast<std::ptrdiff_t>(half),
                        chain.begin() + static_cast<std::ptrdiff_t>(2 * half));
  const double ma = mean_of(a), mb = mean_of(b);
  const double grand = 0.5 * (ma + mb);
  const double between = static_cast<double>(half) *
                         ((ma - grand) * (ma - grand) + (mb - grand) * (mb - grand));
  const double within = 0.5 * (var_of(a) + var_of(b));
  if (within <= 0.0) return 1.0;
  const double var_plus =
      (static_cast<double>(half - 1) / static_cast<double>(half)) * within +
      between / static_cast<double>(half);
  return std::sqrt(var_plus / within);
}

}  // namespace tx::infer
