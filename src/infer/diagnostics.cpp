#include "infer/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tx::infer {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double mean_of(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double var_of(const std::vector<double>& x) {
  const double m = mean_of(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

/// True when every chain has the same length (the multi-chain estimators'
/// precondition); ragged input gets NaN, per the header contract.
bool rectangular(const std::vector<std::vector<double>>& chains) {
  for (const auto& chain : chains) {
    if (chain.size() != chains[0].size()) return false;
  }
  return true;
}

}  // namespace

double effective_sample_size(const std::vector<double>& chain) {
  const std::size_t n = chain.size();
  if (n < 4) return kNaN;
  const double m = mean_of(chain);
  const double var0 = var_of(chain);
  if (var0 <= 0.0) return static_cast<double>(n);
  // Autocovariances.
  auto rho = [&](std::size_t lag) {
    double s = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      s += (chain[i] - m) * (chain[i + lag] - m);
    }
    return s / (static_cast<double>(n) * var0);
  };
  // Geyer initial positive sequence: tau = 1 + 2 * sum of consecutive
  // autocorrelation pairs (rho_{2t-1} + rho_{2t}) while they stay positive.
  double tau = 1.0;
  for (std::size_t t = 1; 2 * t < n; ++t) {
    const double pair = rho(2 * t - 1) + rho(2 * t);
    if (pair <= 0.0) break;
    tau += 2.0 * pair;
  }
  // tau >= 1 by construction, so this also caps ESS at the chain length.
  return static_cast<double>(n) / std::max(tau, 1.0);
}

double effective_sample_size(const std::vector<std::vector<double>>& chains) {
  if (chains.empty() || !rectangular(chains) || chains[0].size() < 4) {
    return kNaN;
  }
  double total = 0.0;
  for (const auto& chain : chains) total += effective_sample_size(chain);
  return total;
}

double split_r_hat(const std::vector<double>& chain) {
  const std::size_t n = chain.size();
  if (n < 8) return kNaN;
  const std::size_t half = n / 2;
  std::vector<double> a(chain.begin(), chain.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<double> b(chain.begin() + static_cast<std::ptrdiff_t>(half),
                        chain.begin() + static_cast<std::ptrdiff_t>(2 * half));
  const double ma = mean_of(a), mb = mean_of(b);
  const double grand = 0.5 * (ma + mb);
  const double between = static_cast<double>(half) *
                         ((ma - grand) * (ma - grand) + (mb - grand) * (mb - grand));
  const double within = 0.5 * (var_of(a) + var_of(b));
  if (within <= 0.0) return 1.0;
  const double var_plus =
      (static_cast<double>(half - 1) / static_cast<double>(half)) * within +
      between / static_cast<double>(half);
  return std::sqrt(var_plus / within);
}

double split_r_hat(const std::vector<std::vector<double>>& chains) {
  if (chains.empty() || !rectangular(chains)) return kNaN;
  if (chains.size() == 1) return split_r_hat(chains[0]);
  const std::size_t len = chains[0].size();
  if (len < 8) return kNaN;
  const std::size_t half = len / 2;
  std::vector<std::vector<double>> halves;
  halves.reserve(2 * chains.size());
  for (const auto& chain : chains) {
    halves.emplace_back(chain.begin(),
                        chain.begin() + static_cast<std::ptrdiff_t>(half));
    halves.emplace_back(chain.begin() + static_cast<std::ptrdiff_t>(half),
                        chain.begin() + static_cast<std::ptrdiff_t>(2 * half));
  }
  const auto m = static_cast<double>(halves.size());
  const auto n = static_cast<double>(half);
  std::vector<double> means;
  means.reserve(halves.size());
  double grand = 0.0;
  double within = 0.0;
  for (const auto& h : halves) {
    means.push_back(mean_of(h));
    grand += means.back();
    within += var_of(h);
  }
  grand /= m;
  within /= m;
  if (within <= 0.0) return 1.0;
  double between_over_n = 0.0;  // B/n = sum (mean_j - grand)^2 / (m - 1)
  for (const double mj : means) {
    between_over_n += (mj - grand) * (mj - grand);
  }
  between_over_n /= (m - 1.0);
  const double var_plus = ((n - 1.0) / n) * within + between_over_n;
  return std::sqrt(var_plus / within);
}

}  // namespace tx::infer
