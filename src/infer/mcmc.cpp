#include "infer/mcmc.h"

namespace tx::infer {

MCMC::MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples,
           int warmup_steps)
    : kernel_(std::move(kernel)),
      num_samples_(num_samples),
      warmup_(warmup_steps) {
  TX_CHECK(kernel_ != nullptr, "MCMC: null kernel");
  TX_CHECK(num_samples >= 1 && warmup_steps >= 0, "MCMC: bad sample counts");
}

void MCMC::run(Program model, Generator* gen) {
  kernel_->setup(std::move(model), gen);
  std::vector<double> q = kernel_->initial_position();
  for (int i = 0; i < warmup_; ++i) q = kernel_->step(q, /*warmup=*/true);
  draws_.clear();
  draws_.reserve(static_cast<std::size_t>(num_samples_));
  for (int i = 0; i < num_samples_; ++i) {
    q = kernel_->step(q, /*warmup=*/false);
    draws_.push_back(q);
  }
}

std::vector<Tensor> MCMC::get_samples(const std::string& site) const {
  TX_CHECK(!draws_.empty(), "MCMC: no samples (run() first)");
  std::vector<Tensor> out;
  out.reserve(draws_.size());
  for (const auto& q : draws_) {
    auto values = kernel_->potential().unflatten(q);
    auto it = values.find(site);
    TX_CHECK(it != values.end(), "MCMC: no site named '", site, "'");
    out.push_back(it->second);
  }
  return out;
}

std::map<std::string, Tensor> MCMC::sample_at(std::size_t i) const {
  TX_CHECK(i < draws_.size(), "MCMC: sample index out of range");
  return kernel_->potential().unflatten(draws_[i]);
}

std::vector<double> MCMC::coordinate_chain(std::size_t coord) const {
  std::vector<double> chain;
  chain.reserve(draws_.size());
  for (const auto& q : draws_) {
    TX_CHECK(coord < q.size(), "MCMC: coordinate out of range");
    chain.push_back(q[coord]);
  }
  return chain;
}

}  // namespace tx::infer
