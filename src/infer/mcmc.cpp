#include "infer/mcmc.h"

#include "obs/obs.h"

namespace tx::infer {

namespace {

/// One kernel transition with progress emission shared by both phases.
std::vector<double> instrumented_step(MCMCKernel& kernel,
                                      const std::vector<double>& q,
                                      bool warmup, std::int64_t step,
                                      std::int64_t total,
                                      const ProgressCallback& progress) {
  const bool instrument = obs::enabled() || progress;
  const double t0 = instrument ? obs::now_seconds() : 0.0;
  std::vector<double> next = kernel.step(q, warmup);
  if (!instrument) return next;

  MCMCProgress p;
  p.warmup = warmup;
  p.step = step;
  p.total = total;
  p.accept_prob = kernel.last_accept_prob();
  p.mean_accept_prob = kernel.mean_accept_prob();
  p.divergences = kernel.divergence_count();
  p.seconds = obs::now_seconds() - t0;
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter(warmup ? "mcmc.warmup_steps" : "mcmc.samples").add(1);
    reg.gauge("mcmc.accept_prob").set(p.mean_accept_prob);
    reg.histogram("mcmc.step_seconds").record(p.seconds);
  }
  if (progress) progress(p);
  return next;
}

}  // namespace

MCMC::MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples,
           int warmup_steps)
    : kernel_(std::move(kernel)),
      num_samples_(num_samples),
      warmup_(warmup_steps) {
  TX_CHECK(kernel_ != nullptr, "MCMC: null kernel");
  TX_CHECK(num_samples >= 1 && warmup_steps >= 0, "MCMC: bad sample counts");
}

void MCMC::run(Program model, Generator* gen,
               const ProgressCallback& progress) {
  obs::ScopedTimer span("mcmc.run");
  kernel_->setup(std::move(model), gen);
  const std::int64_t divergences_before = kernel_->divergence_count();
  std::vector<double> q = kernel_->initial_position();
  for (int i = 0; i < warmup_; ++i) {
    q = instrumented_step(*kernel_, q, /*warmup=*/true, i, warmup_, progress);
  }
  draws_.clear();
  draws_.reserve(static_cast<std::size_t>(num_samples_));
  for (int i = 0; i < num_samples_; ++i) {
    q = instrumented_step(*kernel_, q, /*warmup=*/false, i, num_samples_,
                          progress);
    draws_.push_back(q);
  }
  if (obs::enabled()) {
    obs::registry()
        .counter("mcmc.divergences")
        .add(kernel_->divergence_count() - divergences_before);
  }
}

std::vector<Tensor> MCMC::get_samples(const std::string& site) const {
  TX_CHECK(!draws_.empty(), "MCMC: no samples (run() first)");
  std::vector<Tensor> out;
  out.reserve(draws_.size());
  for (const auto& q : draws_) {
    auto values = kernel_->potential().unflatten(q);
    auto it = values.find(site);
    TX_CHECK(it != values.end(), "MCMC: no site named '", site, "'");
    out.push_back(it->second);
  }
  return out;
}

std::map<std::string, Tensor> MCMC::sample_at(std::size_t i) const {
  TX_CHECK(i < draws_.size(), "MCMC: sample index out of range");
  return kernel_->potential().unflatten(draws_[i]);
}

std::vector<double> MCMC::coordinate_chain(std::size_t coord) const {
  std::vector<double> chain;
  chain.reserve(draws_.size());
  for (const auto& q : draws_) {
    TX_CHECK(coord < q.size(), "MCMC: coordinate out of range");
    chain.push_back(q[coord]);
  }
  return chain;
}

}  // namespace tx::infer
