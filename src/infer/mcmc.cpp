#include "infer/mcmc.h"

#include <cmath>
#include <limits>
#include <mutex>

#include "infer/diagnostics.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "ppl/messenger.h"

namespace tx::infer {

namespace {

/// Feed per-site R̂/ESS into tx::obs::diag from a slice of per-position
/// draws: for each site span the per-coordinate single-chain estimates are
/// aggregated conservatively (min ESS, max R̂ over the site's coordinates).
/// Short slices simply produce NaN (the diagnostics.h contract), which
/// mcmc_update_site_health ignores.
void refresh_site_health(const std::vector<obs::diag::SiteSpan>& spans,
                         const std::vector<std::vector<double>>& draws,
                         std::size_t begin, std::size_t end) {
  if (end <= begin) return;
  std::vector<double> chain;
  chain.reserve(end - begin);
  for (const auto& span : spans) {
    double ess_min = std::numeric_limits<double>::infinity();
    double rhat_max = -std::numeric_limits<double>::infinity();
    for (std::size_t c = span.begin; c < span.end; ++c) {
      chain.clear();
      for (std::size_t i = begin; i < end; ++i) chain.push_back(draws[i][c]);
      const double ess = effective_sample_size(chain);
      const double rhat = split_r_hat(chain);
      if (std::isfinite(ess) && ess < ess_min) ess_min = ess;
      if (std::isfinite(rhat) && rhat > rhat_max) rhat_max = rhat;
    }
    obs::diag::mcmc_update_site_health(
        span.name,
        std::isfinite(ess_min) ? ess_min
                               : std::numeric_limits<double>::quiet_NaN(),
        std::isfinite(rhat_max) ? rhat_max
                                : std::numeric_limits<double>::quiet_NaN());
  }
}

/// One kernel transition with progress emission shared by both phases. When
/// `sync` is set (multi-chain runs) metric emission and the callback are
/// serialized across chains.
std::vector<double> instrumented_step(MCMCKernel& kernel,
                                      const std::vector<double>& q,
                                      bool warmup, std::int64_t step,
                                      std::int64_t total,
                                      const ProgressCallback& progress,
                                      std::int64_t chain = 0,
                                      std::mutex* sync = nullptr) {
  const bool instrument = obs::enabled() || progress;
  const double t0 = instrument ? obs::now_seconds() : 0.0;
  const bool trace = obs::tracing();
  if (trace) {
    obs::trace_begin("mcmc.step", obs::Event()
                                      .set("chain", chain)
                                      .set("step", step)
                                      .set("warmup", warmup)
                                      .to_json());
  }
  const std::int64_t divergences_before =
      obs::diag::enabled() ? kernel.divergence_count() : 0;
  std::vector<double> next = kernel.step(q, warmup);
  if (trace) {
    obs::trace_end("mcmc.step",
                   obs::Event()
                       .set("accept_prob", kernel.last_accept_prob())
                       .set("divergences", kernel.divergence_count())
                       .to_json());
  }
  if (obs::diag::enabled()) {
    obs::diag::mcmc_record_transition(
        diag_layout(kernel.potential()), static_cast<int>(chain), step, warmup,
        kernel.last_accept_prob(),
        kernel.divergence_count() > divergences_before, q, next);
  }
  if (!instrument) return next;

  MCMCProgress p;
  p.warmup = warmup;
  p.step = step;
  p.total = total;
  p.chain = chain;
  p.accept_prob = kernel.last_accept_prob();
  p.mean_accept_prob = kernel.mean_accept_prob();
  p.divergences = kernel.divergence_count();
  p.seconds = obs::now_seconds() - t0;
  const auto emit = [&] {
    if (obs::enabled()) {
      auto& reg = obs::registry();
      reg.counter(warmup ? "mcmc.warmup_steps" : "mcmc.samples").add(1);
      reg.gauge("mcmc.accept_prob").set(p.mean_accept_prob);
      // Log-bucketed so per-chain timings merge exactly (obs/hist.h); the
      // heartbeat feeds the live server's /healthz staleness check.
      reg.log_histogram("mcmc.step_seconds").record(p.seconds);
      reg.gauge("obs.heartbeat_seconds").set(obs::now_seconds());
    }
    if (progress) progress(p);
  };
  if (sync) {
    std::lock_guard<std::mutex> lock(*sync);
    emit();
  } else {
    emit();
  }
  return next;
}

}  // namespace

MCMC::MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples,
           int warmup_steps)
    : kernel_(std::move(kernel)),
      num_samples_(num_samples),
      warmup_(warmup_steps) {
  TX_CHECK(kernel_ != nullptr, "MCMC: null kernel");
  TX_CHECK(num_samples >= 1 && warmup_steps >= 0, "MCMC: bad sample counts");
}

MCMC::MCMC(KernelFactory factory, int num_samples, int warmup_steps,
           int num_chains)
    : factory_(std::move(factory)),
      num_samples_(num_samples),
      warmup_(warmup_steps),
      num_chains_(num_chains) {
  TX_CHECK(factory_ != nullptr, "MCMC: null kernel factory");
  TX_CHECK(num_samples >= 1 && warmup_steps >= 0, "MCMC: bad sample counts");
  TX_CHECK(num_chains >= 1, "MCMC: num_chains must be >= 1");
}

void MCMC::run(Program model, Generator* gen,
               const ProgressCallback& progress) {
  obs::ScopedTimer span("mcmc.run");
  if (num_chains_ == 1) {
    if (!kernel_) kernel_ = factory_();
    kernels_.assign(1, kernel_);
    const std::int64_t divergences_before = kernel_->divergence_count();
    kernel_->setup(std::move(model), gen);
    std::vector<double> q = kernel_->initial_position();
    for (int i = 0; i < warmup_; ++i) {
      q = instrumented_step(*kernel_, q, /*warmup=*/true, i, warmup_,
                            progress);
    }
    draws_.clear();
    draws_.reserve(static_cast<std::size_t>(num_samples_));
    const bool diag_on = obs::diag::enabled();
    const int refresh = diag_on ? obs::diag::config().refresh_interval : 0;
    std::vector<obs::diag::SiteSpan> spans;
    if (diag_on) spans = diag_layout(kernel_->potential());
    for (int i = 0; i < num_samples_; ++i) {
      q = instrumented_step(*kernel_, q, /*warmup=*/false, i, num_samples_,
                            progress);
      draws_.push_back(q);
      if (diag_on && refresh > 0 && (i + 1) % refresh == 0) {
        refresh_site_health(spans, draws_, 0, draws_.size());
      }
    }
    if (diag_on) refresh_site_health(spans, draws_, 0, draws_.size());
    if (obs::enabled()) {
      obs::registry()
          .counter("mcmc.divergences")
          .add(kernel_->divergence_count() - divergences_before);
    }
    return;
  }

  // Multi-chain: fresh kernels and sequentially derived per-chain seeds, so
  // every chain's trajectory is a pure function of the caller's generator
  // state regardless of how the chains are scheduled across threads.
  kernels_.clear();
  for (int c = 0; c < num_chains_; ++c) kernels_.push_back(factory_());
  Generator& ambient = gen ? *gen : global_generator();
  chain_gens_.clear();
  chain_gens_.reserve(static_cast<std::size_t>(num_chains_));
  for (int c = 0; c < num_chains_; ++c) {
    chain_gens_.emplace_back(Generator(ambient.engine()()));
  }
  draws_.assign(static_cast<std::size_t>(num_chains_) *
                    static_cast<std::size_t>(num_samples_),
                {});
  if (obs::enabled()) {
    obs::registry().gauge("mcmc.chains").set(
        static_cast<double>(num_chains_));
  }
  std::mutex progress_mu;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(num_chains_));
  for (int c = 0; c < num_chains_; ++c) {
    tasks.push_back([&, c, model] {
      obs::ScopedTimer chain_span(
          "mcmc.chain",
          obs::tracing()
              ? obs::Event().set("chain", static_cast<std::int64_t>(c)).to_json()
              : std::string());
      Generator* cg = &chain_gens_[static_cast<std::size_t>(c)];
      // Model code runs during setup (the Potential layout trace); it must
      // draw from the chain generator, never the shared global one.
      ppl::GeneratorScope gen_scope(cg);
      MCMCKernel& kernel = *kernels_[static_cast<std::size_t>(c)];
      kernel.setup(model, cg);
      std::vector<double> q = kernel.initial_position();
      for (int i = 0; i < warmup_; ++i) {
        q = instrumented_step(kernel, q, /*warmup=*/true, i, warmup_,
                              progress, c, &progress_mu);
      }
      const bool diag_on = obs::diag::enabled();
      const int refresh = diag_on ? obs::diag::config().refresh_interval : 0;
      std::vector<obs::diag::SiteSpan> spans;
      if (diag_on) spans = diag_layout(kernel.potential());
      const std::size_t base = static_cast<std::size_t>(c) *
                               static_cast<std::size_t>(num_samples_);
      for (int i = 0; i < num_samples_; ++i) {
        q = instrumented_step(kernel, q, /*warmup=*/false, i, num_samples_,
                              progress, c, &progress_mu);
        draws_[base + static_cast<std::size_t>(i)] = q;
        // Incremental per-chain health: conservative, single-chain
        // estimates over this chain's draws so far (short slices → NaN →
        // ignored). The cross-chain refresh after the join supersedes it.
        if (diag_on && refresh > 0 && (i + 1) % refresh == 0) {
          refresh_site_health(spans, draws_, base,
                              base + static_cast<std::size_t>(i) + 1);
        }
      }
    });
  }
  par::run_tasks(tasks);
  kernel_ = kernels_.front();  // unflatten / potential accessors
  if (obs::diag::enabled()) {
    // Final cross-chain refresh: the real multi-chain split-R̂ / ESS over
    // all chains, aggregated per site (min ESS, max R̂ over coordinates).
    const auto spans = diag_layout(kernel_->potential());
    for (const auto& span : spans) {
      double ess_min = std::numeric_limits<double>::infinity();
      double rhat_max = -std::numeric_limits<double>::infinity();
      for (std::size_t coord = span.begin; coord < span.end; ++coord) {
        std::vector<std::vector<double>> chains;
        chains.reserve(static_cast<std::size_t>(num_chains_));
        for (int c = 0; c < num_chains_; ++c) {
          chains.push_back(coordinate_chain(coord, c));
        }
        const double ess = effective_sample_size(chains);
        const double rhat = split_r_hat(chains);
        if (std::isfinite(ess) && ess < ess_min) ess_min = ess;
        if (std::isfinite(rhat) && rhat > rhat_max) rhat_max = rhat;
      }
      obs::diag::mcmc_update_site_health(
          span.name,
          std::isfinite(ess_min) ? ess_min
                                 : std::numeric_limits<double>::quiet_NaN(),
          std::isfinite(rhat_max)
              ? rhat_max
              : std::numeric_limits<double>::quiet_NaN());
    }
  }
  if (obs::enabled()) {
    obs::registry().counter("mcmc.divergences").add(divergence_count());
  }
}

double MCMC::mean_accept_prob() const {
  if (kernels_.size() <= 1) {
    TX_CHECK(kernel_ != nullptr, "MCMC: run() first");
    return kernel_->mean_accept_prob();
  }
  double s = 0.0;
  for (const auto& k : kernels_) s += k->mean_accept_prob();
  return s / static_cast<double>(kernels_.size());
}

std::int64_t MCMC::divergence_count() const {
  if (kernels_.size() <= 1) {
    TX_CHECK(kernel_ != nullptr, "MCMC: run() first");
    return kernel_->divergence_count();
  }
  std::int64_t total = 0;
  for (const auto& k : kernels_) total += k->divergence_count();
  return total;
}

std::vector<Tensor> MCMC::get_samples(const std::string& site) const {
  TX_CHECK(!draws_.empty(), "MCMC: no samples (run() first)");
  std::vector<Tensor> out;
  out.reserve(draws_.size());
  for (const auto& q : draws_) {
    auto values = kernel_->potential().unflatten(q);
    auto it = values.find(site);
    TX_CHECK(it != values.end(), "MCMC: no site named '", site, "'");
    out.push_back(it->second);
  }
  return out;
}

std::map<std::string, Tensor> MCMC::sample_at(std::size_t i) const {
  TX_CHECK(i < draws_.size(), "MCMC: sample index out of range");
  return kernel_->potential().unflatten(draws_[i]);
}

std::vector<double> MCMC::coordinate_chain(std::size_t coord) const {
  std::vector<double> chain;
  chain.reserve(draws_.size());
  for (const auto& q : draws_) {
    TX_CHECK(coord < q.size(), "MCMC: coordinate out of range");
    chain.push_back(q[coord]);
  }
  return chain;
}

std::vector<double> MCMC::coordinate_chain(std::size_t coord,
                                           int chain) const {
  TX_CHECK(chain >= 0 && chain < num_chains_, "MCMC: chain out of range");
  TX_CHECK(draws_.size() ==
               static_cast<std::size_t>(num_chains_) *
                   static_cast<std::size_t>(num_samples_),
           "MCMC: no samples (run() first)");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_samples_));
  const std::size_t base = static_cast<std::size_t>(chain) *
                           static_cast<std::size_t>(num_samples_);
  for (int i = 0; i < num_samples_; ++i) {
    const auto& q = draws_[base + static_cast<std::size_t>(i)];
    TX_CHECK(coord < q.size(), "MCMC: coordinate out of range");
    out.push_back(q[coord]);
  }
  return out;
}

}  // namespace tx::infer
