// No-U-Turn Sampler (Hoffman & Gelman, 2014, Algorithm 3: the slice-sampling
// variant with dual-averaging step-size adaptation). Shares the Potential and
// adaptation machinery with HMC.
#pragma once

#include "infer/hmc.h"

namespace tx::infer {

class NUTS : public HMC {
 public:
  explicit NUTS(double step_size, int max_tree_depth = 8,
                bool adapt_step_size = true, double target_accept = 0.8);

  std::vector<double> step(const std::vector<double>& q, bool warmup) override;

  const char* kind() const override { return "nuts"; }

 private:
  struct Tree {
    std::vector<double> q_minus, p_minus, grad_minus;
    std::vector<double> q_plus, p_plus, grad_plus;
    std::vector<double> q_proposal;
    std::int64_t n = 0;   // number of admissible states in the subtree
    bool valid = true;    // no U-turn / divergence inside
    double alpha = 0.0;   // sum of acceptance statistics (for adaptation)
    std::int64_t n_alpha = 0;
  };

  Tree build_tree(const std::vector<double>& q, const std::vector<double>& p,
                  const std::vector<double>& grad, double log_u, int direction,
                  int depth, double eps, double h0);
  static bool no_u_turn(const Tree& t);

  int max_depth_;
};

}  // namespace tx::infer
