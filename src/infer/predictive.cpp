#include "infer/predictive.h"

#include <algorithm>

namespace tx::infer {

Predictive::Predictive(Program model, Program guide, int num_samples,
                       std::vector<std::string> return_sites)
    : model_(std::move(model)),
      guide_(std::move(guide)),
      num_samples_(num_samples),
      return_sites_(std::move(return_sites)) {
  TX_CHECK(model_ != nullptr && guide_ != nullptr, "Predictive: null program");
  TX_CHECK(num_samples >= 1, "Predictive: num_samples must be >= 1");
}

std::map<std::string, Tensor> Predictive::operator()() {
  NoGradGuard ng;
  std::map<std::string, std::vector<Tensor>> collected;
  for (int s = 0; s < num_samples_; ++s) {
    ppl::Trace guide_trace = ppl::trace_fn(guide_);
    ppl::ReplayMessenger replay(guide_trace);
    ppl::TraceMessenger tracer;
    {
      ppl::HandlerScope r(replay);
      ppl::HandlerScope t(tracer);
      model_();
    }
    for (const auto& site : tracer.trace().sites()) {
      if (!return_sites_.empty() &&
          std::find(return_sites_.begin(), return_sites_.end(), site.name) ==
              return_sites_.end()) {
        continue;
      }
      collected[site.name].push_back(site.value.detach());
    }
  }
  for (const auto& wanted : return_sites_) {
    TX_CHECK(collected.count(wanted), "Predictive: site '", wanted,
             "' never appeared in the model trace");
  }
  std::map<std::string, Tensor> out;
  for (auto& [name, values] : collected) {
    out.emplace(name, stack(values, 0));
  }
  return out;
}

}  // namespace tx::infer
