#include "infer/hmc.h"

#include <cmath>

#include "obs/obs.h"
#include "resil/guard.h"
#include "tensor/alloc.h"
#include "util/textio.h"

namespace tx::infer {

namespace {
constexpr double kDivergenceThreshold = 1000.0;  // Stan/Pyro's delta_max
}  // namespace

Potential::Potential(Program model) : model_(std::move(model)) {
  NoGradGuard ng;
  ppl::Trace tr = ppl::trace_fn(model_);
  for (const auto& site : tr.sites()) {
    if (site.is_observed) continue;
    layout_.emplace_back(site.name, site.value.shape());
    priors_.push_back(site.distribution);
    dim_ += site.value.numel();
  }
  TX_CHECK(dim_ > 0, "Potential: model has no latent sites");
}

std::vector<double> Potential::initial_position(Generator* gen) const {
  NoGradGuard ng;
  std::vector<double> q;
  q.reserve(static_cast<std::size_t>(dim_));
  for (std::size_t i = 0; i < layout_.size(); ++i) {
    Tensor draw = priors_[i]->sample(gen);
    for (std::int64_t j = 0; j < draw.numel(); ++j) {
      q.push_back(static_cast<double>(draw.at(j)));
    }
  }
  return q;
}

std::map<std::string, Tensor> Potential::unflatten(
    const std::vector<double>& q) const {
  TX_CHECK(static_cast<std::int64_t>(q.size()) == dim_,
           "Potential: position size mismatch");
  std::map<std::string, Tensor> out;
  std::size_t offset = 0;
  for (const auto& [name, shape] : layout_) {
    const std::int64_t n = numel_of(shape);
    std::vector<float> buf = alloc::buffer_uninit(n);
    for (std::int64_t j = 0; j < n; ++j) {
      buf[static_cast<std::size_t>(j)] = static_cast<float>(q[offset + static_cast<std::size_t>(j)]);
    }
    out.emplace(name, Tensor(shape, std::move(buf)));
    offset += static_cast<std::size_t>(n);
  }
  return out;
}

Tensor Potential::log_joint(const std::map<std::string, Tensor>& latents) const {
  ppl::ConditionMessenger cond(latents);
  ppl::TraceMessenger tracer;
  {
    ppl::HandlerScope c(cond);
    ppl::HandlerScope t(tracer);
    model_();
  }
  return tracer.trace().log_prob_sum();
}

double Potential::value(const std::vector<double>& q) const {
  NoGradGuard ng;
  // Every leapfrog evaluation allocates and drops the same tensor shapes;
  // recycle them through the per-step arena (covers HMC, NUTS, and SGLD).
  alloc::StepScope arena_scope;
  return -static_cast<double>(log_joint(unflatten(q)).item());
}

double Potential::value_and_grad(const std::vector<double>& q,
                                 std::vector<double>& grad) const {
  alloc::StepScope arena_scope;
  std::map<std::string, Tensor> latents = unflatten(q);
  for (auto& [name, t] : latents) t.set_requires_grad(true);
  Tensor lj = log_joint(latents);
  lj.backward();
  grad.assign(q.size(), 0.0);
  std::size_t offset = 0;
  for (const auto& [name, shape] : layout_) {
    const Tensor& t = latents.at(name);
    const Tensor g = t.grad();
    for (std::int64_t j = 0; j < t.numel(); ++j) {
      grad[offset + static_cast<std::size_t>(j)] = -static_cast<double>(g.at(j));
    }
    offset += static_cast<std::size_t>(t.numel());
  }
  return -static_cast<double>(lj.item());
}

std::vector<obs::diag::SiteSpan> diag_layout(const Potential& potential) {
  std::vector<obs::diag::SiteSpan> spans;
  spans.reserve(potential.layout().size());
  std::size_t offset = 0;
  for (const auto& [name, shape] : potential.layout()) {
    const auto n = static_cast<std::size_t>(numel_of(shape));
    spans.push_back({name, offset, offset + n});
    offset += n;
  }
  return spans;
}

void MCMCKernel::setup(Program model, Generator* gen) {
  potential_ = std::make_shared<Potential>(std::move(model));
  gen_ = gen;
}

void MCMCKernel::save_state(std::ostream& os) const {
  os << kind() << " v1\nstats ";
  textio::write_double(os, accept_stat_);
  os << ' ' << accept_count_ << ' ';
  textio::write_double(os, last_accept_prob_);
  os << ' ' << divergences_ << '\n';
}

void MCMCKernel::load_state(std::istream& is) {
  const std::string k = textio::next_token(is, "kernel kind");
  TX_CHECK(k == kind(), "kernel state: kind mismatch — state is '", k,
           "' but kernel is '", kind(), "'");
  textio::expect_tag(is, "v1");
  textio::expect_tag(is, "stats");
  const double accept_stat = textio::read_double(is, "accept_stat");
  const std::int64_t accept_count = textio::read_int(is, "accept_count");
  const double last_accept = textio::read_double(is, "last_accept_prob");
  const std::int64_t divergences = textio::read_int(is, "divergences");
  accept_stat_ = accept_stat;
  accept_count_ = accept_count;
  last_accept_prob_ = last_accept;
  divergences_ = divergences;
}

std::vector<double> MCMCKernel::initial_position() {
  TX_CHECK(potential_ != nullptr, "kernel not set up");
  return potential_->initial_position(gen_);
}

DualAveraging::DualAveraging(double initial_step, double target_accept)
    : mu_(std::log(10.0 * initial_step)),
      target_(target_accept),
      step_(initial_step),
      final_(initial_step) {}

void DualAveraging::update(double accept_prob) {
  constexpr double kGamma = 0.05, kT0 = 10.0, kKappa = 0.75;
  ++t_;
  const double t = static_cast<double>(t_);
  h_bar_ = (1.0 - 1.0 / (t + kT0)) * h_bar_ +
           (target_ - accept_prob) / (t + kT0);
  const double log_eps = mu_ - std::sqrt(t) / kGamma * h_bar_;
  const double eta = std::pow(t, -kKappa);
  log_eps_bar_ = eta * log_eps + (1.0 - eta) * log_eps_bar_;
  step_ = std::exp(log_eps);
  final_ = std::exp(log_eps_bar_);
}

void DualAveraging::save(std::ostream& os) const {
  os << "da ";
  textio::write_double(os, mu_);
  os << ' ';
  textio::write_double(os, target_);
  os << ' ';
  textio::write_double(os, step_);
  os << ' ';
  textio::write_double(os, final_);
  os << ' ';
  textio::write_double(os, h_bar_);
  os << ' ';
  textio::write_double(os, log_eps_bar_);
  os << ' ' << t_ << '\n';
}

void DualAveraging::load(std::istream& is) {
  textio::expect_tag(is, "da");
  const double mu = textio::read_double(is, "da.mu");
  const double target = textio::read_double(is, "da.target");
  const double step = textio::read_double(is, "da.step");
  const double fin = textio::read_double(is, "da.final");
  const double h_bar = textio::read_double(is, "da.h_bar");
  const double log_eps_bar = textio::read_double(is, "da.log_eps_bar");
  const std::int64_t t = textio::read_int(is, "da.t");
  mu_ = mu;
  target_ = target;
  step_ = step;
  final_ = fin;
  h_bar_ = h_bar;
  log_eps_bar_ = log_eps_bar;
  t_ = t;
}

HMC::HMC(double step_size, int num_steps, bool adapt_step_size,
         double target_accept, bool adapt_mass_matrix)
    : step_size_(step_size),
      num_steps_(num_steps),
      adapt_(adapt_step_size),
      target_accept_(target_accept),
      averager_(step_size, target_accept),
      adapt_mass_(adapt_mass_matrix) {
  TX_CHECK(step_size > 0.0 && num_steps >= 1, "HMC: bad step_size/num_steps");
}

void HMC::set_step_size(double eps) {
  TX_CHECK(eps > 0.0, "HMC: step size must be positive");
  step_size_ = eps;
  // Re-seed adaptation around the forced value while warmup is still live,
  // so dual averaging does not immediately snap back to the old regime.
  if (adapt_ && !frozen_) averager_ = DualAveraging(eps, target_accept_);
}

void HMC::save_state(std::ostream& os) const {
  MCMCKernel::save_state(os);
  os << "hmc ";
  textio::write_double(os, step_size_);
  os << ' ' << (frozen_ ? 1 : 0) << ' ' << warmup_seen_ << '\n';
  averager_.save(os);
  os << "mass " << welford_count_ << ' ';
  textio::write_vec_d(os, inv_mass_);
  textio::write_vec_d(os, welford_mean_);
  textio::write_vec_d(os, welford_m2_);
}

void HMC::load_state(std::istream& is) {
  // Parse the whole stream (base fields included) into locals first, so a
  // truncated/corrupt stream throws before any member changes.
  const std::string k = textio::next_token(is, "kernel kind");
  TX_CHECK(k == kind(), "kernel state: kind mismatch — state is '", k,
           "' but kernel is '", kind(), "'");
  textio::expect_tag(is, "v1");
  textio::expect_tag(is, "stats");
  const double accept_stat = textio::read_double(is, "accept_stat");
  const std::int64_t accept_count = textio::read_int(is, "accept_count");
  const double last_accept = textio::read_double(is, "last_accept_prob");
  const std::int64_t divergences = textio::read_int(is, "divergences");
  textio::expect_tag(is, "hmc");
  const double step_size = textio::read_double(is, "step_size");
  const std::int64_t frozen = textio::read_int(is, "frozen");
  const std::int64_t warmup_seen = textio::read_int(is, "warmup_seen");
  DualAveraging averager = averager_;
  averager.load(is);
  textio::expect_tag(is, "mass");
  const std::int64_t welford_count = textio::read_int(is, "welford_count");
  std::vector<double> inv_mass = textio::read_vec_d(is, "inv_mass");
  std::vector<double> welford_mean = textio::read_vec_d(is, "welford_mean");
  std::vector<double> welford_m2 = textio::read_vec_d(is, "welford_m2");

  accept_stat_ = accept_stat;
  accept_count_ = accept_count;
  last_accept_prob_ = last_accept;
  divergences_ = divergences;
  step_size_ = step_size;
  frozen_ = frozen != 0;
  warmup_seen_ = warmup_seen;
  averager_ = averager;
  welford_count_ = welford_count;
  inv_mass_ = std::move(inv_mass);
  welford_mean_ = std::move(welford_mean);
  welford_m2_ = std::move(welford_m2);
}

double HMC::kinetic(const std::vector<double>& p) const {
  double k = 0.0;
  if (inv_mass_.empty()) {
    for (double v : p) k += v * v;
  } else {
    for (std::size_t i = 0; i < p.size(); ++i) k += inv_mass_[i] * p[i] * p[i];
  }
  return 0.5 * k;
}

std::vector<double> HMC::sample_momentum(std::size_t dim, Generator& g) const {
  std::vector<double> p(dim);
  if (inv_mass_.empty()) {
    for (auto& v : p) v = g.normal();
  } else {
    // p ~ N(0, M) with M = diag(1 / inv_mass).
    for (std::size_t i = 0; i < dim; ++i) {
      p[i] = g.normal() / std::sqrt(inv_mass_[i]);
    }
  }
  return p;
}

void HMC::accumulate_mass_sample(const std::vector<double>& q) {
  if (welford_mean_.empty()) {
    welford_mean_.assign(q.size(), 0.0);
    welford_m2_.assign(q.size(), 0.0);
  }
  ++welford_count_;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const double delta = q[i] - welford_mean_[i];
    welford_mean_[i] += delta / static_cast<double>(welford_count_);
    welford_m2_[i] += delta * (q[i] - welford_mean_[i]);
  }
}

void HMC::leapfrog(std::vector<double>& q, std::vector<double>& p,
                   std::vector<double>& grad, double eps, int steps) const {
  obs::ScopedTimer span(
      "hmc.leapfrog",
      obs::tracing() ? obs::Event()
                           .set("steps", steps)
                           .set("dim", static_cast<std::int64_t>(q.size()))
                           .to_json()
                     : std::string());
  // grad holds dU/dq at the current q on entry and on exit.
  for (int s = 0; s < steps; ++s) {
    // Per-leapfrog budget checkpoint: exhausted budgets abandon the
    // trajectory here (the finest useful granularity — one step is one
    // model gradient).
    guard::check_expiry("hmc.leapfrog");
    for (std::size_t i = 0; i < p.size(); ++i) p[i] -= 0.5 * eps * grad[i];
    if (inv_mass_.empty()) {
      for (std::size_t i = 0; i < q.size(); ++i) q[i] += eps * p[i];
    } else {
      for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] += eps * inv_mass_[i] * p[i];
      }
    }
    potential_->value_and_grad(q, grad);
    for (std::size_t i = 0; i < p.size(); ++i) p[i] -= 0.5 * eps * grad[i];
  }
}

std::vector<double> HMC::step(const std::vector<double>& q0, bool warmup) {
  Generator& g = gen_ ? *gen_ : global_generator();
  if (!warmup && adapt_ && !frozen_) {
    averager_.freeze();
    step_size_ = averager_.final_step();
    frozen_ = true;
  }
  const double eps = (warmup && adapt_) ? averager_.current() : step_size_;

  std::vector<double> p = sample_momentum(q0.size(), g);
  std::vector<double> q = q0;
  std::vector<double> grad;
  const double u0 = potential_->value_and_grad(q, grad);
  const double h0 = u0 + kinetic(p);

  leapfrog(q, p, grad, eps, num_steps_);
  const double u1 = potential_->value(q);
  const double h1 = u1 + kinetic(p);

  double accept_prob = std::exp(std::min(0.0, h0 - h1));
  if (!std::isfinite(h1)) accept_prob = 0.0;
  if (!std::isfinite(h1) || h1 - h0 > kDivergenceThreshold) {
    ++divergences_;
    if (obs::diag::enabled()) {
      obs::diag::mcmc_record_divergence(diag_layout(*potential_), q, p, grad,
                                        inv_mass_, h0, h1);
    }
  }
  accept_stat_ += accept_prob;
  ++accept_count_;
  last_accept_prob_ = accept_prob;
  if (warmup && adapt_) averager_.update(accept_prob);

  std::vector<double> result = g.uniform() < accept_prob ? q : q0;

  if (warmup && adapt_mass_) {
    ++warmup_seen_;
    accumulate_mass_sample(result);
    // One Stan-style regularized update once enough warmup draws exist.
    if (inv_mass_.empty() && welford_count_ >= 50) {
      const auto n = static_cast<double>(welford_count_);
      inv_mass_.resize(welford_m2_.size());
      for (std::size_t i = 0; i < welford_m2_.size(); ++i) {
        const double var = welford_m2_[i] / (n - 1.0);
        inv_mass_[i] = (n / (n + 5.0)) * var + 1e-3 * (5.0 / (n + 5.0));
      }
    }
  }
  return result;
}

}  // namespace tx::infer
