// Umbrella header for the inference library.
#pragma once

#include "infer/autoguide.h"
#include "infer/diagnostics.h"
#include "infer/elbo.h"
#include "infer/hmc.h"
#include "infer/mcmc.h"
#include "infer/nuts.h"
#include "infer/predictive.h"
#include "infer/sgld.h"
#include "infer/optim.h"
#include "infer/svi.h"
