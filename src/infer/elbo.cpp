#include "infer/elbo.h"

#include "dist/kl.h"
#include "obs/timer.h"

namespace tx::infer {

std::pair<ppl::Trace, ppl::Trace> trace_model_guide(const Program& model,
                                                    const Program& guide) {
  // Guide vs. model wall-time per trace, the split the ProfilingMessenger
  // also reports ("span.elbo.guide" / "span.elbo.model" histograms).
  ppl::Trace guide_trace = [&] {
    obs::ScopedTimer span("elbo.guide");
    return ppl::trace_fn(guide);
  }();
  ppl::ReplayMessenger replay(guide_trace);
  ppl::TraceMessenger model_tracer;
  {
    obs::ScopedTimer span("elbo.model");
    ppl::HandlerScope r(replay);
    ppl::HandlerScope t(model_tracer);
    model();
  }
  return {std::move(model_tracer.trace()), std::move(guide_trace)};
}

Tensor TraceELBO::differentiable_loss(const Program& model,
                                      const Program& guide) {
  Tensor elbo = Tensor::scalar(0.0f);
  for (int p = 0; p < num_particles_; ++p) {
    auto [model_trace, guide_trace] = trace_model_guide(model, guide);
    elbo = add(elbo, sub(model_trace.log_prob_sum(),
                         guide_trace.log_prob_sum()));
  }
  return neg(div(elbo, Tensor::scalar(static_cast<float>(num_particles_))));
}

Tensor TraceMeanFieldELBO::differentiable_loss(const Program& model,
                                               const Program& guide) {
  Tensor elbo = Tensor::scalar(0.0f);
  for (int p = 0; p < num_particles_; ++p) {
    auto [model_trace, guide_trace] = trace_model_guide(model, guide);
    // Observed sites contribute their (scaled) log-likelihood.
    elbo = add(elbo, model_trace.log_prob_sum(/*observed_only=*/true));
    // Latent sites contribute -KL(q || p), analytic where possible.
    for (const auto& qsite : guide_trace.sites()) {
      if (qsite.is_observed) continue;
      Tensor site_term;
      if (model_trace.contains(qsite.name)) {
        const auto& psite = model_trace.at(qsite.name);
        if (dist::has_analytic_kl(*qsite.distribution, *psite.distribution)) {
          site_term = neg(dist::kl_divergence(*qsite.distribution,
                                              *psite.distribution));
        } else {
          site_term = sub(psite.distribution->log_prob_sum(psite.value),
                          qsite.log_prob_sum());
        }
        if (psite.scale != 1.0) {
          site_term =
              mul(site_term, Tensor::scalar(static_cast<float>(psite.scale)));
        }
      } else {
        // Guide-only auxiliary site: only its entropy-like -log q term.
        site_term = neg(qsite.log_prob_sum());
      }
      elbo = add(elbo, site_term);
    }
  }
  return neg(div(elbo, Tensor::scalar(static_cast<float>(num_particles_))));
}

}  // namespace tx::infer
