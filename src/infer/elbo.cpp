#include "infer/elbo.h"

#include "dist/kl.h"
#include "obs/timer.h"
#include "par/pool.h"

namespace tx::infer {

namespace {

/// Mean of `term()` over `num_particles` evaluations.
///
/// num_particles == 1 keeps the exact legacy path: one inline evaluation
/// under the ambient generator. With more particles each evaluation gets its
/// own Generator seeded sequentially from the ambient stream, so the
/// estimate is a pure function of the ambient generator state — not of the
/// thread count. Particle 0 runs inline first so any lazily created guide
/// params are initialized deterministically from its stream; the remaining
/// particles fan out via tx::par and the terms combine in particle order.
Tensor particle_mean(int num_particles, const std::function<Tensor()>& term) {
  if (num_particles == 1) return term();
  Generator& ambient =
      ppl::current_generator() ? *ppl::current_generator() : global_generator();
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(num_particles));
  for (auto& s : seeds) s = ambient.engine()();
  std::vector<Tensor> terms(static_cast<std::size_t>(num_particles));
  const auto run_particle = [&](int p) {
    Generator g(seeds[static_cast<std::size_t>(p)]);
    ppl::GeneratorScope scope(&g);
    terms[static_cast<std::size_t>(p)] = term();
  };
  run_particle(0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(num_particles - 1));
  for (int p = 1; p < num_particles; ++p) {
    tasks.push_back([&run_particle, p] { run_particle(p); });
  }
  par::run_tasks(tasks);
  Tensor elbo = terms[0];
  for (int p = 1; p < num_particles; ++p) {
    elbo = add(elbo, terms[static_cast<std::size_t>(p)]);
  }
  return div(elbo, Tensor::scalar(static_cast<float>(num_particles)));
}

}  // namespace

std::pair<ppl::Trace, ppl::Trace> trace_model_guide(const Program& model,
                                                    const Program& guide) {
  // Guide vs. model wall-time per trace, the split the ProfilingMessenger
  // also reports ("span.elbo.guide" / "span.elbo.model" histograms).
  ppl::Trace guide_trace = [&] {
    obs::ScopedTimer span("elbo.guide");
    return ppl::trace_fn(guide);
  }();
  ppl::ReplayMessenger replay(guide_trace);
  ppl::TraceMessenger model_tracer;
  {
    obs::ScopedTimer span("elbo.model");
    ppl::HandlerScope r(replay);
    ppl::HandlerScope t(model_tracer);
    model();
  }
  return {std::move(model_tracer.trace()), std::move(guide_trace)};
}

Tensor TraceELBO::differentiable_loss(const Program& model,
                                      const Program& guide) {
  return neg(particle_mean(num_particles_, [&] {
    auto [model_trace, guide_trace] = trace_model_guide(model, guide);
    return sub(model_trace.log_prob_sum(), guide_trace.log_prob_sum());
  }));
}

Tensor TraceMeanFieldELBO::differentiable_loss(const Program& model,
                                               const Program& guide) {
  return neg(particle_mean(num_particles_, [&] {
    auto [model_trace, guide_trace] = trace_model_guide(model, guide);
    // Observed sites contribute their (scaled) log-likelihood.
    Tensor elbo = model_trace.log_prob_sum(/*observed_only=*/true);
    // Latent sites contribute -KL(q || p), analytic where possible.
    for (const auto& qsite : guide_trace.sites()) {
      if (qsite.is_observed) continue;
      Tensor site_term;
      if (model_trace.contains(qsite.name)) {
        const auto& psite = model_trace.at(qsite.name);
        if (dist::has_analytic_kl(*qsite.distribution, *psite.distribution)) {
          site_term = neg(dist::kl_divergence(*qsite.distribution,
                                              *psite.distribution));
        } else {
          site_term = sub(psite.distribution->log_prob_sum(psite.value),
                          qsite.log_prob_sum());
        }
        if (psite.scale != 1.0) {
          site_term =
              mul(site_term, Tensor::scalar(static_cast<float>(psite.scale)));
        }
      } else {
        // Guide-only auxiliary site: only its entropy-like -log q term.
        site_term = neg(qsite.log_prob_sum());
      }
      elbo = add(elbo, site_term);
    }
    return elbo;
  }));
}

}  // namespace tx::infer
