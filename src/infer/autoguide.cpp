#include "infer/autoguide.h"

#include <cmath>

#include "dist/normal.h"
#include "dist/lowrank_normal.h"

namespace tx::infer {

float softplus_inverse(float y) {
  TX_CHECK(y > 0.0f, "softplus_inverse: input must be positive");
  // log(e^y - 1) = y + log(1 - e^{-y}), stable for large y.
  if (y > 20.0f) return y;
  return std::log(std::expm1(y));
}

InitLocFn init_to_sample(Generator* gen) {
  return [gen](const ppl::SiteRecord& site) {
    return site.distribution->sample(gen);
  };
}

InitLocFn init_to_median() {
  return [](const ppl::SiteRecord& site) { return site.distribution->mean().detach(); };
}

InitLocFn init_to_value(std::map<std::string, Tensor> values) {
  return [values = std::move(values)](const ppl::SiteRecord& site) {
    auto it = values.find(site.name);
    if (it != values.end()) {
      TX_CHECK(it->second.numel() == numel_of(site.distribution->shape()),
               "init_to_value: size mismatch for site ", site.name);
      return reshape(it->second.detach(), site.distribution->shape()).detach();
    }
    return site.distribution->mean().detach();
  };
}

AutoGuide::AutoGuide(Program model, std::string prefix, ppl::ParamStore* store)
    : model_(std::move(model)),
      prefix_(std::move(prefix)),
      store_(store ? store : &ppl::param_store()) {
  TX_CHECK(model_ != nullptr, "AutoGuide: null model");
}

const std::vector<ppl::SiteRecord>& AutoGuide::latent_sites() {
  if (!discovered_) {
    NoGradGuard ng;
    // Hide the discovery run from any active outer handlers (a guide may be
    // constructed lazily inside an SVI trace, like Pyro's _setup_prototype).
    ppl::BlockMessenger block_all([](const ppl::SampleMsg&) { return true; });
    ppl::HandlerScope scope(block_all);
    ppl::Trace tr = ppl::trace_fn(model_);
    for (const auto& site : tr.sites()) {
      if (!site.is_observed) sites_.push_back(site);
    }
    discovered_ = true;
  }
  return sites_;
}

AutoNormal::AutoNormal(Program model, AutoNormalConfig config,
                       std::string prefix, ppl::ParamStore* store)
    : AutoGuide(std::move(model), std::move(prefix), store),
      config_(std::move(config)) {
  TX_CHECK(config_.init_scale > 0.0f, "AutoNormal: init_scale must be > 0");
  if (!config_.init_loc) config_.init_loc = init_to_sample();
}

Tensor AutoNormal::loc_param(const ppl::SiteRecord& site) {
  return store_->get_or_create(prefix_ + ".loc." + site.name,
                               [&] { return config_.init_loc(site); });
}

Tensor AutoNormal::scale_param(const ppl::SiteRecord& site) {
  const float u0 = softplus_inverse(config_.init_scale);
  return store_->get_or_create(
      prefix_ + ".scale_unconstrained." + site.name,
      [&] { return full(site.distribution->shape(), u0); });
}

std::shared_ptr<dist::Normal> AutoNormal::site_distribution(
    const std::string& name) {
  for (const auto& site : latent_sites()) {
    if (site.name != name) continue;
    Tensor loc = loc_param(site);
    if (!config_.train_loc) loc = loc.detach();
    Tensor scale = softplus(scale_param(site));
    if (config_.max_scale > 0.0f) scale = clamp_max(scale, config_.max_scale);
    if (!config_.train_scale) scale = scale.detach();
    return std::make_shared<dist::Normal>(loc, scale);
  }
  TX_THROW("AutoNormal: unknown site '", name, "'");
}

void AutoNormal::operator()() {
  for (const auto& site : latent_sites()) {
    ppl::sample(site.name, site_distribution(site.name));
  }
}

std::map<std::string, dist::DistPtr> AutoNormal::get_detached_distributions(
    const std::vector<std::string>& sites) {
  std::map<std::string, dist::DistPtr> out;
  for (const auto& name : sites) {
    out.emplace(name, site_distribution(name)->detach_params());
  }
  return out;
}

AutoDelta::AutoDelta(Program model, InitLocFn init_loc, std::string prefix,
                     ppl::ParamStore* store)
    : AutoGuide(std::move(model), std::move(prefix), store),
      init_loc_(init_loc ? std::move(init_loc) : init_to_sample()) {}

void AutoDelta::operator()() {
  for (const auto& site : latent_sites()) {
    Tensor value = store_->get_or_create(prefix_ + ".loc." + site.name,
                                         [&] { return init_loc_(site); });
    ppl::sample(site.name, std::make_shared<dist::Delta>(value));
  }
}

std::map<std::string, dist::DistPtr> AutoDelta::get_detached_distributions(
    const std::vector<std::string>& sites) {
  std::map<std::string, dist::DistPtr> out;
  for (const auto& name : sites) {
    Tensor value = store_->get(prefix_ + ".loc." + name);
    out.emplace(name, std::make_shared<dist::Delta>(value.detach()));
  }
  return out;
}

AutoLowRankMultivariateNormal::AutoLowRankMultivariateNormal(
    Program model, std::int64_t rank, float init_scale, InitLocFn init_loc,
    std::string prefix, ppl::ParamStore* store)
    : AutoGuide(std::move(model), std::move(prefix), store),
      rank_(rank),
      init_scale_(init_scale),
      init_loc_(init_loc ? std::move(init_loc) : init_to_sample()) {
  TX_CHECK(rank_ >= 1, "AutoLowRankMultivariateNormal: rank must be >= 1");
  TX_CHECK(init_scale_ > 0.0f, "init_scale must be > 0");
}

void AutoLowRankMultivariateNormal::ensure_params() {
  if (total_ > 0) return;
  for (const auto& site : latent_sites()) {
    layout_.emplace_back(site.name, site.distribution->shape());
    total_ += numel_of(site.distribution->shape());
  }
  TX_CHECK(total_ > 0, "AutoLowRankMultivariateNormal: model has no latents");
  store_->get_or_create(prefix_ + "._loc", [&] {
    std::vector<Tensor> chunks;
    for (const auto& site : latent_sites()) {
      chunks.push_back(reshape(init_loc_(site), {-1}));
    }
    return cat(chunks, 0).detach();
  });
  // Spread the initial variance between the factor and the diagonal the way
  // Pyro does: each contributes init_scale²/2.
  const float part = init_scale_ / std::sqrt(2.0f);
  store_->get_or_create(prefix_ + "._cov_factor", [&] {
    Tensor w = randn({total_, rank_});
    w.mul_(part / std::sqrt(static_cast<float>(rank_)));
    return w;
  });
  store_->get_or_create(prefix_ + "._cov_diag_unconstrained",
                        [&] { return full({total_}, softplus_inverse(part)); });
}

void AutoLowRankMultivariateNormal::operator()() {
  ensure_params();
  Tensor loc = store_->get(prefix_ + "._loc");
  Tensor w = store_->get(prefix_ + "._cov_factor");
  Tensor diag = softplus(store_->get(prefix_ + "._cov_diag_unconstrained"));
  auto joint = std::make_shared<dist::LowRankNormal>(loc, w, diag);
  Tensor draw = ppl::sample(prefix_ + "._latent", joint);
  std::int64_t offset = 0;
  for (const auto& [name, shape] : layout_) {
    const std::int64_t n = numel_of(shape);
    Tensor chunk = reshape(slice(draw, 0, offset, offset + n), shape);
    ppl::sample(name, std::make_shared<dist::Delta>(chunk));
    offset += n;
  }
}

std::map<std::string, dist::DistPtr>
AutoLowRankMultivariateNormal::get_detached_distributions(
    const std::vector<std::string>& sites) {
  ensure_params();
  // Marginals are diagonal Normals with var_i = diag_i² + Σ_r W_ir².
  Tensor loc = store_->get(prefix_ + "._loc").detach();
  Tensor w = store_->get(prefix_ + "._cov_factor").detach();
  Tensor diag =
      softplus(store_->get(prefix_ + "._cov_diag_unconstrained").detach());
  Tensor marg_std = sqrt(add(square(diag), sum(square(w), {1})));
  std::map<std::string, dist::DistPtr> out;
  std::int64_t offset = 0;
  for (const auto& [name, shape] : layout_) {
    const std::int64_t n = numel_of(shape);
    for (const auto& wanted : sites) {
      if (wanted == name) {
        out.emplace(name, std::make_shared<dist::Normal>(
                              reshape(slice(loc, 0, offset, offset + n), shape),
                              reshape(slice(marg_std, 0, offset, offset + n),
                                      shape)));
      }
    }
    offset += n;
  }
  return out;
}

}  // namespace tx::infer
