#include "infer/sgld.h"

#include <cmath>

namespace tx::infer {

SGLD::SGLD(double a, double gamma, double b) : a_(a), gamma_(gamma), b_(b) {
  TX_CHECK(a > 0.0, "SGLD: step size must be positive");
  TX_CHECK(gamma >= 0.0 && gamma <= 1.0, "SGLD: gamma must be in [0, 1]");
  TX_CHECK(b > 0.0, "SGLD: b must be positive");
}

double SGLD::current_step_size() const {
  return a_ * std::pow(b_ + static_cast<double>(t_), -gamma_);
}

std::vector<double> SGLD::step(const std::vector<double>& q0, bool warmup) {
  (void)warmup;  // SGLD has no adaptation phase; warmup steps are burn-in.
  Generator& g = gen_ ? *gen_ : global_generator();
  const double eps = current_step_size();
  ++t_;
  std::vector<double> grad;
  potential_->value_and_grad(q0, grad);
  std::vector<double> q = q0;
  const double noise_std = std::sqrt(eps);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] += -0.5 * eps * grad[i] + noise_std * g.normal();
  }
  // Langevin proposals are always "accepted".
  accept_stat_ += 1.0;
  ++accept_count_;
  return q;
}

}  // namespace tx::infer
