#include "infer/sgld.h"

#include <cmath>

#include "util/textio.h"

namespace tx::infer {

SGLD::SGLD(double a, double gamma, double b) : a_(a), gamma_(gamma), b_(b) {
  TX_CHECK(a > 0.0, "SGLD: step size must be positive");
  TX_CHECK(gamma >= 0.0 && gamma <= 1.0, "SGLD: gamma must be in [0, 1]");
  TX_CHECK(b > 0.0, "SGLD: b must be positive");
}

double SGLD::current_step_size() const {
  return a_ * std::pow(b_ + static_cast<double>(t_), -gamma_);
}

std::vector<double> SGLD::step(const std::vector<double>& q0, bool warmup) {
  (void)warmup;  // SGLD has no adaptation phase; warmup steps are burn-in.
  Generator& g = gen_ ? *gen_ : global_generator();
  const double eps = current_step_size();
  ++t_;
  std::vector<double> grad;
  potential_->value_and_grad(q0, grad);
  std::vector<double> q = q0;
  const double noise_std = std::sqrt(eps);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] += -0.5 * eps * grad[i] + noise_std * g.normal();
  }
  // Langevin proposals are always "accepted".
  accept_stat_ += 1.0;
  ++accept_count_;
  return q;
}

void SGLD::save_state(std::ostream& os) const {
  MCMCKernel::save_state(os);
  // The schedule position t is the only mutable SGLD state; a, gamma, b are
  // construction constants the resuming caller reconstructs.
  os << "sgld_t " << t_ << '\n';
}

void SGLD::load_state(std::istream& is) {
  MCMCKernel::load_state(is);
  textio::expect_tag(is, "sgld_t");
  t_ = textio::read_int(is, "sgld t");
}

}  // namespace tx::infer
