// MCMC driver (pyro.infer.mcmc.MCMC): warmup with adaptation, then sampling;
// stores flattened draws and exposes them per site.
#pragma once

#include "infer/hmc.h"

namespace tx::infer {

/// Per-transition progress record handed to the MCMC callback and mirrored
/// into the obs registry ("mcmc.warmup_steps", "mcmc.samples",
/// "mcmc.divergences", "mcmc.accept_prob", "mcmc.step_seconds").
struct MCMCProgress {
  bool warmup = false;
  std::int64_t step = 0;         // 0-based within the phase
  std::int64_t total = 0;        // steps in this phase
  double accept_prob = 0.0;      // this transition's acceptance statistic
  double mean_accept_prob = 0.0; // running mean over the whole run
  std::int64_t divergences = 0;  // cumulative divergent transitions
  double seconds = 0.0;          // wall time of this transition
};

using ProgressCallback = std::function<void(const MCMCProgress&)>;

class MCMC {
 public:
  MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples, int warmup_steps);

  /// Run the chain on the given model. `progress` (if set) fires after every
  /// warmup and sampling transition.
  void run(Program model, Generator* gen = nullptr,
           const ProgressCallback& progress = nullptr);

  std::size_t num_samples() const { return draws_.size(); }
  /// Values of one site across all kept draws.
  std::vector<Tensor> get_samples(const std::string& site) const;
  /// All site values for one kept draw.
  std::map<std::string, Tensor> sample_at(std::size_t i) const;
  double mean_accept_prob() const { return kernel_->mean_accept_prob(); }
  std::int64_t divergence_count() const { return kernel_->divergence_count(); }
  /// Scalar chain of one coordinate (for diagnostics).
  std::vector<double> coordinate_chain(std::size_t coord) const;

 private:
  std::shared_ptr<MCMCKernel> kernel_;
  int num_samples_, warmup_;
  std::vector<std::vector<double>> draws_;
};

}  // namespace tx::infer
