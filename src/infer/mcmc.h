// MCMC driver (pyro.infer.mcmc.MCMC): warmup with adaptation, then sampling;
// stores flattened draws and exposes them per site.
#pragma once

#include "infer/hmc.h"

namespace tx::infer {

/// Per-transition progress record handed to the MCMC callback and mirrored
/// into the obs registry ("mcmc.warmup_steps", "mcmc.samples",
/// "mcmc.divergences", "mcmc.accept_prob", "mcmc.step_seconds").
struct MCMCProgress {
  bool warmup = false;
  std::int64_t step = 0;         // 0-based within the phase
  std::int64_t total = 0;        // steps in this phase
  std::int64_t chain = 0;        // which chain made this transition
  double accept_prob = 0.0;      // this transition's acceptance statistic
  double mean_accept_prob = 0.0; // running mean over this chain's run
  std::int64_t divergences = 0;  // cumulative divergences in this chain
  double seconds = 0.0;          // wall time of this transition
};

using ProgressCallback = std::function<void(const MCMCProgress&)>;

/// Builds one independent kernel per chain for multi-chain runs.
using KernelFactory = std::function<std::shared_ptr<MCMCKernel>()>;

class MCMC {
 public:
  MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples, int warmup_steps);

  /// Multi-chain constructor. Each chain gets a fresh kernel from `factory`
  /// and its own Generator seeded sequentially from the caller's generator,
  /// so per-chain draws depend only on the seed — chains run concurrently
  /// via tx::par but results are identical at every TYXE_NUM_THREADS. Kept
  /// draws are concatenated in chain order. The model must be safe to
  /// evaluate concurrently (pure closures; no shared mutable module state).
  MCMC(KernelFactory factory, int num_samples, int warmup_steps,
       int num_chains = 1);

  /// Run the chain(s) on the given model. `progress` (if set) fires after
  /// every warmup and sampling transition, serialized across chains.
  void run(Program model, Generator* gen = nullptr,
           const ProgressCallback& progress = nullptr);

  int num_chains() const { return num_chains_; }
  /// Total kept draws across all chains.
  std::size_t num_samples() const { return draws_.size(); }
  /// Values of one site across all kept draws (chains concatenated).
  std::vector<Tensor> get_samples(const std::string& site) const;
  /// All site values for one kept draw.
  std::map<std::string, Tensor> sample_at(std::size_t i) const;
  /// Mean over chains of each chain's mean acceptance statistic.
  double mean_accept_prob() const;
  /// Total divergent transitions across chains.
  std::int64_t divergence_count() const;
  /// Scalar chain of one coordinate over all kept draws (for diagnostics).
  std::vector<double> coordinate_chain(std::size_t coord) const;
  /// Scalar chain of one coordinate restricted to one chain.
  std::vector<double> coordinate_chain(std::size_t coord, int chain) const;

 private:
  std::shared_ptr<MCMCKernel> kernel_;  // single-chain kernel / first chain
  KernelFactory factory_;
  int num_samples_, warmup_;
  int num_chains_ = 1;
  std::vector<std::shared_ptr<MCMCKernel>> kernels_;  // per chain, after run
  std::vector<Generator> chain_gens_;  // outlive kernels_ (kernels keep ptrs)
  std::vector<std::vector<double>> draws_;
};

}  // namespace tx::infer
