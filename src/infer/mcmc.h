// MCMC driver (pyro.infer.mcmc.MCMC): warmup with adaptation, then sampling;
// stores flattened draws and exposes them per site.
#pragma once

#include "infer/hmc.h"

namespace tx::infer {

class MCMC {
 public:
  MCMC(std::shared_ptr<MCMCKernel> kernel, int num_samples, int warmup_steps);

  /// Run the chain on the given model.
  void run(Program model, Generator* gen = nullptr);

  std::size_t num_samples() const { return draws_.size(); }
  /// Values of one site across all kept draws.
  std::vector<Tensor> get_samples(const std::string& site) const;
  /// All site values for one kept draw.
  std::map<std::string, Tensor> sample_at(std::size_t i) const;
  double mean_accept_prob() const { return kernel_->mean_accept_prob(); }
  /// Scalar chain of one coordinate (for diagnostics).
  std::vector<double> coordinate_chain(std::size_t coord) const;

 private:
  std::shared_ptr<MCMCKernel> kernel_;
  int num_samples_, warmup_;
  std::vector<std::vector<double>> draws_;
};

}  // namespace tx::infer
