// Stochastic variational inference driver (pyro.infer.SVI).
#pragma once

#include <memory>

#include "infer/elbo.h"
#include "infer/optim.h"

namespace tx::resil {
struct RetryPolicy;
struct FitReport;
}  // namespace tx::resil

namespace tx::infer {

/// Per-step instrumentation record handed to the step callback and mirrored
/// into the obs registry ("svi.steps", "svi.loss", "svi.grad_norm",
/// "svi.step_seconds").
struct SVIStepInfo {
  std::int64_t step = 0;    // 0-based index of the completed step
  double loss = 0.0;        // -ELBO estimate
  double grad_norm = 0.0;   // global L2 norm over all store parameters
  double seconds = 0.0;     // wall time of this step
};

using StepCallback = std::function<void(const SVIStepInfo&)>;

class SVI {
 public:
  /// Parameters are gathered from `store` after each loss evaluation, so
  /// lazily-initialized guides work without pre-registration. With `gen`
  /// non-null every sample drawn during step()/evaluate_loss() comes from
  /// that generator (matching MCMC::run), so runs are reproducible.
  SVI(Program model, Program guide, std::shared_ptr<Optimizer> optimizer,
      std::shared_ptr<ELBO> loss, ppl::ParamStore* store = nullptr,
      Generator* gen = nullptr);

  /// One optimization step; returns the loss value (-ELBO estimate).
  double step();

  /// Loss without an update (validation). Uses the same generator as step(),
  /// so seeded evaluations replay exactly.
  double evaluate_loss();

  /// Fault-tolerant driver: runs `num_steps` steps with periodic crash-safe
  /// checkpoints, rollback + LR decay + retry on non-finite loss/grad, and
  /// exact resume from an existing checkpoint file. Defined in tx_resil
  /// (src/resil/svi_fit.cpp); callers must link that target. See
  /// docs/robustness.md.
  resil::FitReport fit(std::int64_t num_steps, const resil::RetryPolicy& policy);

  /// Invoked after every step with loss / grad-norm / timing.
  void set_step_callback(StepCallback cb) { callback_ = std::move(cb); }
  const StepCallback& step_callback() const { return callback_; }
  void set_generator(Generator* gen) { gen_ = gen; }

  std::int64_t steps_taken() const { return steps_; }
  /// Used by checkpoint resume to restore the step counter exactly.
  void set_steps_taken(std::int64_t steps) { steps_ = steps; }

  Optimizer& optimizer() { return *optimizer_; }
  ppl::ParamStore& store() { return *store_; }
  Generator* generator() { return gen_; }

 private:
  Program model_, guide_;
  std::shared_ptr<Optimizer> optimizer_;
  std::shared_ptr<ELBO> loss_;
  ppl::ParamStore* store_;
  Generator* gen_;
  StepCallback callback_;
  std::int64_t steps_ = 0;
};

}  // namespace tx::infer
