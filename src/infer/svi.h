// Stochastic variational inference driver (pyro.infer.SVI).
#pragma once

#include <memory>

#include "infer/elbo.h"
#include "infer/optim.h"

namespace tx::infer {

class SVI {
 public:
  /// Parameters are gathered from `store` after each loss evaluation, so
  /// lazily-initialized guides work without pre-registration.
  SVI(Program model, Program guide, std::shared_ptr<Optimizer> optimizer,
      std::shared_ptr<ELBO> loss, ppl::ParamStore* store = nullptr);

  /// One optimization step; returns the loss value (-ELBO estimate).
  double step();

  /// Loss without an update (validation).
  double evaluate_loss();

  Optimizer& optimizer() { return *optimizer_; }

 private:
  Program model_, guide_;
  std::shared_ptr<Optimizer> optimizer_;
  std::shared_ptr<ELBO> loss_;
  ppl::ParamStore* store_;
};

}  // namespace tx::infer
