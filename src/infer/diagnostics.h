// Chain diagnostics: effective sample size and split R-hat.
//
// Short-input contract: every function below returns NaN — never throws,
// never fabricates a number — when the input cannot support the estimator:
//   * single-chain ESS needs n >= 4, single-chain split-R̂ needs n >= 8;
//   * the multi-chain overloads additionally return NaN when the chain list
//     is empty, when chains have unequal lengths (ragged input), or when the
//     common length is below the single-chain minimum.
// NaN is the honest answer for "not enough data yet": callers doing
// incremental refreshes (tx::obs::diag) can call these unconditionally and
// simply skip non-finite results.
#pragma once

#include <vector>

namespace tx::infer {

/// Effective sample size of a scalar chain via the initial-positive-sequence
/// autocorrelation estimator (Geyer, 1992). NaN when chain.size() < 4.
double effective_sample_size(const std::vector<double>& chain);

/// Multi-chain ESS: sum of the per-chain estimates (chains are independent,
/// e.g. MCMC::coordinate_chain(coord, c) for each chain c). NaN when the
/// list is empty, ragged, or the common length is < 4.
double effective_sample_size(const std::vector<std::vector<double>>& chains);

/// Split-R̂ of a scalar chain (Gelman et al.): the chain is split in half and
/// treated as two chains. Values near 1 indicate convergence. NaN when
/// chain.size() < 8.
double split_r_hat(const std::vector<double>& chain);

/// Multi-chain split-R̂: every chain is split in half and the potential scale
/// reduction factor is computed over all 2M half-chains. NaN when the list
/// is empty, ragged, or the common length is < 8.
double split_r_hat(const std::vector<std::vector<double>>& chains);

}  // namespace tx::infer
