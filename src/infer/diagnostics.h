// Chain diagnostics: effective sample size and split R-hat.
#pragma once

#include <vector>

namespace tx::infer {

/// Effective sample size of a scalar chain via the initial-positive-sequence
/// autocorrelation estimator (Geyer, 1992).
double effective_sample_size(const std::vector<double>& chain);

/// Split-R̂ of a scalar chain (Gelman et al.): the chain is split in half and
/// treated as two chains. Values near 1 indicate convergence.
double split_r_hat(const std::vector<double>& chain);

}  // namespace tx::infer
