// Chain diagnostics: effective sample size and split R-hat.
#pragma once

#include <vector>

namespace tx::infer {

/// Effective sample size of a scalar chain via the initial-positive-sequence
/// autocorrelation estimator (Geyer, 1992).
double effective_sample_size(const std::vector<double>& chain);

/// Multi-chain ESS: sum of the per-chain estimates (chains are independent,
/// e.g. MCMC::coordinate_chain(coord, c) for each chain c).
double effective_sample_size(const std::vector<std::vector<double>>& chains);

/// Split-R̂ of a scalar chain (Gelman et al.): the chain is split in half and
/// treated as two chains. Values near 1 indicate convergence.
double split_r_hat(const std::vector<double>& chain);

/// Multi-chain split-R̂: every chain is split in half and the potential scale
/// reduction factor is computed over all 2M half-chains. Chains must have
/// equal length >= 8.
double split_r_hat(const std::vector<std::vector<double>>& chains);

}  // namespace tx::infer
