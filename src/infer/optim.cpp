#include "infer/optim.h"

#include <algorithm>
#include <cmath>

namespace tx::infer {

void Optimizer::add_param(const Tensor& p) {
  TX_CHECK(p.defined() && p.is_leaf(), "optimizer params must be leaf tensors");
  const TensorImpl* key = p.impl().get();
  if (index_.count(key)) return;
  index_.emplace(key, params_.size());
  params_.push_back(p);
}

void Optimizer::add_params(const std::vector<Tensor>& ps) {
  for (const auto& p : ps) add_param(p);
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

SGD::SGD(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void SGD::step() {
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    const auto& g = p.grad_buffer();
    float* data = p.data();
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < g.size(); ++i) {
        data[i] -= static_cast<float>(lr_) * g[i];
      }
    } else {
      auto& vel = velocity_[p.impl().get()];
      if (vel.empty()) vel.assign(g.size(), 0.0f);
      for (std::size_t i = 0; i < g.size(); ++i) {
        vel[i] = static_cast<float>(momentum_) * vel[i] + g[i];
        data[i] -= static_cast<float>(lr_) * vel[i];
      }
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step() {
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    const auto& g = p.grad_buffer();
    auto& st = state_[p.impl().get()];
    if (st.m.empty()) {
      st.m.assign(g.size(), 0.0f);
      st.v.assign(g.size(), 0.0f);
    }
    ++st.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(st.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(st.t));
    float* data = p.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float gi = transform_grad(g[i]);
      st.m[i] = static_cast<float>(beta1_) * st.m[i] +
                (1.0f - static_cast<float>(beta1_)) * gi;
      st.v[i] = static_cast<float>(beta2_) * st.v[i] +
                (1.0f - static_cast<float>(beta2_)) * gi * gi;
      const double mhat = st.m[i] / bc1;
      const double vhat = st.v[i] / bc2;
      data[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

ClippedAdam::ClippedAdam(double lr, double clip_norm, double lrd)
    : Adam(lr), clip_(clip_norm), lrd_(lrd) {}

float ClippedAdam::transform_grad(float g) const {
  return std::clamp(g, -static_cast<float>(clip_), static_cast<float>(clip_));
}

void ClippedAdam::step() {
  Adam::step();
  if (lrd_ != 1.0) lr_ *= lrd_;
}

StepLR::StepLR(Optimizer& opt, std::int64_t period, double factor)
    : opt_(&opt), period_(period), factor_(factor) {
  TX_CHECK(period > 0, "StepLR: period must be positive");
}

void StepLR::step() {
  ++count_;
  if (count_ % period_ == 0) opt_->set_lr(opt_->lr() * factor_);
}

}  // namespace tx::infer
