#include "infer/optim.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/textio.h"

namespace tx::infer {

using textio::expect_tag;
using textio::next_token;
using textio::read_double;
using textio::read_int;
using textio::write_double;
using textio::read_vec_f;
using textio::write_vec_f;

void Optimizer::add_param(const std::string& name, const Tensor& p) {
  TX_CHECK(p.defined() && p.is_leaf(), "optimizer params must be leaf tensors");
  const TensorImpl* key = p.impl().get();
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    Slot& slot = slots_[it->second];
    const TensorImpl* old = slot.param.impl().get();
    if (old == key) return;
    // The store replaced this parameter's handle (set()/restore()): rebind
    // the slot in place so the name-keyed moment state keeps applying.
    by_impl_.erase(old);
    by_impl_.emplace(key, it->second);
    slot.param = p;
    return;
  }
  if (by_impl_.count(key)) return;  // already held under another name
  by_name_.emplace(name, slots_.size());
  by_impl_.emplace(key, slots_.size());
  slots_.push_back({name, p});
}

void Optimizer::add_param(const Tensor& p) {
  TX_CHECK(p.defined() && p.is_leaf(), "optimizer params must be leaf tensors");
  if (by_impl_.count(p.impl().get())) return;
  add_param("@" + std::to_string(anon_count_++), p);
}

void Optimizer::add_params(const std::vector<Tensor>& ps) {
  for (const auto& p : ps) add_param(p);
}

void Optimizer::zero_grad() {
  for (auto& s : slots_) s.param.zero_grad();
}

void Optimizer::save_state(std::ostream& os) const {
  os << kind() << " v1\nlr ";
  write_double(os, lr_);
  os << '\n';
  save_extra(os);
}

void Optimizer::load_state(std::istream& is) {
  const std::string k = next_token(is, "kind");
  TX_CHECK(k == kind(), "optimizer state: kind mismatch — state is '", k,
           "' but optimizer is '", kind(), "'");
  expect_tag(is, "v1");
  expect_tag(is, "lr");
  const double lr = read_double(is, "lr");
  load_extra(is);  // stages internally; throws before mutating on corruption
  lr_ = lr;
}

void Optimizer::save_extra(std::ostream&) const {}
void Optimizer::load_extra(std::istream&) {}

SGD::SGD(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void SGD::step() {
  for (auto& s : slots_) {
    Tensor& p = s.param;
    if (!p.has_grad()) continue;
    const auto& g = p.grad_buffer();
    float* data = p.data();
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < g.size(); ++i) {
        data[i] -= static_cast<float>(lr_) * g[i];
      }
    } else {
      auto& vel = velocity_[s.name];
      if (vel.empty()) vel.assign(g.size(), 0.0f);
      TX_CHECK(vel.size() == g.size(), "SGD: velocity/param size mismatch for '",
               s.name, "'");
      for (std::size_t i = 0; i < g.size(); ++i) {
        vel[i] = static_cast<float>(momentum_) * vel[i] + g[i];
        data[i] -= static_cast<float>(lr_) * vel[i];
      }
    }
  }
}

void SGD::save_extra(std::ostream& os) const {
  std::vector<std::string> names;
  names.reserve(velocity_.size());
  for (const auto& [name, _] : velocity_) names.push_back(name);
  std::sort(names.begin(), names.end());
  os << "velocity " << names.size() << '\n';
  for (const auto& name : names) {
    os << name << ' ';
    write_vec_f(os, velocity_.at(name));
  }
}

void SGD::load_extra(std::istream& is) {
  expect_tag(is, "velocity");
  const std::int64_t n = read_int(is, "velocity count");
  std::unordered_map<std::string, std::vector<float>> staged;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::string name = next_token(is, "velocity name");
    staged[name] = read_vec_f(is, "velocity");
  }
  velocity_ = std::move(staged);
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step() {
  for (auto& s : slots_) {
    Tensor& p = s.param;
    if (!p.has_grad()) continue;
    const auto& g = p.grad_buffer();
    auto& st = state_[s.name];
    if (st.m.empty()) {
      st.m.assign(g.size(), 0.0f);
      st.v.assign(g.size(), 0.0f);
    }
    TX_CHECK(st.m.size() == g.size(), "Adam: moment/param size mismatch for '",
             s.name, "'");
    ++st.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(st.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(st.t));
    float* data = p.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float gi = transform_grad(g[i]);
      st.m[i] = static_cast<float>(beta1_) * st.m[i] +
                (1.0f - static_cast<float>(beta1_)) * gi;
      st.v[i] = static_cast<float>(beta2_) * st.v[i] +
                (1.0f - static_cast<float>(beta2_)) * gi * gi;
      const double mhat = st.m[i] / bc1;
      const double vhat = st.v[i] / bc2;
      data[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::save_extra(std::ostream& os) const {
  std::vector<std::string> names;
  names.reserve(state_.size());
  for (const auto& [name, _] : state_) names.push_back(name);
  std::sort(names.begin(), names.end());
  os << "moments " << names.size() << '\n';
  for (const auto& name : names) {
    const State& st = state_.at(name);
    os << name << ' ' << st.t << ' ';
    write_vec_f(os, st.m);
    write_vec_f(os, st.v);
  }
}

void Adam::load_extra(std::istream& is) {
  expect_tag(is, "moments");
  const std::int64_t n = read_int(is, "moment count");
  std::unordered_map<std::string, State> staged;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::string name = next_token(is, "moment name");
    State st;
    st.t = read_int(is, "moment t");
    st.m = read_vec_f(is, "moment m");
    st.v = read_vec_f(is, "moment v");
    TX_CHECK(st.m.size() == st.v.size(),
             "optimizer state: m/v size mismatch for '", name, "'");
    staged[name] = std::move(st);
  }
  state_ = std::move(staged);
}

ClippedAdam::ClippedAdam(double lr, double clip_norm, double lrd)
    : Adam(lr), clip_(clip_norm), lrd_(lrd) {}

float ClippedAdam::transform_grad(float g) const {
  return std::clamp(g, -static_cast<float>(clip_), static_cast<float>(clip_));
}

void ClippedAdam::step() {
  Adam::step();
  if (lrd_ != 1.0) lr_ *= lrd_;
}

StepLR::StepLR(Optimizer& opt, std::int64_t period, double factor)
    : opt_(&opt), period_(period), factor_(factor) {
  TX_CHECK(period > 0, "StepLR: period must be positive");
}

void StepLR::step() {
  ++count_;
  if (count_ % period_ == 0) opt_->set_lr(opt_->lr() * factor_);
}

}  // namespace tx::infer
