#include "infer/svi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "obs/obs.h"
#include "resil/fault.h"
#include "resil/guard.h"
#include "tensor/alloc.h"

namespace tx::infer {

SVI::SVI(Program model, Program guide, std::shared_ptr<Optimizer> optimizer,
         std::shared_ptr<ELBO> loss, ppl::ParamStore* store, Generator* gen)
    : model_(std::move(model)),
      guide_(std::move(guide)),
      optimizer_(std::move(optimizer)),
      loss_(std::move(loss)),
      store_(store ? store : &ppl::param_store()),
      gen_(gen) {
  TX_CHECK(optimizer_ != nullptr && loss_ != nullptr,
           "SVI: optimizer and loss must be non-null");
}

double SVI::step() {
  // Budget checkpoint: an exhausted budget (deadline, step cap, cancel)
  // throws guard::Cancelled before any state is touched, so a cancelled
  // step is always a clean no-op. The stall site lets fault plans wedge the
  // driver mid-run to exercise the watchdog.
  fault::check_stall("svi.step");
  guard::begin_step("svi.step");

  const bool instrument = obs::enabled() || callback_;
  const bool diag_on = obs::diag::enabled();
  const double t0 = instrument ? obs::now_seconds() : 0.0;

  std::optional<ppl::GeneratorScope> seed;
  if (gen_ != nullptr) seed.emplace(gen_);

  // Open the diag step before the loss evaluation so the
  // DiagnosticsMessenger (if attached) records the sites this step touches.
  obs::diag::svi_step_begin(steps_);

  // Recycle autograd temporaries for the whole step (forward, backward,
  // optimizer, instrumentation) instead of round-tripping them to the heap.
  alloc::StepScope arena_scope;

  obs::ScopedTimer step_span(
      "svi.step", obs::tracing()
                      ? obs::Event().set("step", steps_).to_json()
                      : std::string());
  // Zero stale gradients on everything currently registered.
  for (auto& [name, p] : store_->items()) p.zero_grad();
  Tensor loss = loss_->differentiable_loss(model_, guide_);
  {
    obs::ScopedTimer backward_span("svi.backward");
    loss.backward();
  }
  if (fault::armed()) {
    // Deterministic fault injection: overwrite matching gradients with NaN
    // after backward, before the optimizer consumes them.
    for (auto& [name, p] : store_->items()) {
      if (p.has_grad() && fault::poison_grad(name, steps_)) {
        auto& g = p.impl()->grad;
        std::fill(g.begin(), g.end(),
                  std::numeric_limits<float>::quiet_NaN());
      }
    }
  }
  {
    obs::ScopedTimer opt_span("svi.optimizer");
    // Lazily created params now exist; register (by name, so moment state
    // survives handle replacement) and update.
    for (auto& [name, p] : store_->items()) optimizer_->add_param(name, p);
    optimizer_->step();
  }
  const double loss_value = static_cast<double>(loss.item());
  const std::int64_t step_index = steps_++;

  double total_grad_sq = 0.0;
  if (instrument || diag_on) {
    NoGradGuard ng;
    for (const auto& [name, p] : store_->items()) {
      const Tensor g = p.grad();
      if (!g.defined()) continue;
      const double gsq = static_cast<double>(square_sum(g).item());
      total_grad_sq += gsq;
      // The extra sum(g) reduction (and its sync) is diag-only; the
      // instrument-only path stays at the single sum(square(g)).
      if (diag_on) {
        const double gsum = static_cast<double>(sum(g).item());
        // NaN propagates through both sums, so two finiteness checks cover
        // the whole gradient block.
        const bool finite = std::isfinite(gsum) && std::isfinite(gsq);
        const double n = static_cast<double>(g.numel());
        obs::diag::record_param_grad(name, n > 0 ? gsum / n : 0.0,
                                     std::sqrt(gsq), finite);
      }
    }
  }
  obs::diag::svi_step_end(loss_value, std::sqrt(total_grad_sq));
  obs::prof::on_step();

  if (instrument) {
    const double grad_sq = total_grad_sq;
    SVIStepInfo info;
    info.step = step_index;
    info.loss = loss_value;
    info.grad_norm = std::sqrt(grad_sq);
    info.seconds = obs::now_seconds() - t0;
    if (obs::enabled()) {
      auto& reg = obs::registry();
      reg.counter("svi.steps").add(1);
      reg.gauge("svi.loss").set(info.loss);
      reg.gauge("svi.grad_norm").set(info.grad_norm);
      // Log-bucketed so per-worker step timings merge exactly (obs/hist.h);
      // the heartbeat feeds the live server's /healthz staleness check.
      reg.log_histogram("svi.step_seconds").record(info.seconds);
      reg.gauge("obs.heartbeat_seconds").set(obs::now_seconds());
      if (guard::watchdog_interested()) {
        // Record where liveness was last confirmed so a later stall can be
        // blamed on the span that stopped pulsing.
        guard::note_liveness(obs::current_span_path());
      }
    }
    if (callback_) callback_(info);
  }
  return loss_value;
}

double SVI::evaluate_loss() {
  std::optional<ppl::GeneratorScope> seed;
  if (gen_ != nullptr) seed.emplace(gen_);
  NoGradGuard ng;
  alloc::StepScope arena_scope;
  return static_cast<double>(
      loss_->differentiable_loss(model_, guide_).item());
}

}  // namespace tx::infer
