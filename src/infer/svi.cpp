#include "infer/svi.h"

namespace tx::infer {

SVI::SVI(Program model, Program guide, std::shared_ptr<Optimizer> optimizer,
         std::shared_ptr<ELBO> loss, ppl::ParamStore* store)
    : model_(std::move(model)),
      guide_(std::move(guide)),
      optimizer_(std::move(optimizer)),
      loss_(std::move(loss)),
      store_(store ? store : &ppl::param_store()) {
  TX_CHECK(optimizer_ != nullptr && loss_ != nullptr,
           "SVI: optimizer and loss must be non-null");
}

double SVI::step() {
  // Zero stale gradients on everything currently registered.
  for (auto& [name, p] : store_->items()) p.zero_grad();
  Tensor loss = loss_->differentiable_loss(model_, guide_);
  loss.backward();
  // Lazily created params now exist; register and update.
  for (auto& [name, p] : store_->items()) optimizer_->add_param(p);
  optimizer_->step();
  return static_cast<double>(loss.item());
}

double SVI::evaluate_loss() {
  NoGradGuard ng;
  return static_cast<double>(
      loss_->differentiable_loss(model_, guide_).item());
}

}  // namespace tx::infer
