// Posterior-predictive utility, the analogue of pyro.infer.Predictive: draw
// repeated guide samples, replay the model against each, and collect the
// values of requested sites (including observed/deterministic ones). This is
// the boilerplate block at the bottom of the paper's Appendix B Listing 7,
// packaged once.
#pragma once

#include <map>
#include <vector>

#include "infer/autoguide.h"

namespace tx::infer {

class Predictive {
 public:
  /// Collect `return_sites` (empty = every site in the model trace) over
  /// `num_samples` guide draws.
  Predictive(Program model, Program guide, int num_samples,
             std::vector<std::string> return_sites = {});

  /// Runs the sweep; values of each requested site stacked along a new
  /// leading sample dimension.
  std::map<std::string, Tensor> operator()();

 private:
  Program model_, guide_;
  int num_samples_;
  std::vector<std::string> return_sites_;
};

}  // namespace tx::infer
