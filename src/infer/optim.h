// Gradient-based optimizers over leaf tensors (typically the contents of the
// ParamStore). Parameters can be registered lazily — Pyro-style guides create
// their parameters on first use, so SVI re-registers after every loss
// evaluation and add_param deduplicates.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace tx::infer {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Register a parameter; repeated registration of the same tensor is a
  /// no-op. The tensor must be a leaf.
  void add_param(const Tensor& p);
  void add_params(const std::vector<Tensor>& ps);
  std::size_t num_params() const { return params_.size(); }

  void zero_grad();
  /// Apply one update using the gradients currently stored on the params.
  virtual void step() = 0;

  double lr() const { return lr_; }
  virtual void set_lr(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}

  std::vector<Tensor> params_;
  std::unordered_map<const TensorImpl*, std::size_t> index_;
  double lr_;
};

class SGD : public Optimizer {
 public:
  explicit SGD(double lr, double momentum = 0.0);
  void step() override;

 private:
  double momentum_;
  std::unordered_map<const TensorImpl*, std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step() override;

 protected:
  /// Per-parameter gradient hook applied before the Adam update (used by
  /// ClippedAdam for gradient clipping).
  virtual float transform_grad(float g) const { return g; }

  double beta1_, beta2_, eps_;
  struct State {
    std::vector<float> m, v;
    std::int64_t t = 0;
  };
  std::unordered_map<const TensorImpl*, State> state_;
};

/// Adam with elementwise gradient clipping and multiplicative lr decay per
/// step, Pyro's workhorse optimizer for BNNs.
class ClippedAdam : public Adam {
 public:
  ClippedAdam(double lr, double clip_norm = 10.0, double lrd = 1.0);
  void step() override;

 protected:
  float transform_grad(float g) const override;

 private:
  double clip_;
  double lrd_;
};

/// Multiplies the learning rate by `factor` every `period` calls to step()
/// (the "decay by 10 every 100 iterations" schedule the GNN experiment uses).
class StepLR {
 public:
  StepLR(Optimizer& opt, std::int64_t period, double factor);
  /// Call once per optimizer step.
  void step();

 private:
  Optimizer* opt_;
  std::int64_t period_, count_ = 0;
  double factor_;
};

}  // namespace tx::infer
