// Gradient-based optimizers over leaf tensors (typically the contents of the
// ParamStore). Parameters can be registered lazily — Pyro-style guides create
// their parameters on first use, so SVI re-registers after every loss
// evaluation and add_param deduplicates.
//
// Slots and per-parameter state (Adam moments, SGD velocity) are keyed by
// *name*, not by tensor identity: when ParamStore::set()/restore() replaces a
// tensor handle, re-registering the name rebinds the slot and the accumulated
// state survives. State is also serializable (save_state/load_state) so a
// tx.ckpt.v1 checkpoint can resume optimization bitwise-exactly.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace tx::infer {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Register a parameter under a stable name. Registering a known name with
  /// a *different* tensor handle rebinds the slot in place, keeping any
  /// accumulated moment state — this is what makes handle replacement via
  /// ParamStore::set()/restore() safe mid-optimization. Registering a tensor
  /// that is already held by another slot is a no-op. The tensor must be a
  /// leaf.
  void add_param(const std::string& name, const Tensor& p);
  /// Unnamed registration: dedupes by tensor identity and synthesizes a
  /// positional name ("@0", "@1", ...).
  void add_param(const Tensor& p);
  void add_params(const std::vector<Tensor>& ps);
  std::size_t num_params() const { return slots_.size(); }

  void zero_grad();
  /// Apply one update using the gradients currently stored on the params.
  virtual void step() = 0;

  double lr() const { return lr_; }
  virtual void set_lr(double lr) { lr_ = lr; }

  /// Stable tag used in checkpoint headers ("sgd", "adam", "clipped_adam").
  virtual const char* kind() const = 0;

  /// Serialize the dynamic state (lr + per-name moment buffers) as stable
  /// text (hexfloat, so round-trips are bitwise-exact).
  void save_state(std::ostream& os) const;
  /// Restore state written by save_state. Parses fully into staging
  /// structures and swaps only on success: a truncated or corrupt stream
  /// throws tx::Error without touching live state. State entries for names
  /// not yet registered are kept and apply when the slot appears (lazy
  /// guides resume before their first step re-creates params).
  void load_state(std::istream& is);

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}

  struct Slot {
    std::string name;
    Tensor param;
  };

  /// Subclass hooks for the kind-specific tail of the state stream.
  virtual void save_extra(std::ostream& os) const;
  virtual void load_extra(std::istream& is);

  std::vector<Slot> slots_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<const TensorImpl*, std::size_t> by_impl_;
  std::int64_t anon_count_ = 0;
  double lr_;
};

class SGD : public Optimizer {
 public:
  explicit SGD(double lr, double momentum = 0.0);
  void step() override;
  const char* kind() const override { return "sgd"; }

 protected:
  void save_extra(std::ostream& os) const override;
  void load_extra(std::istream& is) override;

 private:
  double momentum_;
  std::unordered_map<std::string, std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step() override;
  const char* kind() const override { return "adam"; }

 protected:
  /// Per-parameter gradient hook applied before the Adam update (used by
  /// ClippedAdam for gradient clipping).
  virtual float transform_grad(float g) const { return g; }
  void save_extra(std::ostream& os) const override;
  void load_extra(std::istream& is) override;

  double beta1_, beta2_, eps_;
  struct State {
    std::vector<float> m, v;
    std::int64_t t = 0;
  };
  std::unordered_map<std::string, State> state_;
};

/// Adam with elementwise gradient clipping and multiplicative lr decay per
/// step, Pyro's workhorse optimizer for BNNs.
class ClippedAdam : public Adam {
 public:
  ClippedAdam(double lr, double clip_norm = 10.0, double lrd = 1.0);
  void step() override;
  const char* kind() const override { return "clipped_adam"; }

 protected:
  float transform_grad(float g) const override;

 private:
  double clip_;
  double lrd_;
};

/// Multiplies the learning rate by `factor` every `period` calls to step()
/// (the "decay by 10 every 100 iterations" schedule the GNN experiment uses).
class StepLR {
 public:
  StepLR(Optimizer& opt, std::int64_t period, double factor);
  /// Call once per optimizer step.
  void step();

  /// Schedule position, exposed so checkpoints can resume the decay exactly.
  std::int64_t count() const { return count_; }
  void set_count(std::int64_t count) { count_ = count; }

 private:
  Optimizer* opt_;
  std::int64_t period_, count_ = 0;
  double factor_;
};

}  // namespace tx::infer
