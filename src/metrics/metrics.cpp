#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace tx::metrics {

namespace {

void check_probs(const Tensor& probs, const Tensor& labels) {
  TX_CHECK(probs.rank() == 2, "metrics: probs must be (N, classes)");
  TX_CHECK(labels.rank() == 1 && labels.dim(0) == probs.dim(0),
           "metrics: labels must be (N,) matching probs");
}

}  // namespace

std::vector<CalibrationBin> calibration_curve(const Tensor& probs,
                                              const Tensor& labels,
                                              int num_bins) {
  check_probs(probs, labels);
  TX_CHECK(num_bins >= 1, "calibration_curve: num_bins must be >= 1");
  const std::int64_t n = probs.dim(0);
  const std::int64_t classes = probs.dim(1);
  std::vector<double> conf_sum(static_cast<std::size_t>(num_bins), 0.0);
  std::vector<double> acc_sum(static_cast<std::size_t>(num_bins), 0.0);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_bins), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    float best = -1.0f;
    std::int64_t pick = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const float p = probs.at(i * classes + c);
      if (p > best) {
        best = p;
        pick = c;
      }
    }
    int bin = static_cast<int>(best * num_bins);
    bin = std::clamp(bin, 0, num_bins - 1);
    conf_sum[static_cast<std::size_t>(bin)] += best;
    acc_sum[static_cast<std::size_t>(bin)] +=
        pick == static_cast<std::int64_t>(std::llround(labels.at(i))) ? 1.0 : 0.0;
    counts[static_cast<std::size_t>(bin)] += 1;
  }
  std::vector<CalibrationBin> bins(static_cast<std::size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    bins[ub].count = counts[ub];
    if (counts[ub] > 0) {
      bins[ub].confidence = conf_sum[ub] / static_cast<double>(counts[ub]);
      bins[ub].accuracy = acc_sum[ub] / static_cast<double>(counts[ub]);
    }
  }
  return bins;
}

double expected_calibration_error(const Tensor& probs, const Tensor& labels,
                                  int num_bins) {
  const auto bins = calibration_curve(probs, labels, num_bins);
  const auto n = static_cast<double>(probs.dim(0));
  double ece = 0.0;
  for (const auto& b : bins) {
    if (b.count == 0) continue;
    ece += (static_cast<double>(b.count) / n) *
           std::fabs(b.accuracy - b.confidence);
  }
  return ece;
}

double accuracy(const Tensor& probs, const Tensor& labels) {
  check_probs(probs, labels);
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    float best = -1.0f;
    std::int64_t pick = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (probs.at(i * classes + c) > best) {
        best = probs.at(i * classes + c);
        pick = c;
      }
    }
    if (pick == static_cast<std::int64_t>(std::llround(labels.at(i)))) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double nll(const Tensor& probs, const Tensor& labels) {
  check_probs(probs, labels);
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::int64_t>(std::llround(labels.at(i)));
    TX_CHECK(c >= 0 && c < classes, "nll: label out of range");
    total -= std::log(std::max(probs.at(i * classes + c), 1e-12f));
  }
  return total / static_cast<double>(n);
}

double brier_score(const Tensor& probs, const Tensor& labels) {
  check_probs(probs, labels);
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::int64_t>(std::llround(labels.at(i)));
    TX_CHECK(c >= 0 && c < classes, "brier_score: label out of range");
    double b = 0.0;
    for (std::int64_t k = 0; k < classes; ++k) {
      const double p = probs.at(i * classes + k);
      const double t = k == c ? 1.0 : 0.0;
      const double d = p - t;
      b += d * d;
    }
    total += b;
  }
  return total / static_cast<double>(n);
}

std::vector<double> predictive_entropy(const Tensor& probs) {
  TX_CHECK(probs.rank() == 2, "predictive_entropy: probs must be (N, classes)");
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const double p = probs.at(i * classes + c);
      if (p > 1e-12) h -= p * std::log(p);
    }
    out[static_cast<std::size_t>(i)] = h;
  }
  return out;
}

std::vector<double> max_probability(const Tensor& probs) {
  TX_CHECK(probs.rank() == 2, "max_probability: probs must be (N, classes)");
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    float best = -1.0f;
    for (std::int64_t c = 0; c < classes; ++c) {
      best = std::max(best, probs.at(i * classes + c));
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

double auroc(const std::vector<double>& positive_scores,
             const std::vector<double>& negative_scores) {
  TX_CHECK(!positive_scores.empty() && !negative_scores.empty(),
           "auroc: empty score lists");
  // Mann-Whitney U statistic, O(n log n) via sorting the negatives.
  std::vector<double> neg = negative_scores;
  std::sort(neg.begin(), neg.end());
  double u = 0.0;
  for (double p : positive_scores) {
    const auto lower =
        std::lower_bound(neg.begin(), neg.end(), p) - neg.begin();
    const auto upper =
        std::upper_bound(neg.begin(), neg.end(), p) - neg.begin();
    u += static_cast<double>(lower) +
         0.5 * static_cast<double>(upper - lower);
  }
  return u / (static_cast<double>(positive_scores.size()) *
              static_cast<double>(neg.size()));
}

std::vector<double> empirical_cdf(std::vector<double> values,
                                  const std::vector<double>& points) {
  TX_CHECK(!values.empty(), "empirical_cdf: no values");
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    const auto count =
        std::upper_bound(values.begin(), values.end(), p) - values.begin();
    out.push_back(static_cast<double>(count) /
                  static_cast<double>(values.size()));
  }
  return out;
}

}  // namespace tx::metrics
