// Evaluation metrics used by the paper's tables and figures: expected
// calibration error, calibration curves, predictive entropy, empirical CDFs,
// and OOD detection AUROC from maximum predicted probability.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tx::metrics {

/// One calibration bin: mean confidence, empirical accuracy, sample count.
struct CalibrationBin {
  double confidence = 0.0;
  double accuracy = 0.0;
  std::int64_t count = 0;
};

/// Bins predictions by max predicted probability (equal-width bins on [0,1]).
/// `probs` is (N, classes); `labels` is (N,) float-encoded.
std::vector<CalibrationBin> calibration_curve(const Tensor& probs,
                                              const Tensor& labels,
                                              int num_bins = 10);

/// Expected calibration error (weighted |accuracy - confidence|), in [0, 1].
double expected_calibration_error(const Tensor& probs, const Tensor& labels,
                                  int num_bins = 10);

/// Classification accuracy from a probability table.
double accuracy(const Tensor& probs, const Tensor& labels);

/// Mean negative log-likelihood from a probability table.
double nll(const Tensor& probs, const Tensor& labels);

/// Mean multi-class Brier score: per-example squared error between the
/// probability row and the one-hot label, summed over classes. In [0, 2].
double brier_score(const Tensor& probs, const Tensor& labels);

/// Per-example entropy of the predictive distribution, (N,) from (N, C).
std::vector<double> predictive_entropy(const Tensor& probs);

/// Per-example maximum predicted probability (the OOD score), (N,).
std::vector<double> max_probability(const Tensor& probs);

/// Area under the ROC curve where `positive_scores` should exceed
/// `negative_scores` (ties count half). For OOD detection the paper uses the
/// max predicted probability with in-distribution as positive.
double auroc(const std::vector<double>& positive_scores,
             const std::vector<double>& negative_scores);

/// Empirical CDF of `values` evaluated at `points` (for the entropy CDFs of
/// Fig. 2).
std::vector<double> empirical_cdf(std::vector<double> values,
                                  const std::vector<double>& points);

}  // namespace tx::metrics
