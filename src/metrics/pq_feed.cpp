#include "metrics/pq_feed.h"

#include <cmath>

#include "obs/pq.h"
#include "obs/registry.h"
#include "util/common.h"

namespace tx::metrics {

namespace {

/// Max probability of one row, replicating the batch metrics' float argmax.
float row_confidence(const Tensor& probs, std::int64_t i,
                     std::int64_t classes) {
  float best = -1.0f;
  for (std::int64_t c = 0; c < classes; ++c) {
    best = std::max(best, probs.at(i * classes + c));
  }
  return best;
}

/// Entropy of one row, replicating tx::metrics::predictive_entropy.
double row_entropy(const Tensor& probs, std::int64_t i, std::int64_t classes) {
  double h = 0.0;
  for (std::int64_t c = 0; c < classes; ++c) {
    const double p = probs.at(i * classes + c);
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

void pq_observe_sample_stack(const Tensor& stacked_logits,
                             const Tensor& mean_probs) {
  if (!obs::pq::enabled()) return;
  TX_CHECK(stacked_logits.rank() == 3,
           "pq_observe_sample_stack: stack must be (S, N, classes)");
  TX_CHECK(mean_probs.rank() == 2 &&
               mean_probs.dim(0) == stacked_logits.dim(1) &&
               mean_probs.dim(1) == stacked_logits.dim(2),
           "pq_observe_sample_stack: mean_probs must be (N, classes) "
           "matching the stack");
  const std::int64_t samples = stacked_logits.dim(0);
  const std::int64_t n = mean_probs.dim(0);
  const std::int64_t classes = mean_probs.dim(1);
  const Tensor sample_probs = tx::softmax(stacked_logits, -1);

  double variance_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float confidence = row_confidence(mean_probs, i, classes);
    const double predictive = row_entropy(mean_probs, i, classes);
    // Aleatoric: mean per-sample entropy. The gap to the predictive entropy
    // is the mutual information (epistemic part), derived in pq at snapshot
    // time so the decomposition sums exactly.
    double aleatoric = 0.0;
    for (std::int64_t s = 0; s < samples; ++s) {
      aleatoric += row_entropy(sample_probs, s * n + i, classes);
    }
    aleatoric /= static_cast<double>(samples);
    obs::pq::record_prediction(confidence, predictive, aleatoric);

    // Across-sample variance of the class probabilities, averaged over
    // classes: E[p^2] - mean^2 around the aggregated mean (clamped at 0
    // against rounding).
    double var = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      double sq = 0.0;
      for (std::int64_t s = 0; s < samples; ++s) {
        const double p = sample_probs.at((s * n + i) * classes + c);
        sq += p * p;
      }
      const double mean = mean_probs.at(i * classes + c);
      var += std::max(0.0, sq / static_cast<double>(samples) - mean * mean);
    }
    variance_sum += var / static_cast<double>(classes);
  }
  obs::pq::record_sample_pool(samples, variance_sum, n);
  obs::pq::publish(obs::registry());
}

void pq_observe_probs(const Tensor& probs) {
  if (!obs::pq::enabled()) return;
  TX_CHECK(probs.rank() == 2, "pq_observe_probs: probs must be (N, classes)");
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  for (std::int64_t i = 0; i < n; ++i) {
    const double h = row_entropy(probs, i, classes);
    obs::pq::record_prediction(row_confidence(probs, i, classes), h, h);
  }
  obs::pq::record_sample_pool(1, 0.0, n);
  obs::pq::publish(obs::registry());
}

void pq_observe_labeled(const Tensor& probs, const Tensor& labels) {
  if (!obs::pq::enabled()) return;
  TX_CHECK(probs.rank() == 2 && labels.rank() == 1 &&
               labels.dim(0) == probs.dim(0),
           "pq_observe_labeled: want (N, classes) probs and (N,) labels");
  const std::int64_t n = probs.dim(0), classes = probs.dim(1);
  for (std::int64_t i = 0; i < n; ++i) {
    // Same first-wins float argmax as tx::metrics::calibration_curve.
    float best = -1.0f;
    std::int64_t pick = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const float p = probs.at(i * classes + c);
      if (p > best) {
        best = p;
        pick = c;
      }
    }
    const auto label = static_cast<std::int64_t>(std::llround(labels.at(i)));
    TX_CHECK(label >= 0 && label < classes,
             "pq_observe_labeled: label out of range");
    const float p_true = probs.at(i * classes + label);
    // Per-example Brier term, same accumulation as tx::metrics::brier_score.
    double brier = 0.0;
    for (std::int64_t k = 0; k < classes; ++k) {
      const double p = probs.at(i * classes + k);
      const double t = k == label ? 1.0 : 0.0;
      const double d = p - t;
      brier += d * d;
    }
    obs::pq::record_outcome(best, pick == label, p_true, brier);
  }
  obs::pq::publish(obs::registry());
}

}  // namespace tx::metrics
