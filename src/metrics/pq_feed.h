// Tensor-to-scalar reduction layer feeding tx::obs::pq (obs/pq.h).
//
// tx_obs is tensor-free by design, so the reductions from probability
// tables and posterior sample stacks down to the per-example scalars pq
// accumulates live here, one layer up. Each observe call replicates the
// batch tx::metrics arithmetic term by term (same float argmax, same
// 1e-12f clamp, same summation order), which is what makes the streaming
// ECE / NLL / accuracy / Brier aggregates bitwise-equal to the batch
// functions on the same data — the contract pq_test and the CI --pq leg
// enforce.
//
// Every call is a no-op unless tx::obs::pq::enabled(); when it does record,
// it finishes with pq::publish() so live /metrics scrapes stay fresh.
// Examples land in the calling thread's current pq stream (StreamScope).
#pragma once

#include "tensor/tensor.h"

namespace tx::metrics {

/// Observe a categorical posterior-predictive batch from the full sample
/// stack: `stacked_logits` is (S, N, classes) raw network outputs and
/// `mean_probs` the (N, classes) aggregated mean probabilities
/// (Categorical::aggregate_predictions of the same stack). Records, per
/// example, the max-probability confidence, the predictive entropy of the
/// mean distribution, and the aleatoric entropy (mean per-sample entropy) —
/// plus one pool-health record (S, across-sample probability variance).
void pq_observe_sample_stack(const Tensor& stacked_logits,
                             const Tensor& mean_probs);

/// Observe an (N, classes) probability table with no sample stack behind it
/// (point estimates like the ML baseline): predictive == aleatoric entropy,
/// epistemic 0, MC sample count 1.
void pq_observe_probs(const Tensor& probs);

/// Observe labelled outcomes for an (N, classes) probability table and (N,)
/// float-encoded labels: streaming reliability bins, NLL, Brier, accuracy.
/// Labels out of range throw, matching tx::metrics::nll.
void pq_observe_labeled(const Tensor& probs, const Tensor& labels);

}  // namespace tx::metrics
