#include "render/camera.h"

#include <cmath>

namespace tx::render {

namespace {

Vec3 normalize(const Vec3& v) {
  const float n = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  TX_CHECK(n > 1e-8f, "normalize: zero vector");
  return {v[0] / n, v[1] / n, v[2] / n};
}

Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

}  // namespace

Camera look_at(const Vec3& position, const Vec3& target, float focal,
               std::int64_t height, std::int64_t width) {
  Camera cam;
  cam.position = position;
  cam.forward = normalize({target[0] - position[0], target[1] - position[1],
                           target[2] - position[2]});
  const Vec3 world_up{0.0f, 1.0f, 0.0f};
  cam.right = normalize(cross(cam.forward, world_up));
  cam.up = cross(cam.right, cam.forward);
  cam.focal = focal;
  cam.height = height;
  cam.width = width;
  return cam;
}

std::vector<Camera> circle_cameras(std::int64_t count, float radius,
                                   float height_offset, float focal,
                                   std::int64_t image_size, float start_angle,
                                   float end_angle) {
  TX_CHECK(count >= 1, "circle_cameras: need at least one camera");
  std::vector<Camera> cams;
  cams.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const float t = count == 1 ? 0.0f
                               : static_cast<float>(i) /
                                     static_cast<float>(count);
    const float angle = start_angle + t * (end_angle - start_angle);
    const Vec3 pos{radius * std::cos(angle), height_offset,
                   radius * std::sin(angle)};
    cams.push_back(look_at(pos, {0.0f, 0.0f, 0.0f}, focal, image_size,
                           image_size));
  }
  return cams;
}

RayBatch camera_rays(const Camera& cam) {
  const std::int64_t p = cam.height * cam.width;
  Tensor origins = zeros({p, 3});
  Tensor directions = zeros({p, 3});
  const float cy = static_cast<float>(cam.height - 1) / 2.0f;
  const float cx = static_cast<float>(cam.width - 1) / 2.0f;
  std::int64_t idx = 0;
  for (std::int64_t y = 0; y < cam.height; ++y) {
    for (std::int64_t x = 0; x < cam.width; ++x, ++idx) {
      const float dx = (static_cast<float>(x) - cx) / cam.focal;
      const float dy = (cy - static_cast<float>(y)) / cam.focal;  // +y up
      Vec3 dir{cam.forward[0] + dx * cam.right[0] + dy * cam.up[0],
               cam.forward[1] + dx * cam.right[1] + dy * cam.up[1],
               cam.forward[2] + dx * cam.right[2] + dy * cam.up[2]};
      const float n = std::sqrt(dir[0] * dir[0] + dir[1] * dir[1] +
                                dir[2] * dir[2]);
      for (std::int64_t c = 0; c < 3; ++c) {
        origins.at(idx * 3 + c) = cam.position[static_cast<std::size_t>(c)];
        directions.at(idx * 3 + c) = dir[static_cast<std::size_t>(c)] / n;
      }
    }
  }
  return RayBatch{origins, directions, cam.height, cam.width};
}

}  // namespace tx::render
