// Differentiable emission-absorption volume rendering, positional encoding,
// the NeRF field network, and the analytic ground-truth scene that replaces
// the paper's mesh renderer (see DESIGN.md's substitution table).
#pragma once

#include <functional>

#include "nn/nn.h"
#include "render/camera.h"

namespace tx::render {

struct RenderConfig {
  std::int64_t num_samples = 24;  // depth samples per ray
  float t_near = 1.0f;
  float t_far = 5.0f;
};

/// gamma(p): [p, sin(2^l p), cos(2^l p)] for l = 0..levels-1; (P, 3 + 6L).
Tensor positional_encoding(const Tensor& points, std::int64_t levels);

struct RenderResult {
  Tensor rgb;    // (P, 3)
  Tensor alpha;  // (P,) accumulated opacity (silhouette)
};

/// Composite per-sample densities and colours along each ray.
/// sigma: (P, T) nonnegative; rgb: (P, T, 3) in [0, 1]; depths: (T,).
RenderResult composite(const Tensor& sigma, const Tensor& rgb,
                       const Tensor& depths);

/// A field maps world points (P, 3) to raw outputs (P, 4): density gets
/// softplus, colour gets sigmoid inside the renderer.
using FieldFn = std::function<Tensor(const Tensor& points)>;

/// March `rays` through the field: the whole path is differentiable w.r.t.
/// anything inside field_fn — this is where a PytorchBNN drops in for the
/// deterministic network.
RenderResult render_rays(const FieldFn& field_fn, const RayBatch& rays,
                         const RenderConfig& config);

/// The NeRF network: positional encoding + MLP emitting 4 raw channels.
class NeRFField : public nn::UnaryModule {
 public:
  NeRFField(std::int64_t encoding_levels, std::int64_t hidden,
            std::int64_t depth, Generator* gen = nullptr);

  std::string type_name() const override { return "NeRFField"; }
  Tensor forward_one(const Tensor& points) override;

 private:
  std::int64_t levels_;
  nn::ModulePtr mlp_;
};

/// Analytic emissive scene: a soft sphere and a ring ("torus") with
/// position-dependent colour, evaluated directly — the ground truth the NeRF
/// learns from.
class AnalyticScene {
 public:
  /// Raw field values matching the NeRFField output convention (so the same
  /// compositor renders ground truth and predictions).
  Tensor operator()(const Tensor& points) const;
};

/// Render target images for a set of cameras against the analytic scene.
std::vector<RenderResult> ground_truth_views(const std::vector<Camera>& cameras,
                                             const RenderConfig& config);

/// Mean squared error between two rendered results (rgb + alpha channels),
/// matching the tutorial's colour+silhouette loss.
Tensor render_loss(const RenderResult& predicted, const RenderResult& target);

}  // namespace tx::render
