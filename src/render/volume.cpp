#include "render/volume.h"

#include <cmath>

namespace tx::render {

Tensor positional_encoding(const Tensor& points, std::int64_t levels) {
  TX_CHECK(points.rank() == 2 && points.dim(1) == 3,
           "positional_encoding: points must be (P, 3)");
  std::vector<Tensor> parts{points};
  float freq = 1.0f;
  for (std::int64_t l = 0; l < levels; ++l) {
    Tensor scaled = mul(points, Tensor::scalar(freq));
    parts.push_back(sin(scaled));
    parts.push_back(cos(scaled));
    freq *= 2.0f;
  }
  return cat(parts, 1);
}

RenderResult composite(const Tensor& sigma, const Tensor& rgb,
                       const Tensor& depths) {
  TX_CHECK(sigma.rank() == 2 && rgb.rank() == 3 && depths.rank() == 1,
           "composite: bad shapes");
  const std::int64_t p = sigma.dim(0), t = sigma.dim(1);
  TX_CHECK(rgb.dim(0) == p && rgb.dim(1) == t && rgb.dim(2) == 3 &&
               depths.dim(0) == t,
           "composite: shape mismatch");
  // Segment lengths; the final segment repeats the previous delta.
  Tensor deltas = zeros({t});
  for (std::int64_t i = 0; i + 1 < t; ++i) {
    deltas.at(i) = depths.at(i + 1) - depths.at(i);
  }
  deltas.at(t - 1) = t > 1 ? deltas.at(t - 2) : 1.0f;
  // alpha_i = 1 - exp(-sigma_i * delta_i)
  Tensor alpha = sub(Tensor::scalar(1.0f),
                     exp(neg(mul(sigma, reshape(deltas, {1, t})))));
  // Exclusive transmittance: T_i = prod_{j<i} (1 - alpha_j), in log space.
  Tensor log1m = log(clamp_min(sub(Tensor::scalar(1.0f), alpha), 1e-7f));
  Tensor inclusive = cumsum(log1m, 1);
  Tensor exclusive = sub(inclusive, log1m);
  Tensor transmittance = exp(exclusive);
  Tensor weights = mul(transmittance, alpha);  // (P, T)
  RenderResult out;
  out.rgb = sum(mul(reshape(weights, {p, t, 1}), rgb), {1});
  out.alpha = sum(weights, {1});
  return out;
}

RenderResult render_rays(const FieldFn& field_fn, const RayBatch& rays,
                         const RenderConfig& config) {
  const std::int64_t p = rays.origins.dim(0);
  const std::int64_t t = config.num_samples;
  Tensor depths = linspace(config.t_near, config.t_far, t);
  // points[r, s] = origin[r] + depth[s] * direction[r]; flattened (P*T, 3).
  Tensor o = reshape(rays.origins, {p, 1, 3});
  Tensor d = reshape(rays.directions, {p, 1, 3});
  Tensor z = reshape(depths, {1, t, 1});
  Tensor points = reshape(add(broadcast_to(o, {p, t, 3}),
                              mul(broadcast_to(d, {p, t, 3}), z)),
                          {p * t, 3});
  Tensor raw = field_fn(points);
  TX_CHECK(raw.rank() == 2 && raw.dim(0) == p * t && raw.dim(1) == 4,
           "render_rays: field must return (P*T, 4)");
  Tensor raw4 = reshape(raw, {p, t, 4});
  Tensor sigma = softplus(reshape(slice(raw4, 2, 0, 1), {p, t}));
  Tensor rgb = sigmoid(slice(raw4, 2, 1, 4));
  return composite(sigma, rgb, depths);
}

NeRFField::NeRFField(std::int64_t encoding_levels, std::int64_t hidden,
                     std::int64_t depth, Generator* gen)
    : levels_(encoding_levels) {
  TX_CHECK(depth >= 1, "NeRFField: depth must be >= 1");
  std::vector<std::int64_t> sizes{3 + 6 * levels_};
  for (std::int64_t i = 0; i < depth; ++i) sizes.push_back(hidden);
  sizes.push_back(4);
  mlp_ = nn::make_mlp(sizes, "relu", gen);
  register_module("mlp", mlp_);
}

Tensor NeRFField::forward_one(const Tensor& points) {
  return mlp_->forward(positional_encoding(points, levels_));
}

Tensor AnalyticScene::operator()(const Tensor& points) const {
  TX_CHECK(points.rank() == 2 && points.dim(1) == 3,
           "AnalyticScene: points must be (P, 3)");
  const std::int64_t p = points.dim(0);
  Tensor out = zeros({p, 4});
  for (std::int64_t i = 0; i < p; ++i) {
    const float x = points.at(i * 3 + 0);
    const float y = points.at(i * 3 + 1);
    const float z = points.at(i * 3 + 2);
    // Soft sphere of radius 0.6 at the origin.
    const float r = std::sqrt(x * x + y * y + z * z);
    float density = 18.0f * (0.6f - r);
    // Ring of radius 0.9 in the y = 0 plane, tube radius 0.18.
    const float ring = std::sqrt(x * x + z * z) - 0.9f;
    const float tube = std::sqrt(ring * ring + y * y);
    density = std::max(density, 18.0f * (0.18f - tube));
    // Raw outputs feed softplus/sigmoid in the compositor: invert roughly by
    // emitting large negatives for empty space.
    out.at(i * 4 + 0) = density;
    // Position-dependent colour (pre-sigmoid logits).
    out.at(i * 4 + 1) = 2.0f * std::sin(3.0f * x);
    out.at(i * 4 + 2) = 2.0f * std::cos(3.0f * y + 1.0f);
    out.at(i * 4 + 3) = 2.0f * std::sin(3.0f * z + 2.0f);
  }
  return out;
}

std::vector<RenderResult> ground_truth_views(const std::vector<Camera>& cameras,
                                             const RenderConfig& config) {
  AnalyticScene scene;
  std::vector<RenderResult> views;
  views.reserve(cameras.size());
  NoGradGuard ng;
  for (const auto& cam : cameras) {
    views.push_back(render_rays([&scene](const Tensor& pts) { return scene(pts); },
                                camera_rays(cam), config));
  }
  return views;
}

Tensor render_loss(const RenderResult& predicted, const RenderResult& target) {
  Tensor colour = mean(square(sub(predicted.rgb, target.rgb)));
  Tensor silhouette = mean(square(sub(predicted.alpha, target.alpha)));
  return add(colour, silhouette);
}

}  // namespace tx::render
