// Pinhole cameras and ray generation for the NeRF experiment. Cameras sit on
// a circle around the origin looking inward (the paper's 360° cow setup; our
// scene is analytic, Sec. 2 of DESIGN.md).
#pragma once

#include <array>
#include <vector>

#include "tensor/tensor.h"

namespace tx::render {

using Vec3 = std::array<float, 3>;

struct Camera {
  Vec3 position;
  Vec3 forward, right, up;  // orthonormal basis, forward towards the target
  float focal;              // in pixels
  std::int64_t height, width;
};

/// Camera at `position` looking at `target` with +y as world up.
Camera look_at(const Vec3& position, const Vec3& target, float focal,
               std::int64_t height, std::int64_t width);

/// `count` cameras evenly spaced on a horizontal circle of `radius` at
/// elevation `height_offset`, all looking at the origin. `start_angle` /
/// `end_angle` (radians) bound the arc — holding out a 90° arc is how the
/// experiment creates out-of-distribution views.
std::vector<Camera> circle_cameras(std::int64_t count, float radius,
                                   float height_offset, float focal,
                                   std::int64_t image_size,
                                   float start_angle = 0.0f,
                                   float end_angle = 6.2831853f);

struct RayBatch {
  Tensor origins;     // (P, 3)
  Tensor directions;  // (P, 3), unit length
  std::int64_t height = 0, width = 0;
};

/// One ray per pixel through the pinhole.
RayBatch camera_rays(const Camera& camera);

}  // namespace tx::render
