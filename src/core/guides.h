// tyxe/guides.py: re-exports the AutoNormal guide family with BNN-flavoured
// initializers (fan-based mean init like deterministic layers, pretrained
// means) and a positive-support guide for latent likelihood scales.
#pragma once

#include "infer/autoguide.h"
#include "nn/module.h"

namespace tyxe::guides {

using tx::infer::AutoDelta;
using tx::infer::AutoLowRankMultivariateNormal;
using tx::infer::AutoNormal;
using tx::infer::AutoNormalConfig;
using tx::infer::Guide;
using tx::infer::GuideFactory;
using tx::infer::GuidePtr;
using tx::infer::InitLocFn;
using tx::infer::init_to_median;
using tx::infer::init_to_sample;
using tx::infer::init_to_value;

/// Initialize variational means like deterministic layers: zero-mean normals
/// whose std follows the given fan scheme (radford | xavier | kaiming) of the
/// parameter's shape. Biases (rank-1 sites) are initialized to zero.
InitLocFn init_to_normal_fan(const std::string& method = "radford",
                             tx::Generator* gen = nullptr);

/// Map a module's current parameter values to BNN site names
/// ("<prefix>.<param path>") for init_to_value — this is how "initialize the
/// means to the pre-trained network" is expressed.
std::map<std::string, tx::Tensor> pretrained_dict(
    tx::nn::Module& net, const std::string& prefix = "net");

/// Factory builders for the common guides, mirroring the paper's
/// `guide_factory = tyxe.guides.AutoNormal` / `partial(...)` usage.
GuideFactory auto_normal_factory(AutoNormalConfig config = {},
                                 std::string prefix = "guide");
GuideFactory auto_delta_factory(InitLocFn init_loc = nullptr,
                                std::string prefix = "guide");
GuideFactory auto_lowrank_factory(std::int64_t rank, float init_scale = 0.1f,
                                  InitLocFn init_loc = nullptr,
                                  std::string prefix = "guide");
GuideFactory lognormal_scale_factory(float init_scale = 0.1f,
                                     std::string prefix = "likelihood_guide");

/// Guide over a positive scalar (a latent Gaussian likelihood scale):
/// q(s) = LogNormal(loc, softplus(u)).
class LogNormalScaleGuide : public Guide {
 public:
  LogNormalScaleGuide(tx::infer::Program model, float init_scale = 0.1f,
                      std::string prefix = "likelihood_guide",
                      tx::ppl::ParamStore* store = nullptr);

  void operator()() override;
  std::map<std::string, tx::dist::DistPtr> get_detached_distributions(
      const std::vector<std::string>& sites) override;

 private:
  tx::infer::Program model_;
  std::string prefix_;
  tx::ppl::ParamStore* store_;
  float init_scale_;
  bool discovered_ = false;
  std::vector<tx::ppl::SiteRecord> sites_;
};

}  // namespace tyxe::guides
