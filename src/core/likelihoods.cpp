#include "core/likelihoods.h"

#include <cmath>

#include "metrics/pq_feed.h"

namespace tyxe {

namespace nd = tx::dist;
using tx::Tensor;

Likelihood::Likelihood(std::int64_t dataset_size, std::string name)
    : dataset_size_(dataset_size), name_(std::move(name)) {
  TX_CHECK(dataset_size >= 1, "Likelihood: dataset_size must be >= 1");
}

void Likelihood::set_dataset_size(std::int64_t n) {
  TX_CHECK(n >= 1, "Likelihood: dataset_size must be >= 1");
  dataset_size_ = n;
}

std::int64_t Likelihood::batch_size(const Tensor& obs) const {
  TX_CHECK(obs.rank() >= 1, "Likelihood: observations must have a batch dim");
  return obs.dim(0);
}

Tensor Likelihood::data_program(const Tensor& predictions, const Tensor& obs) {
  const double scale = static_cast<double>(dataset_size_) /
                       static_cast<double>(batch_size(obs));
  tx::ppl::ScaleMessenger sm(scale);
  tx::ppl::HandlerScope scope(sm);
  return tx::ppl::sample(name_, predictive_distribution(predictions), obs);
}

Tensor Likelihood::log_predictive(const Tensor& stacked,
                                  const Tensor& targets) const {
  // Generic mixture predictive: logsumexp_s log p(y | pred_s) - log S,
  // per observation, then summed over the batch.
  const std::int64_t s = stacked.dim(0);
  std::vector<Tensor> per_sample;
  per_sample.reserve(static_cast<std::size_t>(s));
  for (std::int64_t i = 0; i < s; ++i) {
    Tensor pred = tx::slice(stacked, 0, i, i + 1);
    pred = tx::reshape(pred, Shape(stacked.shape().begin() + 1,
                                   stacked.shape().end()));
    Tensor lp = predictive_distribution(pred)->log_prob(targets);
    // Joint log-prob per observation: sum trailing dims to the batch shape.
    if (lp.rank() > 1) {
      std::vector<std::int64_t> axes;
      for (std::int64_t d = 1; d < lp.rank(); ++d) axes.push_back(d);
      lp = tx::sum(lp, axes);
    }
    per_sample.push_back(lp);
  }
  Tensor all = tx::stack(per_sample, 0);  // S x batch
  Tensor mix = tx::sub(tx::logsumexp(all, 0),
                       Tensor::scalar(std::log(static_cast<float>(s))));
  return tx::sum(mix);
}

void Likelihood::record_predictive_quality(const Tensor& /*stacked*/,
                                           const Tensor& /*aggregated*/,
                                           const Tensor* /*targets*/) const {}

// ---- Bernoulli --------------------------------------------------------------

nd::DistPtr Bernoulli::predictive_distribution(const Tensor& logits) const {
  return std::make_shared<nd::Bernoulli>(logits);
}

Tensor Bernoulli::aggregate_predictions(const Tensor& stacked) const {
  return tx::mean(tx::sigmoid(stacked), {0});
}

Tensor Bernoulli::log_predictive(const Tensor& stacked,
                                 const Tensor& targets) const {
  Tensor probs = tx::clamp(aggregate_predictions(stacked), 1e-6f, 1.0f - 1e-6f);
  Tensor lp = tx::add(tx::mul(targets, tx::log(probs)),
                      tx::mul(1.0f - targets, tx::log(1.0f - probs)));
  return tx::sum(lp);
}

Tensor Bernoulli::error(const Tensor& aggregated, const Tensor& targets) const {
  // aggregated holds probabilities; threshold at 0.5.
  tx::NoGradGuard ng;
  Tensor wrong = tx::zeros(targets.shape());
  for (std::int64_t i = 0; i < targets.numel(); ++i) {
    const float pred = aggregated.at(i) >= 0.5f ? 1.0f : 0.0f;
    wrong.at(i) = pred != targets.at(i) ? 1.0f : 0.0f;
  }
  return tx::mean(wrong);
}

// ---- Categorical ------------------------------------------------------------

nd::DistPtr Categorical::predictive_distribution(const Tensor& logits) const {
  return std::make_shared<nd::Categorical>(logits);
}

Tensor Categorical::aggregate_predictions(const Tensor& stacked) const {
  return tx::mean(tx::softmax(stacked, -1), {0});
}

Tensor Categorical::log_predictive(const Tensor& stacked,
                                   const Tensor& targets) const {
  Tensor probs = tx::clamp(aggregate_predictions(stacked), 1e-8f, 1.0f);
  return tx::sum(tx::gather_last(tx::log(probs), targets));
}

Tensor Categorical::error(const Tensor& aggregated, const Tensor& targets) const {
  tx::NoGradGuard ng;
  Tensor picks = tx::argmax(aggregated, -1);
  Tensor wrong = tx::zeros(targets.shape());
  for (std::int64_t i = 0; i < targets.numel(); ++i) {
    wrong.at(i) = picks.at(i) != targets.at(i) ? 1.0f : 0.0f;
  }
  return tx::mean(wrong);
}

void Categorical::record_predictive_quality(const Tensor& stacked,
                                            const Tensor& aggregated,
                                            const Tensor* targets) const {
  tx::metrics::pq_observe_sample_stack(stacked, aggregated);
  if (targets != nullptr) {
    tx::metrics::pq_observe_labeled(aggregated, *targets);
  }
}

// ---- HomoskedasticGaussian --------------------------------------------------

HomoskedasticGaussian::HomoskedasticGaussian(std::int64_t dataset_size,
                                             float scale, std::string name)
    : Likelihood(dataset_size, std::move(name)), fixed_scale_(scale) {
  TX_CHECK(scale > 0.0f, "HomoskedasticGaussian: scale must be > 0");
}

HomoskedasticGaussian::HomoskedasticGaussian(std::int64_t dataset_size,
                                             nd::DistPtr scale_prior,
                                             std::string name)
    : Likelihood(dataset_size, std::move(name)),
      scale_prior_(std::move(scale_prior)),
      scale_site_(name_ + ".scale") {
  TX_CHECK(scale_prior_ != nullptr, "HomoskedasticGaussian: null scale prior");
}

nd::DistPtr HomoskedasticGaussian::predictive_distribution(
    const Tensor& mean) const {
  Tensor scale = has_latent_scale() && last_scale_sample_.defined()
                     ? tx::broadcast_to(last_scale_sample_, mean.shape())
                     : tx::full(mean.shape(), fixed_scale_);
  return std::make_shared<nd::Normal>(mean, scale);
}

Tensor HomoskedasticGaussian::data_program(const Tensor& predictions,
                                           const Tensor& obs) {
  if (has_latent_scale()) {
    // The latent scale is sampled once, outside the data-scaling context.
    last_scale_sample_ = tx::ppl::sample(scale_site_, scale_prior_);
  }
  return Likelihood::data_program(predictions, obs);
}

Tensor HomoskedasticGaussian::aggregate_predictions(const Tensor& stacked) const {
  return tx::mean(stacked, {0});
}

Tensor HomoskedasticGaussian::log_predictive(const Tensor& stacked,
                                             const Tensor& targets) const {
  return Likelihood::log_predictive(stacked, targets);
}

Tensor HomoskedasticGaussian::error(const Tensor& aggregated,
                                    const Tensor& targets) const {
  return tx::mean(tx::square(tx::sub(aggregated, targets)));
}

Tensor HomoskedasticGaussian::predictive_std(const Tensor& stacked) const {
  Tensor m = tx::mean(stacked, {0}, /*keepdim=*/true);
  Tensor var = tx::mean(tx::square(tx::sub(stacked, m)), {0});
  const float noise = has_latent_scale() && last_scale_sample_.defined()
                          ? last_scale_sample_.item()
                          : fixed_scale_;
  return tx::sqrt(tx::add(var, Tensor::scalar(noise * noise)));
}

// ---- HeteroskedasticGaussian -------------------------------------------------

std::pair<Tensor, Tensor> HeteroskedasticGaussian::split(
    const Tensor& predictions) {
  const std::int64_t d2 = predictions.dim(-1);
  TX_CHECK(d2 % 2 == 0,
           "HeteroskedasticGaussian: last dim must be even (mean | raw scale)");
  Tensor mean = tx::slice(predictions, -1, 0, d2 / 2);
  Tensor scale = tx::add(tx::softplus(tx::slice(predictions, -1, d2 / 2, d2)),
                         Tensor::scalar(1e-4f));
  return {mean, scale};
}

nd::DistPtr HeteroskedasticGaussian::predictive_distribution(
    const Tensor& predictions) const {
  auto [mean, scale] = split(predictions);
  return std::make_shared<nd::Normal>(mean, scale);
}

Tensor HeteroskedasticGaussian::aggregate_predictions(const Tensor& stacked) const {
  // Precision-weighted mean across samples, then re-appended scale.
  const std::int64_t s = stacked.dim(0);
  std::vector<Tensor> means, precisions;
  for (std::int64_t i = 0; i < s; ++i) {
    Tensor pred = tx::reshape(tx::slice(stacked, 0, i, i + 1),
                              Shape(stacked.shape().begin() + 1,
                                    stacked.shape().end()));
    auto [m, sc] = split(pred);
    means.push_back(m);
    precisions.push_back(tx::div(Tensor::scalar(1.0f), tx::square(sc)));
  }
  Tensor prec = tx::stack(precisions, 0);
  Tensor weighted = tx::sum(tx::mul(tx::stack(means, 0), prec), {0});
  Tensor total_prec = tx::sum(prec, {0});
  Tensor mean = tx::div(weighted, total_prec);
  Tensor scale = tx::sqrt(tx::div(Tensor::scalar(static_cast<float>(s)),
                                  total_prec));
  // Re-encode as [mean | raw scale] via softplus inverse approximation: for
  // evaluation we only need mean and scale, so store scale directly in the
  // second half and mark it via exact inverse of the softplus shift.
  Tensor raw = tx::log(tx::sub(tx::exp(tx::sub(scale, Tensor::scalar(1e-4f))),
                               Tensor::scalar(1.0f)));
  return tx::cat({mean, raw}, -1);
}

Tensor HeteroskedasticGaussian::log_predictive(const Tensor& stacked,
                                               const Tensor& targets) const {
  return Likelihood::log_predictive(stacked, targets);
}

Tensor HeteroskedasticGaussian::error(const Tensor& aggregated,
                                      const Tensor& targets) const {
  auto [mean, scale] = split(aggregated);
  (void)scale;
  return tx::mean(tx::square(tx::sub(mean, targets)));
}

// ---- Poisson -----------------------------------------------------------------

nd::DistPtr Poisson::predictive_distribution(const Tensor& predictions) const {
  return std::make_shared<nd::Poisson>(
      tx::add(tx::softplus(predictions), Tensor::scalar(1e-6f)));
}

Tensor Poisson::aggregate_predictions(const Tensor& stacked) const {
  return tx::mean(tx::add(tx::softplus(stacked), Tensor::scalar(1e-6f)), {0});
}

Tensor Poisson::error(const Tensor& aggregated, const Tensor& targets) const {
  return tx::mean(tx::square(tx::sub(aggregated, targets)));
}

}  // namespace tyxe
