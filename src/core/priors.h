// Weight-space priors (tyxe/priors.py). A Prior decides, for each named
// parameter of an arbitrary nn::Module, (a) whether it receives a Bayesian
// treatment at all (hide/expose filtering by module type, module path,
// parameter name, or full site name) and (b) which distribution replaces it.
// Hidden parameters stay deterministic and are fit by maximum likelihood —
// the mechanism behind `hide_module_types={BatchNorm2d}` in the paper's
// ResNet example.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/distributions.h"
#include "nn/module.h"

namespace tyxe {

using tx::Shape;
using tx::Tensor;

/// Filtering spec. Semantics (mirroring TyXe's block-poutine logic):
///  1. a parameter matched by any hide_* list is hidden;
///  2. otherwise, if any expose_* list is non-empty, the parameter is hidden
///     unless it matches one of them (whitelist mode);
///  3. otherwise hide_all decides (default false: everything is Bayesian).
struct HideExpose {
  std::vector<std::string> hide_module_types;    // e.g. "BatchNorm2d"
  std::vector<std::string> expose_module_types;
  std::vector<std::string> hide_modules;         // module paths, e.g. "fc"
  std::vector<std::string> expose_modules;
  std::vector<std::string> hide_parameters;      // local names, e.g. "bias"
  std::vector<std::string> expose_parameters;
  std::vector<std::string> hide;                 // full site names
  std::vector<std::string> expose;
  bool hide_all = false;

  /// module_path: dotted path of the owning module ("" for the root).
  bool hidden(const std::string& site_name, const std::string& module_path,
              const std::string& module_type,
              const std::string& param_name) const;
};

class Prior {
 public:
  explicit Prior(HideExpose filter = {}) : filter_(std::move(filter)) {}
  virtual ~Prior() = default;

  const HideExpose& filter() const { return filter_; }

  /// Distribution replacing the given parameter. `site_name` is the full
  /// site path (e.g. "net.fc.weight"); `shape` the parameter's shape.
  virtual tx::dist::DistPtr prior_dist(const std::string& site_name,
                                       const Shape& shape,
                                       const Tensor& current_value) const = 0;

 private:
  HideExpose filter_;
};

using PriorPtr = std::shared_ptr<Prior>;

/// The same distribution, expanded i.i.d. over every parameter.
class IIDPrior : public Prior {
 public:
  explicit IIDPrior(tx::dist::DistPtr base, HideExpose filter = {})
      : Prior(std::move(filter)), base_(std::move(base)) {}

  tx::dist::DistPtr prior_dist(const std::string& site_name, const Shape& shape,
                               const Tensor& current_value) const override;

 private:
  tx::dist::DistPtr base_;
};

/// Per-layer zero-mean Gaussian whose std follows a fan-based scheme
/// ("radford" | "xavier" | "kaiming"), Sec. 2.1.2 of the paper.
class LayerwiseNormalPrior : public Prior {
 public:
  explicit LayerwiseNormalPrior(std::string method = "radford",
                                HideExpose filter = {})
      : Prior(std::move(filter)), method_(std::move(method)) {}

  tx::dist::DistPtr prior_dist(const std::string& site_name, const Shape& shape,
                               const Tensor& current_value) const override;

 private:
  std::string method_;
};

/// Site-name-keyed distributions — the prior VCL builds from a fitted guide.
class DictPrior : public Prior {
 public:
  explicit DictPrior(std::map<std::string, tx::dist::DistPtr> dists,
                     HideExpose filter = {})
      : Prior(std::move(filter)), dists_(std::move(dists)) {}

  tx::dist::DistPtr prior_dist(const std::string& site_name, const Shape& shape,
                               const Tensor& current_value) const override;

 private:
  std::map<std::string, tx::dist::DistPtr> dists_;
};

/// Arbitrary function from (site, shape, value) to a distribution.
class LambdaPrior : public Prior {
 public:
  using Fn = std::function<tx::dist::DistPtr(const std::string&, const Shape&,
                                             const Tensor&)>;
  explicit LambdaPrior(Fn fn, HideExpose filter = {})
      : Prior(std::move(filter)), fn_(std::move(fn)) {}

  tx::dist::DistPtr prior_dist(const std::string& site_name, const Shape& shape,
                               const Tensor& current_value) const override {
    return fn_(site_name, shape, current_value);
  }

 private:
  Fn fn_;
};

}  // namespace tyxe
