#include "core/poutine.h"

#include "ppl/messenger.h"

namespace tyxe::poutine {

namespace nd = tx::dist;

void ReparameterizationMessenger::postprocess_message(tx::ppl::SampleMsg& msg) {
  if (msg.is_observed || !msg.value.defined()) return;
  auto normal = std::dynamic_pointer_cast<nd::Normal>(msg.distribution);
  if (!normal) return;
  if (normal->loc().shape() != msg.value.shape() ||
      normal->scale().shape() != msg.value.shape()) {
    return;  // broadcasted parameters would complicate the output algebra
  }
  const tx::TensorImpl* key = msg.value.impl().get();
  // First registration wins: under SVI the guide samples first (posterior),
  // then the model replays the same tensor with the prior attached.
  if (sites_.count(key)) return;
  if (sites_.size() > 4096) prune_expired();
  sites_.emplace(key, GaussianRef{msg.value.impl(), std::move(normal)});
}

std::shared_ptr<nd::Normal> ReparameterizationMessenger::lookup(
    const Tensor& t) const {
  if (!t.defined()) return nullptr;
  auto it = sites_.find(t.impl().get());
  if (it == sites_.end()) return nullptr;
  // Guard against allocator address reuse after the original tensor died.
  auto alive = it->second.value.lock();
  if (!alive || alive.get() != t.impl().get()) return nullptr;
  return it->second.distribution;
}

void ReparameterizationMessenger::prune_expired() {
  for (auto it = sites_.begin(); it != sites_.end();) {
    if (it->second.value.expired()) {
      it = sites_.erase(it);
    } else {
      ++it;
    }
  }
}

Tensor ReparameterizationMessenger::linear(const Tensor& x,
                                           const Tensor& weight,
                                           const Tensor& bias) {
  auto w = lookup(weight);
  if (!w) return Tensor();
  auto b = lookup(bias);
  return reparameterize_linear(x, *w, bias, b.get());
}

Tensor ReparameterizationMessenger::conv2d(const Tensor& x,
                                           const Tensor& weight,
                                           const Tensor& bias,
                                           std::int64_t stride,
                                           std::int64_t padding) {
  auto w = lookup(weight);
  if (!w) return Tensor();
  auto b = lookup(bias);
  return reparameterize_conv2d(x, *w, bias, b.get(), stride, padding);
}

// ---- local reparameterization -----------------------------------------------

Tensor LocalReparameterizationMessenger::reparameterize_linear(
    const Tensor& x, const nd::Normal& w, const Tensor& bias,
    const nd::Normal* b) {
  // Mean path: deterministic bias (if any) enters the mean only.
  Tensor mean_bias = b ? b->loc() : bias;
  Tensor out_loc = tx::linear(x, w.loc(), mean_bias);
  Tensor out_var = tx::linear(tx::square(x), tx::square(w.scale()),
                              b ? tx::square(b->scale()) : Tensor());
  Tensor out_std = tx::sqrt(tx::add(out_var, Tensor::scalar(1e-10f)));
  Tensor eps = tx::randn(out_loc.shape(), tx::ppl::current_generator());
  return tx::add(out_loc, tx::mul(out_std, eps));
}

Tensor LocalReparameterizationMessenger::reparameterize_conv2d(
    const Tensor& x, const nd::Normal& w, const Tensor& bias,
    const nd::Normal* b, std::int64_t stride, std::int64_t padding) {
  Tensor mean_bias = b ? b->loc() : bias;
  Tensor out_loc = tx::conv2d(x, w.loc(), mean_bias, stride, padding);
  Tensor out_var = tx::conv2d(tx::square(x), tx::square(w.scale()),
                              b ? tx::square(b->scale()) : Tensor(), stride,
                              padding);
  Tensor out_std = tx::sqrt(tx::add(out_var, Tensor::scalar(1e-10f)));
  Tensor eps = tx::randn(out_loc.shape(), tx::ppl::current_generator());
  return tx::add(out_loc, tx::mul(out_std, eps));
}

// ---- flipout -----------------------------------------------------------------

Tensor FlipoutMessenger::reparameterize_linear(const Tensor& x,
                                               const nd::Normal& w,
                                               const Tensor& bias,
                                               const nd::Normal* b) {
  Tensor mean_bias = b ? b->loc() : bias;
  Tensor x2 = x.rank() == 2 ? x : tx::reshape(x, {-1, x.dim(-1)});
  const std::int64_t rows = x2.dim(0);
  Tensor out_mean = tx::linear(x2, w.loc(), mean_bias);
  // Shared perturbation, per-example sign decorrelation.
  Tensor delta = tx::mul(w.scale(),
      tx::randn(w.scale().shape(), tx::ppl::current_generator()));
  Tensor r_in = tx::rand_sign({rows, x2.dim(1)}, tx::ppl::current_generator());
  Tensor r_out = tx::rand_sign({rows, w.loc().dim(0)}, tx::ppl::current_generator());
  Tensor perturb = tx::mul(tx::linear(tx::mul(x2, r_in), delta, Tensor()), r_out);
  Tensor out = tx::add(out_mean, perturb);
  if (b) {
    Tensor b_delta = tx::mul(b->scale(),
        tx::randn(b->scale().shape(), tx::ppl::current_generator()));
    out = tx::add(out, tx::mul(b_delta, r_out));
  }
  if (x.rank() != 2) {
    tx::Shape shape(x.shape().begin(), x.shape().end() - 1);
    shape.push_back(w.loc().dim(0));
    out = tx::reshape(out, shape);
  }
  return out;
}

Tensor FlipoutMessenger::reparameterize_conv2d(const Tensor& x,
                                               const nd::Normal& w,
                                               const Tensor& bias,
                                               const nd::Normal* b,
                                               std::int64_t stride,
                                               std::int64_t padding) {
  Tensor mean_bias = b ? b->loc() : bias;
  Tensor out_mean = tx::conv2d(x, w.loc(), mean_bias, stride, padding);
  Tensor delta = tx::mul(w.scale(),
      tx::randn(w.scale().shape(), tx::ppl::current_generator()));
  const std::int64_t n = x.dim(0);
  Tensor r_in = tx::rand_sign({n, x.dim(1), 1, 1}, tx::ppl::current_generator());
  Tensor r_out = tx::rand_sign({n, w.loc().dim(0), 1, 1}, tx::ppl::current_generator());
  Tensor perturb = tx::mul(
      tx::conv2d(tx::mul(x, r_in), delta, Tensor(), stride, padding), r_out);
  Tensor out = tx::add(out_mean, perturb);
  if (b) {
    Tensor b_delta = tx::mul(b->scale(),
        tx::randn(b->scale().shape(), tx::ppl::current_generator()));
    out = tx::add(out, tx::mul(tx::reshape(b_delta, {1, -1, 1, 1}), r_out));
  }
  return out;
}

}  // namespace tyxe::poutine
