#include "core/priors.h"

#include <algorithm>

#include "nn/init.h"

namespace tyxe {

namespace {

bool contains(const std::vector<std::string>& xs, const std::string& v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

}  // namespace

bool HideExpose::hidden(const std::string& site_name,
                        const std::string& module_path,
                        const std::string& module_type,
                        const std::string& param_name) const {
  if (contains(hide, site_name) || contains(hide_modules, module_path) ||
      contains(hide_module_types, module_type) ||
      contains(hide_parameters, param_name)) {
    return true;
  }
  const bool whitelist = !expose.empty() || !expose_modules.empty() ||
                         !expose_module_types.empty() ||
                         !expose_parameters.empty();
  if (whitelist) {
    return !(contains(expose, site_name) ||
             contains(expose_modules, module_path) ||
             contains(expose_module_types, module_type) ||
             contains(expose_parameters, param_name));
  }
  return hide_all;
}

tx::dist::DistPtr IIDPrior::prior_dist(const std::string&, const Shape& shape,
                                       const Tensor&) const {
  return base_->expand(shape);
}

tx::dist::DistPtr LayerwiseNormalPrior::prior_dist(const std::string&,
                                                   const Shape& shape,
                                                   const Tensor&) const {
  const float std = tx::nn::init::init_std(method_, shape);
  return std::make_shared<tx::dist::Normal>(tx::zeros(shape),
                                            tx::full(shape, std));
}

tx::dist::DistPtr DictPrior::prior_dist(const std::string& site_name,
                                        const Shape& shape,
                                        const Tensor&) const {
  auto it = dists_.find(site_name);
  TX_CHECK(it != dists_.end(), "DictPrior: no distribution for site '",
           site_name, "'");
  TX_CHECK(it->second->shape() == shape, "DictPrior: shape mismatch for '",
           site_name, "'");
  return it->second;
}

}  // namespace tyxe
