// BNN-specific effect handlers (tyxe/poutine): local reparameterization
// (Kingma et al., 2015) and flipout (Wen et al., 2018) as program
// transformations, plus the selective_mask handler from the GNN example.
//
// A ReparameterizationMessenger participates in BOTH effect systems:
//  * as a ppl::Messenger it watches sample statements and records which
//    tensors were drawn from factorized Gaussians (sample -> distribution
//    map, keyed by tensor identity);
//  * as an nn::functional::LinearOpInterceptor it rewrites linear/conv ops
//    whose weights it recognizes, replacing weight-sample arithmetic with a
//    draw from the induced output distribution.
// Model code is untouched — switching the trick on is one RAII scope around
// fit/predict, exactly the `with tyxe.poutine.local_reparameterization()`
// usage in the paper's Listing 2.
#pragma once

#include <memory>
#include <unordered_map>

#include "dist/normal.h"
#include "nn/functional.h"
#include "ppl/ppl.h"

namespace tyxe::poutine {

using tx::Tensor;

class ReparameterizationMessenger : public tx::ppl::Messenger,
                                    public tx::nn::functional::LinearOpInterceptor {
 public:
  /// ppl::Messenger hook: remember sample -> distribution for factorized
  /// Gaussians. The first registration for a value wins, so guide posteriors
  /// (sampled first under SVI) take precedence over the prior seen when the
  /// model replays the same tensor.
  void postprocess_message(tx::ppl::SampleMsg& msg) override;

  /// LinearOpInterceptor hooks: defined result = reparameterized output,
  /// undefined = decline (weight not recognized as factorized Gaussian).
  Tensor linear(const Tensor& x, const Tensor& weight,
                const Tensor& bias) override;
  Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                std::int64_t stride, std::int64_t padding) override;

  std::size_t tracked_sites() const { return sites_.size(); }

 protected:
  struct GaussianRef {
    std::weak_ptr<tx::TensorImpl> value;  // expiry guard for pointer reuse
    std::shared_ptr<tx::dist::Normal> distribution;
  };

  /// Distribution a tensor was sampled from, or null.
  std::shared_ptr<tx::dist::Normal> lookup(const Tensor& t) const;

  virtual Tensor reparameterize_linear(const Tensor& x,
                                       const tx::dist::Normal& w,
                                       const Tensor& bias,
                                       const tx::dist::Normal* b) = 0;
  virtual Tensor reparameterize_conv2d(const Tensor& x,
                                       const tx::dist::Normal& w,
                                       const Tensor& bias,
                                       const tx::dist::Normal* b,
                                       std::int64_t stride,
                                       std::int64_t padding) = 0;

 private:
  void prune_expired();

  std::unordered_map<const tx::TensorImpl*, GaussianRef> sites_;
};

/// Samples layer outputs from the Gaussian induced by a factorized-Gaussian
/// weight posterior: out ~ N(x W_mu^T + b_mu, x^2 W_sigma^2^T + b_sigma^2).
class LocalReparameterizationMessenger : public ReparameterizationMessenger {
 protected:
  Tensor reparameterize_linear(const Tensor& x, const tx::dist::Normal& w,
                               const Tensor& bias,
                               const tx::dist::Normal* b) override;
  Tensor reparameterize_conv2d(const Tensor& x, const tx::dist::Normal& w,
                               const Tensor& bias, const tx::dist::Normal* b,
                               std::int64_t stride,
                               std::int64_t padding) override;
};

/// Decorrelates per-example weight perturbations with rank-one sign flips:
/// out = x W_mu^T + ((x ∘ r_in) ΔW^T) ∘ r_out with ΔW = sigma ∘ eps shared
/// across the mini-batch. Valid for symmetric zero-centred perturbations.
class FlipoutMessenger : public ReparameterizationMessenger {
 protected:
  Tensor reparameterize_linear(const Tensor& x, const tx::dist::Normal& w,
                               const Tensor& bias,
                               const tx::dist::Normal* b) override;
  Tensor reparameterize_conv2d(const Tensor& x, const tx::dist::Normal& w,
                               const Tensor& bias, const tx::dist::Normal* b,
                               std::int64_t stride,
                               std::int64_t padding) override;
};

/// RAII scope enabling a reparameterization messenger on both effect stacks.
/// Usage:  { tyxe::poutine::LocalReparameterization lr;  bnn.fit(...); }
template <typename MessengerT>
class ReparameterizationScope {
 public:
  ReparameterizationScope() : ppl_scope_(messenger_) {
    tx::nn::functional::push_interceptor(&messenger_);
  }
  ~ReparameterizationScope() {
    tx::nn::functional::pop_interceptor(&messenger_);
  }
  ReparameterizationScope(const ReparameterizationScope&) = delete;
  ReparameterizationScope& operator=(const ReparameterizationScope&) = delete;

  MessengerT& messenger() { return messenger_; }

 private:
  MessengerT messenger_;
  tx::ppl::HandlerScope ppl_scope_;
};

using LocalReparameterization =
    ReparameterizationScope<LocalReparameterizationMessenger>;
using Flipout = ReparameterizationScope<FlipoutMessenger>;

/// selective_mask (paper Listing 4): applies an elementwise likelihood mask
/// to the exposed sites only — semi-supervised losses in one line.
class SelectiveMask {
 public:
  SelectiveMask(Tensor mask, std::vector<std::string> expose)
      : messenger_(std::move(mask), std::move(expose)), scope_(messenger_) {}

 private:
  tx::ppl::MaskMessenger messenger_;
  tx::ppl::HandlerScope scope_;
};

}  // namespace tyxe::poutine
