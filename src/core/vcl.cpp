#include "core/vcl.h"

namespace tyxe::util {

std::vector<std::string> pyro_sample_sites(const BNNBase& bnn) {
  return bnn.site_names();
}

void update_prior_to_posterior(GuidedBNN& bnn) {
  const std::vector<std::string> sites = pyro_sample_sites(bnn);
  auto posteriors = bnn.net_guide().get_detached_distributions(sites);
  bnn.update_prior(std::make_shared<DictPrior>(std::move(posteriors)));
}

}  // namespace tyxe::util
