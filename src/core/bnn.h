// Top-level BNN classes (tyxe/bnn.py). The class hierarchy follows the
// paper's Appendix C:
//
//   BNNBase (_BNN)        — turns an nn::Module into a probabilistic model by
//                           replacing its (non-hidden) parameters with sample
//                           sites named "<name>.<param path>".
//   GuidedBNN             — adds an automatically constructed guide and a
//                           forward pass under a posterior sample.
//   PytorchBNN            — drop-in nn::Module replacement: stochastic
//                           forward plus a cached KL term, trained with an
//                           ordinary optimizer (the NeRF workflow).
//   SupervisedBNN         — adds a Likelihood; defines predict/evaluate.
//   VariationalBNN        — SVI-based fit().
//   MCMC_BNN              — HMC/NUTS-based fit() over the full dataset.
#pragma once

#include <functional>
#include <optional>

#include "core/guides.h"
#include "core/likelihoods.h"
#include "core/priors.h"
#include "infer/infer.h"
#include "nn/nn.h"
#include "resil/resil.h"

namespace tyxe {

using tx::Shape;
using tx::Tensor;

/// One network parameter converted to a random variable.
struct BayesSite {
  std::string name;       // full site name, e.g. "net.fc.weight"
  tx::nn::ParamSlot slot; // where the sampled value is written
  tx::dist::DistPtr prior;
  Tensor initial_value;   // the deterministic initialization (pretrained init)
};

class BNNBase {
 public:
  /// Applies `prior` to every parameter of `net`. Hidden parameters stay
  /// deterministic leaves and are registered in the BNN's param store (they
  /// are fit to maximize the likelihood, like BatchNorm in the paper).
  BNNBase(tx::nn::ModulePtr net, PriorPtr prior, std::string name = "net");
  virtual ~BNNBase() = default;

  tx::nn::Module& net() { return *net_; }
  tx::ppl::ParamStore& param_store() { return store_; }
  const std::vector<BayesSite>& sites() const { return sites_; }
  /// Names of all sample sites (tyxe.util.pyro_sample_sites).
  std::vector<std::string> site_names() const;

  /// Forward pass with fresh prior samples in the weight slots. When run
  /// under a ReplayMessenger (as in SVI) the values come from the guide.
  Tensor sampled_forward(const std::vector<Tensor>& inputs);
  Tensor sampled_forward(const Tensor& x) {
    return sampled_forward(std::vector<Tensor>{x});
  }

  /// Replace the prior of every Bayesian site (variational continual
  /// learning: pass a DictPrior built from the guide's detached posteriors).
  void update_prior(const PriorPtr& new_prior);

  /// The sample-sites-only program (no likelihood, no forward): used to
  /// build guides without needing data.
  void sample_sites_program();

  void train(bool mode = true) { net_->train(mode); }
  void eval() { net_->eval(); }

 protected:
  tx::nn::ModulePtr net_;
  PriorPtr prior_;
  std::string name_;
  std::vector<BayesSite> sites_;
  tx::ppl::ParamStore store_;
};

class GuidedBNN : public BNNBase {
 public:
  GuidedBNN(tx::nn::ModulePtr net, PriorPtr prior,
            guides::GuideFactory guide_factory, std::string name = "net");

  guides::Guide& net_guide() { return *guide_; }
  guides::GuidePtr net_guide_ptr() { return guide_; }

  /// Forward pass with weights drawn from the (current) guide posterior.
  Tensor guided_forward(const std::vector<Tensor>& inputs);
  Tensor guided_forward(const Tensor& x) {
    return guided_forward(std::vector<Tensor>{x});
  }

 protected:
  guides::GuidePtr guide_;
};

/// Low-level drop-in module replacement (Sec. 4.2). forward() is stochastic
/// (one posterior sample per call) and refreshes cached_kl_loss(); training
/// happens with a plain optimizer over pytorch_parameters().
class PytorchBNN : public GuidedBNN {
 public:
  PytorchBNN(tx::nn::ModulePtr net, PriorPtr prior,
             guides::GuideFactory guide_factory, std::string name = "net");

  /// Stochastic forward; updates the cached KL estimate.
  Tensor forward(const std::vector<Tensor>& inputs);
  Tensor forward(const Tensor& x) { return forward(std::vector<Tensor>{x}); }
  Tensor operator()(const Tensor& x) { return forward(x); }

  /// KL(q || p) for the most recent forward pass — analytic per site when
  /// both distributions are Normal, otherwise the single-sample estimate.
  Tensor cached_kl_loss() const;

  /// Collect every optimizable parameter; requires one tracing forward pass
  /// because guide parameters initialize lazily (paper Listing 5, line 2).
  std::vector<Tensor> pytorch_parameters(const std::vector<Tensor>& dummy_inputs);

 private:
  Tensor cached_kl_;
};

/// Everything shared by supervised BNNs: likelihood plumbing and the
/// predict/evaluate API.
class SupervisedBNN : public GuidedBNN {
 public:
  SupervisedBNN(tx::nn::ModulePtr net, PriorPtr prior, LikelihoodPtr likelihood,
                guides::GuideFactory guide_factory, std::string name = "net");

  Likelihood& likelihood() { return *likelihood_; }

  /// The full model program for one batch.
  void model(const std::vector<Tensor>& inputs, const Tensor& targets);

  /// Posterior-predictive sampling: runs num_predictions guided forwards.
  /// aggregate=true combines them via the likelihood (mean probabilities /
  /// mean prediction); aggregate=false returns them stacked along dim 0.
  virtual Tensor predict(const std::vector<Tensor>& inputs,
                         int num_predictions = 1, bool aggregate = true) = 0;
  Tensor predict(const Tensor& x, int num_predictions = 1,
                 bool aggregate = true) {
    return predict(std::vector<Tensor>{x}, num_predictions, aggregate);
  }

  /// (total predictive log-likelihood, error measure) on labelled data.
  std::pair<double, double> evaluate(const std::vector<Tensor>& inputs,
                                     const Tensor& targets,
                                     int num_predictions = 1);

 protected:
  LikelihoodPtr likelihood_;
};

/// A mini-batch: (network inputs, likelihood targets).
using Batch = std::pair<std::vector<Tensor>, Tensor>;
/// Callback invoked after each epoch with (epoch index, mean ELBO); return
/// true to stop training early.
using FitCallback = std::function<bool(int, double)>;

class VariationalBNN : public SupervisedBNN {
 public:
  /// `likelihood_guide_factory` is optional and only needed when the
  /// likelihood itself has latent variables (e.g. an unknown Gaussian scale).
  VariationalBNN(tx::nn::ModulePtr net, PriorPtr prior,
                 LikelihoodPtr likelihood, guides::GuideFactory guide_factory,
                 guides::GuideFactory likelihood_guide_factory = nullptr,
                 std::string name = "net");

  /// scikit-learn-style fit: `epochs` passes over the batches returned by
  /// `data()`, optimizing the ELBO. Returns the last epoch's mean ELBO.
  double fit(const std::function<std::vector<Batch>()>& data,
             std::shared_ptr<tx::infer::Optimizer> optimizer, int epochs,
             const FitCallback& callback = nullptr);
  /// Convenience overload for a fixed batch list.
  double fit(const std::vector<Batch>& data,
             std::shared_ptr<tx::infer::Optimizer> optimizer, int epochs,
             const FitCallback& callback = nullptr);

  /// Fault-tolerant fit: epochs * data.size() SVI steps under tx::resil —
  /// periodic tx.ckpt.v1 checkpoints, resume from policy.checkpoint_path,
  /// and rollback + lr decay on non-finite loss/gradients. The batch for
  /// each step is chosen from the SVI step counter, so a resumed run replays
  /// the identical schedule; with set_generator() also set, an interrupted
  /// and resumed run is bitwise-identical to an uninterrupted one (see
  /// docs/robustness.md).
  tx::resil::FitReport fit(const std::vector<Batch>& data,
                           std::shared_ptr<tx::infer::Optimizer> optimizer,
                           int epochs, const tx::resil::RetryPolicy& policy);

  Tensor predict(const std::vector<Tensor>& inputs, int num_predictions = 1,
                 bool aggregate = true) override;
  using SupervisedBNN::predict;

  /// Swap the ELBO estimator (default TraceELBO with one particle).
  void set_elbo(std::shared_ptr<tx::infer::ELBO> elbo) { elbo_ = std::move(elbo); }

  /// Per-SVI-step instrumentation (loss / grad-norm / wall-time) forwarded
  /// to the SVI driver that fit() builds.
  void set_step_callback(tx::infer::StepCallback cb) {
    step_callback_ = std::move(cb);
  }
  /// Seed control: with a generator set, every sample drawn during fit()
  /// comes from it, so instrumented runs replay exactly.
  void set_generator(tx::Generator* gen) { generator_ = gen; }

  /// Full guide program (net guide + likelihood guide if present).
  void guide_program();

 private:
  guides::GuidePtr likelihood_guide_;
  std::shared_ptr<tx::infer::ELBO> elbo_;
  tx::infer::StepCallback step_callback_;
  tx::Generator* generator_ = nullptr;
};

/// MCMC-based BNN with the same predict interface; fit runs the kernel on
/// the full dataset (paper Sec. 2.1.3).
class MCMC_BNN : public BNNBase {
 public:
  using KernelFactory =
      std::function<std::shared_ptr<tx::infer::MCMCKernel>()>;

  MCMC_BNN(tx::nn::ModulePtr net, PriorPtr prior, LikelihoodPtr likelihood,
           KernelFactory kernel_factory, std::string name = "net");

  Likelihood& likelihood() { return *likelihood_; }

  /// Run the chain on the full dataset. `progress` (if set) fires after
  /// every warmup/sampling transition with accept-prob and divergences.
  void fit(const std::vector<Tensor>& inputs, const Tensor& targets,
           int num_samples, int warmup_steps, tx::Generator* gen = nullptr,
           const tx::infer::ProgressCallback& progress = nullptr);

  /// Predictions using stored posterior samples (cycled when
  /// num_predictions exceeds the stored draws).
  Tensor predict(const std::vector<Tensor>& inputs, int num_predictions = 1,
                 bool aggregate = true);
  Tensor predict(const Tensor& x, int num_predictions = 1,
                 bool aggregate = true) {
    return predict(std::vector<Tensor>{x}, num_predictions, aggregate);
  }

  std::pair<double, double> evaluate(const std::vector<Tensor>& inputs,
                                     const Tensor& targets,
                                     int num_predictions = 1);

  const tx::infer::MCMC& mcmc() const;

 private:
  LikelihoodPtr likelihood_;
  KernelFactory kernel_factory_;
  std::unique_ptr<tx::infer::MCMC> mcmc_;
};

}  // namespace tyxe
