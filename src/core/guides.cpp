#include "core/guides.h"

#include <cmath>

#include "nn/init.h"

namespace tyxe::guides {

using tx::Tensor;

InitLocFn init_to_normal_fan(const std::string& method, tx::Generator* gen) {
  return [method, gen](const tx::ppl::SiteRecord& site) {
    const tx::Shape& shape = site.distribution->shape();
    if (shape.size() <= 1) return tx::zeros(shape);  // bias-like sites
    Tensor t = tx::zeros(shape);
    tx::nn::init::normal_(t, 0.0f, tx::nn::init::init_std(method, shape), gen);
    return t;
  };
}

std::map<std::string, Tensor> pretrained_dict(tx::nn::Module& net,
                                              const std::string& prefix) {
  std::map<std::string, Tensor> out;
  for (const auto& slot : net.named_parameter_slots()) {
    out.emplace(prefix + "." + slot.name, slot.slot->detach());
  }
  return out;
}

GuideFactory auto_normal_factory(AutoNormalConfig config, std::string prefix) {
  return [config, prefix](const tx::infer::Program& model,
                          tx::ppl::ParamStore* store) -> GuidePtr {
    return std::make_shared<AutoNormal>(model, config, prefix, store);
  };
}

GuideFactory auto_delta_factory(InitLocFn init_loc, std::string prefix) {
  return [init_loc, prefix](const tx::infer::Program& model,
                            tx::ppl::ParamStore* store) -> GuidePtr {
    return std::make_shared<AutoDelta>(model, init_loc, prefix, store);
  };
}

GuideFactory auto_lowrank_factory(std::int64_t rank, float init_scale,
                                  InitLocFn init_loc, std::string prefix) {
  return [rank, init_scale, init_loc, prefix](
             const tx::infer::Program& model,
             tx::ppl::ParamStore* store) -> GuidePtr {
    return std::make_shared<AutoLowRankMultivariateNormal>(
        model, rank, init_scale, init_loc, prefix, store);
  };
}

GuideFactory lognormal_scale_factory(float init_scale, std::string prefix) {
  return [init_scale, prefix](const tx::infer::Program& model,
                              tx::ppl::ParamStore* store) -> GuidePtr {
    return std::make_shared<LogNormalScaleGuide>(model, init_scale, prefix,
                                                 store);
  };
}

LogNormalScaleGuide::LogNormalScaleGuide(tx::infer::Program model,
                                         float init_scale, std::string prefix,
                                         tx::ppl::ParamStore* store)
    : model_(std::move(model)),
      prefix_(std::move(prefix)),
      store_(store ? store : &tx::ppl::param_store()),
      init_scale_(init_scale) {}

void LogNormalScaleGuide::operator()() {
  if (!discovered_) {
    tx::NoGradGuard ng;
    tx::ppl::BlockMessenger block_all([](const tx::ppl::SampleMsg&) { return true; });
    tx::ppl::HandlerScope scope(block_all);
    tx::ppl::Trace tr = tx::ppl::trace_fn(model_);
    for (const auto& site : tr.sites()) {
      if (!site.is_observed) sites_.push_back(site);
    }
    discovered_ = true;
  }
  for (const auto& site : sites_) {
    Tensor loc = store_->get_or_create(prefix_ + ".loc." + site.name, [&] {
      // Initialize around log of the prior mean.
      Tensor m = site.distribution->mean().detach();
      Tensor out = tx::zeros(m.shape());
      for (std::int64_t i = 0; i < m.numel(); ++i) {
        out.at(i) = std::log(std::max(m.at(i), 1e-6f));
      }
      return out;
    });
    Tensor scale_u = store_->get_or_create(
        prefix_ + ".scale_unconstrained." + site.name, [&] {
          return tx::full(site.distribution->shape(),
                          tx::infer::softplus_inverse(init_scale_));
        });
    tx::ppl::sample(site.name, std::make_shared<tx::dist::LogNormal>(
                                   loc, tx::softplus(scale_u)));
  }
}

std::map<std::string, tx::dist::DistPtr>
LogNormalScaleGuide::get_detached_distributions(
    const std::vector<std::string>& sites) {
  std::map<std::string, tx::dist::DistPtr> out;
  for (const auto& name : sites) {
    Tensor loc = store_->get(prefix_ + ".loc." + name).detach();
    Tensor scale =
        tx::softplus(store_->get(prefix_ + ".scale_unconstrained." + name))
            .detach();
    out.emplace(name, std::make_shared<tx::dist::LogNormal>(loc, scale));
  }
  return out;
}

}  // namespace tyxe::guides
