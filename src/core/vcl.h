// Variational continual learning utilities (paper Sec. 5, Listing 6):
// collect the BNN's sample sites, extract the guide's detached posteriors,
// and install them as the new prior before fitting the next task.
#pragma once

#include "core/bnn.h"

namespace tyxe::util {

/// tyxe.util.pyro_sample_sites: names of all weight sample sites.
std::vector<std::string> pyro_sample_sites(const BNNBase& bnn);

/// The three-line VCL prior update from Listing 6 in one call:
///   sites      = pyro_sample_sites(bnn)
///   posteriors = bnn.net_guide.get_detached_distributions(sites)
///   bnn.update_prior(DictPrior(posteriors))
void update_prior_to_posterior(GuidedBNN& bnn);

}  // namespace tyxe::util
