// Umbrella header for the TyXe core library — the public API of this
// reproduction. Include this to get BNN classes, priors, likelihoods, guides,
// effect handlers and the VCL utilities.
#pragma once

#include "core/bnn.h"
#include "core/guides.h"
#include "core/likelihoods.h"
#include "core/poutine.h"
#include "core/priors.h"
#include "core/vcl.h"
