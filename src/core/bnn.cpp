#include "core/bnn.h"

#include <algorithm>

#include "dist/kl.h"
#include "obs/pq.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "resil/guard.h"

namespace tyxe {

namespace {

/// Posterior-predictive liveness: a predict-only workload (e.g. a serving
/// loop) must keep /healthz fresh the same way SVI steps and MCMC
/// transitions do.
void touch_predict_heartbeat() {
  if (!tx::obs::enabled()) return;
  tx::obs::registry()
      .gauge("obs.heartbeat_seconds")
      .set(tx::obs::now_seconds());
  if (tx::guard::watchdog_interested()) {
    tx::guard::note_liveness(tx::obs::current_span_path());
  }
}

/// Draw up to `num_predictions` posterior samples via `draw_fn`, degrading
/// gracefully when the installed guard budget expires: the loop stops at the
/// sample boundary (or when a mid-sample hook threw guard::Cancelled) and
/// the prefix of completed draws is what gets aggregated. Sample 0 always
/// runs — an empty prediction is not a degradation, so a budget that is
/// already spent before the first draw only truncates to k = 1 (a hard
/// cancel mid-sample-0 still propagates). Publishes the DegradedResult for
/// the caller to pick up via guard::last_predict_status().
template <typename DrawFn>
std::vector<tx::Tensor> draw_guarded(int num_predictions, DrawFn&& draw_fn) {
  std::vector<tx::Tensor> draws;
  draws.reserve(static_cast<std::size_t>(num_predictions));
  const bool guarded = tx::guard::active();
  tx::guard::DegradedResult status;
  status.requested = num_predictions;
  for (int i = 0; i < num_predictions; ++i) {
    if (guarded && tx::guard::begin_sample("predict.sample") && i > 0) {
      status.degraded = true;
      status.reason = tx::guard::current()->exhausted();
      break;
    }
    try {
      draws.push_back(draw_fn());
    } catch (const tx::guard::Cancelled& c) {
      if (draws.empty()) throw;
      status.degraded = true;
      status.reason = c.reason();
      break;
    }
  }
  if (guarded) {
    status.completed = static_cast<int>(draws.size());
    status.elapsed_seconds = tx::guard::current()->elapsed_seconds();
    tx::guard::set_last_predict_status(status);
    if (status.degraded && tx::obs::enabled()) {
      auto& reg = tx::obs::registry();
      reg.counter("guard.predict.degraded").add(1);
      reg.counter("guard.predict.samples_dropped")
          .add(status.requested - status.completed);
    }
  }
  return draws;
}

/// pq degraded-batch tagging: quality streams must never silently mix a
/// truncated batch into full-quality aggregates.
void tag_degraded_pq_batch() {
  // The active() gate keeps this inert without a budget AND prevents a stale
  // thread-local status (from an earlier guarded predict) from tagging an
  // unguarded batch; every guarded predict republishes its status first.
  if (!tx::obs::pq::enabled() || !tx::guard::active()) return;
  if (tx::guard::last_predict_status().degraded) {
    tx::obs::pq::record_degraded_batch();
  }
}

/// Owner module path of a parameter slot ("" for root-owned parameters).
std::string module_path_of(const tx::nn::ParamSlot& slot) {
  const std::string& full = slot.name;
  if (full.size() > slot.local_name.size()) {
    return full.substr(0, full.size() - slot.local_name.size() - 1);
  }
  return "";
}

}  // namespace

BNNBase::BNNBase(tx::nn::ModulePtr net, PriorPtr prior, std::string name)
    : net_(std::move(net)), prior_(std::move(prior)), name_(std::move(name)) {
  TX_CHECK(net_ != nullptr && prior_ != nullptr, "BNNBase: null net or prior");
  for (const auto& slot : net_->named_parameter_slots()) {
    const std::string site_name = name_ + "." + slot.name;
    const std::string mod_path = module_path_of(slot);
    const std::string mod_type = slot.owner->type_name();
    if (prior_->filter().hidden(site_name, mod_path, mod_type,
                                slot.local_name)) {
      // Deterministic parameter: keep the leaf and let the optimizer see it.
      store_.set(site_name, *slot.slot);
      continue;
    }
    BayesSite site;
    site.name = site_name;
    site.slot = slot;
    site.initial_value = slot.slot->detach();
    site.prior = prior_->prior_dist(site_name, slot.slot->shape(),
                                    site.initial_value);
    TX_CHECK(site.prior->shape() == slot.slot->shape(),
             "prior shape mismatch at site ", site_name);
    sites_.push_back(std::move(site));
  }
}

std::vector<std::string> BNNBase::site_names() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) out.push_back(s.name);
  return out;
}

void BNNBase::sample_sites_program() {
  for (auto& site : sites_) {
    *site.slot.slot = tx::ppl::sample(site.name, site.prior);
  }
}

Tensor BNNBase::sampled_forward(const std::vector<Tensor>& inputs) {
  sample_sites_program();
  return net_->forward(inputs);
}

void BNNBase::update_prior(const PriorPtr& new_prior) {
  TX_CHECK(new_prior != nullptr, "update_prior: null prior");
  for (auto& site : sites_) {
    site.prior = new_prior->prior_dist(site.name, site.slot.slot->shape(),
                                       site.initial_value);
    TX_CHECK(site.prior->shape() == site.slot.slot->shape(),
             "update_prior: shape mismatch at site ", site.name);
  }
  prior_ = new_prior;
}

GuidedBNN::GuidedBNN(tx::nn::ModulePtr net, PriorPtr prior,
                     guides::GuideFactory guide_factory, std::string name)
    : BNNBase(std::move(net), std::move(prior), std::move(name)) {
  TX_CHECK(guide_factory != nullptr, "GuidedBNN: null guide factory");
  guide_ = guide_factory([this] { sample_sites_program(); }, &store_);
  TX_CHECK(guide_ != nullptr, "GuidedBNN: guide factory returned null");
}

Tensor GuidedBNN::guided_forward(const std::vector<Tensor>& inputs) {
  tx::ppl::Trace guide_trace = tx::ppl::trace_fn([this] { (*guide_)(); });
  tx::ppl::ReplayMessenger replay(guide_trace);
  tx::ppl::HandlerScope scope(replay);
  return sampled_forward(inputs);
}

PytorchBNN::PytorchBNN(tx::nn::ModulePtr net, PriorPtr prior,
                       guides::GuideFactory guide_factory, std::string name)
    : GuidedBNN(std::move(net), std::move(prior), std::move(guide_factory),
                std::move(name)) {}

Tensor PytorchBNN::forward(const std::vector<Tensor>& inputs) {
  tx::ppl::Trace guide_trace = tx::ppl::trace_fn([this] { (*guide_)(); });
  // KL(q || p): analytic per site where possible, else the single-sample
  // difference of log-densities at the guide draw.
  Tensor kl = Tensor::scalar(0.0f);
  for (const auto& qsite : guide_trace.sites()) {
    const BayesSite* model_site = nullptr;
    for (const auto& s : sites_) {
      if (s.name == qsite.name) {
        model_site = &s;
        break;
      }
    }
    if (model_site == nullptr) {
      // Guide-only auxiliary site (low-rank joint): -log q contribution.
      kl = tx::add(kl, qsite.log_prob_sum());
      continue;
    }
    if (tx::dist::has_analytic_kl(*qsite.distribution, *model_site->prior)) {
      kl = tx::add(kl, tx::dist::kl_divergence(*qsite.distribution,
                                               *model_site->prior));
    } else {
      kl = tx::add(kl, tx::sub(qsite.log_prob_sum(),
                               model_site->prior->log_prob_sum(qsite.value)));
    }
  }
  cached_kl_ = kl;
  tx::ppl::ReplayMessenger replay(guide_trace);
  tx::ppl::HandlerScope scope(replay);
  return sampled_forward(inputs);
}

Tensor PytorchBNN::cached_kl_loss() const {
  TX_CHECK(cached_kl_.defined(),
           "cached_kl_loss: call forward() at least once first");
  return cached_kl_;
}

std::vector<Tensor> PytorchBNN::pytorch_parameters(
    const std::vector<Tensor>& dummy_inputs) {
  forward(dummy_inputs);  // trigger lazy parameter creation
  std::vector<Tensor> params;
  for (auto& [name, p] : store_.items()) params.push_back(p);
  return params;
}

SupervisedBNN::SupervisedBNN(tx::nn::ModulePtr net, PriorPtr prior,
                             LikelihoodPtr likelihood,
                             guides::GuideFactory guide_factory,
                             std::string name)
    : GuidedBNN(std::move(net), std::move(prior), std::move(guide_factory),
                std::move(name)),
      likelihood_(std::move(likelihood)) {
  TX_CHECK(likelihood_ != nullptr, "SupervisedBNN: null likelihood");
}

void SupervisedBNN::model(const std::vector<Tensor>& inputs,
                          const Tensor& targets) {
  Tensor predictions = sampled_forward(inputs);
  likelihood_->data_program(predictions, targets);
}

std::pair<double, double> SupervisedBNN::evaluate(
    const std::vector<Tensor>& inputs, const Tensor& targets,
    int num_predictions) {
  tx::NoGradGuard ng;
  Tensor stacked = predict(inputs, num_predictions, /*aggregate=*/false);
  const double ll = likelihood_->log_predictive(stacked, targets).item();
  Tensor aggregated = likelihood_->aggregate_predictions(stacked);
  const double err = likelihood_->error(aggregated, targets).item();
  if (tx::obs::pq::enabled()) {
    likelihood_->record_predictive_quality(stacked, aggregated, &targets);
    tag_degraded_pq_batch();
  }
  return {ll, err};
}

VariationalBNN::VariationalBNN(tx::nn::ModulePtr net, PriorPtr prior,
                               LikelihoodPtr likelihood,
                               guides::GuideFactory guide_factory,
                               guides::GuideFactory likelihood_guide_factory,
                               std::string name)
    : SupervisedBNN(std::move(net), std::move(prior), std::move(likelihood),
                    std::move(guide_factory), std::move(name)),
      elbo_(std::make_shared<tx::infer::TraceELBO>(1)) {
  if (likelihood_guide_factory) {
    // The likelihood-only model: run the latent sites of the likelihood by
    // conditioning the data program on a dummy 1-element batch.
    auto* lik = likelihood_.get();
    likelihood_guide_ = likelihood_guide_factory(
        [lik] {
          Tensor dummy = tx::zeros({1});
          tx::ppl::BlockMessenger hide_data =
              tx::ppl::BlockMessenger::hiding({lik->site_name()});
          tx::ppl::HandlerScope scope(hide_data);
          lik->data_program(dummy, dummy);
        },
        &store_);
  }
}

void VariationalBNN::guide_program() {
  (*guide_)();
  if (likelihood_guide_) (*likelihood_guide_)();
}

double VariationalBNN::fit(const std::function<std::vector<Batch>()>& data,
                           std::shared_ptr<tx::infer::Optimizer> optimizer,
                           int epochs, const FitCallback& callback) {
  TX_CHECK(optimizer != nullptr, "fit: null optimizer");
  // One SVI driver for the whole fit; the model program reads the current
  // batch through these pointers so each step scores fresh data while the
  // driver keeps its step counter / instrumentation across epochs.
  const std::vector<Tensor>* cur_inputs = nullptr;
  const Tensor* cur_targets = nullptr;
  tx::infer::SVI svi([&] { model(*cur_inputs, *cur_targets); },
                     [this] { guide_program(); }, std::move(optimizer), elbo_,
                     &store_, generator_);
  if (step_callback_) svi.set_step_callback(step_callback_);
  double mean_elbo = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::int64_t batches = 0;
    for (const auto& [inputs, targets] : data()) {
      cur_inputs = &inputs;
      cur_targets = &targets;
      epoch_loss += svi.step();
      ++batches;
    }
    mean_elbo = -epoch_loss / static_cast<double>(std::max<std::int64_t>(batches, 1));
    if (callback && callback(epoch, mean_elbo)) break;
  }
  return mean_elbo;
}

double VariationalBNN::fit(const std::vector<Batch>& data,
                           std::shared_ptr<tx::infer::Optimizer> optimizer,
                           int epochs, const FitCallback& callback) {
  return fit([&data] { return data; }, std::move(optimizer), epochs, callback);
}

tx::resil::FitReport VariationalBNN::fit(
    const std::vector<Batch>& data,
    std::shared_ptr<tx::infer::Optimizer> optimizer, int epochs,
    const tx::resil::RetryPolicy& policy) {
  TX_CHECK(optimizer != nullptr, "fit: null optimizer");
  TX_CHECK(!data.empty(), "fit: empty batch list");
  // The batch for each step comes from the step counter, not an external
  // loop, so a run resumed at step t scores exactly the batch the original
  // run would have scored at step t.
  tx::infer::SVI* live = nullptr;
  tx::infer::SVI svi(
      [&, live_ptr = &live] {
        tx::infer::SVI& s = **live_ptr;
        const Batch& b = data[static_cast<std::size_t>(
            s.steps_taken() % static_cast<std::int64_t>(data.size()))];
        model(b.first, b.second);
      },
      [this] { guide_program(); }, std::move(optimizer), elbo_, &store_,
      generator_);
  live = &svi;
  if (step_callback_) svi.set_step_callback(step_callback_);
  // Warm the guide before fit_svi can resume: lazy site discovery during the
  // first post-resume step would consume restored-generator draws the
  // original run never made, breaking bitwise resume determinism.
  guide_program();
  const std::int64_t steps = static_cast<std::int64_t>(epochs) *
                             static_cast<std::int64_t>(data.size());
  return tx::resil::fit_svi(svi, steps, policy);
}

Tensor VariationalBNN::predict(const std::vector<Tensor>& inputs,
                               int num_predictions, bool aggregate) {
  TX_CHECK(num_predictions >= 1, "predict: num_predictions must be >= 1");
  tx::NoGradGuard ng;
  // Sequential draws: a budget-truncated run aggregates exactly the k draws
  // an honest num_predictions=k run would make (same seed, same RNG stream
  // prefix), which is the bitwise prefix-truncation contract guard_test
  // pins down. The likelihood guide (if any) plays no role in the forward.
  std::vector<Tensor> draws = draw_guarded(
      num_predictions, [&] { return guided_forward(inputs).detach(); });
  Tensor stacked = tx::stack(draws, 0);
  touch_predict_heartbeat();
  if (aggregate) {
    Tensor aggregated = likelihood_->aggregate_predictions(stacked);
    if (tx::obs::pq::enabled()) {
      likelihood_->record_predictive_quality(stacked, aggregated, nullptr);
      tag_degraded_pq_batch();
    }
    return aggregated;
  }
  return stacked;
}

MCMC_BNN::MCMC_BNN(tx::nn::ModulePtr net, PriorPtr prior,
                   LikelihoodPtr likelihood, KernelFactory kernel_factory,
                   std::string name)
    : BNNBase(std::move(net), std::move(prior), std::move(name)),
      likelihood_(std::move(likelihood)),
      kernel_factory_(std::move(kernel_factory)) {
  TX_CHECK(likelihood_ != nullptr && kernel_factory_ != nullptr,
           "MCMC_BNN: null likelihood or kernel factory");
}

void MCMC_BNN::fit(const std::vector<Tensor>& inputs, const Tensor& targets,
                   int num_samples, int warmup_steps, tx::Generator* gen,
                   const tx::infer::ProgressCallback& progress) {
  mcmc_ = std::make_unique<tx::infer::MCMC>(kernel_factory_(), num_samples,
                                            warmup_steps);
  mcmc_->run(
      [this, inputs, targets] {
        Tensor predictions = sampled_forward(inputs);
        likelihood_->data_program(predictions, targets);
      },
      gen, progress);
}

Tensor MCMC_BNN::predict(const std::vector<Tensor>& inputs,
                         int num_predictions, bool aggregate) {
  TX_CHECK(mcmc_ != nullptr, "MCMC_BNN::predict: call fit() first");
  tx::NoGradGuard ng;
  const std::size_t stored = mcmc_->num_samples();
  // Spread the requested predictions across the stored chain. A budget
  // truncation keeps the first k draws of *this* spread — deterministic,
  // but (unlike VariationalBNN) not bitwise-equal to an honest k-run,
  // because the chain indices depend on num_predictions (docs/robustness.md
  // spells out the contract difference).
  int i = 0;
  std::vector<Tensor> draws = draw_guarded(num_predictions, [&] {
    const std::size_t idx = (static_cast<std::size_t>(i++) * stored) /
                            static_cast<std::size_t>(num_predictions);
    auto values = mcmc_->sample_at(idx);
    tx::ppl::ConditionMessenger cond(values);
    tx::ppl::HandlerScope scope(cond);
    return sampled_forward(inputs).detach();
  });
  Tensor stacked = tx::stack(draws, 0);
  touch_predict_heartbeat();
  if (aggregate) {
    Tensor aggregated = likelihood_->aggregate_predictions(stacked);
    if (tx::obs::pq::enabled()) {
      likelihood_->record_predictive_quality(stacked, aggregated, nullptr);
      tag_degraded_pq_batch();
    }
    return aggregated;
  }
  return stacked;
}

std::pair<double, double> MCMC_BNN::evaluate(const std::vector<Tensor>& inputs,
                                             const Tensor& targets,
                                             int num_predictions) {
  tx::NoGradGuard ng;
  Tensor stacked = predict(inputs, num_predictions, /*aggregate=*/false);
  const double ll = likelihood_->log_predictive(stacked, targets).item();
  Tensor aggregated = likelihood_->aggregate_predictions(stacked);
  const double err = likelihood_->error(aggregated, targets).item();
  if (tx::obs::pq::enabled()) {
    likelihood_->record_predictive_quality(stacked, aggregated, &targets);
    tag_degraded_pq_batch();
  }
  return {ll, err};
}

const tx::infer::MCMC& MCMC_BNN::mcmc() const {
  TX_CHECK(mcmc_ != nullptr, "MCMC_BNN::mcmc: call fit() first");
  return *mcmc_;
}

}  // namespace tyxe
