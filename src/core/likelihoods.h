// Observation models (tyxe/likelihoods.py). A Likelihood wraps a predictive
// distribution family and knows three things:
//  1. the probabilistic program for the data — data_program() emits the
//     observation sample site under a ScaleMessenger of dataset_size /
//     batch_size, which is what keeps the KL vs. log-likelihood balance
//     correct under mini-batching;
//  2. how to aggregate multiple posterior-sample predictions (mean class
//     probabilities, mean/std for Gaussians);
//  3. how to evaluate: mixture predictive log-likelihood and an error
//     measure (classification error or squared error).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/distributions.h"
#include "ppl/ppl.h"

namespace tyxe {

using tx::Shape;
using tx::Tensor;

class Likelihood {
 public:
  /// `dataset_size` scales mini-batch log-likelihoods up to the full dataset;
  /// `name` is the observation site ("likelihood.data" to match the paper's
  /// selective_mask example).
  explicit Likelihood(std::int64_t dataset_size,
                      std::string name = "likelihood.data");
  virtual ~Likelihood() = default;

  std::int64_t dataset_size() const { return dataset_size_; }
  /// VCL switches tasks by updating the dataset size.
  void set_dataset_size(std::int64_t n);
  const std::string& site_name() const { return name_; }

  /// Distribution over observations given network predictions.
  virtual tx::dist::DistPtr predictive_distribution(
      const Tensor& predictions) const = 0;

  /// Emits the observation site (scaled); returns the observed value. Called
  /// inside the model program. Likelihoods with latent variables (e.g. an
  /// unknown Gaussian scale) emit those sites too, outside the scale context.
  virtual Tensor data_program(const Tensor& predictions, const Tensor& obs);

  /// Number of observations in a batch (leading dim by default).
  virtual std::int64_t batch_size(const Tensor& obs) const;

  /// Combine S stacked sampled predictions (S x batch x ...) into a single
  /// prediction tensor.
  virtual Tensor aggregate_predictions(const Tensor& stacked) const = 0;

  /// Mixture predictive log-likelihood: log (1/S) sum_s p(y | pred_s),
  /// summed over the batch.
  virtual Tensor log_predictive(const Tensor& stacked,
                                const Tensor& targets) const;

  /// Task-appropriate error, averaged over the batch (classification error
  /// rate or mean squared error), computed from aggregated predictions.
  virtual Tensor error(const Tensor& aggregated, const Tensor& targets) const = 0;

  /// Feed streaming predictive-quality telemetry (tx::obs::pq) from one
  /// predicted batch: `stacked` is the raw (S, batch, ...) sample stack,
  /// `aggregated` its aggregate_predictions, `targets` the labels when the
  /// caller has them (evaluate) or nullptr (predict). Only called when
  /// pq is enabled; the default observes nothing — likelihoods opt in with
  /// family-appropriate reductions (Categorical feeds calibration bins,
  /// entropy decomposition, and OOD scores via metrics/pq_feed.h).
  virtual void record_predictive_quality(const Tensor& stacked,
                                         const Tensor& aggregated,
                                         const Tensor* targets) const;

 protected:
  std::int64_t dataset_size_;
  std::string name_;
};

using LikelihoodPtr = std::shared_ptr<Likelihood>;

/// Binary observations from logits.
class Bernoulli : public Likelihood {
 public:
  using Likelihood::Likelihood;
  tx::dist::DistPtr predictive_distribution(const Tensor& logits) const override;
  Tensor aggregate_predictions(const Tensor& stacked) const override;
  Tensor log_predictive(const Tensor& stacked, const Tensor& targets) const override;
  Tensor error(const Tensor& aggregated, const Tensor& targets) const override;
};

/// Multiclass observations from logits over the last axis.
class Categorical : public Likelihood {
 public:
  using Likelihood::Likelihood;
  tx::dist::DistPtr predictive_distribution(const Tensor& logits) const override;
  /// Mean predicted probabilities across samples.
  Tensor aggregate_predictions(const Tensor& stacked) const override;
  Tensor log_predictive(const Tensor& stacked, const Tensor& targets) const override;
  /// Classification error rate.
  Tensor error(const Tensor& aggregated, const Tensor& targets) const override;
  /// Streams calibration/uncertainty/OOD telemetry into tx::obs::pq.
  void record_predictive_quality(const Tensor& stacked,
                                 const Tensor& aggregated,
                                 const Tensor* targets) const override;
};

/// Gaussian with one shared observation scale. The scale is either fixed, or
/// latent with a LogNormal prior (inferred alongside the weights when the
/// BNN is given a likelihood guide).
class HomoskedasticGaussian : public Likelihood {
 public:
  HomoskedasticGaussian(std::int64_t dataset_size, float scale,
                        std::string name = "likelihood.data");
  /// Latent-scale variant: scale ~ LogNormal(loc, scale_of_log).
  HomoskedasticGaussian(std::int64_t dataset_size,
                        tx::dist::DistPtr scale_prior,
                        std::string name = "likelihood.data");

  bool has_latent_scale() const { return scale_prior_ != nullptr; }
  tx::dist::DistPtr scale_prior() const { return scale_prior_; }
  const std::string& scale_site() const { return scale_site_; }

  tx::dist::DistPtr predictive_distribution(const Tensor& mean) const override;
  Tensor data_program(const Tensor& predictions, const Tensor& obs) override;
  /// Mean prediction across samples.
  Tensor aggregate_predictions(const Tensor& stacked) const override;
  Tensor log_predictive(const Tensor& stacked, const Tensor& targets) const override;
  /// Mean squared error.
  Tensor error(const Tensor& aggregated, const Tensor& targets) const override;

  /// Predictive std across samples plus observation noise (for plotting the
  /// regression bands of Fig. 1).
  Tensor predictive_std(const Tensor& stacked) const;

 private:
  float fixed_scale_ = 0.0f;
  tx::dist::DistPtr scale_prior_;
  std::string scale_site_;
  Tensor last_scale_sample_;  // set by data_program when latent
};

/// Gaussian with predicted mean and scale: predictions hold [mean, raw_scale]
/// along the last axis; scale = softplus(raw_scale).
class HeteroskedasticGaussian : public Likelihood {
 public:
  using Likelihood::Likelihood;
  tx::dist::DistPtr predictive_distribution(const Tensor& predictions) const override;
  /// Precision-weighted mean across samples (the paper's aggregation).
  Tensor aggregate_predictions(const Tensor& stacked) const override;
  Tensor log_predictive(const Tensor& stacked, const Tensor& targets) const override;
  Tensor error(const Tensor& aggregated, const Tensor& targets) const override;

  /// Split predictions into (mean, scale).
  static std::pair<Tensor, Tensor> split(const Tensor& predictions);
};

/// Counts with rate = softplus(prediction) — the "easy to add" example.
class Poisson : public Likelihood {
 public:
  using Likelihood::Likelihood;
  tx::dist::DistPtr predictive_distribution(const Tensor& predictions) const override;
  Tensor aggregate_predictions(const Tensor& stacked) const override;
  Tensor error(const Tensor& aggregated, const Tensor& targets) const override;
};

}  // namespace tyxe
