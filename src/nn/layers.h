// Standard neural-network layers built on the Module registry. Linear and
// Conv2d route their math through nn::functional so reparameterization
// messengers can intercept them; everything else is plain tensor code.
#pragma once

#include <functional>

#include "nn/init.h"
#include "nn/module.h"

namespace tx::nn {

class Linear : public UnaryModule {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias = true,
         Generator* gen = nullptr);

  std::string type_name() const override { return "Linear"; }
  Tensor forward_one(const Tensor& x) override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  std::int64_t in_features_, out_features_;
  bool has_bias_;
  Tensor weight_, bias_;
};

class Conv2d : public UnaryModule {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t padding = 0,
         bool bias = true, Generator* gen = nullptr);

  std::string type_name() const override { return "Conv2d"; }
  Tensor forward_one(const Tensor& x) override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t stride_, padding_;
  bool has_bias_;
  Tensor weight_, bias_;
};

/// BatchNorm over the channel axis of NCHW inputs. Keeps running statistics
/// as buffers; in eval mode normalizes with them.
class BatchNorm2d : public UnaryModule {
 public:
  explicit BatchNorm2d(std::int64_t num_features, float eps = 1e-5f,
                       float momentum = 0.1f);

  std::string type_name() const override { return "BatchNorm2d"; }
  Tensor forward_one(const Tensor& x) override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t num_features_;
  float eps_, momentum_;
  Tensor weight_, bias_;
  Tensor running_mean_, running_var_;
};

class ReLU : public UnaryModule {
 public:
  std::string type_name() const override { return "ReLU"; }
  Tensor forward_one(const Tensor& x) override { return relu(x); }
};

class Tanh : public UnaryModule {
 public:
  std::string type_name() const override { return "Tanh"; }
  Tensor forward_one(const Tensor& x) override { return tanh(x); }
};

class Sigmoid : public UnaryModule {
 public:
  std::string type_name() const override { return "Sigmoid"; }
  Tensor forward_one(const Tensor& x) override { return sigmoid(x); }
};

class Softplus : public UnaryModule {
 public:
  std::string type_name() const override { return "Softplus"; }
  Tensor forward_one(const Tensor& x) override { return softplus(x); }
};

class MaxPool2d : public UnaryModule {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}
  std::string type_name() const override { return "MaxPool2d"; }
  Tensor forward_one(const Tensor& x) override {
    return max_pool2d(x, kernel_, stride_);
  }

 private:
  std::int64_t kernel_, stride_;
};

class AvgPool2d : public UnaryModule {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}
  std::string type_name() const override { return "AvgPool2d"; }
  Tensor forward_one(const Tensor& x) override {
    return avg_pool2d(x, kernel_, stride_);
  }

 private:
  std::int64_t kernel_, stride_;
};

/// Inverted dropout: scales by 1/(1-p) in training, identity in eval.
/// Inside a FixedDropoutScope the mask is a deterministic function of the
/// layer identity and the scope seed, so the *same* dropout sample is reused
/// across forward passes/batches — the Monte Carlo Dropout effect handler
/// sketched in the paper's Appendix D.
class Dropout : public UnaryModule {
 public:
  explicit Dropout(float p, Generator* gen = nullptr) : p_(p), gen_(gen) {
    TX_CHECK(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
  }
  std::string type_name() const override { return "Dropout"; }
  Tensor forward_one(const Tensor& x) override;

 private:
  float p_;
  Generator* gen_;
};

/// RAII scope fixing every Dropout layer's mask to a function of (seed,
/// layer): repeated forwards inside the scope see identical dropout noise.
/// Scopes nest; the innermost seed wins.
class FixedDropoutScope {
 public:
  explicit FixedDropoutScope(std::uint64_t seed);
  ~FixedDropoutScope();
  FixedDropoutScope(const FixedDropoutScope&) = delete;
  FixedDropoutScope& operator=(const FixedDropoutScope&) = delete;

  /// Active scope seed, if any (used by Dropout::forward_one).
  static const std::uint64_t* active_seed();

 private:
  std::uint64_t seed_;
};

class Flatten : public UnaryModule {
 public:
  explicit Flatten(std::int64_t start_dim = 1) : start_dim_(start_dim) {}
  std::string type_name() const override { return "Flatten"; }
  Tensor forward_one(const Tensor& x) override { return x.flatten(start_dim_); }

 private:
  std::int64_t start_dim_;
};

/// Chains child modules; children are registered as "0", "1", ... like torch.
class Sequential : public UnaryModule {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> mods);

  std::string type_name() const override { return "Sequential"; }
  Tensor forward_one(const Tensor& x) override;

  void append(ModulePtr m);
  std::size_t size() const { return mods_.size(); }
  Module& at(std::size_t i) { return *mods_.at(i); }

 private:
  std::vector<ModulePtr> mods_;
};

/// Fully connected network: sizes {in, h1, ..., out} with an activation
/// between layers (the regression / VCL architecture).
ModulePtr make_mlp(const std::vector<std::int64_t>& sizes,
                   const std::string& activation = "relu",
                   Generator* gen = nullptr);

}  // namespace tx::nn
