#include "nn/checkpoint.h"

#include <fstream>
#include <sstream>

#include "resil/io.h"
#include "tensor/serialize.h"

namespace {

void write_entries(
    std::ostream& os,
    const std::vector<std::pair<std::string, tx::Tensor>>& entries) {
  os << "TXCKPT1 " << entries.size() << '\n';
  for (const auto& [name, value] : entries) {
    TX_CHECK(name.find_first_of(" \n\t") == std::string::npos,
             "checkpoint: name '", name, "' contains whitespace");
    os << name << '\n';
    tx::save_tensor(os, value);
  }
  TX_CHECK(os.good(), "checkpoint: stream write failed");
}

/// Crash-safe file write: serialize in memory, then atomic replace (temp +
/// fsync + rename) so a crash mid-save can never truncate an existing
/// checkpoint.
void write_entries_file(
    const std::string& path,
    const std::vector<std::pair<std::string, tx::Tensor>>& entries,
    const char* what) {
  std::ostringstream os;
  write_entries(os, entries);
  TX_CHECK(tx::resil::atomic_write_file(path, os.str()), what,
           ": cannot write ", path);
}

std::vector<std::pair<std::string, tx::Tensor>> read_entries(std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  TX_CHECK(is.good() && magic == "TXCKPT1", "checkpoint: bad header");
  std::vector<std::pair<std::string, tx::Tensor>> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    is >> name;
    TX_CHECK(is.good() && !name.empty(), "checkpoint: truncated entry name");
    entries.emplace_back(name, tx::load_tensor(is));
  }
  return entries;
}

}  // namespace

namespace tx::nn {

void save_checkpoint(const std::string& path, Module& module) {
  write_entries_file(path, module.state_dict(), "save_checkpoint");
}

void load_checkpoint(const std::string& path, Module& module) {
  std::ifstream is(path);
  TX_CHECK(is.is_open(), "load_checkpoint: cannot open ", path);
  // read_entries parses the whole file (throwing on truncation) and
  // load_state_dict validates every slot before its first write, so a bad
  // file never half-mutates the module.
  module.load_state_dict(read_entries(is));
}

}  // namespace tx::nn

namespace tx::ppl {

void save_param_store(const std::string& path, const ParamStore& store) {
  std::vector<std::pair<std::string, tx::Tensor>> entries;
  for (const auto& [name, t] : store.items()) {
    entries.emplace_back(name, t.detach());
  }
  write_entries_file(path, entries, "save_param_store");
}

void load_param_store(const std::string& path, ParamStore& store) {
  std::ifstream is(path);
  TX_CHECK(is.is_open(), "load_param_store: cannot open ", path);
  // Stage-then-swap: parse the full file, validate every shape against the
  // live store, and only then start copying values in.
  const auto entries = read_entries(is);
  for (const auto& [name, value] : entries) {
    if (store.contains(name)) {
      TX_CHECK(store.get(name).shape() == value.shape(),
               "load_param_store: shape mismatch for ", name);
    }
  }
  for (const auto& [name, value] : entries) {
    if (store.contains(name)) {
      // Keep the existing handle so live guides see the loaded values.
      store.get(name).copy_(value);
    } else {
      store.set(name, value);
    }
  }
}

}  // namespace tx::ppl
