#include "nn/checkpoint.h"

#include <fstream>

#include "tensor/serialize.h"

namespace {

void write_entries(
    std::ostream& os,
    const std::vector<std::pair<std::string, tx::Tensor>>& entries) {
  os << "TXCKPT1 " << entries.size() << '\n';
  for (const auto& [name, value] : entries) {
    TX_CHECK(name.find_first_of(" \n\t") == std::string::npos,
             "checkpoint: name '", name, "' contains whitespace");
    os << name << '\n';
    tx::save_tensor(os, value);
  }
  TX_CHECK(os.good(), "checkpoint: stream write failed");
}

std::vector<std::pair<std::string, tx::Tensor>> read_entries(std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  TX_CHECK(is.good() && magic == "TXCKPT1", "checkpoint: bad header");
  std::vector<std::pair<std::string, tx::Tensor>> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    is >> name;
    TX_CHECK(is.good() && !name.empty(), "checkpoint: truncated entry name");
    entries.emplace_back(name, tx::load_tensor(is));
  }
  return entries;
}

}  // namespace

namespace tx::nn {

void save_checkpoint(const std::string& path, Module& module) {
  std::ofstream os(path);
  TX_CHECK(os.is_open(), "save_checkpoint: cannot open ", path);
  write_entries(os, module.state_dict());
}

void load_checkpoint(const std::string& path, Module& module) {
  std::ifstream is(path);
  TX_CHECK(is.is_open(), "load_checkpoint: cannot open ", path);
  module.load_state_dict(read_entries(is));
}

}  // namespace tx::nn

namespace tx::ppl {

void save_param_store(const std::string& path, const ParamStore& store) {
  std::ofstream os(path);
  TX_CHECK(os.is_open(), "save_param_store: cannot open ", path);
  std::vector<std::pair<std::string, tx::Tensor>> entries;
  for (const auto& [name, t] : store.items()) {
    entries.emplace_back(name, t.detach());
  }
  write_entries(os, entries);
}

void load_param_store(const std::string& path, ParamStore& store) {
  std::ifstream is(path);
  TX_CHECK(is.is_open(), "load_param_store: cannot open ", path);
  for (auto& [name, value] : read_entries(is)) {
    if (store.contains(name)) {
      // Keep the existing handle so live guides see the loaded values.
      Tensor current = store.get(name);
      TX_CHECK(current.shape() == value.shape(),
               "load_param_store: shape mismatch for ", name);
      current.copy_(value);
    } else {
      store.set(name, value);
    }
  }
}

}  // namespace tx::ppl
