#include "nn/multihead.h"

namespace tx::nn {

MultiHeadNet::MultiHeadNet(ModulePtr body, std::int64_t feature_dim,
                           std::int64_t out_features, std::int64_t num_heads,
                           Generator* gen)
    : body_(std::move(body)) {
  TX_CHECK(body_ != nullptr && num_heads >= 1, "MultiHeadNet: bad arguments");
  register_module("body", body_);
  for (std::int64_t h = 0; h < num_heads; ++h) {
    auto head = std::make_shared<Linear>(feature_dim, out_features, true, gen);
    register_module("head" + std::to_string(h), head);
    heads_.push_back(std::move(head));
  }
}

void MultiHeadNet::set_active_head(std::int64_t head) {
  TX_CHECK(head >= 0 && head < num_heads(), "MultiHeadNet: head ", head,
           " out of range");
  active_ = head;
}

Tensor MultiHeadNet::forward_one(const Tensor& x) {
  return heads_[static_cast<std::size_t>(active_)]->forward(
      relu(body_->forward(x)));
}

}  // namespace tx::nn
