// CIFAR-style residual networks (He et al., 2016). The paper's Table 1 uses
// torchvision's ResNet-18; we provide the same block structure at
// configurable depth/width so the CPU-scale benchmarks stay tractable while
// exercising identical code paths (conv, BatchNorm, skip connections).
#pragma once

#include "nn/layers.h"

namespace tx::nn {

/// Standard two-conv basic block with identity or projection shortcut.
class BasicBlock : public UnaryModule {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Generator* gen = nullptr);

  std::string type_name() const override { return "BasicBlock"; }
  Tensor forward_one(const Tensor& x) override;

 private:
  std::shared_ptr<Conv2d> conv1_, conv2_;
  std::shared_ptr<BatchNorm2d> bn1_, bn2_;
  std::shared_ptr<Conv2d> downsample_conv_;     // null for identity shortcut
  std::shared_ptr<BatchNorm2d> downsample_bn_;  // null for identity shortcut
};

/// CIFAR ResNet: 3x3 stem, three stages doubling channels and halving
/// resolution, global average pool, linear classifier.
class ResNet : public UnaryModule {
 public:
  /// blocks_per_stage: e.g. {1,1,1} is ResNet-8, {2,2,2} is ResNet-14 (the
  /// original torchvision resnet18 uses four stages of two 2-conv blocks).
  ResNet(std::vector<std::int64_t> blocks_per_stage, std::int64_t base_width,
         std::int64_t num_classes, std::int64_t in_channels = 3,
         Generator* gen = nullptr);

  std::string type_name() const override { return "ResNet"; }
  Tensor forward_one(const Tensor& x) override;

  /// The final classifier layer (the "LL" guides do inference only here).
  std::shared_ptr<Linear> fc() { return fc_; }

 private:
  std::shared_ptr<Conv2d> stem_conv_;
  std::shared_ptr<BatchNorm2d> stem_bn_;
  std::vector<std::shared_ptr<Sequential>> stages_;
  std::shared_ptr<Linear> fc_;
};

/// ResNet-8 at the given width (the scaled Table 1 architecture).
std::shared_ptr<ResNet> make_resnet8(std::int64_t num_classes,
                                     std::int64_t base_width = 16,
                                     std::int64_t in_channels = 3,
                                     Generator* gen = nullptr);

}  // namespace tx::nn
