#include "nn/resnet.h"

namespace tx::nn {

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Generator* gen) {
  conv1_ = std::make_shared<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    /*bias=*/false, gen);
  bn1_ = std::make_shared<BatchNorm2d>(out_channels);
  conv2_ = std::make_shared<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                    /*bias=*/false, gen);
  bn2_ = std::make_shared<BatchNorm2d>(out_channels);
  register_module("conv1", conv1_);
  register_module("bn1", bn1_);
  register_module("conv2", conv2_);
  register_module("bn2", bn2_);
  if (stride != 1 || in_channels != out_channels) {
    downsample_conv_ = std::make_shared<Conv2d>(in_channels, out_channels, 1,
                                                stride, 0, /*bias=*/false, gen);
    downsample_bn_ = std::make_shared<BatchNorm2d>(out_channels);
    register_module("downsample_conv", downsample_conv_);
    register_module("downsample_bn", downsample_bn_);
  }
}

Tensor BasicBlock::forward_one(const Tensor& x) {
  Tensor out = relu(bn1_->forward(conv1_->forward(x)));
  out = bn2_->forward(conv2_->forward(out));
  Tensor shortcut = x;
  if (downsample_conv_) {
    shortcut = downsample_bn_->forward(downsample_conv_->forward(x));
  }
  return relu(add(out, shortcut));
}

ResNet::ResNet(std::vector<std::int64_t> blocks_per_stage,
               std::int64_t base_width, std::int64_t num_classes,
               std::int64_t in_channels, Generator* gen) {
  TX_CHECK(!blocks_per_stage.empty(), "ResNet: need at least one stage");
  stem_conv_ = std::make_shared<Conv2d>(in_channels, base_width, 3, 1, 1,
                                        /*bias=*/false, gen);
  stem_bn_ = std::make_shared<BatchNorm2d>(base_width);
  register_module("conv1", stem_conv_);
  register_module("bn1", stem_bn_);
  std::int64_t channels = base_width;
  for (std::size_t s = 0; s < blocks_per_stage.size(); ++s) {
    const std::int64_t out_channels = base_width << s;
    auto stage = std::make_shared<Sequential>();
    for (std::int64_t b = 0; b < blocks_per_stage[s]; ++b) {
      const std::int64_t stride = (b == 0 && s > 0) ? 2 : 1;
      stage->append(
          std::make_shared<BasicBlock>(channels, out_channels, stride, gen));
      channels = out_channels;
    }
    register_module("layer" + std::to_string(s + 1), stage);
    stages_.push_back(std::move(stage));
  }
  fc_ = std::make_shared<Linear>(channels, num_classes, /*bias=*/true, gen);
  register_module("fc", fc_);
}

Tensor ResNet::forward_one(const Tensor& x) {
  Tensor h = relu(stem_bn_->forward(stem_conv_->forward(x)));
  for (auto& stage : stages_) h = stage->forward(h);
  // Global average pool over the remaining spatial extent.
  h = mean(h, {2, 3});
  return fc_->forward(h);
}

std::shared_ptr<ResNet> make_resnet8(std::int64_t num_classes,
                                     std::int64_t base_width,
                                     std::int64_t in_channels, Generator* gen) {
  return std::make_shared<ResNet>(std::vector<std::int64_t>{1, 1, 1},
                                  base_width, num_classes, in_channels, gen);
}

}  // namespace tx::nn
