#include "nn/init.h"

#include <cmath>

namespace tx::nn::init {

std::pair<std::int64_t, std::int64_t> fan_in_out(const Shape& weight_shape) {
  TX_CHECK(!weight_shape.empty(), "fan_in_out: scalar weight");
  if (weight_shape.size() == 1) {
    return {weight_shape[0], weight_shape[0]};  // bias-like
  }
  std::int64_t receptive = 1;
  for (std::size_t i = 2; i < weight_shape.size(); ++i) {
    receptive *= weight_shape[i];
  }
  const std::int64_t fan_out = weight_shape[0] * receptive;
  const std::int64_t fan_in = weight_shape[1] * receptive;
  return {fan_in, fan_out};
}

float init_std(const std::string& method, const Shape& weight_shape) {
  const auto [fan_in, fan_out] = fan_in_out(weight_shape);
  if (method == "radford") {
    return 1.0f / std::sqrt(static_cast<float>(fan_in));
  }
  if (method == "xavier") {
    return std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  }
  if (method == "kaiming") {
    return std::sqrt(2.0f / static_cast<float>(fan_in));
  }
  TX_THROW("unknown init method '", method,
           "' (expected radford | xavier | kaiming)");
}

void normal_(Tensor& t, float mean, float std, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(g.normal(mean, std));
  }
}

void uniform_(Tensor& t, float lo, float hi, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(g.uniform(lo, hi));
  }
}

void constant_(Tensor& t, float v) {
  for (std::int64_t i = 0; i < t.numel(); ++i) t.at(i) = v;
}

void kaiming_normal_(Tensor& t, Generator* gen) {
  normal_(t, 0.0f, init_std("kaiming", t.shape()), gen);
}

void xavier_normal_(Tensor& t, Generator* gen) {
  normal_(t, 0.0f, init_std("xavier", t.shape()), gen);
}

void radford_normal_(Tensor& t, Generator* gen) {
  normal_(t, 0.0f, init_std("radford", t.shape()), gen);
}

}  // namespace tx::nn::init
