// Weight initialization schemes. The same fan-based standard deviations are
// reused by LayerwiseNormalPrior (method="radford"/"xavier"/"kaiming") and by
// the guide's mean-initialization helpers, mirroring the paper's Section 2.1.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace tx::nn::init {

/// fan_in / fan_out of a weight tensor: Linear weights are (out, in);
/// Conv2d weights are (out, in, kh, kw) with receptive field folded in.
std::pair<std::int64_t, std::int64_t> fan_in_out(const Shape& weight_shape);

/// Standard deviation prescribed by each scheme.
///  radford: 1/sqrt(fan_in)          (Neal, 1996)
///  xavier:  sqrt(2/(fan_in+fan_out)) (Glorot & Bengio, 2010)
///  kaiming: sqrt(2/fan_in)           (He et al., 2015)
float init_std(const std::string& method, const Shape& weight_shape);

/// In-place fills for leaf parameter tensors.
void normal_(Tensor& t, float mean, float std, Generator* gen = nullptr);
void uniform_(Tensor& t, float lo, float hi, Generator* gen = nullptr);
void constant_(Tensor& t, float v);
void kaiming_normal_(Tensor& t, Generator* gen = nullptr);
void xavier_normal_(Tensor& t, Generator* gen = nullptr);
void radford_normal_(Tensor& t, Generator* gen = nullptr);

}  // namespace tx::nn::init
