#include "nn/module.h"

#include <algorithm>

namespace tx::nn {

namespace {
std::string joined(const std::string& prefix, const std::string& name) {
  return prefix.empty() ? name : prefix + "." + name;
}
}  // namespace

void Module::register_parameter(const std::string& name, Tensor* slot) {
  TX_CHECK(slot != nullptr && slot->defined(), "register_parameter(", name,
           "): slot must hold a defined tensor");
  for (const auto& [n, _] : params_) {
    TX_CHECK(n != name, "duplicate parameter name ", name);
  }
  params_.emplace_back(name, slot);
}

void Module::register_buffer(const std::string& name, Tensor* slot) {
  TX_CHECK(slot != nullptr && slot->defined(), "register_buffer(", name,
           "): slot must hold a defined tensor");
  buffers_.emplace_back(name, slot);
}

void Module::register_module(const std::string& name, ModulePtr child) {
  TX_CHECK(child != nullptr, "register_module(", name, "): null child");
  for (const auto& [n, _] : children_) {
    TX_CHECK(n != name, "duplicate module name ", name);
  }
  children_.emplace_back(name, std::move(child));
}

std::vector<ParamSlot> Module::named_parameter_slots(const std::string& prefix) {
  std::vector<ParamSlot> out;
  for (auto& [name, slot] : params_) {
    out.push_back(ParamSlot{joined(prefix, name), slot, this, name});
  }
  for (auto& [name, child] : children_) {
    auto sub = child->named_parameter_slots(joined(prefix, name));
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<BufferSlot> Module::named_buffer_slots(const std::string& prefix) {
  std::vector<BufferSlot> out;
  for (auto& [name, slot] : buffers_) {
    out.push_back(BufferSlot{joined(prefix, name), slot});
  }
  for (auto& [name, child] : children_) {
    auto sub = child->named_buffer_slots(joined(prefix, name));
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Module*>> Module::named_modules(
    const std::string& prefix) {
  std::vector<std::pair<std::string, Module*>> out;
  out.emplace_back(prefix, this);
  for (auto& [name, child] : children_) {
    auto sub = child->named_modules(joined(prefix, name));
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::state_dict() {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& p : named_parameter_slots()) {
    out.emplace_back(p.name, p.slot->detach());
  }
  for (const auto& b : named_buffer_slots()) {
    out.emplace_back(b.name, b.slot->detach());
  }
  return out;
}

void Module::load_state_dict(
    const std::vector<std::pair<std::string, Tensor>>& values) {
  auto params = named_parameter_slots();
  auto buffers = named_buffer_slots();
  // Resolve and validate every entry before the first assignment, so a bad
  // name or shape anywhere leaves the module completely untouched instead of
  // half-overwritten.
  std::vector<Tensor*> slots;
  slots.reserve(values.size());
  for (const auto& [name, value] : values) {
    Tensor* slot = nullptr;
    for (auto& p : params) {
      if (p.name == name) {
        slot = p.slot;
        break;
      }
    }
    if (!slot) {
      for (auto& b : buffers) {
        if (b.name == name) {
          slot = b.slot;
          break;
        }
      }
    }
    TX_CHECK(slot != nullptr, "load_state_dict: no slot named ", name);
    TX_CHECK(slot->shape() == value.shape(), "load_state_dict: shape mismatch for ",
             name);
    slots.push_back(slot);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    Tensor* slot = slots[i];
    const bool rg = slot->requires_grad();
    *slot = values[i].second.detach();
    if (rg) slot->set_requires_grad(true);
  }
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [_, child] : children_) child->train(mode);
}

std::int64_t Module::num_parameters() {
  std::int64_t total = 0;
  for (const auto& p : named_parameter_slots()) total += p.slot->numel();
  return total;
}

}  // namespace tx::nn
