#include "nn/functional.h"

#include <vector>

#include "par/pool.h"

namespace tx::nn::functional {

namespace {
// Thread-local so parallel test runners don't interfere.
thread_local std::vector<LinearOpInterceptor*> g_stack;

// Propagate the caller's interceptor stack into tx::par worker tasks so
// local-reparameterization/flipout poutines apply inside parallel bodies.
const bool g_par_interceptors_registered = [] {
  par::register_context_capture([]() -> par::ContextInstaller {
    std::vector<LinearOpInterceptor*> snapshot = g_stack;
    return [snapshot]() -> std::function<void()> {
      auto* scope = new InterceptorStackScope(snapshot);
      return [scope] { delete scope; };
    };
  });
  return true;
}();
}  // namespace

std::vector<LinearOpInterceptor*> interceptor_stack_snapshot() {
  return g_stack;
}

InterceptorStackScope::InterceptorStackScope(
    std::vector<LinearOpInterceptor*> stack)
    : previous_(std::move(g_stack)) {
  g_stack = std::move(stack);
}

InterceptorStackScope::~InterceptorStackScope() {
  g_stack = std::move(previous_);
}

void push_interceptor(LinearOpInterceptor* interceptor) {
  TX_CHECK(interceptor != nullptr, "push_interceptor: null");
  g_stack.push_back(interceptor);
}

void pop_interceptor(LinearOpInterceptor* interceptor) {
  TX_CHECK(!g_stack.empty() && g_stack.back() == interceptor,
           "pop_interceptor: unbalanced interceptor stack");
  g_stack.pop_back();
}

std::size_t interceptor_depth() { return g_stack.size(); }

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  for (auto it = g_stack.rbegin(); it != g_stack.rend(); ++it) {
    Tensor out = (*it)->linear(x, weight, bias);
    if (out.defined()) return out;
  }
  return tx::linear(x, weight, bias);
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t stride, std::int64_t padding) {
  for (auto it = g_stack.rbegin(); it != g_stack.rend(); ++it) {
    Tensor out = (*it)->conv2d(x, weight, bias, stride, padding);
    if (out.defined()) return out;
  }
  return tx::conv2d(x, weight, bias, stride, padding);
}

}  // namespace tx::nn::functional
