#include "nn/functional.h"

#include <vector>

namespace tx::nn::functional {

namespace {
// Thread-local so parallel test runners don't interfere.
thread_local std::vector<LinearOpInterceptor*> g_stack;
}  // namespace

void push_interceptor(LinearOpInterceptor* interceptor) {
  TX_CHECK(interceptor != nullptr, "push_interceptor: null");
  g_stack.push_back(interceptor);
}

void pop_interceptor(LinearOpInterceptor* interceptor) {
  TX_CHECK(!g_stack.empty() && g_stack.back() == interceptor,
           "pop_interceptor: unbalanced interceptor stack");
  g_stack.pop_back();
}

std::size_t interceptor_depth() { return g_stack.size(); }

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  for (auto it = g_stack.rbegin(); it != g_stack.rend(); ++it) {
    Tensor out = (*it)->linear(x, weight, bias);
    if (out.defined()) return out;
  }
  return tx::linear(x, weight, bias);
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t stride, std::int64_t padding) {
  for (auto it = g_stack.rbegin(); it != g_stack.rend(); ++it) {
    Tensor out = (*it)->conv2d(x, weight, bias, stride, padding);
    if (out.defined()) return out;
  }
  return tx::conv2d(x, weight, bias, stride, padding);
}

}  // namespace tx::nn::functional
