// Checkpointing: save/load a module's state dict or a ParamStore to a file,
// so trained networks and fitted variational posteriors survive processes
// (e.g. pretrain once, Bayesianize in a later run).
#pragma once

#include <string>

#include "nn/module.h"
#include "ppl/param_store.h"

namespace tx::nn {

/// Writes all parameters and buffers (named state dict) of the module.
void save_checkpoint(const std::string& path, Module& module);
/// Loads values into the module by name; missing/mismatched entries throw.
void load_checkpoint(const std::string& path, Module& module);

}  // namespace tx::nn

namespace tx::ppl {

/// Persist every parameter of a store (e.g. a fitted guide).
void save_param_store(const std::string& path, const ParamStore& store);
/// Recreate parameters into `store` (existing same-name params are
/// overwritten through set(), preserving requires_grad).
void load_param_store(const std::string& path, ParamStore& store);

}  // namespace tx::ppl
