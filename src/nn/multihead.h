// Shared-body multi-head network for continual learning (the standard
// Split-MNIST/CIFAR protocol of Nguyen et al., 2018): one feature extractor,
// one output head per task, with the active head switchable at evaluation.
#pragma once

#include "nn/layers.h"

namespace tx::nn {

class MultiHeadNet : public UnaryModule {
 public:
  /// `body` maps inputs to features of width `feature_dim`; one Linear head
  /// of `out_features` per task is created.
  MultiHeadNet(ModulePtr body, std::int64_t feature_dim,
               std::int64_t out_features, std::int64_t num_heads,
               Generator* gen = nullptr);

  std::string type_name() const override { return "MultiHeadNet"; }
  Tensor forward_one(const Tensor& x) override;

  void set_active_head(std::int64_t head);
  std::int64_t active_head() const { return active_; }
  std::int64_t num_heads() const { return static_cast<std::int64_t>(heads_.size()); }

 private:
  ModulePtr body_;
  std::vector<std::shared_ptr<Linear>> heads_;
  std::int64_t active_ = 0;
};

}  // namespace tx::nn
