// Effectful functional ops. PyTorch-TyXe monkey-patches F.linear / F.conv2d
// with Pyro-`effectful` wrappers so a messenger can replace how linear maps
// are computed (local reparameterization, flipout). The C++ analogue is an
// interceptor stack consulted by nn::functional::linear / conv2d: the newest
// interceptor that returns a defined tensor wins; otherwise the plain tensor
// op runs. Model code calls these functions and never changes.
#pragma once

#include "tensor/tensor.h"

namespace tx::nn::functional {

/// Interface implemented by reparameterization messengers (tyxe::poutine).
/// Return an undefined Tensor to decline and fall through to the next
/// interceptor / the base op.
class LinearOpInterceptor {
 public:
  virtual ~LinearOpInterceptor() = default;
  virtual Tensor linear(const Tensor& x, const Tensor& weight,
                        const Tensor& bias) = 0;
  virtual Tensor conv2d(const Tensor& x, const Tensor& weight,
                        const Tensor& bias, std::int64_t stride,
                        std::int64_t padding) = 0;
};

/// Push/pop are LIFO and must be balanced (RAII in the messenger classes).
void push_interceptor(LinearOpInterceptor* interceptor);
void pop_interceptor(LinearOpInterceptor* interceptor);
/// Number of active interceptors (for tests).
std::size_t interceptor_depth();

/// Snapshot of this thread's interceptor stack, newest last (for tx::par
/// context propagation; the interceptors must outlive the scope).
std::vector<LinearOpInterceptor*> interceptor_stack_snapshot();

/// RAII wholesale replacement of this thread's interceptor stack with a
/// snapshot; restores the previous stack on destruction.
class InterceptorStackScope {
 public:
  explicit InterceptorStackScope(std::vector<LinearOpInterceptor*> stack);
  ~InterceptorStackScope();
  InterceptorStackScope(const InterceptorStackScope&) = delete;
  InterceptorStackScope& operator=(const InterceptorStackScope&) = delete;

 private:
  std::vector<LinearOpInterceptor*> previous_;
};

/// The functional ops layers call. Identical contract to tx::linear /
/// tx::conv2d but dispatched through the interceptor stack.
Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias);
Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t stride, std::int64_t padding);

}  // namespace tx::nn::functional
