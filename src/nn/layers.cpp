#include "nn/layers.h"

#include <cmath>

#include "nn/functional.h"

namespace tx::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               Generator* gen)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  init::kaiming_normal_(weight_, gen);
  weight_.set_requires_grad(true);
  register_parameter("weight", &weight_);
  if (has_bias_) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
    init::uniform_(bias_, -bound, bound, gen);
    bias_.set_requires_grad(true);
    register_parameter("bias", &bias_);
  }
}

Tensor Linear::forward_one(const Tensor& x) {
  return functional::linear(x, weight_, has_bias_ ? bias_ : Tensor());
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, Generator* gen)
    : stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}) {
  init::kaiming_normal_(weight_, gen);
  weight_.set_requires_grad(true);
  register_parameter("weight", &weight_);
  if (has_bias_) {
    const float fan_in = static_cast<float>(in_channels * kernel * kernel);
    const float bound = 1.0f / std::sqrt(fan_in);
    init::uniform_(bias_, -bound, bound, gen);
    bias_.set_requires_grad(true);
    register_parameter("bias", &bias_);
  }
}

Tensor Conv2d::forward_one(const Tensor& x) {
  return functional::conv2d(x, weight_, has_bias_ ? bias_ : Tensor(), stride_,
                            padding_);
}

BatchNorm2d::BatchNorm2d(std::int64_t num_features, float eps, float momentum)
    : num_features_(num_features),
      eps_(eps),
      momentum_(momentum),
      weight_(ones({num_features})),
      bias_(zeros({num_features})),
      running_mean_(zeros({num_features})),
      running_var_(ones({num_features})) {
  weight_.set_requires_grad(true);
  bias_.set_requires_grad(true);
  register_parameter("weight", &weight_);
  register_parameter("bias", &bias_);
  register_buffer("running_mean", &running_mean_);
  register_buffer("running_var", &running_var_);
}

Tensor BatchNorm2d::forward_one(const Tensor& x) {
  TX_CHECK(x.rank() == 4 && x.dim(1) == num_features_,
           "BatchNorm2d: expected NCHW with ", num_features_, " channels");
  const Shape param_shape{1, num_features_, 1, 1};
  Tensor mu, var;
  if (is_training()) {
    mu = mean(x, {0, 2, 3}, /*keepdim=*/true);
    Tensor centered = sub(x, mu);
    var = mean(square(centered), {0, 2, 3}, /*keepdim=*/true);
    // Update running statistics outside the graph.
    {
      NoGradGuard ng;
      const std::int64_t count = x.dim(0) * x.dim(2) * x.dim(3);
      const float unbias = count > 1
                               ? static_cast<float>(count) /
                                     static_cast<float>(count - 1)
                               : 1.0f;
      for (std::int64_t c = 0; c < num_features_; ++c) {
        running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) +
                              momentum_ * mu.at(c);
        running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) +
                             momentum_ * var.at(c) * unbias;
      }
    }
  } else {
    mu = reshape(running_mean_, param_shape);
    var = reshape(running_var_, param_shape);
  }
  Tensor norm = div(sub(x, mu), sqrt(add(var, Tensor::scalar(eps_))));
  return add(mul(norm, reshape(weight_, param_shape)),
             reshape(bias_, param_shape));
}

namespace {
thread_local std::vector<std::uint64_t> g_fixed_dropout_seeds;
}  // namespace

FixedDropoutScope::FixedDropoutScope(std::uint64_t seed) : seed_(seed) {
  g_fixed_dropout_seeds.push_back(seed);
}

FixedDropoutScope::~FixedDropoutScope() {
  TX_CHECK(!g_fixed_dropout_seeds.empty() &&
               g_fixed_dropout_seeds.back() == seed_,
           "FixedDropoutScope: unbalanced scopes");
  g_fixed_dropout_seeds.pop_back();
}

const std::uint64_t* FixedDropoutScope::active_seed() {
  return g_fixed_dropout_seeds.empty() ? nullptr
                                       : &g_fixed_dropout_seeds.back();
}

Tensor Dropout::forward_one(const Tensor& x) {
  if (!is_training() || p_ == 0.0f) return x;
  // Under a FixedDropoutScope the mask depends only on (scope seed, layer),
  // so it repeats across forward passes; otherwise it is freshly sampled.
  Generator fixed(0);
  Generator* g = gen_ ? gen_ : &global_generator();
  if (const std::uint64_t* seed = FixedDropoutScope::active_seed()) {
    fixed.seed(*seed ^ (reinterpret_cast<std::uintptr_t>(this) * 0x9e3779b97f4a7c15ULL));
    g = &fixed;
  }
  Tensor mask = zeros(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = g->bernoulli(1.0 - p_) ? scale : 0.0f;
  }
  return mul(x, mask);
}

Sequential::Sequential(std::vector<ModulePtr> mods) {
  for (auto& m : mods) append(std::move(m));
}

void Sequential::append(ModulePtr m) {
  register_module(std::to_string(mods_.size()), m);
  mods_.push_back(std::move(m));
}

Tensor Sequential::forward_one(const Tensor& x) {
  Tensor h = x;
  for (auto& m : mods_) h = m->forward(h);
  return h;
}

ModulePtr make_mlp(const std::vector<std::int64_t>& sizes,
                   const std::string& activation, Generator* gen) {
  TX_CHECK(sizes.size() >= 2, "make_mlp: need at least input and output size");
  auto act = [&]() -> ModulePtr {
    if (activation == "relu") return std::make_shared<ReLU>();
    if (activation == "tanh") return std::make_shared<Tanh>();
    if (activation == "sigmoid") return std::make_shared<Sigmoid>();
    if (activation == "softplus") return std::make_shared<Softplus>();
    TX_THROW("make_mlp: unknown activation '", activation, "'");
  };
  auto seq = std::make_shared<Sequential>();
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    seq->append(std::make_shared<Linear>(sizes[i], sizes[i + 1], true, gen));
    if (i + 2 < sizes.size()) seq->append(act());
  }
  return seq;
}

}  // namespace tx::nn
