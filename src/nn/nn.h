// Umbrella header for the nn library.
#pragma once

#include "nn/functional.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/multihead.h"
#include "nn/resnet.h"
