// Module system, the analogue of torch.nn.Module.
//
// The property TyXe depends on is that parameters are *named slots*: a prior
// can enumerate `named_parameter_slots()` of an arbitrary module tree and
// replace each slot's Tensor handle with a sample from a distribution before
// a forward pass, without the module's code changing. This file provides that
// registry; layers.h provides the standard layers on top of it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace tx::nn {

class Module;
using ModulePtr = std::shared_ptr<Module>;

/// A named reference to a parameter held inside a module. Writing through
/// `slot` swaps the tensor the module's forward pass reads.
struct ParamSlot {
  std::string name;     // full dotted path, e.g. "layer1.0.conv1.weight"
  Tensor* slot;         // points into the owning module
  Module* owner;        // module that registered it
  std::string local_name;  // name within the owner, e.g. "weight"
};

struct BufferSlot {
  std::string name;
  Tensor* slot;
};

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Generic forward over a list of inputs; the single-tensor overload covers
  /// the common case.
  virtual Tensor forward(const std::vector<Tensor>& inputs) = 0;
  Tensor forward(const Tensor& x) { return forward(std::vector<Tensor>{x}); }
  Tensor operator()(const Tensor& x) { return forward(x); }
  Tensor operator()(const std::vector<Tensor>& xs) { return forward(xs); }

  /// Class name used by hide/expose filters (e.g. "BatchNorm2d").
  virtual std::string type_name() const = 0;

  /// All parameters in this subtree, depth-first, with dotted paths.
  std::vector<ParamSlot> named_parameter_slots(const std::string& prefix = "");
  /// All buffers (non-learned state such as BatchNorm running stats).
  std::vector<BufferSlot> named_buffer_slots(const std::string& prefix = "");
  /// All modules in this subtree including itself, with dotted paths.
  std::vector<std::pair<std::string, Module*>> named_modules(
      const std::string& prefix = "");

  /// Copies of parameter values keyed by path (a state dict).
  std::vector<std::pair<std::string, Tensor>> state_dict();
  /// Loads values into parameters by path; missing keys throw.
  void load_state_dict(
      const std::vector<std::pair<std::string, Tensor>>& values);

  /// Recursively set training mode (affects BatchNorm, Dropout).
  void train(bool mode = true);
  void eval() { train(false); }
  bool is_training() const { return training_; }

  /// Total parameter count of the subtree.
  std::int64_t num_parameters();

 protected:
  Module() = default;

  /// Register a parameter slot owned by the subclass (a member Tensor).
  void register_parameter(const std::string& name, Tensor* slot);
  /// Register a non-learned buffer slot.
  void register_buffer(const std::string& name, Tensor* slot);
  /// Register a child module.
  void register_module(const std::string& name, ModulePtr child);

  bool training_ = true;

 private:
  std::vector<std::pair<std::string, Tensor*>> params_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, ModulePtr>> children_;
};

/// Convenience base for modules taking exactly one input tensor.
class UnaryModule : public Module {
 public:
  using Module::forward;  // keep the single-tensor overload visible
  Tensor forward(const std::vector<Tensor>& inputs) final {
    TX_CHECK(inputs.size() == 1, type_name(), " expects exactly one input, got ",
             inputs.size());
    return forward_one(inputs[0]);
  }
  virtual Tensor forward_one(const Tensor& x) = 0;
};

}  // namespace tx::nn
