#include "dist/normal.h"

#include <cmath>

namespace tx::dist {

namespace {
constexpr float kLogSqrt2Pi = 0.9189385332046727f;  // log(sqrt(2*pi))
}  // namespace

Normal::Normal(Tensor loc, Tensor scale)
    : loc_(std::move(loc)), scale_(std::move(scale)) {
  TX_CHECK(loc_.defined() && scale_.defined(), "Normal: undefined params");
  shape_ = broadcast_shapes(loc_.shape(), scale_.shape());
}

Normal::Normal(float loc, float scale)
    : Normal(Tensor::scalar(loc), Tensor::scalar(scale)) {}

Tensor Normal::sample(Generator* gen) const {
  NoGradGuard ng;
  return rsample(gen).detach();
}

Tensor Normal::rsample(Generator* gen) const {
  Tensor eps = randn(shape_, gen);
  // One fused kernel instead of the mul+add chain; fp contraction is off, so
  // this is bitwise scale*eps + loc as before.
  return fma(broadcast_to(scale_, shape_), eps, broadcast_to(loc_, shape_));
}

Tensor Normal::log_prob(const Tensor& value) const {
  Tensor z = div(sub(value, loc_), scale_);
  return sub(sub(mul(Tensor::scalar(-0.5f), square(z)), log(scale_)),
             Tensor::scalar(kLogSqrt2Pi));
}

Tensor Normal::log_prob_sum(const Tensor& value) const {
  // Fused single-pass kernel when the parameters broadcast *to* the value —
  // the direction every inference path uses. The rare inverse direction
  // (value smaller than the parameters) falls back to sum(log_prob).
  if (broadcastable(value.shape(), loc_.shape()) &&
      broadcastable(value.shape(), scale_.shape()) &&
      broadcast_shapes(value.shape(), loc_.shape()) == value.shape() &&
      broadcast_shapes(value.shape(), scale_.shape()) == value.shape()) {
    return gauss_logpdf_sum(value, loc_, scale_);
  }
  return Distribution::log_prob_sum(value);
}

Tensor Normal::entropy() const {
  // 0.5 * log(2*pi*e) + log(scale)
  constexpr float kHalfLog2PiE = 1.4189385332046727f;
  return add(log(broadcast_to(scale_, shape_)), Tensor::scalar(kHalfLog2PiE));
}

DistPtr Normal::detach_params() const {
  return std::make_shared<Normal>(loc_.detach(), scale_.detach());
}

DistPtr Normal::expand(const Shape& target) const {
  return std::make_shared<Normal>(broadcast_to(loc_, target),
                                  broadcast_to(scale_, target));
}

Delta::Delta(Tensor value) : value_(std::move(value)) {
  TX_CHECK(value_.defined(), "Delta: undefined value");
}

Tensor Delta::sample(Generator*) const { return value_.detach(); }

Tensor Delta::log_prob(const Tensor& value) const {
  // 0 where equal, -inf elsewhere; non-differentiable by construction, which
  // matches Pyro's Delta (used only where the value is the sample itself).
  Tensor lp = zeros(value.shape());
  for (std::int64_t i = 0; i < value.numel(); ++i) {
    if (value.at(i) != value_.at(i)) {
      lp.at(i) = -std::numeric_limits<float>::infinity();
    }
  }
  return lp;
}

DistPtr Delta::detach_params() const {
  return std::make_shared<Delta>(value_.detach());
}

DistPtr Delta::expand(const Shape& target) const {
  return std::make_shared<Delta>(broadcast_to(value_, target));
}

LogNormal::LogNormal(Tensor loc, Tensor scale)
    : loc_(std::move(loc)), scale_(std::move(scale)) {
  TX_CHECK(loc_.defined() && scale_.defined(), "LogNormal: undefined params");
  shape_ = broadcast_shapes(loc_.shape(), scale_.shape());
}

Tensor LogNormal::sample(Generator* gen) const {
  NoGradGuard ng;
  return rsample(gen).detach();
}

Tensor LogNormal::rsample(Generator* gen) const {
  Tensor eps = randn(shape_, gen);
  return exp(fma(broadcast_to(scale_, shape_), eps,
                 broadcast_to(loc_, shape_)));
}

Tensor LogNormal::log_prob(const Tensor& value) const {
  Tensor lv = log(value);
  Tensor z = div(sub(lv, loc_), scale_);
  return sub(sub(sub(mul(Tensor::scalar(-0.5f), square(z)), log(scale_)),
                 Tensor::scalar(kLogSqrt2Pi)),
             lv);
}

Tensor LogNormal::mean() const {
  return exp(add(loc_, mul(Tensor::scalar(0.5f), square(scale_))));
}

DistPtr LogNormal::detach_params() const {
  return std::make_shared<LogNormal>(loc_.detach(), scale_.detach());
}

DistPtr LogNormal::expand(const Shape& target) const {
  return std::make_shared<LogNormal>(broadcast_to(loc_, target),
                                     broadcast_to(scale_, target));
}

}  // namespace tx::dist
