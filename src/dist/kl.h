// Closed-form KL divergences. TraceMeanFieldELBO uses these to replace
// sampled log-density differences with analytic KL terms (the computation
// the paper's AutoNormal guide exists to enable).
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

/// True if kl_divergence(p, q) has a registered closed form.
bool has_analytic_kl(const Distribution& p, const Distribution& q);

/// Scalar KL(p || q), summed over the distribution's shape. Throws if no
/// closed form is registered for the pair; callers should fall back to a
/// Monte Carlo estimate (see mc_kl).
Tensor kl_divergence(const Distribution& p, const Distribution& q);

/// Single-sample Monte Carlo KL estimate log p(x) - log q(x), x ~ p. Requires
/// p to be reparameterizable if gradients are needed through it.
Tensor mc_kl(const Distribution& p, const Distribution& q,
             Generator* gen = nullptr);

}  // namespace tx::dist
