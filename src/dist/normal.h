// Gaussian distributions: factorized Normal, point-mass Delta, LogNormal.
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

/// Fully factorized Normal over a tensor of shape broadcast(loc, scale).
class Normal : public Distribution {
 public:
  Normal(Tensor loc, Tensor scale);
  /// Scalar-parameter convenience.
  Normal(float loc, float scale);

  const Shape& shape() const override { return shape_; }
  std::string name() const override { return "Normal"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor rsample(Generator* gen = nullptr) const override;
  bool has_rsample() const override { return true; }
  Tensor log_prob(const Tensor& value) const override;
  Tensor log_prob_sum(const Tensor& value) const override;
  Tensor entropy() const override;
  Tensor mean() const override { return loc_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

  const Tensor& loc() const { return loc_; }
  const Tensor& scale() const { return scale_; }
  Tensor stddev() const { return scale_; }
  Tensor variance() const { return square(scale_); }

 private:
  Tensor loc_, scale_;
  Shape shape_;
};

/// Point mass at `value`. log_prob is 0 at the point (Pyro convention), -inf
/// elsewhere; rsample returns the value itself so gradients flow to it —
/// exactly what AutoDelta/MAP need.
class Delta : public Distribution {
 public:
  explicit Delta(Tensor value);

  const Shape& shape() const override { return value_.shape(); }
  std::string name() const override { return "Delta"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor rsample(Generator* gen = nullptr) const override { (void)gen; return value_; }
  bool has_rsample() const override { return true; }
  Tensor log_prob(const Tensor& value) const override;
  Tensor entropy() const override { return zeros(value_.shape()); }
  Tensor mean() const override { return value_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

  const Tensor& value() const { return value_; }

 private:
  Tensor value_;
};

/// exp(Normal(loc, scale)); used as a positive-support guide, e.g. over an
/// unknown likelihood variance.
class LogNormal : public Distribution {
 public:
  LogNormal(Tensor loc, Tensor scale);

  const Shape& shape() const override { return shape_; }
  std::string name() const override { return "LogNormal"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor rsample(Generator* gen = nullptr) const override;
  bool has_rsample() const override { return true; }
  Tensor log_prob(const Tensor& value) const override;
  Tensor mean() const override;
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

  const Tensor& loc() const { return loc_; }
  const Tensor& scale() const { return scale_; }

 private:
  Tensor loc_, scale_;
  Shape shape_;
};

}  // namespace tx::dist
