#include "dist/kl.h"

#include "dist/normal.h"

namespace tx::dist {

namespace {

/// KL(N(m1,s1) || N(m2,s2)) elementwise, then summed.
Tensor kl_normal_normal(const Normal& p, const Normal& q) {
  Tensor var_ratio = square(div(p.scale(), q.scale()));
  Tensor t1 = square(div(sub(p.loc(), q.loc()), q.scale()));
  Tensor kl = mul(Tensor::scalar(0.5f),
                  sub(add(var_ratio, t1),
                      add(log(var_ratio), Tensor::scalar(1.0f))));
  return sum(kl);
}

}  // namespace

bool has_analytic_kl(const Distribution& p, const Distribution& q) {
  return dynamic_cast<const Normal*>(&p) != nullptr &&
         dynamic_cast<const Normal*>(&q) != nullptr;
}

Tensor kl_divergence(const Distribution& p, const Distribution& q) {
  const auto* pn = dynamic_cast<const Normal*>(&p);
  const auto* qn = dynamic_cast<const Normal*>(&q);
  if (pn && qn) return kl_normal_normal(*pn, *qn);
  TX_THROW("no analytic KL registered for ", p.name(), " || ", q.name());
}

Tensor mc_kl(const Distribution& p, const Distribution& q, Generator* gen) {
  Tensor x = p.has_rsample() ? p.rsample(gen) : p.sample(gen);
  return sub(p.log_prob_sum(x), q.log_prob_sum(x));
}

}  // namespace tx::dist
