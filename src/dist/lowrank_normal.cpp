#include "dist/lowrank_normal.h"

#include <cmath>

namespace tx::dist {

namespace {
constexpr float kLog2Pi = 1.8378770664093453f;
}  // namespace

LowRankNormal::LowRankNormal(Tensor loc, Tensor cov_factor, Tensor cov_diag)
    : loc_(std::move(loc)),
      cov_factor_(std::move(cov_factor)),
      cov_diag_(std::move(cov_diag)) {
  TX_CHECK(loc_.defined() && cov_factor_.defined() && cov_diag_.defined(),
           "LowRankNormal: undefined params");
  n_ = loc_.numel();
  TX_CHECK(cov_factor_.rank() == 2 && cov_factor_.dim(0) == n_,
           "LowRankNormal: cov_factor must be (numel(loc), rank), got [",
           join(cov_factor_.shape()), "] for n=", n_);
  TX_CHECK(cov_diag_.numel() == n_, "LowRankNormal: cov_diag numel mismatch");
}

Tensor LowRankNormal::sample(Generator* gen) const {
  NoGradGuard ng;
  return rsample(gen).detach();
}

Tensor LowRankNormal::rsample(Generator* gen) const {
  const std::int64_t r = rank_of_factor();
  Tensor z = randn({r, 1}, gen);
  Tensor eps = randn(loc_.shape(), gen);
  Tensor low_rank_part = reshape(matmul(cov_factor_, z), loc_.shape());
  return add(add(loc_, low_rank_part), mul(abs(cov_diag_), eps));
}

Tensor LowRankNormal::capacitance() const {
  const std::int64_t r = rank_of_factor();
  Tensor d2 = reshape(square(cov_diag_), {n_, 1});
  Tensor w_over_d = div(cov_factor_, d2);  // D^{-1} W, n x r
  return add(eye(r), matmul(transpose(cov_factor_, 0, 1), w_over_d));
}

Tensor LowRankNormal::log_prob(const Tensor& value) const {
  TX_CHECK(value.numel() == n_, "LowRankNormal: value numel mismatch");
  Tensor diff = reshape(sub(value, loc_), {n_, 1});
  Tensor d2 = reshape(square(cov_diag_), {n_, 1});
  Tensor diff_over_d = div(diff, d2);  // D^{-1} (x - mu)
  Tensor cap = capacitance();
  // Mahalanobis term via Woodbury:
  //   diffᵀ D⁻¹ diff − (Wᵀ D⁻¹ diff)ᵀ C⁻¹ (Wᵀ D⁻¹ diff)
  Tensor u = matmul(transpose(cov_factor_, 0, 1), diff_over_d);  // r x 1
  Tensor quad_direct = sum(mul(diff, diff_over_d));
  Tensor quad_corr = sum(mul(u, matmul(inverse_spd(cap), u)));
  Tensor quad = sub(quad_direct, quad_corr);
  // log|Σ| = log|C| + Σ log d_i² (matrix determinant lemma).
  Tensor logdet = add(logdet_spd(cap), sum(log(square(cov_diag_))));
  Tensor n_term = Tensor::scalar(static_cast<float>(n_) * kLog2Pi);
  return mul(Tensor::scalar(-0.5f), add(add(quad, logdet), n_term));
}

Tensor LowRankNormal::entropy() const {
  Tensor cap = capacitance();
  Tensor logdet = add(logdet_spd(cap), sum(log(square(cov_diag_))));
  const float c = 0.5f * static_cast<float>(n_) * (kLog2Pi + 1.0f);
  return add(mul(Tensor::scalar(0.5f), logdet), Tensor::scalar(c));
}

DistPtr LowRankNormal::detach_params() const {
  return std::make_shared<LowRankNormal>(loc_.detach(), cov_factor_.detach(),
                                         cov_diag_.detach());
}

DistPtr LowRankNormal::expand(const Shape&) const {
  TX_THROW("LowRankNormal: expand() is not supported (joint distribution)");
}

}  // namespace tx::dist
