// Poisson distribution with rate parameter (used by the Poisson likelihood,
// the paper's example of how easily new likelihoods are added).
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

class Poisson : public Distribution {
 public:
  explicit Poisson(Tensor rate);

  const Shape& shape() const override { return rate_.shape(); }
  std::string name() const override { return "Poisson"; }
  Tensor sample(Generator* gen = nullptr) const override;
  /// Differentiable w.r.t. rate; value is a constant count tensor.
  Tensor log_prob(const Tensor& value) const override;
  Tensor mean() const override { return rate_; }
  const Tensor& rate() const { return rate_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

 private:
  Tensor rate_;
};

}  // namespace tx::dist
