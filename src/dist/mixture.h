// Two-component Gaussian scale mixture prior (the BLiTZ-style
// "spike-and-slab" prior the paper's related-work section mentions):
//   p(w) = pi * N(0, sigma1²) + (1 - pi) * N(0, sigma2²), elementwise.
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

class ScaleMixtureNormal : public Distribution {
 public:
  /// `shape` is the event shape; the mixture is i.i.d. over it.
  ScaleMixtureNormal(Shape shape, float pi, float sigma1, float sigma2);

  const Shape& shape() const override { return shape_; }
  std::string name() const override { return "ScaleMixtureNormal"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor log_prob(const Tensor& value) const override;
  Tensor mean() const override { return zeros(shape_); }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

  float mixing() const { return pi_; }
  float sigma1() const { return sigma1_; }
  float sigma2() const { return sigma2_; }

 private:
  Shape shape_;
  float pi_, sigma1_, sigma2_;
};

}  // namespace tx::dist
