// Discrete observation distributions: Bernoulli and Categorical, both
// logit-parameterized (the stable form likelihoods use).
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

/// Elementwise Bernoulli with logits. Samples are 0/1 floats of the logits'
/// shape; log_prob uses the numerically stable BCE-with-logits form.
class Bernoulli : public Distribution {
 public:
  explicit Bernoulli(Tensor logits);
  static Bernoulli from_probs(const Tensor& probs);

  const Shape& shape() const override { return logits_.shape(); }
  std::string name() const override { return "Bernoulli"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor log_prob(const Tensor& value) const override;
  Tensor mean() const override { return sigmoid(logits_); }
  Tensor probs() const { return sigmoid(logits_); }
  const Tensor& logits() const { return logits_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

 private:
  Tensor logits_;
};

/// Categorical over the last axis of `logits`; a draw has the leading
/// (batch) shape and holds float-encoded class indices.
class Categorical : public Distribution {
 public:
  explicit Categorical(Tensor logits);

  const Shape& shape() const override { return batch_shape_; }
  std::string name() const override { return "Categorical"; }
  std::int64_t num_classes() const { return logits_.dim(-1); }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor log_prob(const Tensor& value) const override;
  /// Full probability table (batch x classes).
  Tensor probs() const { return softmax(logits_, -1); }
  Tensor log_probs() const { return log_softmax(logits_, -1); }
  const Tensor& logits() const { return logits_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

 private:
  Tensor logits_;
  Shape batch_shape_;
};

}  // namespace tx::dist
