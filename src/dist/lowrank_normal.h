// Joint Gaussian with low-rank-plus-diagonal covariance, the posterior family
// used for the "LL low rank" row of the paper's Table 1:
//   x ~ N(loc, cov_factor cov_factorᵀ + diag(cov_diag²)).
// Samples and log-densities treat the whole tensor as one event; log_prob is
// a scalar computed via the Woodbury identity and matrix determinant lemma so
// only a rank x rank system is ever factorized.
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

class LowRankNormal : public Distribution {
 public:
  /// loc: any shape (flattened internally to n); cov_factor: (n, rank);
  /// cov_diag: same shape as loc, strictly positive (interpreted as standard
  /// deviations of the diagonal part).
  LowRankNormal(Tensor loc, Tensor cov_factor, Tensor cov_diag);

  const Shape& shape() const override { return loc_.shape(); }
  std::string name() const override { return "LowRankNormal"; }
  std::int64_t rank_of_factor() const { return cov_factor_.dim(1); }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor rsample(Generator* gen = nullptr) const override;
  bool has_rsample() const override { return true; }
  /// Scalar joint log-density.
  Tensor log_prob(const Tensor& value) const override;
  Tensor entropy() const override;
  Tensor mean() const override { return loc_; }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

  const Tensor& loc() const { return loc_; }
  const Tensor& cov_factor() const { return cov_factor_; }
  const Tensor& cov_diag() const { return cov_diag_; }

 private:
  /// I_r + Wᵀ D⁻¹ W where D = diag(cov_diag²).
  Tensor capacitance() const;

  Tensor loc_, cov_factor_, cov_diag_;
  std::int64_t n_;
};

}  // namespace tx::dist
