#include "dist/uniform.h"

#include <cmath>

namespace tx::dist {

Uniform::Uniform(Tensor lo, Tensor hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  TX_CHECK(lo_.defined() && hi_.defined(), "Uniform: undefined params");
  shape_ = broadcast_shapes(lo_.shape(), hi_.shape());
  for (std::int64_t i = 0; i < lo_.numel(); ++i) {
    TX_CHECK(lo_.at(i) < hi_.at(std::min(i, hi_.numel() - 1)),
             "Uniform: lo must be < hi");
  }
}

Uniform::Uniform(float lo, float hi)
    : Uniform(Tensor::scalar(lo), Tensor::scalar(hi)) {}

Tensor Uniform::sample(Generator* gen) const {
  NoGradGuard ng;
  return rsample(gen).detach();
}

Tensor Uniform::rsample(Generator* gen) const {
  Tensor u = rand_uniform(shape_, 0.0f, 1.0f, gen);
  return add(broadcast_to(lo_, shape_),
             mul(u, broadcast_to(sub(hi_, lo_), shape_)));
}

Tensor Uniform::log_prob(const Tensor& value) const {
  Tensor base = neg(log(sub(hi_, lo_)));
  Tensor lp = broadcast_to(base, broadcast_shapes(value.shape(), shape_));
  // Outside the support the density is zero.
  Tensor out = lp.detach();
  Tensor lo_b = broadcast_to(lo_, out.shape()).detach();
  Tensor hi_b = broadcast_to(hi_, out.shape()).detach();
  bool any_outside = false;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float v = value.at(i % value.numel());
    if (v < lo_b.at(i) || v >= hi_b.at(i)) any_outside = true;
  }
  if (!any_outside) return lp;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float v = value.at(i % value.numel());
    if (v < lo_b.at(i) || v >= hi_b.at(i)) {
      out.at(i) = -std::numeric_limits<float>::infinity();
    }
  }
  return out;
}

DistPtr Uniform::detach_params() const {
  return std::make_shared<Uniform>(lo_.detach(), hi_.detach());
}

DistPtr Uniform::expand(const Shape& target) const {
  return std::make_shared<Uniform>(broadcast_to(lo_, target),
                                   broadcast_to(hi_, target));
}

}  // namespace tx::dist
