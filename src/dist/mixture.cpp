#include "dist/mixture.h"

#include <cmath>

namespace tx::dist {

ScaleMixtureNormal::ScaleMixtureNormal(Shape shape, float pi, float sigma1,
                                       float sigma2)
    : shape_(std::move(shape)), pi_(pi), sigma1_(sigma1), sigma2_(sigma2) {
  TX_CHECK(pi_ > 0.0f && pi_ < 1.0f, "ScaleMixtureNormal: pi must be in (0,1)");
  TX_CHECK(sigma1_ > 0.0f && sigma2_ > 0.0f,
           "ScaleMixtureNormal: sigmas must be positive");
}

Tensor ScaleMixtureNormal::sample(Generator* gen) const {
  Generator& g = gen ? *gen : global_generator();
  Tensor out = zeros(shape_);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float sigma = g.bernoulli(pi_) ? sigma1_ : sigma2_;
    out.at(i) = static_cast<float>(g.normal(0.0, sigma));
  }
  return out;
}

Tensor ScaleMixtureNormal::log_prob(const Tensor& value) const {
  // log(pi N1 + (1-pi) N2) in a numerically safe composite form.
  constexpr float kLogSqrt2Pi = 0.9189385332046727f;
  auto component = [&](float sigma) {
    Tensor z = div(value, Tensor::scalar(sigma));
    return sub(mul(Tensor::scalar(-0.5f), square(z)),
               Tensor::scalar(std::log(sigma) + kLogSqrt2Pi));
  };
  Tensor l1 = add(component(sigma1_), Tensor::scalar(std::log(pi_)));
  Tensor l2 = add(component(sigma2_), Tensor::scalar(std::log(1.0f - pi_)));
  // logsumexp over the two components, elementwise.
  Tensor m = maximum(l1.detach(), l2.detach());
  return add(log(add(exp(sub(l1, m)), exp(sub(l2, m)))), m);
}

DistPtr ScaleMixtureNormal::detach_params() const {
  return std::make_shared<ScaleMixtureNormal>(shape_, pi_, sigma1_, sigma2_);
}

DistPtr ScaleMixtureNormal::expand(const Shape& target) const {
  return std::make_shared<ScaleMixtureNormal>(target, pi_, sigma1_, sigma2_);
}

}  // namespace tx::dist
