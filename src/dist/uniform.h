// Continuous Uniform[lo, hi) distribution (used by dataset generators and as
// a simple non-Gaussian prior option).
#pragma once

#include "dist/distribution.h"

namespace tx::dist {

class Uniform : public Distribution {
 public:
  Uniform(Tensor lo, Tensor hi);
  Uniform(float lo, float hi);

  const Shape& shape() const override { return shape_; }
  std::string name() const override { return "Uniform"; }
  Tensor sample(Generator* gen = nullptr) const override;
  Tensor rsample(Generator* gen = nullptr) const override;
  bool has_rsample() const override { return true; }
  Tensor log_prob(const Tensor& value) const override;
  Tensor entropy() const override { return log(sub(hi_, lo_)); }
  Tensor mean() const override {
    return mul(Tensor::scalar(0.5f), add(lo_, hi_));
  }
  DistPtr detach_params() const override;
  DistPtr expand(const Shape& target) const override;

 private:
  Tensor lo_, hi_;
  Shape shape_;
};

}  // namespace tx::dist
