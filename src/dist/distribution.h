// Distribution interface, the analogue of pyro.distributions. A Distribution
// describes a random tensor of a fixed shape; log_prob is elementwise over
// that shape unless the distribution is inherently joint (LowRankNormal), in
// which case log_prob returns a scalar. log_prob_sum is always a scalar and
// is what inference code uses.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace tx::dist {

class Distribution;
using DistPtr = std::shared_ptr<Distribution>;

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Shape of a single draw.
  virtual const Shape& shape() const = 0;

  virtual std::string name() const = 0;

  /// Non-reparameterized draw (no gradient graph).
  virtual Tensor sample(Generator* gen = nullptr) const = 0;

  /// Reparameterized draw carrying gradients to the parameters. Throws for
  /// distributions without a pathwise derivative.
  virtual Tensor rsample(Generator* gen = nullptr) const;

  virtual bool has_rsample() const { return false; }

  /// Log-density, elementwise over shape() (scalar for joint distributions).
  virtual Tensor log_prob(const Tensor& value) const = 0;

  /// Scalar sum of log_prob — the quantity inference accumulates. Virtual so
  /// factorized families can fuse the whole chain into one kernel (Normal
  /// routes to gauss_logpdf_sum); the default sums log_prob.
  virtual Tensor log_prob_sum(const Tensor& value) const;

  /// Differential entropy; throws if not implemented.
  virtual Tensor entropy() const;

  /// Distribution mean; throws if undefined/not implemented.
  virtual Tensor mean() const;

  /// Copy of this distribution whose parameters are detached from any
  /// autograd graph. Used to turn posteriors into priors (continual learning).
  virtual DistPtr detach_params() const = 0;

  /// Same family with parameters broadcast to `target` (used by IIDPrior to
  /// expand a scalar prototype over a parameter tensor).
  virtual DistPtr expand(const Shape& target) const = 0;
};

}  // namespace tx::dist
