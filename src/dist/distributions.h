// Umbrella header for the distribution library.
#pragma once

#include "dist/discrete.h"
#include "dist/distribution.h"
#include "dist/kl.h"
#include "dist/lowrank_normal.h"
#include "dist/mixture.h"
#include "dist/normal.h"
#include "dist/poisson.h"
#include "dist/uniform.h"
