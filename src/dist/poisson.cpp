#include "dist/poisson.h"

#include <cmath>
#include <random>

namespace tx::dist {

Poisson::Poisson(Tensor rate) : rate_(std::move(rate)) {
  TX_CHECK(rate_.defined(), "Poisson: undefined rate");
}

Tensor Poisson::sample(Generator* gen) const {
  Generator& g = gen ? *gen : global_generator();
  Tensor out = zeros(rate_.shape());
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    std::poisson_distribution<long> d(static_cast<double>(rate_.at(i)));
    out.at(i) = static_cast<float>(d(g.engine()));
  }
  return out;
}

Tensor Poisson::log_prob(const Tensor& value) const {
  // k log(rate) - rate - lgamma(k + 1); the lgamma term is a constant in the
  // rate, so it is computed outside the graph.
  Tensor lgamma_term = zeros(value.shape());
  for (std::int64_t i = 0; i < value.numel(); ++i) {
    lgamma_term.at(i) =
        static_cast<float>(std::lgamma(static_cast<double>(value.at(i)) + 1.0));
  }
  return sub(sub(mul(value, log(rate_)), rate_), lgamma_term);
}

DistPtr Poisson::detach_params() const {
  return std::make_shared<Poisson>(rate_.detach());
}

DistPtr Poisson::expand(const Shape& target) const {
  return std::make_shared<Poisson>(broadcast_to(rate_, target));
}

}  // namespace tx::dist
