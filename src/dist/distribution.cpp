#include "dist/distribution.h"

namespace tx::dist {

Tensor Distribution::rsample(Generator*) const {
  TX_THROW(name(), " has no reparameterized sampler");
}

Tensor Distribution::log_prob_sum(const Tensor& value) const {
  Tensor lp = log_prob(value);
  if (lp.numel() == 1 && lp.rank() == 0) return lp;
  return sum(lp);
}

Tensor Distribution::entropy() const {
  TX_THROW(name(), " does not implement entropy()");
}

Tensor Distribution::mean() const {
  TX_THROW(name(), " does not implement mean()");
}

}  // namespace tx::dist
