#include "dist/discrete.h"

#include <cmath>

namespace tx::dist {

Bernoulli::Bernoulli(Tensor logits) : logits_(std::move(logits)) {
  TX_CHECK(logits_.defined(), "Bernoulli: undefined logits");
}

Bernoulli Bernoulli::from_probs(const Tensor& probs) {
  NoGradGuard ng;
  Tensor clamped = clamp(probs, 1e-6f, 1.0f - 1e-6f);
  return Bernoulli(log(div(clamped, sub(Tensor::scalar(1.0f), clamped))));
}

Tensor Bernoulli::sample(Generator* gen) const {
  Generator& g = gen ? *gen : global_generator();
  Tensor p;
  {
    NoGradGuard ng;
    p = sigmoid(logits_);
  }
  Tensor out = zeros(p.shape());
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    out.at(i) = g.bernoulli(p.at(i)) ? 1.0f : 0.0f;
  }
  return out;
}

Tensor Bernoulli::log_prob(const Tensor& value) const {
  // log p = y*l - softplus(l) for y in {0,1} with logit l.
  TX_CHECK(broadcastable(value.shape(), logits_.shape()),
           "Bernoulli: value shape mismatch");
  return sub(mul(value, logits_), softplus(logits_));
}

DistPtr Bernoulli::detach_params() const {
  return std::make_shared<Bernoulli>(logits_.detach());
}

DistPtr Bernoulli::expand(const Shape& target) const {
  return std::make_shared<Bernoulli>(broadcast_to(logits_, target));
}

Categorical::Categorical(Tensor logits) : logits_(std::move(logits)) {
  TX_CHECK(logits_.defined() && logits_.rank() >= 1,
           "Categorical: logits must have rank >= 1");
  batch_shape_.assign(logits_.shape().begin(), logits_.shape().end() - 1);
}

Tensor Categorical::sample(Generator* gen) const {
  Generator& g = gen ? *gen : global_generator();
  Tensor p;
  {
    NoGradGuard ng;
    p = softmax(logits_, -1);
  }
  const std::int64_t classes = num_classes();
  const std::int64_t rows = numel_of(batch_shape_);
  Tensor out = zeros(batch_shape_);
  for (std::int64_t r = 0; r < rows; ++r) {
    const double u = g.uniform();
    double acc = 0.0;
    std::int64_t pick = classes - 1;
    for (std::int64_t c = 0; c < classes; ++c) {
      acc += p.at(r * classes + c);
      if (u < acc) {
        pick = c;
        break;
      }
    }
    out.at(r) = static_cast<float>(pick);
  }
  return out;
}

Tensor Categorical::log_prob(const Tensor& value) const {
  TX_CHECK(value.shape() == batch_shape_, "Categorical: value shape [",
           join(value.shape()), "] != batch shape [", join(batch_shape_), "]");
  return gather_last(log_softmax(logits_, -1), value);
}

DistPtr Categorical::detach_params() const {
  return std::make_shared<Categorical>(logits_.detach());
}

DistPtr Categorical::expand(const Shape& target) const {
  Shape full = target;
  full.push_back(num_classes());
  return std::make_shared<Categorical>(broadcast_to(logits_, full));
}

}  // namespace tx::dist
