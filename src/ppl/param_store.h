// Global parameter store, the analogue of Pyro's param store. Guides and
// deterministic ("hidden from the prior") network parameters live here; the
// optimizers in tx::infer update whatever it contains.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tx::ppl {

/// Thread-safe for concurrent lookups and lazy creation (tx::par runs ELBO
/// particles in parallel and every particle's guide touches the store);
/// per-method locking keeps the map consistent, while deterministic creation
/// order is the parallel drivers' job (they run the first particle inline
/// before fanning out).
class ParamStore {
 public:
  /// Returns the stored parameter, creating it from `init` on first use. The
  /// returned tensor is a handle into the store: in-place updates by an
  /// optimizer are visible everywhere it is shared. Created parameters
  /// require grad.
  Tensor get_or_create(const std::string& name, const Tensor& init);
  Tensor get_or_create(const std::string& name,
                       const std::function<Tensor()>& init);

  bool contains(const std::string& name) const;
  Tensor get(const std::string& name) const;
  void set(const std::string& name, Tensor value);
  void erase(const std::string& name);
  /// Remove every parameter (pyro.clear_param_store()).
  void clear();
  std::size_t size() const;

  /// All (name, tensor) pairs, sorted by name.
  std::vector<std::pair<std::string, Tensor>> items() const;
  /// Parameters whose names start with `prefix`.
  std::vector<std::pair<std::string, Tensor>> items_with_prefix(
      const std::string& prefix) const;

  /// Snapshot / restore of all values (used by VCL coreset fine-tuning and by
  /// tests).
  std::map<std::string, Tensor> snapshot() const;
  void restore(const std::map<std::string, Tensor>& snap);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Tensor> params_;
};

/// Process-wide store used by param() below.
ParamStore& param_store();

/// pyro.param analogue.
Tensor param(const std::string& name, const Tensor& init);
Tensor param(const std::string& name, const std::function<Tensor()>& init);

/// pyro.clear_param_store analogue.
void clear_param_store();

}  // namespace tx::ppl
