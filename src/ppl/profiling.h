// Observability as an effect handler (the paper's thesis applied to
// instrumentation): ProfilingMessenger rides the same messenger stack as
// trace/replay/local-reparameterization and counts every sample / observe /
// param site the wrapped program touches, plus wall-clock per named section
// (model vs. guide). Model code stays untouched — attach the profiler around
// any program exactly like any other poutine.
//
//   ProfilingMessenger prof;
//   prof.run("guide", guide);
//   prof.run("model", model);
//   prof.publish("svi");   // mirror totals into the global obs registry
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ppl/messenger.h"

namespace tx::ppl {

class ProfilingMessenger;

/// RAII activation: registers on the handler stack *and* as the thread's
/// param-site watcher (param() bypasses the messenger stack, so counting it
/// needs this side channel).
class ProfilingScope {
 public:
  explicit ProfilingScope(ProfilingMessenger& p);
  ~ProfilingScope();
  ProfilingScope(const ProfilingScope&) = delete;
  ProfilingScope& operator=(const ProfilingScope&) = delete;

 private:
  HandlerScope handler_scope_;
  ProfilingMessenger* prev_;
};

struct SectionStats {
  std::int64_t calls = 0;
  double seconds = 0.0;
};

class ProfilingMessenger : public Messenger {
 public:
  /// Counting happens in process_message (profilers sit innermost, so they
  /// see sites even when an outer block would hide them).
  void process_message(SampleMsg& msg) override;

  /// Execute `fn` under this profiler, timing it as `section`.
  void run(const std::string& section, const std::function<void()>& fn);

  std::int64_t sample_count() const { return sample_count_; }
  std::int64_t observe_count() const { return observe_count_; }
  std::int64_t param_count() const { return param_count_; }
  /// Per-site-name invocation counts (sample sites only).
  const std::map<std::string, std::int64_t>& site_counts() const {
    return site_counts_;
  }
  const std::map<std::string, SectionStats>& sections() const {
    return sections_;
  }

  void reset();

  /// Mirror the accumulated totals into the global obs registry under
  /// `prefix` ("<prefix>.sample_sites", "<prefix>.<section>_seconds", ...).
  void publish(const std::string& prefix = "ppl") const;

  /// Entry point for the param-store hook (detail::notify_param_site).
  void count_param(const std::string& name);

 private:
  std::int64_t sample_count_ = 0;
  std::int64_t observe_count_ = 0;
  std::int64_t param_count_ = 0;
  std::map<std::string, std::int64_t> site_counts_;
  std::map<std::string, SectionStats> sections_;
};

/// Chrome-trace sibling of ProfilingMessenger: marks every sample / observe
/// site the wrapped program touches as an instant event on the tracer's
/// timeline (obs/trace.h), tagged with the site name, kind, and element
/// count. No-op while tracing is off, so it can stay attached permanently:
///
///   TracingMessenger tracer;
///   HandlerScope scope(tracer);
///   svi.step();   // every ppl site now ticks the timeline
class TracingMessenger : public Messenger {
 public:
  /// Sites mark in postprocess_message (outermost-last), after the value
  /// exists, so the event can carry the realized shape.
  void postprocess_message(SampleMsg& msg) override;

  std::int64_t sites_traced() const { return sites_traced_; }

 private:
  std::int64_t sites_traced_ = 0;
};

namespace detail {
/// Called by param() for every param-store access; forwards to the active
/// ProfilingScope's messenger, if any.
void notify_param_site(const std::string& name);
}  // namespace detail

}  // namespace tx::ppl
