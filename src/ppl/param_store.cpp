#include "ppl/param_store.h"

#include "ppl/profiling.h"

namespace tx::ppl {

Tensor ParamStore::get_or_create(const std::string& name, const Tensor& init) {
  detail::notify_param_site(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = params_.find(name);
  if (it != params_.end()) return it->second;
  TX_CHECK(init.defined(), "param '", name, "' does not exist and init is undefined");
  Tensor stored = init.detach();
  stored.set_requires_grad(true);
  params_.emplace(name, stored);
  return stored;
}

Tensor ParamStore::get_or_create(const std::string& name,
                                 const std::function<Tensor()>& init) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = params_.find(name);
    if (it != params_.end()) {
      detail::notify_param_site(name);
      return it->second;
    }
  }
  // init() runs outside the lock (it may itself touch the store). If another
  // thread created the param meanwhile, the create path below returns the
  // existing tensor and this init value is discarded.
  return get_or_create(name, init());  // notifies on the create path
}

bool ParamStore::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return params_.count(name) > 0;
}

Tensor ParamStore::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = params_.find(name);
  TX_CHECK(it != params_.end(), "no param named '", name, "'");
  return it->second;
}

void ParamStore::set(const std::string& name, Tensor value) {
  TX_CHECK(value.defined(), "set param '", name, "': undefined value");
  if (!value.requires_grad()) {
    value = value.detach();
    value.set_requires_grad(true);
  }
  std::lock_guard<std::mutex> lock(mu_);
  params_[name] = std::move(value);
}

void ParamStore::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  params_.erase(name);
}

void ParamStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  params_.clear();
}

std::size_t ParamStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return params_.size();
}

std::vector<std::pair<std::string, Tensor>> ParamStore::items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {params_.begin(), params_.end()};
}

std::vector<std::pair<std::string, Tensor>> ParamStore::items_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, t] : params_) {
    if (name.rfind(prefix, 0) == 0) out.emplace_back(name, t);
  }
  return out;
}

std::map<std::string, Tensor> ParamStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Tensor> snap;
  for (const auto& [name, t] : params_) snap.emplace(name, t.detach());
  return snap;
}

void ParamStore::restore(const std::map<std::string, Tensor>& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate before writing anything so a bad snapshot cannot half-apply.
  for (const auto& [name, value] : snap) {
    auto it = params_.find(name);
    TX_CHECK(it != params_.end(), "restore: no param named '", name, "'");
    TX_CHECK(it->second.shape() == value.shape(),
             "restore: shape mismatch for '", name, "'");
  }
  for (const auto& [name, value] : snap) {
    auto it = params_.find(name);
    TX_CHECK(it != params_.end(), "restore: no param named '", name, "'");
    // Write through the existing handle so shared references see the values.
    it->second.copy_(value);
  }
}

ParamStore& param_store() {
  static ParamStore store;
  return store;
}

Tensor param(const std::string& name, const Tensor& init) {
  return param_store().get_or_create(name, init);
}

Tensor param(const std::string& name, const std::function<Tensor()>& init) {
  return param_store().get_or_create(name, init);
}

void clear_param_store() { param_store().clear(); }

}  // namespace tx::ppl
