#include "ppl/diag.h"

#include <cmath>
#include <limits>
#include <vector>

#include "dist/kl.h"
#include "obs/diag.h"

namespace tx::ppl {

void DiagnosticsMessenger::postprocess_message(SampleMsg& msg) {
#ifndef TX_OBS_DISABLED
  namespace diag = tx::obs::diag;
  if (!diag::enabled() || !diag::in_svi_step()) return;
  if (msg.is_observed || !msg.value.defined()) return;

  const std::int64_t n = msg.value.numel();
  const float* data = msg.value.data();
  double sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool finite = true;
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = data[i];
    sum += v;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
    if (!std::isfinite(v)) finite = false;
  }
  const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;

  std::vector<double> sample_values;
  if (!finite) {
    const std::size_t cap = diag::config().max_dump_values;
    for (std::int64_t i = 0; i < n && sample_values.size() < cap; ++i) {
      sample_values.push_back(data[i]);
    }
  }
  diag::record_site_value(msg.name, mean, lo, hi, n, finite, sample_values);

  // Pair the guide sighting (first, stores q) with the model replay
  // (second, carries p) for the analytic KL(q‖p). Entries are tagged with
  // the SVI step: a site sighted only once per step (guide-only or
  // model-only) would otherwise leave a stale q that pairs with a later
  // step's sighting — swapped q/p or KL across steps, silently wrong.
  const std::int64_t step = diag::current_svi_step();
  const auto key = std::make_pair(std::this_thread::get_id(), msg.name);
  dist::DistPtr q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sites_seen_;
    auto it = pending_q_.find(key);
    if (it == pending_q_.end() || it->second.svi_step != step) {
      pending_q_[key] = {msg.distribution, step};  // stale entries replaced
      return;
    }
    q = it->second.q;
    pending_q_.erase(it);
  }
  if (!q || !msg.distribution) return;
  if (!dist::has_analytic_kl(*q, *msg.distribution)) return;
  NoGradGuard no_grad;
  const double kl = dist::kl_divergence(*q, *msg.distribution).item();
  diag::record_site_kl(msg.name, kl);
#else
  (void)msg;
#endif
}

std::int64_t DiagnosticsMessenger::sites_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_seen_;
}

}  // namespace tx::ppl
