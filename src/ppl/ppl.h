// Umbrella header for the probabilistic-programming core.
#pragma once

#include "ppl/diag.h"
#include "ppl/handlers.h"
#include "ppl/messenger.h"
#include "ppl/param_store.h"
#include "ppl/profiling.h"
#include "ppl/trace.h"
