// Execution traces: the record of every sample site touched while a
// probabilistic program ran under a TraceMessenger.
#pragma once

#include <string>
#include <vector>

#include "ppl/messenger.h"

namespace tx::ppl {

/// One recorded sample site.
struct SiteRecord {
  std::string name;
  dist::DistPtr distribution;
  Tensor value;
  bool is_observed = false;
  double scale = 1.0;
  Tensor mask;  // undefined = unmasked

  /// scale * sum(mask * log_prob(value)).
  Tensor log_prob_sum() const;
};

class Trace {
 public:
  void add(SiteRecord site);
  bool contains(const std::string& name) const;
  const SiteRecord& at(const std::string& name) const;
  SiteRecord& at(const std::string& name);
  /// Sites in program (insertion) order.
  const std::vector<SiteRecord>& sites() const { return sites_; }
  std::size_t size() const { return sites_.size(); }
  void clear() { sites_.clear(); }

  /// Sum of log_prob_sum over all sites (the joint log-density).
  Tensor log_prob_sum() const;
  /// Same, restricted to (non-)observed sites.
  Tensor log_prob_sum(bool observed_only) const;

 private:
  std::vector<SiteRecord> sites_;
};

}  // namespace tx::ppl
