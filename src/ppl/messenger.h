// Effect-handler core, the analogue of Pyro's poutine machinery.
//
// A probabilistic program is ordinary C++ that calls ppl::sample(name, dist
// [, obs]). Each call builds a SampleMsg and applies the active handler
// stack: process_message runs innermost-first (a handler may fill in the
// value, rescale it, or stop propagation), then the default sampler runs if
// no handler decided the value, then postprocess_message runs outermost-last
// (this is where traces record). Handlers are entered/exited with RAII
// HandlerScope objects, mirroring Python's `with` blocks.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "tensor/tensor.h"

namespace tx::ppl {

/// The message threaded through the handler stack for one sample statement.
struct SampleMsg {
  std::string name;
  dist::DistPtr distribution;
  Tensor value;             // undefined until decided
  bool is_observed = false;
  double scale = 1.0;       // log_prob multiplier (mini-batch scaling)
  Tensor mask;              // optional elementwise log_prob mask (undefined = all on)
  bool done = false;        // a handler already decided the value
  bool stop = false;        // stop propagating to outer handlers
  bool infer_hidden = false;  // site hidden from outer handlers by block
};

class Messenger {
 public:
  virtual ~Messenger() = default;
  /// Runs innermost-first before the value is decided.
  virtual void process_message(SampleMsg& msg) { (void)msg; }
  /// Runs outermost-last after the value is decided.
  virtual void postprocess_message(SampleMsg& msg) { (void)msg; }
};

/// RAII activation of a messenger on the (thread-local) handler stack.
class HandlerScope {
 public:
  explicit HandlerScope(Messenger& m);
  ~HandlerScope();
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;

 private:
  Messenger* messenger_;
};

/// Current stack depth (for tests).
std::size_t handler_depth();

/// Snapshot of this thread's handler stack, innermost last (for propagating
/// effect-handler context into tx::par worker tasks). The pointed-to
/// messengers are owned by the capturing thread and must outlive the scope.
std::vector<Messenger*> handler_stack_snapshot();

/// RAII wholesale replacement of this thread's handler stack with a
/// snapshot; the previous stack is restored on destruction. tx::par installs
/// one on each worker task so poutine handlers entered on the caller are
/// seen inside parallel bodies.
class HandlerStackScope {
 public:
  explicit HandlerStackScope(std::vector<Messenger*> stack);
  ~HandlerStackScope();
  HandlerStackScope(const HandlerStackScope&) = delete;
  HandlerStackScope& operator=(const HandlerStackScope&) = delete;

 private:
  std::vector<Messenger*> previous_;
};

/// RAII redirection of the default sampler's randomness to an explicit
/// Generator (thread-local, nestable). SVI and MCMC install one when given a
/// generator so instrumented runs replay bit-for-bit.
class GeneratorScope {
 public:
  explicit GeneratorScope(Generator* gen);
  ~GeneratorScope();
  GeneratorScope(const GeneratorScope&) = delete;
  GeneratorScope& operator=(const GeneratorScope&) = delete;

 private:
  Generator* prev_;
};

/// Generator installed by the innermost GeneratorScope on this thread, or
/// nullptr (= fall back to the global generator).
Generator* current_generator();

/// The sample primitive: draw (or look up) the value of the named random
/// variable. With `obs` defined the site is observed and the value is fixed.
Tensor sample(const std::string& name, dist::DistPtr distribution,
              const Tensor& obs = Tensor());

/// Apply the handler stack to an already-built message. Exposed so compound
/// handlers (e.g. reparameterization messengers registering synthetic output
/// sites) can inject messages.
void apply_stack(SampleMsg& msg);

}  // namespace tx::ppl
