// DiagnosticsMessenger — the ppl-side feeder of tx::obs::diag.
//
// Attached like any other poutine, it reduces every sample site the wrapped
// program touches to scalars (mean / min / max / finiteness) and streams
// them into the inference-health subsystem. Because ELBO evaluation traces
// the guide first and then replays the model over the same site names, the
// messenger sees q and p for each latent site in that order; when the pair
// has a registered closed form it also records the per-site analytic
// KL(q‖p).
//
// Recording only happens while diag is enabled AND an SVI step is open
// (diag::in_svi_step()) — an MCMC potential evaluates the model hundreds of
// times per transition, and those sightings are accounted by the driver
// instead. The messenger is internally locked: handler_stack_snapshot()
// propagates it into tx::par workers (parallel ELBO particles), so sightings
// may arrive from several threads; q/p pairing is keyed per thread.
//
//   ppl::DiagnosticsMessenger diag_messenger;
//   ppl::HandlerScope scope(diag_messenger);
//   svi.step();   // per-site health now streams into tx::obs::diag
#pragma once

#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "ppl/messenger.h"

namespace tx::ppl {

class DiagnosticsMessenger : public Messenger {
 public:
  /// Sites record in postprocess_message (outermost-last), after the value
  /// exists. Observed sites are skipped — their values are constant data.
  void postprocess_message(SampleMsg& msg) override;

  /// Latent-site sightings recorded (two per site per ELBO evaluation when
  /// the guide/model pair is traced).
  std::int64_t sites_seen() const;

 private:
  struct PendingQ {
    dist::DistPtr q;
    std::int64_t svi_step = -1;  // step the sighting belongs to
  };

  mutable std::mutex mu_;
  std::int64_t sites_seen_ = 0;
  /// Guide-sighting distributions awaiting their model-replay partner,
  /// keyed by (thread, site) so parallel ELBO particles pair correctly.
  /// Each entry is tagged with its SVI step: a site sighted only once in a
  /// step (present in just one of guide/model) leaves a stale entry, which
  /// the next step's first sighting replaces instead of pairing with — KL
  /// can never be computed across a step boundary or with q/p swapped.
  std::map<std::pair<std::thread::id, std::string>, PendingQ> pending_q_;
};

}  // namespace tx::ppl
