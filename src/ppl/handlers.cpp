#include "ppl/handlers.h"

#include <algorithm>

namespace tx::ppl {

void TraceMessenger::postprocess_message(SampleMsg& msg) {
  SiteRecord rec;
  rec.name = msg.name;
  rec.distribution = msg.distribution;
  rec.value = msg.value;
  rec.is_observed = msg.is_observed;
  rec.scale = msg.scale;
  rec.mask = msg.mask;
  trace_.add(std::move(rec));
}

void ReplayMessenger::process_message(SampleMsg& msg) {
  if (msg.is_observed) return;
  if (!trace_->contains(msg.name)) return;
  msg.value = trace_->at(msg.name).value;
  msg.done = true;
}

void ConditionMessenger::process_message(SampleMsg& msg) {
  auto it = data_.find(msg.name);
  if (it == data_.end()) return;
  msg.value = it->second;
  msg.is_observed = true;
  msg.done = true;
}

void MaskMessenger::process_message(SampleMsg& msg) {
  if (!expose_.empty() &&
      std::find(expose_.begin(), expose_.end(), msg.name) == expose_.end()) {
    return;
  }
  if (msg.mask.defined()) {
    msg.mask = mul(msg.mask, mask_);
  } else {
    msg.mask = mask_;
  }
}

BlockMessenger BlockMessenger::hiding(std::vector<std::string> names) {
  return BlockMessenger([names = std::move(names)](const SampleMsg& msg) {
    return std::find(names.begin(), names.end(), msg.name) != names.end();
  });
}

BlockMessenger BlockMessenger::exposing(std::vector<std::string> names) {
  return BlockMessenger([names = std::move(names)](const SampleMsg& msg) {
    return std::find(names.begin(), names.end(), msg.name) == names.end();
  });
}

void BlockMessenger::process_message(SampleMsg& msg) {
  if (hide_fn_(msg)) {
    msg.stop = true;
    msg.infer_hidden = true;
  }
}

Trace trace_fn(const std::function<void()>& fn) {
  TraceMessenger tm;
  {
    HandlerScope scope(tm);
    fn();
  }
  return std::move(tm.trace());
}

}  // namespace tx::ppl
