// Standard effect handlers: trace, replay, condition, block, scale, mask.
// Each mirrors its Pyro poutine namesake.
#pragma once

#include <functional>
#include <map>

#include "ppl/trace.h"

namespace tx::ppl {

/// Records every site it sees into a Trace.
class TraceMessenger : public Messenger {
 public:
  void postprocess_message(SampleMsg& msg) override;
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

/// Forces non-observed sites to take the values recorded in a given trace
/// (used to score a model against guide samples).
class ReplayMessenger : public Messenger {
 public:
  explicit ReplayMessenger(const Trace& trace) : trace_(&trace) {}
  void process_message(SampleMsg& msg) override;

 private:
  const Trace* trace_;
};

/// Fixes named sites to given values and marks them observed.
class ConditionMessenger : public Messenger {
 public:
  explicit ConditionMessenger(std::map<std::string, Tensor> data)
      : data_(std::move(data)) {}
  void process_message(SampleMsg& msg) override;

 private:
  std::map<std::string, Tensor> data_;
};

/// Multiplies site log-prob scales (mini-batch likelihood scaling).
class ScaleMessenger : public Messenger {
 public:
  explicit ScaleMessenger(double scale) : scale_(scale) {
    TX_CHECK(scale > 0.0, "scale must be positive");
  }
  void process_message(SampleMsg& msg) override { msg.scale *= scale_; }

 private:
  double scale_;
};

/// Applies an elementwise log-prob mask to matching sites. With an empty
/// expose list every site is masked; otherwise only the listed site names.
/// Composing block semantics with a mask is exactly the paper's
/// selective_mask handler (Listing 4).
class MaskMessenger : public Messenger {
 public:
  explicit MaskMessenger(Tensor mask, std::vector<std::string> expose = {})
      : mask_(std::move(mask)), expose_(std::move(expose)) {}
  void process_message(SampleMsg& msg) override;

 private:
  Tensor mask_;
  std::vector<std::string> expose_;
};

/// Hides sites from handlers outside this one. `hide_fn` returns true for
/// sites to hide; with expose semantics pass a negated predicate.
class BlockMessenger : public Messenger {
 public:
  using Predicate = std::function<bool(const SampleMsg&)>;
  explicit BlockMessenger(Predicate hide_fn) : hide_fn_(std::move(hide_fn)) {}
  /// Hide the listed names (everything else passes through).
  static BlockMessenger hiding(std::vector<std::string> names);
  /// Hide everything except the listed names.
  static BlockMessenger exposing(std::vector<std::string> names);

  void process_message(SampleMsg& msg) override;

 private:
  Predicate hide_fn_;
};

/// Runs a nullary probabilistic program under a TraceMessenger and returns
/// the resulting trace (pyro.poutine.trace(fn).get_trace()).
Trace trace_fn(const std::function<void()>& fn);

}  // namespace tx::ppl
