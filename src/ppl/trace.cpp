#include "ppl/trace.h"

namespace tx::ppl {

Tensor SiteRecord::log_prob_sum() const {
  TX_CHECK(distribution != nullptr, "site '", name, "' has no distribution");
  Tensor lp = distribution->log_prob(value);
  if (mask.defined()) {
    lp = mul(lp, mask);
  }
  Tensor total = lp.numel() == 1 && lp.rank() == 0 ? lp : sum(lp);
  if (scale != 1.0) {
    total = mul(total, Tensor::scalar(static_cast<float>(scale)));
  }
  return total;
}

void Trace::add(SiteRecord site) {
  TX_CHECK(!contains(site.name), "duplicate site '", site.name, "' in trace");
  sites_.push_back(std::move(site));
}

bool Trace::contains(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.name == name) return true;
  }
  return false;
}

const SiteRecord& Trace::at(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.name == name) return s;
  }
  TX_THROW("no site named '", name, "' in trace");
}

SiteRecord& Trace::at(const std::string& name) {
  for (auto& s : sites_) {
    if (s.name == name) return s;
  }
  TX_THROW("no site named '", name, "' in trace");
}

Tensor Trace::log_prob_sum() const {
  Tensor total = Tensor::scalar(0.0f);
  for (const auto& s : sites_) total = tx::add(total, s.log_prob_sum());
  return total;
}

Tensor Trace::log_prob_sum(bool observed_only) const {
  Tensor total = Tensor::scalar(0.0f);
  for (const auto& s : sites_) {
    if (s.is_observed == observed_only) total = tx::add(total, s.log_prob_sum());
  }
  return total;
}

}  // namespace tx::ppl
