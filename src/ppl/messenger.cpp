#include "ppl/messenger.h"

#include "par/pool.h"

namespace tx::ppl {

namespace {
thread_local std::vector<Messenger*> g_stack;
thread_local Generator* g_generator = nullptr;

// Propagate the caller's handler stack into tx::par worker tasks so effects
// (tracing, conditioning, reparameterization poutines) entered on the caller
// apply inside parallel bodies. The generator redirection is deliberately
// NOT propagated: a single Generator is not safe to share across threads;
// parallel inference drivers install a per-task GeneratorScope instead.
const bool g_par_handlers_registered = [] {
  par::register_context_capture([]() -> par::ContextInstaller {
    std::vector<Messenger*> snapshot = g_stack;
    return [snapshot]() -> std::function<void()> {
      auto* scope = new HandlerStackScope(snapshot);
      return [scope] { delete scope; };
    };
  });
  return true;
}();
}  // namespace

std::vector<Messenger*> handler_stack_snapshot() { return g_stack; }

HandlerStackScope::HandlerStackScope(std::vector<Messenger*> stack)
    : previous_(std::move(g_stack)) {
  g_stack = std::move(stack);
}

HandlerStackScope::~HandlerStackScope() { g_stack = std::move(previous_); }

GeneratorScope::GeneratorScope(Generator* gen) : prev_(g_generator) {
  g_generator = gen;
}

GeneratorScope::~GeneratorScope() { g_generator = prev_; }

Generator* current_generator() { return g_generator; }

HandlerScope::HandlerScope(Messenger& m) : messenger_(&m) {
  g_stack.push_back(messenger_);
}

HandlerScope::~HandlerScope() {
  TX_CHECK(!g_stack.empty() && g_stack.back() == messenger_,
           "handler stack corrupted (unbalanced scopes)");
  g_stack.pop_back();
}

std::size_t handler_depth() { return g_stack.size(); }

void apply_stack(SampleMsg& msg) {
  // process: innermost (most recently entered) first, until a stop.
  std::size_t stopped_at = 0;  // index of the outermost frame that processed
  for (std::size_t i = g_stack.size(); i-- > 0;) {
    g_stack[i]->process_message(msg);
    stopped_at = i;
    if (msg.stop) break;
  }
  if (!msg.done) {
    if (!msg.value.defined()) {
      TX_CHECK(msg.distribution != nullptr, "sample site '", msg.name,
               "' has no distribution and no value");
      msg.value = (grad_enabled() && msg.distribution->has_rsample())
                      ? msg.distribution->rsample(g_generator)
                      : msg.distribution->sample(g_generator);
    }
    msg.done = true;
  }
  // postprocess: only frames that processed the message, outermost first /
  // innermost last (Pyro's stack[-counter:] ordering).
  if (!g_stack.empty()) {
    for (std::size_t i = stopped_at; i < g_stack.size(); ++i) {
      g_stack[i]->postprocess_message(msg);
    }
  }
}

Tensor sample(const std::string& name, dist::DistPtr distribution,
              const Tensor& obs) {
  SampleMsg msg;
  msg.name = name;
  msg.distribution = std::move(distribution);
  if (obs.defined()) {
    msg.value = obs;
    msg.is_observed = true;
    msg.done = true;
  }
  apply_stack(msg);
  return msg.value;
}

}  // namespace tx::ppl
