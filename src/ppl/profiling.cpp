#include "ppl/profiling.h"

#include "obs/event_sink.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace tx::ppl {

namespace {
thread_local ProfilingMessenger* g_active_profiler = nullptr;
}  // namespace

ProfilingScope::ProfilingScope(ProfilingMessenger& p)
    : handler_scope_(p), prev_(g_active_profiler) {
  g_active_profiler = &p;
}

ProfilingScope::~ProfilingScope() { g_active_profiler = prev_; }

void ProfilingMessenger::process_message(SampleMsg& msg) {
  if (msg.is_observed) {
    ++observe_count_;
  } else {
    ++sample_count_;
  }
  ++site_counts_[msg.name];
}

void ProfilingMessenger::run(const std::string& section,
                             const std::function<void()>& fn) {
  ProfilingScope scope(*this);
  const double t0 = obs::now_seconds();
  fn();
  SectionStats& stats = sections_[section];
  ++stats.calls;
  stats.seconds += obs::now_seconds() - t0;
}

void ProfilingMessenger::count_param(const std::string& name) {
  ++param_count_;
  (void)name;
}

void ProfilingMessenger::reset() {
  sample_count_ = observe_count_ = param_count_ = 0;
  site_counts_.clear();
  sections_.clear();
}

void ProfilingMessenger::publish(const std::string& prefix) const {
  auto& reg = obs::registry();
  reg.counter(prefix + ".sample_sites").add(sample_count_);
  reg.counter(prefix + ".observe_sites").add(observe_count_);
  reg.counter(prefix + ".param_sites").add(param_count_);
  for (const auto& [section, stats] : sections_) {
    reg.counter(prefix + "." + section + "_calls").add(stats.calls);
    reg.histogram(prefix + "." + section + "_seconds")
        .record(stats.calls > 0 ? stats.seconds / static_cast<double>(stats.calls)
                                : 0.0);
  }
}

void TracingMessenger::postprocess_message(SampleMsg& msg) {
  if (!obs::tracing()) return;
  ++sites_traced_;
  obs::Event args;
  args.set("site", msg.name);
  args.set("kind", msg.is_observed ? "observe" : "sample");
  if (msg.value.defined()) args.set("numel", msg.value.numel());
  obs::trace_instant("ppl." + msg.name, args.to_json());
}

namespace detail {

void notify_param_site(const std::string& name) {
  if (g_active_profiler != nullptr) g_active_profiler->count_param(name);
}

}  // namespace detail

}  // namespace tx::ppl
