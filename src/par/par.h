// Umbrella header for tx::par — the deterministic CPU thread pool behind the
// parallel tensor kernels and multi-chain / multi-particle inference. See
// docs/parallelism.md for the determinism contract.
#pragma once

#include "par/pool.h"
