#include "par/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/event_sink.h"
#include "obs/manifest.h"
#include "obs/pq.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "resil/guard.h"
#include "util/common.h"

namespace tx::par {

namespace {

thread_local bool t_in_worker = false;

// Pool width for the tx.manifest.v1 run manifest: timing comparisons across
// different thread counts are apples-to-oranges, so provenance records it.
const bool g_manifest_provider_registered = [] {
  obs::manifest::register_provider([] {
    obs::manifest::set_field("threads",
                             static_cast<std::int64_t>(num_threads()));
  });
  return true;
}();

// Propagate the submitter's span path into pool workers: a ScopedTimer
// opened inside a worker-side chunk then nests under the caller's path
// (e.g. "svi.step/elbo.model/par.matmul/par.chunk") instead of starting a
// fresh root, keeping span histograms and trace slices attributed.
const bool g_span_capture_registered = [] {
  register_context_capture([]() -> ContextInstaller {
    std::string path = obs::current_span_path();
    return [path]() -> std::function<void()> {
      std::string prev = obs::detail::set_span_base(path);
      return [prev]() mutable { obs::detail::set_span_base(std::move(prev)); };
    };
  });
  return true;
}();

// Propagate the submitter's guard budget into pool workers, so a deadline
// installed around a fit or predict is polled inside every parallel chunk
// of that work, whichever thread claims it.
const bool g_guard_capture_registered = [] {
  register_context_capture([]() -> ContextInstaller {
    guard::Budget* budget = guard::current();
    return [budget]() -> std::function<void()> {
      guard::Budget* prev = guard::detail::install(budget);
      return [prev] { guard::detail::install(prev); };
    };
  });
  return true;
}();

/// Registered thread-local context propagators (Meyer singleton so
/// registration from other TUs' static initializers is order-safe).
struct CaptureRegistry {
  std::mutex mu;
  std::vector<ContextCapture> captures;
};

CaptureRegistry& capture_registry() {
  static CaptureRegistry reg;
  return reg;
}

std::vector<ContextInstaller> capture_all() {
  CaptureRegistry& reg = capture_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<ContextInstaller> installers;
  installers.reserve(reg.captures.size());
  for (const auto& capture : reg.captures) installers.push_back(capture());
  return installers;
}

/// One submitted parallel job: a chunk counter workers race on plus the
/// caller's captured context. Completion is tracked per chunk so the caller
/// can block until every body invocation finished.
struct Job {
  std::int64_t chunks = 0;
  std::function<void(std::int64_t, std::int64_t)> body;  // chunk bounds
  std::vector<ContextInstaller> installers;

  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable done_cv;

  /// Claim and run chunks until none remain (or a chunk failed).
  void drain(std::int64_t range) {
    while (true) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          // Cooperative cancellation point: a hard-cancelled budget stops
          // claiming work here; the Cancelled exception rides the existing
          // failure path to the submitting caller.
          guard::check("par.chunk");
          const auto [b, e] = chunk_bounds(range, chunks, c);
          obs::TraceSpan chunk_span(
              "par.chunk", obs::tracing() ? obs::Event()
                                                .set("chunk", c)
                                                .set("begin", b)
                                                .set("end", e)
                                                .to_json()
                                          : std::string());
          body(b, e);
          // Merge this thread's churn and predictive-quality shards before
          // completion is counted: once the caller wakes from wait() the
          // aggregates must be final.
          obs::prof::flush_thread_cache();
          obs::pq::flush_thread_cache();
        } catch (...) {
          bool expected = false;
          if (failed.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
            std::lock_guard<std::mutex> lock(mu);
            error = std::current_exception();
          }
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }

  void wait(std::int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] {
      return completed.load(std::memory_order_acquire) == chunks;
    });
  }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lock(config_mu_);
    return configured_;
  }

  void set_threads(int n) {
    TX_CHECK(n >= 1, "set_num_threads: need n >= 1, got ", n);
    TX_CHECK(!t_in_worker, "set_num_threads: cannot resize from a pool task");
    std::lock_guard<std::mutex> lock(config_mu_);
    if (n == configured_) return;
    stop_workers();
    configured_ = n;
    // Workers restart lazily on the next parallel job.
  }

  /// Run `job` on up to `threads()` threads; the caller participates.
  void execute(const std::shared_ptr<Job>& job, std::int64_t range) {
    {
      std::lock_guard<std::mutex> lock(config_mu_);
      start_workers_locked();
      std::lock_guard<std::mutex> qlock(queue_mu_);
      // One helper entry per worker that could usefully claim a chunk.
      const std::int64_t helpers =
          std::min<std::int64_t>(static_cast<std::int64_t>(workers_.size()),
                                 job->chunks - 1);
      for (std::int64_t i = 0; i < helpers; ++i) queue_.emplace_back(job, range);
      if (obs::enabled()) {
        obs::registry().gauge("par.queue_depth").set(
            static_cast<double>(queue_.size()));
      }
      queue_cv_.notify_all();
    }
    job->drain(range);
    job->wait(range);
    if (job->error) std::rethrow_exception(job->error);
  }

  ~ThreadPool() {
    std::lock_guard<std::mutex> lock(config_mu_);
    stop_workers();
  }

 private:
  ThreadPool() : configured_(default_num_threads()) {}

  void start_workers_locked() {
    const int wanted = configured_ - 1;
    if (static_cast<int>(workers_.size()) == wanted) return;
    stop_workers();
    stopping_ = false;
    for (int i = 0; i < wanted; ++i) {
      workers_.emplace_back([this, i] {
        obs::set_trace_thread_name("par-worker-" + std::to_string(i + 1));
        worker_loop();
      });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> qlock(queue_mu_);
      stopping_ = true;
      queue_.clear();  // callers drain their own chunks; helpers are optional
      queue_cv_.notify_all();
    }
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    t_in_worker = true;
    while (true) {
      std::shared_ptr<Job> job;
      std::int64_t range = 0;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_) return;
        job = std::move(queue_.front().job);
        range = queue_.front().range;
        queue_.pop_front();
      }
      // Install the caller's thread-local context, run, restore in reverse.
      std::vector<std::function<void()>> restores;
      restores.reserve(job->installers.size());
      for (const auto& install : job->installers) restores.push_back(install());
      fault::check_stall("par.worker");
      job->drain(range);
      for (auto it = restores.rbegin(); it != restores.rend(); ++it) (*it)();
    }
  }

  struct QueueEntry {
    std::shared_ptr<Job> job;
    std::int64_t range = 0;
    QueueEntry(std::shared_ptr<Job> j, std::int64_t r)
        : job(std::move(j)), range(r) {}
  };

  std::mutex config_mu_;  // guards configured_ / workers_ lifecycle
  int configured_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueueEntry> queue_;
  bool stopping_ = false;
};

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

int default_num_threads() {
  if (const char* env = std::getenv("TYXE_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int num_threads() { return ThreadPool::instance().threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_threads(n); }

bool in_worker() { return t_in_worker; }

std::int64_t chunk_count(std::int64_t range, std::int64_t grain,
                         int nthreads) {
  if (range <= 0) return 0;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t by_grain = ceil_div(range, grain);
  const std::int64_t cap = static_cast<std::int64_t>(nthreads) * 4;
  return std::max<std::int64_t>(1, std::min(by_grain, cap));
}

std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t range,
                                                   std::int64_t chunks,
                                                   std::int64_t index) {
  const std::int64_t size = ceil_div(range, chunks);
  const std::int64_t b = index * size;
  return {std::min(b, range), std::min(b + size, range)};
}

void register_context_capture(ContextCapture capture) {
  TX_CHECK(capture != nullptr, "register_context_capture: null capture");
  CaptureRegistry& reg = capture_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.captures.push_back(std::move(capture));
}

void parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  const int nthreads = t_in_worker ? 1 : num_threads();
  const std::int64_t chunks = chunk_count(range, grain, nthreads);
  if (nthreads == 1 || chunks == 1) {
    // Exact legacy path: one inline call over the whole range. Same
    // cancellation point as the pooled path so hard cancels behave
    // identically at every thread count.
    guard::check("par.chunk");
    body(begin, end);
    return;
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("par.jobs").add(1);
    reg.counter("par.chunks").add(chunks);
    reg.gauge("par.threads").set(static_cast<double>(nthreads));
  }
  auto job = std::make_shared<Job>();
  job->chunks = chunks;
  job->installers = capture_all();
  job->body = [begin, &body](std::int64_t b, std::int64_t e) {
    body(begin + b, begin + e);
  };
  ThreadPool::instance().execute(job, range);
}

double parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)>& chunk_fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) return 0.0;
  grain = std::max<std::int64_t>(grain, 1);
  // Chunking depends on grain only, so the partial tree — and therefore the
  // rounding — is identical for every thread count.
  const std::int64_t chunks = ceil_div(range, grain);
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  parallel_for(0, chunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(b + grain, end);
      partials[static_cast<std::size_t>(c)] = chunk_fn(b, e);
    }
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

void run_tasks(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (obs::enabled()) {
    obs::registry().counter("par.tasks").add(
        static_cast<std::int64_t>(tasks.size()));
  }
  parallel_for(0, static_cast<std::int64_t>(tasks.size()), 1,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   tasks[static_cast<std::size_t>(i)]();
                 }
               });
}

}  // namespace tx::par
