// Deterministic CPU thread pool (tx::par).
//
// Design contract (see docs/parallelism.md):
//  * parallel_for(begin, end, grain, body) splits [begin, end) into chunks
//    whose boundaries are a pure function of (range, grain, nthreads) —
//    never of scheduling. Bodies write disjoint outputs, and every output
//    element is computed by exactly the same sequential code as the legacy
//    single-threaded kernel, so results are bitwise-identical for every
//    thread count (TYXE_NUM_THREADS=1 runs the body inline, the exact
//    legacy path).
//  * parallel_reduce chunks purely by grain (independent of nthreads) and
//    combines per-chunk partials with a left fold in ascending chunk order,
//    so its result is also invariant across thread counts.
//  * Worker tasks inherit the caller's thread-local execution context
//    (ppl::messenger handler stack, nn::functional interceptor stack,
//    autograd grad-mode flag) through the capture registry below.
//  * The pool is observable through tx::obs: "par.jobs" / "par.chunks" /
//    "par.tasks" counters, "par.threads" / "par.queue_depth" gauges.
//
// Thread count: set_num_threads(), seeded from TYXE_NUM_THREADS (default:
// hardware concurrency). Nested parallel constructs run sequentially inline
// on the worker they were issued from — no deadlock, no surprise fan-out.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace tx::par {

/// Current configured thread count (>= 1). First call reads
/// TYXE_NUM_THREADS; unset/invalid/0 falls back to hardware concurrency.
int num_threads();

/// Reconfigure the pool size (tests and benchmarks flip this at runtime).
/// Must not be called from inside a pool task.
void set_num_threads(int n);

/// Thread count TYXE_NUM_THREADS/hardware would pick, ignoring overrides.
int default_num_threads();

/// True when executing inside a pool worker task (nested constructs inline).
bool in_worker();

// ---- deterministic chunking (pure functions, unit-tested directly) --------

/// Number of chunks parallel_for uses: ceil(range/grain) capped at
/// 4*nthreads, at least 1 (0 for an empty range).
std::int64_t chunk_count(std::int64_t range, std::int64_t grain, int nthreads);

/// Half-open bounds of chunk `index` out of `chunks` over [0, range):
/// chunk size is ceil(range/chunks); the last chunk is short.
std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t range,
                                                   std::int64_t chunks,
                                                   std::int64_t index);

// ---- parallel primitives --------------------------------------------------

/// Run body(chunk_begin, chunk_end) over a deterministic chunking of
/// [begin, end). Blocks until every chunk completed; the caller participates.
/// The first exception thrown by any chunk is rethrown here (remaining
/// chunks are skipped).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Left-fold reduction with an nthreads-invariant chunk tree: partials are
/// computed per grain-sized chunk and combined in ascending chunk order, so
/// the result is bitwise-identical for every thread count (but may differ
/// from a single flat accumulation loop's rounding).
double parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)>& chunk_fn);

/// Run independent tasks concurrently (one chunk each); index i runs
/// tasks[i]. Used for MCMC chains and ELBO particles.
void run_tasks(const std::vector<std::function<void()>>& tasks);

// ---- thread-local context propagation -------------------------------------

/// Installer: runs on the worker before the task body, returns the restore
/// action that runs after it.
using ContextInstaller = std::function<std::function<void()>()>;
/// Capture: runs on the caller at job-submission time and snapshots one
/// piece of thread-local context into an installer.
using ContextCapture = std::function<ContextInstaller()>;

/// Register a context propagator for the process lifetime. Called at static
/// initialization by ppl::messenger, nn::functional, and the autograd
/// grad-mode flag; user code may add its own.
void register_context_capture(ContextCapture capture);

}  // namespace tx::par
