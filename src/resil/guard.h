// tx::guard — deadlines, cooperative cancellation, and graceful degradation
// for the inference paths (the tx::resil::guard layer of docs/robustness.md).
//
// A Budget bounds one unit of work with a wall deadline plus optional step
// and MC-sample caps. Nothing is preemptive: the instrumented layers poll at
// their natural boundaries — tx::par at chunk claims, HMC/NUTS per leapfrog
// step, SVI per optimization step, SupervisedBNN::predict per posterior
// sample — and react in one of two ways:
//
//   * passive expiry (deadline reached, a cap consumed) is observed at
//     *driver* checkpoints: `fit_svi` stops at the step boundary and
//     `predict` degrades to the prefix of completed samples (see
//     DegradedResult). Kernel-level hooks (par chunks) ignore passive
//     expiry so post-degradation work (aggregating the truncated stack,
//     computing metrics) still completes.
//   * a hard cancel (Budget::cancel(), the CancelToken, watchdog
//     escalation) throws guard::Cancelled from *every* hook, including par
//     chunk claims and mid-trajectory leapfrog steps, unwinding to the
//     caller as fast as cooperative checks allow.
//
// Budgets install with an RAII BudgetScope into a thread-local slot;
// tx::par propagates the installation into its workers the same way span
// bases are propagated, so a deadline set around `fit` is visible inside
// every parallel chunk of that fit. While no Budget is installed every hook
// is a single thread-local pointer test — the path is inert.
//
// Determinism: Budget time flows through guard::now_seconds(), a steady
// clock plus a virtual offset that tx::fault's `clock-skew` plans advance at
// exact counted hook calls (docs/robustness.md). A test that injects
// "advance the clock past the deadline at predict sample k" therefore
// cancels at exactly sample k on every run, every thread count — which is
// what makes the prefix-truncation contract of predict testable bitwise.
//
// This header lives in the tiny tx_fault layer (deps: tx_util only) so the
// low-level libraries (par, tensor, infer) can poll budgets without a
// dependency cycle with tx_resil. The watchdog that escalates into this
// layer lives in obs/watchdog.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "util/common.h"

namespace tx::guard {

/// Why a budget stopped being willing to do more work.
enum class Reason {
  kNone = 0,
  kDeadline,   // wall deadline passed (guard::now_seconds() based)
  kStepCap,    // step cap consumed
  kSampleCap,  // MC-sample cap consumed
  kCancelled,  // explicit Budget::cancel() / CancelToken::request()
  kWatchdog,   // watchdog escalation (obs/watchdog.h)
};

/// Stable spelling for reports, logs, and /healthz reasons.
const char* reason_name(Reason r);

/// Thrown by hooks on a hard cancel (and by driver-level checkpoints on any
/// expiry). Derives tx::Error so existing catch sites treat it as a library
/// error; drivers that can degrade catch it by this exact type.
class Cancelled : public Error {
 public:
  Cancelled(Reason reason, const char* where);
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

/// Shared cancellation flag: the cooperative token a Budget carries. Sticky
/// (first reason wins) and safe to signal from any thread, including the
/// watchdog.
class CancelToken {
 public:
  void request(Reason r = Reason::kCancelled) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                    std::memory_order_acq_rel);
  }
  bool requested() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }
  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<int> reason_{0};
};

/// One unit of bounded work. Construct, optionally set caps, install with a
/// BudgetScope around the work. Non-copyable: hooks hold the address.
class Budget {
 public:
  static constexpr std::int64_t kUnlimited =
      std::numeric_limits<std::int64_t>::max();

  /// `wall_seconds` <= 0 or +inf means no deadline.
  explicit Budget(double wall_seconds =
                      std::numeric_limits<double>::infinity());
  /// Unregisters from the watchdog escalation registry (see cancel_all).
  ~Budget();

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  Budget& set_step_cap(std::int64_t steps);
  Budget& set_sample_cap(std::int64_t samples);

  /// Hard cancel: every subsequent hook throws Cancelled.
  void cancel(Reason r = Reason::kCancelled) { token_.request(r); }
  CancelToken& token() { return token_; }

  /// Why the budget is unwilling to continue (kNone while still live).
  /// Checks, in order: the token, the deadline, then the caps.
  Reason exhausted() const;
  bool cancelled() const { return token_.requested(); }

  double deadline_seconds() const { return deadline_; }
  double start_seconds() const { return start_; }
  /// guard::now_seconds() minus start — includes injected clock skew, so a
  /// degraded run's reported elapsed time is deterministic under test plans.
  double elapsed_seconds() const;
  /// Seconds until the deadline (+inf when none, never negative).
  double remaining_seconds() const;

  std::int64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }
  std::int64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  void note_step() { steps_.fetch_add(1, std::memory_order_relaxed); }
  void note_sample() { samples_.fetch_add(1, std::memory_order_relaxed); }

 private:
  double start_;
  double deadline_;  // absolute on the guard clock; +inf = none
  std::int64_t step_cap_ = kUnlimited;
  std::int64_t sample_cap_ = kUnlimited;
  std::atomic<std::int64_t> steps_{0};
  std::atomic<std::int64_t> samples_{0};
  CancelToken token_;
};

/// What a budget-guarded predict() actually delivered. Thread-local; read it
/// with last_predict_status() right after the predict call.
struct DegradedResult {
  bool degraded = false;      // fewer samples than requested
  int completed = 0;          // k: posterior samples aggregated
  int requested = 0;          // n: samples asked for
  Reason reason = Reason::kNone;
  double elapsed_seconds = 0.0;  // budget elapsed at return (guard clock)
};

namespace detail {
extern thread_local Budget* t_current;
/// Swap the calling thread's installed budget; returns the previous one.
/// Exposed for tx::par's context propagation into workers.
Budget* install(Budget* b);
void check_slow(const char* where, bool hard_only);
bool begin_sample_slow(const char* where);
bool begin_step_slow(const char* where);
}  // namespace detail

/// True while the calling thread has a Budget installed. One thread-local
/// pointer test — the whole guard layer costs this and nothing else when no
/// budget is supplied.
inline bool active() { return detail::t_current != nullptr; }

/// The calling thread's installed budget (nullptr when none).
inline Budget* current() { return detail::t_current; }

/// RAII installation of a budget for the calling thread (and, transitively,
/// for pool workers running chunks submitted while it is installed).
class BudgetScope {
 public:
  explicit BudgetScope(Budget& b) : prev_(detail::install(&b)) {}
  ~BudgetScope() { detail::install(prev_); }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  Budget* prev_;
};

// ---- hooks (called by the instrumented layers) -----------------------------

/// Kernel-level hook (par chunk claims): throws Cancelled on a hard cancel
/// only — passive deadline/cap expiry is a driver-level concern, so work
/// that runs *after* a graceful degradation still completes.
inline void check(const char* where) {
  if (active()) detail::check_slow(where, /*hard_only=*/true);
}

/// Driver-level hook (per leapfrog step, and for raw SVI::step users):
/// advances the fault clock, then throws Cancelled on any exhaustion —
/// deadline, cap, or cancel.
inline void check_expiry(const char* where) {
  if (active()) detail::check_slow(where, /*hard_only=*/false);
}

/// Per-step hook for SVI: advances the fault clock, throws Cancelled if the
/// budget is already exhausted, otherwise counts one step.
inline void begin_step(const char* where) {
  if (active()) detail::begin_step_slow(where);
}

/// Per-MC-sample hook for predict: advances the fault clock; returns true
/// (without counting) when the budget is exhausted so the caller can degrade,
/// otherwise counts one sample and returns false. Never throws.
inline bool begin_sample(const char* where) {
  return active() && detail::begin_sample_slow(where);
}

/// Non-throwing exhaustion poll for driver loops (fit_svi).
Reason poll(const char* where);

// ---- predict degradation status --------------------------------------------

/// Status of the calling thread's most recent budget-guarded predict().
/// Reset (degraded=false) at the start of every guarded predict; untouched
/// by unguarded predicts, so the inert path stays inert.
const DegradedResult& last_predict_status();
void set_last_predict_status(const DegradedResult& status);

// ---- the guard clock -------------------------------------------------------

/// Steady seconds plus the accumulated virtual offset. All Budget deadline
/// math uses this clock.
double now_seconds();

/// Advance the virtual clock (fault clock-skew plans and tests).
void advance_clock_ms(std::int64_t ms);

/// Drop the virtual offset (tests; not thread-safe vs live budgets).
void reset_clock();

// ---- watchdog support (set by obs/watchdog.h, read by obs/live.h) ----------

/// Budget registry: every constructed Budget registers itself so the
/// watchdog can escalate a stall into cancellation without holding a
/// pointer. Returns the number of budgets cancelled.
int cancel_all(Reason r);

/// Health override: when non-empty, /healthz reports 503 "stalled" with this
/// reason. Set/cleared by the watchdog; empty() is one relaxed atomic load.
void set_health_override(const std::string& reason);
void clear_health_override();
bool health_overridden();
std::string health_override();

/// While true (the watchdog is running), heartbeat touch points record their
/// span path via note_liveness so a stall can be blamed on the last live
/// span. One relaxed load while false.
void set_watchdog_interest(bool on);
bool watchdog_interested();
void note_liveness(const std::string& span_path);
std::string last_liveness_span();

}  // namespace tx::guard
