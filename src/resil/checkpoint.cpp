#include "resil/checkpoint.h"

#include <cstdio>
#include <sstream>

#include "resil/io.h"
#include "tensor/serialize.h"
#include "util/textio.h"

namespace tx::resil {

void Bundle::set(const std::string& name, std::string bytes) {
  TX_CHECK(!name.empty() && name.find_first_of(" \n") == std::string::npos,
           "Bundle: section name '", name, "' is empty or has whitespace");
  sections_[name] = std::move(bytes);
}

bool Bundle::has(const std::string& name) const {
  return sections_.count(name) > 0;
}

const std::string& Bundle::get(const std::string& name) const {
  auto it = sections_.find(name);
  TX_CHECK(it != sections_.end(), "Bundle: no section named '", name, "'");
  return it->second;
}

std::vector<std::string> Bundle::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, _] : sections_) out.push_back(name);
  return out;
}

std::string Bundle::serialize() const {
  std::string body = "tx.ckpt.v1 " + std::to_string(sections_.size()) + "\n";
  for (const auto& [name, bytes] : sections_) {
    body += "@ " + name + " " + std::to_string(bytes.size()) + "\n";
    body += bytes;
    body += '\n';
  }
  char footer[32];
  std::snprintf(footer, sizeof(footer), "@checksum %016llx\n",
                static_cast<unsigned long long>(fnv1a64(body)));
  return body + footer;
}

Bundle Bundle::deserialize(const std::string& data) {
  // Split off and verify the footer first: everything before it is covered
  // by the checksum, so truncation or bit rot anywhere fails here.
  const std::string footer_tag = "@checksum ";
  // The footer is fixed-width: tag + 16 hex digits + newline, flush at the
  // end of the file. Anything else — including a missing final newline — is
  // treated as truncation.
  const std::size_t footer_size = footer_tag.size() + 17;
  TX_CHECK(data.size() > footer_size && data.back() == '\n' &&
               data.compare(data.size() - footer_size, footer_tag.size(),
                            footer_tag) == 0,
           "tx.ckpt.v1: missing or truncated checksum footer");
  const std::size_t footer = data.size() - footer_size;
  const std::string hex = data.substr(footer + footer_tag.size(), 16);
  char* end = nullptr;
  const std::uint64_t want = std::strtoull(hex.c_str(), &end, 16);
  TX_CHECK(end == hex.c_str() + 16, "tx.ckpt.v1: malformed checksum footer");
  const std::string body = data.substr(0, footer);
  TX_CHECK(fnv1a64(body) == want, "tx.ckpt.v1: checksum mismatch — file is ",
           "truncated or corrupt");

  std::size_t pos = 0;
  const auto read_line = [&](const char* what) {
    const std::size_t nl = body.find('\n', pos);
    TX_CHECK(nl != std::string::npos, "tx.ckpt.v1: truncated ", what);
    std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::istringstream header(read_line("header"));
  std::string magic;
  std::int64_t count = -1;
  header >> magic >> count;
  TX_CHECK(magic == "tx.ckpt.v1" && count >= 0, "tx.ckpt.v1: bad header");

  Bundle b;
  for (std::int64_t i = 0; i < count; ++i) {
    std::istringstream section(read_line("section header"));
    std::string at, name;
    std::int64_t nbytes = -1;
    section >> at >> name >> nbytes;
    TX_CHECK(at == "@" && !name.empty() && nbytes >= 0,
             "tx.ckpt.v1: bad section header");
    TX_CHECK(pos + static_cast<std::size_t>(nbytes) < body.size() &&
                 body[pos + static_cast<std::size_t>(nbytes)] == '\n',
             "tx.ckpt.v1: truncated section '", name, "'");
    b.sections_[name] = body.substr(pos, static_cast<std::size_t>(nbytes));
    pos += static_cast<std::size_t>(nbytes) + 1;
  }
  TX_CHECK(pos == body.size(), "tx.ckpt.v1: trailing bytes after sections");
  return b;
}

bool Bundle::write_file(const std::string& path) const {
  return atomic_write_file(path, serialize());
}

Bundle Bundle::read_file(const std::string& path) {
  std::string data;
  TX_CHECK(resil::read_file(path, &data), "tx.ckpt.v1: cannot read ", path);
  return deserialize(data);
}

std::string param_store_bytes(const ppl::ParamStore& store) {
  std::ostringstream os;
  const auto items = store.items();
  os << "params " << items.size() << '\n';
  for (const auto& [name, t] : items) {
    os << name << '\n';
    save_tensor(os, t.detach());
  }
  return os.str();
}

void apply_param_store_bytes(const std::string& bytes, ppl::ParamStore& store,
                             bool prune_extra) {
  std::istringstream is(bytes);
  textio::expect_tag(is, "params");
  const std::int64_t count = textio::read_int(is, "param count");
  std::vector<std::pair<std::string, Tensor>> staged;
  staged.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::string name = textio::next_token(is, "param name");
    staged.emplace_back(name, load_tensor(is));
  }
  // Validate shapes against existing entries before the first copy.
  for (const auto& [name, value] : staged) {
    if (store.contains(name)) {
      TX_CHECK(store.get(name).shape() == value.shape(),
               "tx.ckpt.v1: shape mismatch for param '", name, "'");
    }
  }
  for (auto& [name, value] : staged) {
    if (store.contains(name)) {
      store.get(name).copy_(value);  // keep the live handle
    } else {
      store.set(name, value);
    }
  }
  if (prune_extra) {
    for (const auto& [name, _] : store.items()) {
      bool known = false;
      for (const auto& [staged_name, __] : staged) {
        if (staged_name == name) {
          known = true;
          break;
        }
      }
      if (!known) store.erase(name);
    }
  }
}

std::string generator_bytes(const Generator& gen) {
  std::ostringstream os;
  gen.save(os);
  return os.str();
}

void apply_generator_bytes(const std::string& bytes, Generator& gen) {
  std::istringstream is(bytes);
  Generator staged = gen;
  staged.load(is);
  TX_CHECK(!is.fail(), "tx.ckpt.v1: corrupt generator state");
  gen = staged;
}

std::string optimizer_bytes(const infer::Optimizer& opt) {
  std::ostringstream os;
  opt.save_state(os);
  return os.str();
}

void apply_optimizer_bytes(const std::string& bytes, infer::Optimizer& opt) {
  std::istringstream is(bytes);
  opt.load_state(is);
}

}  // namespace tx::resil
