#include <functional>
#include <sstream>

#include "infer/hmc.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "ppl/messenger.h"
#include "resil/io.h"
#include "resil/resil.h"
#include "util/textio.h"

namespace tx::resil {

namespace {

void bump(const char* name) {
  if (obs::enabled()) obs::registry().counter(name).add(1);
}

std::string chain_section(int c, const char* what) {
  return "chain" + std::to_string(c) + "." + what;
}

}  // namespace

MCMCDriver::MCMCDriver(infer::KernelFactory factory, int num_samples,
                       int warmup_steps, int num_chains, MCMCPolicy policy)
    : factory_(std::move(factory)),
      num_samples_(num_samples),
      warmup_(warmup_steps),
      num_chains_(num_chains),
      policy_(std::move(policy)) {
  TX_CHECK(factory_ != nullptr, "MCMCDriver: null kernel factory");
  TX_CHECK(num_samples >= 1 && warmup_steps >= 0,
           "MCMCDriver: bad sample counts");
  TX_CHECK(num_chains >= 1, "MCMCDriver: num_chains must be >= 1");
  TX_CHECK(policy_.checkpoint_every >= 1,
           "MCMCDriver: checkpoint_every must be >= 1");
}

Bundle MCMCDriver::make_bundle() const {
  Bundle b;
  std::ostringstream meta;
  meta << "mcmc chains " << num_chains_ << " warmup " << warmup_
       << " samples " << num_samples_ << '\n';
  b.set("mcmc.meta", meta.str());
  for (int c = 0; c < num_chains_; ++c) {
    const Chain& chain = chains_[static_cast<std::size_t>(c)];
    std::ostringstream cm;
    cm << "done " << chain.done << " restarts " << chain.restarts << '\n';
    cm << "q ";
    textio::write_vec_d(cm, chain.q);
    cm << "draws " << chain.draws.size() << '\n';
    for (const auto& d : chain.draws) textio::write_vec_d(cm, d);
    b.set(chain_section(c, "state"), cm.str());
    std::ostringstream ks;
    chain.kernel->save_state(ks);
    b.set(chain_section(c, "kernel"), ks.str());
    b.set(chain_section(c, "gen"), generator_bytes(chain.gen));
  }
  return b;
}

void MCMCDriver::apply_bundle(const Bundle& b) {
  std::istringstream meta(b.get("mcmc.meta"));
  textio::expect_tag(meta, "mcmc");
  textio::expect_tag(meta, "chains");
  TX_CHECK(textio::read_int(meta, "chains") == num_chains_,
           "tx.ckpt.v1: checkpoint chain count does not match this run");
  textio::expect_tag(meta, "warmup");
  TX_CHECK(textio::read_int(meta, "warmup") == warmup_,
           "tx.ckpt.v1: checkpoint warmup does not match this run");
  textio::expect_tag(meta, "samples");
  TX_CHECK(textio::read_int(meta, "samples") == num_samples_,
           "tx.ckpt.v1: checkpoint sample count does not match this run");

  // Stage every chain completely before touching live state.
  struct Staged {
    std::int64_t done = 0, restarts = 0;
    std::vector<double> q;
    std::vector<std::vector<double>> draws;
  };
  std::vector<Staged> staged(static_cast<std::size_t>(num_chains_));
  for (int c = 0; c < num_chains_; ++c) {
    Staged& s = staged[static_cast<std::size_t>(c)];
    std::istringstream cm(b.get(chain_section(c, "state")));
    textio::expect_tag(cm, "done");
    s.done = textio::read_int(cm, "done");
    textio::expect_tag(cm, "restarts");
    s.restarts = textio::read_int(cm, "restarts");
    textio::expect_tag(cm, "q");
    s.q = textio::read_vec_d(cm, "chain position");
    textio::expect_tag(cm, "draws");
    const std::int64_t ndraws = textio::read_int(cm, "draw count");
    s.draws.reserve(static_cast<std::size_t>(ndraws));
    for (std::int64_t i = 0; i < ndraws; ++i) {
      s.draws.push_back(textio::read_vec_d(cm, "draw"));
    }
  }
  for (int c = 0; c < num_chains_; ++c) {
    Chain& chain = chains_[static_cast<std::size_t>(c)];
    Staged& s = staged[static_cast<std::size_t>(c)];
    std::istringstream ks(b.get(chain_section(c, "kernel")));
    chain.kernel->load_state(ks);
    apply_generator_bytes(b.get(chain_section(c, "gen")), chain.gen);
    chain.done = s.done;
    chain.restarts = s.restarts;
    chain.q = std::move(s.q);
    chain.draws = std::move(s.draws);
  }
}

void MCMCDriver::run(infer::Program model, Generator* gen) {
  obs::ScopedTimer span("resil.mcmc.run");
  const bool has_file = !policy_.checkpoint_path.empty();

  // Per-chain generators are derived sequentially from the ambient one, so
  // chain trajectories are a pure function of the caller's seed regardless
  // of scheduling — and a resumed process that re-runs this derivation gets
  // the generators overwritten from the bundle right after.
  chains_.assign(static_cast<std::size_t>(num_chains_), Chain{});
  Generator& ambient = gen ? *gen : global_generator();
  for (int c = 0; c < num_chains_; ++c) {
    chains_[static_cast<std::size_t>(c)].gen = Generator(ambient.engine()());
  }
  // Setup is sequential: the Potential constructor traces the model, which
  // draws from the chain's generator (GeneratorScope), and tracing chains in
  // order keeps that consumption deterministic.
  for (int c = 0; c < num_chains_; ++c) {
    Chain& chain = chains_[static_cast<std::size_t>(c)];
    chain.kernel = factory_();
    TX_CHECK(chain.kernel != nullptr, "MCMCDriver: factory returned null");
    ppl::GeneratorScope scope(&chain.gen);
    chain.kernel->setup(model, &chain.gen);
    chain.q = chain.kernel->initial_position();
  }

  resumed_ = false;
  if (has_file && policy_.resume && file_exists(policy_.checkpoint_path)) {
    apply_bundle(Bundle::read_file(policy_.checkpoint_path));
    resumed_ = true;
    bump("resil.mcmc.resumes");
  }

  const std::int64_t total = total_transitions();
  while (true) {
    bool any_pending = false;
    for (const auto& chain : chains_) any_pending |= chain.done < total;
    if (!any_pending) break;

    // Round-start snapshots: a storm rollback loses at most this round, and
    // because rounds are barriers the snapshot is taken at a deterministic
    // point of every chain's trajectory.
    struct RoundStart {
      std::string kernel_state;
      Generator gen{0};
      std::vector<double> q;
      std::size_t ndraws = 0;
      std::int64_t done = 0;
      std::int64_t divergences = 0;
    };
    std::vector<RoundStart> starts(chains_.size());
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      const Chain& chain = chains_[i];
      std::ostringstream ks;
      chain.kernel->save_state(ks);
      starts[i] = {ks.str(),          chain.gen, chain.q, chain.draws.size(),
                   chain.done,        chain.kernel->divergence_count()};
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(chains_.size());
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      Chain& chain = chains_[i];
      if (chain.done >= total) continue;
      tasks.push_back([&chain, total, this] {
        ppl::GeneratorScope scope(&chain.gen);
        const std::int64_t until =
            std::min(total, chain.done + policy_.checkpoint_every);
        for (; chain.done < until; ++chain.done) {
          const bool warmup = chain.done < warmup_;
          chain.q = chain.kernel->step(chain.q, warmup);
          if (!warmup) chain.draws.push_back(chain.q);
        }
      });
    }
    par::run_tasks(tasks);

    // Storm check per chain, sequential and deterministic.
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      Chain& chain = chains_[i];
      const std::int64_t round_div =
          chain.kernel->divergence_count() - starts[i].divergences;
      if (policy_.storm_threshold < 0 || round_div <= policy_.storm_threshold) {
        continue;
      }
      ++chain.restarts;
      bump("resil.mcmc.restarts");
      TX_CHECK(chain.restarts <= policy_.max_restarts,
               "MCMCDriver: chain ", i, " exceeded ", policy_.max_restarts,
               " divergence-storm restarts (", round_div,
               " divergences in the last round); forensics: ",
               obs::diag::last_forensic_reason());
      // Restore the chain to the round start and back off the step size.
      std::istringstream ks(starts[i].kernel_state);
      chain.kernel->load_state(ks);
      chain.gen = starts[i].gen;
      chain.q = starts[i].q;
      chain.draws.resize(starts[i].ndraws);
      chain.done = starts[i].done;
      auto* hmc = dynamic_cast<infer::HMC*>(chain.kernel.get());
      TX_CHECK(hmc != nullptr,
               "MCMCDriver: storm handling needs an HMC-family kernel");
      hmc->set_step_size(hmc->step_size() * policy_.step_size_factor);
      if (obs::enabled()) {
        obs::registry()
            .gauge("resil.mcmc.step_size.chain" + std::to_string(i))
            .set(hmc->step_size());
      }
    }

    if (has_file) {
      if (make_bundle().write_file(policy_.checkpoint_path)) {
        bump("resil.ckpt.writes");
      } else {
        bump("resil.ckpt.write_failures");
      }
    }
  }

  ran_ = true;
  if (obs::enabled()) {
    obs::registry().gauge("resil.mcmc.restarts_total")
        .set(static_cast<double>(restarts()));
  }
}

std::int64_t MCMCDriver::restarts() const {
  std::int64_t total = 0;
  for (const auto& chain : chains_) total += chain.restarts;
  return total;
}

std::int64_t MCMCDriver::divergence_count() const {
  std::int64_t total = 0;
  for (const auto& chain : chains_) {
    if (chain.kernel) total += chain.kernel->divergence_count();
  }
  return total;
}

std::size_t MCMCDriver::num_samples() const {
  std::size_t total = 0;
  for (const auto& chain : chains_) total += chain.draws.size();
  return total;
}

std::vector<Tensor> MCMCDriver::get_samples(const std::string& site) const {
  TX_CHECK(ran_, "MCMCDriver: run() first");
  std::vector<Tensor> out;
  out.reserve(num_samples());
  const infer::Potential& potential = chains_.front().kernel->potential();
  for (const auto& chain : chains_) {
    for (const auto& q : chain.draws) {
      auto values = potential.unflatten(q);
      auto it = values.find(site);
      TX_CHECK(it != values.end(), "MCMCDriver: no site named '", site, "'");
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<double> MCMCDriver::coordinate_chain(std::size_t coord,
                                                 int chain) const {
  TX_CHECK(ran_, "MCMCDriver: run() first");
  TX_CHECK(chain >= 0 && chain < num_chains_, "MCMCDriver: chain out of range");
  const Chain& ch = chains_[static_cast<std::size_t>(chain)];
  std::vector<double> out;
  out.reserve(ch.draws.size());
  for (const auto& q : ch.draws) {
    TX_CHECK(coord < q.size(), "MCMCDriver: coordinate out of range");
    out.push_back(q[coord]);
  }
  return out;
}

}  // namespace tx::resil
