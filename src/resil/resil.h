// tx::resil — fault-tolerant inference drivers. Builds on the tx.ckpt.v1
// bundles in resil/checkpoint.h: SVI runs auto-checkpoint, roll back and
// retry with a decayed learning rate when a step goes non-finite, and resume
// bitwise-exactly from disk; MCMC runs advance in checkpointed rounds with
// divergence-storm backoff (halve the step size, restart the chain from the
// round start). Recovery activity is surfaced as resil.* metrics and, on
// failure, cross-linked to the tx::obs::diag forensic bundle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "infer/mcmc.h"
#include "infer/svi.h"
#include "resil/checkpoint.h"
#include "resil/guard.h"

namespace tx::resil {

/// Controls SVI::fit checkpointing and retry behaviour.
struct RetryPolicy {
  /// Checkpoint file ("" = keep the rollback anchor in memory only).
  std::string checkpoint_path;
  /// Steps between checkpoints (also the maximum work lost to a rollback).
  std::int64_t checkpoint_every = 100;
  /// Consecutive rollbacks tolerated per checkpoint segment before giving
  /// up; a successful checkpoint resets the budget.
  int max_retries = 3;
  /// lr multiplier applied per consecutive rollback (relative to the lr the
  /// last good checkpoint ran at).
  double lr_decay = 0.5;
  /// Capped exponential backoff between retries (0 = no sleep, the default:
  /// deterministic tests must not depend on wall clock).
  double backoff_seconds = 0.0;
  double max_backoff_seconds = 1.0;
  /// Resume from checkpoint_path when it already exists.
  bool resume = true;
  /// Optional LR schedule: stepped after every SVI step and captured in the
  /// checkpoint so a resumed run continues the decay exactly.
  infer::StepLR* scheduler = nullptr;
  /// Optional overall budget (non-owning): fit_svi installs it for the whole
  /// run, so retries, backoff sleeps, and the steps themselves all respect
  /// one deadline — backoff is clamped to the remaining budget and an
  /// exhausted budget stops the fit at the next step boundary (FitReport
  /// .cancelled). When null, an ambient guard::BudgetScope (if any) governs.
  guard::Budget* budget = nullptr;
};

/// What SVI::fit actually did.
struct FitReport {
  std::int64_t steps_run = 0;        // steps executed, including retried ones
  std::int64_t steps_completed = 0;  // svi.steps_taken() at exit
  double final_loss = 0.0;           // last good loss (NaN if no step ran)
  bool resumed = false;              // started from an on-disk checkpoint
  bool exhausted = false;            // retry budget ran out; state = last good
  std::int64_t rollbacks = 0;
  std::int64_t checkpoints = 0;          // rollback anchors committed
  std::int64_t checkpoint_failures = 0;  // failed disk writes (state kept)
  std::string failure_reason;  // diag forensic reason when exhausted, or the
                               // guard reason when cancelled ("" otherwise)
  /// The budget expired or was cancelled: the run stopped early at a step
  /// boundary (or rolled back to the last good anchor if cancellation
  /// landed mid-step), with failure_reason naming the guard reason.
  bool cancelled = false;
};

/// Implementation behind infer::SVI::fit (lives here so tx_infer does not
/// depend on tx_resil).
FitReport fit_svi(infer::SVI& svi, std::int64_t num_steps,
                  const RetryPolicy& policy);

/// Controls MCMCDriver checkpointing and divergence-storm handling.
struct MCMCPolicy {
  std::string checkpoint_path;  // "" = no persistence (still rounds)
  /// Transitions per round; rounds are barriers, checkpoints happen at round
  /// ends, and a storm rollback loses at most one round.
  std::int64_t checkpoint_every = 50;
  /// Divergences within one round that count as a storm for a chain
  /// (-1 disables storm handling).
  std::int64_t storm_threshold = -1;
  /// Storm restarts tolerated per chain before run() throws.
  int max_restarts = 3;
  /// Step-size multiplier applied on each storm restart.
  double step_size_factor = 0.5;
  bool resume = true;
};

/// Fault-tolerant multi-chain MCMC. Chains advance in lockstep rounds of
/// `checkpoint_every` transitions; because chains are independent and all
/// per-chain state (position, kernel adaptation, generator) is carried in
/// the checkpoint, a resumed run is bitwise-identical to an uninterrupted
/// one at any TYXE_NUM_THREADS. On a divergence storm the chain is restored
/// to its round-start state with a reduced step size.
class MCMCDriver {
 public:
  MCMCDriver(infer::KernelFactory factory, int num_samples, int warmup_steps,
             int num_chains, MCMCPolicy policy);

  void run(infer::Program model, Generator* gen = nullptr);

  int num_chains() const { return num_chains_; }
  bool resumed() const { return resumed_; }
  std::int64_t restarts() const;
  std::int64_t divergence_count() const;
  /// Total kept draws across chains (chains concatenated, chain-major).
  std::size_t num_samples() const;
  std::vector<Tensor> get_samples(const std::string& site) const;
  std::vector<double> coordinate_chain(std::size_t coord, int chain) const;

 private:
  struct Chain {
    std::shared_ptr<infer::MCMCKernel> kernel;
    Generator gen{0};
    std::vector<double> q;
    std::int64_t done = 0;  // transitions completed (warmup + sampling)
    std::int64_t restarts = 0;
    std::vector<std::vector<double>> draws;
  };

  Bundle make_bundle() const;
  void apply_bundle(const Bundle& b);
  std::int64_t total_transitions() const {
    return static_cast<std::int64_t>(warmup_) +
           static_cast<std::int64_t>(num_samples_);
  }

  infer::KernelFactory factory_;
  int num_samples_, warmup_, num_chains_;
  MCMCPolicy policy_;
  std::vector<Chain> chains_;
  bool resumed_ = false;
  bool ran_ = false;
};

}  // namespace tx::resil
