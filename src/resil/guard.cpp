#include "resil/guard.h"

#include <chrono>
#include <mutex>
#include <vector>

#include "resil/fault.h"

namespace tx::guard {

namespace detail {
thread_local Budget* t_current = nullptr;

Budget* install(Budget* b) {
  Budget* prev = t_current;
  t_current = b;
  return prev;
}
}  // namespace detail

namespace {

/// Virtual-clock offset in milliseconds (clock-skew plans / tests).
std::atomic<std::int64_t> g_skew_ms{0};

/// Live-budget registry for watchdog escalation. Leaked (like the fault
/// runtime) so hooks stay safe during static destruction.
struct BudgetRegistry {
  std::mutex mu;
  std::vector<Budget*> budgets;
};

BudgetRegistry& budget_registry() {
  static BudgetRegistry* reg = new BudgetRegistry();
  return *reg;
}

void register_budget(Budget* b) {
  auto& reg = budget_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.budgets.push_back(b);
}

void unregister_budget(Budget* b) {
  auto& reg = budget_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto it = reg.budgets.begin(); it != reg.budgets.end(); ++it) {
    if (*it == b) {
      reg.budgets.erase(it);
      return;
    }
  }
}

/// Watchdog blame state. The override string is read on the /healthz path
/// only, so a mutex is fine; the flags are relaxed atomics so the hot hooks
/// (heartbeat touches) stay one load while the watchdog is off.
std::atomic<bool> g_health_overridden{false};
std::atomic<bool> g_watchdog_interest{false};
std::mutex g_blame_mu;
std::string g_health_reason;
std::string g_liveness_span;

double steady_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

thread_local DegradedResult t_predict_status;

}  // namespace

const char* reason_name(Reason r) {
  switch (r) {
    case Reason::kNone:
      return "none";
    case Reason::kDeadline:
      return "deadline";
    case Reason::kStepCap:
      return "step-cap";
    case Reason::kSampleCap:
      return "sample-cap";
    case Reason::kCancelled:
      return "cancelled";
    case Reason::kWatchdog:
      return "watchdog";
  }
  return "unknown";
}

Cancelled::Cancelled(Reason reason, const char* where)
    : Error(std::string("guard: budget ") + reason_name(reason) + " at " +
            where),
      reason_(reason) {}

Budget::Budget(double wall_seconds) {
  start_ = now_seconds();
  deadline_ = (wall_seconds > 0.0 &&
               wall_seconds < std::numeric_limits<double>::infinity())
                  ? start_ + wall_seconds
                  : std::numeric_limits<double>::infinity();
  register_budget(this);
}

Budget::~Budget() { unregister_budget(this); }

Budget& Budget::set_step_cap(std::int64_t steps) {
  TX_CHECK(steps >= 1, "Budget: step cap must be >= 1, got ", steps);
  step_cap_ = steps;
  return *this;
}

Budget& Budget::set_sample_cap(std::int64_t samples) {
  TX_CHECK(samples >= 1, "Budget: sample cap must be >= 1, got ", samples);
  sample_cap_ = samples;
  return *this;
}

Reason Budget::exhausted() const {
  if (token_.requested()) return token_.reason();
  if (now_seconds() > deadline_) return Reason::kDeadline;
  if (steps_.load(std::memory_order_relaxed) >= step_cap_) {
    return Reason::kStepCap;
  }
  if (samples_.load(std::memory_order_relaxed) >= sample_cap_) {
    return Reason::kSampleCap;
  }
  return Reason::kNone;
}

double Budget::elapsed_seconds() const { return now_seconds() - start_; }

double Budget::remaining_seconds() const {
  if (deadline_ == std::numeric_limits<double>::infinity()) return deadline_;
  const double left = deadline_ - now_seconds();
  return left > 0.0 ? left : 0.0;
}

namespace detail {

void check_slow(const char* where, bool hard_only) {
  Budget* b = t_current;
  if (b == nullptr) return;
  if (hard_only) {
    // Kernel-level: respond to hard cancels only; no fault-clock advance
    // either, so a clock-skew plan targeting a driver site is never
    // consumed by unrelated par chunks.
    if (b->cancelled()) throw Cancelled(b->token().reason(), where);
    return;
  }
  if (const std::int64_t ms = fault::clock_skew(where)) advance_clock_ms(ms);
  const Reason r = b->exhausted();
  if (r != Reason::kNone) throw Cancelled(r, where);
}

bool begin_step_slow(const char* where) {
  Budget* b = t_current;
  if (b == nullptr) return false;
  if (const std::int64_t ms = fault::clock_skew(where)) advance_clock_ms(ms);
  const Reason r = b->exhausted();
  if (r != Reason::kNone) throw Cancelled(r, where);
  b->note_step();
  return true;
}

bool begin_sample_slow(const char* where) {
  Budget* b = t_current;
  if (b == nullptr) return false;
  if (const std::int64_t ms = fault::clock_skew(where)) advance_clock_ms(ms);
  if (b->exhausted() != Reason::kNone) return true;
  b->note_sample();
  return false;
}

}  // namespace detail

Reason poll(const char* where) {
  Budget* b = detail::t_current;
  if (b == nullptr) return Reason::kNone;
  if (const std::int64_t ms = fault::clock_skew(where)) advance_clock_ms(ms);
  return b->exhausted();
}

const DegradedResult& last_predict_status() { return t_predict_status; }

void set_last_predict_status(const DegradedResult& status) {
  t_predict_status = status;
}

double now_seconds() {
  return steady_seconds() +
         static_cast<double>(g_skew_ms.load(std::memory_order_relaxed)) *
             1e-3;
}

void advance_clock_ms(std::int64_t ms) {
  g_skew_ms.fetch_add(ms, std::memory_order_relaxed);
}

void reset_clock() { g_skew_ms.store(0, std::memory_order_relaxed); }

int cancel_all(Reason r) {
  auto& reg = budget_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (Budget* b : reg.budgets) b->cancel(r);
  return static_cast<int>(reg.budgets.size());
}

void set_health_override(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(g_blame_mu);
    g_health_reason = reason;
  }
  g_health_overridden.store(!reason.empty(), std::memory_order_release);
}

void clear_health_override() { set_health_override(""); }

bool health_overridden() {
  return g_health_overridden.load(std::memory_order_acquire);
}

std::string health_override() {
  std::lock_guard<std::mutex> lock(g_blame_mu);
  return g_health_reason;
}

void set_watchdog_interest(bool on) {
  g_watchdog_interest.store(on, std::memory_order_relaxed);
}

bool watchdog_interested() {
  return g_watchdog_interest.load(std::memory_order_relaxed);
}

void note_liveness(const std::string& span_path) {
  std::lock_guard<std::mutex> lock(g_blame_mu);
  g_liveness_span = span_path;
}

std::string last_liveness_span() {
  std::lock_guard<std::mutex> lock(g_blame_mu);
  return g_liveness_span;
}

}  // namespace tx::guard
