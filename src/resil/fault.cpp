#include "resil/fault.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>

#include "util/common.h"

namespace tx::fault {

namespace detail {
std::atomic<bool> armed{false};
}  // namespace detail

namespace {

/// A spec plus its deterministic progress counters.
struct LiveSpec {
  Spec spec;
  std::int64_t matches = 0;  // matching hook calls seen so far
  std::int64_t fired = 0;
};

struct Runtime {
  std::mutex mu;
  std::vector<LiveSpec> specs;
};

Runtime& runtime() {
  static Runtime* rt = new Runtime();  // leaked: hooks may run at exit
  return *rt;
}

bool matches(const std::string& target, const std::string& name) {
  return target.empty() || name.find(target) != std::string::npos;
}

/// Count one matching call and report whether it falls inside the spec's
/// [at, at + times) firing window (1-based call counting).
bool count_and_check(LiveSpec& ls) {
  ++ls.matches;
  const std::int64_t first = ls.spec.at > 0 ? ls.spec.at : 1;
  if (ls.matches >= first && ls.matches < first + ls.spec.times) {
    ++ls.fired;
    return true;
  }
  return false;
}

std::int64_t parse_int(const std::string& tok, const std::string& clause) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  TX_CHECK(end != tok.c_str() && *end == '\0',
           "TYXE_FAULT: bad integer '", tok, "' in clause '", clause, "'");
  return static_cast<std::int64_t>(v);
}

}  // namespace

Plan parse(const std::string& text) {
  Plan plan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    std::string clause = text.substr(pos, semi - pos);
    pos = semi + 1;
    // Trim surrounding whitespace so "a; b" and "a;b" parse identically.
    const std::size_t first = clause.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    clause = clause.substr(first, clause.find_last_not_of(" \t") - first + 1);

    const std::size_t eq = clause.find('=');
    TX_CHECK(eq != std::string::npos, "TYXE_FAULT: clause '", clause,
             "' has no '='");
    const std::string kind = clause.substr(0, eq);
    std::string args = clause.substr(eq + 1);

    // Split off ",ms=<M>" (stall only).
    std::int64_t ms = 0;
    if (const std::size_t comma = args.find(",ms="); comma != std::string::npos) {
      ms = parse_int(args.substr(comma + 4), clause);
      args = args.substr(0, comma);
    }
    // Split "<head>@<at>" and "<at>x<times>".
    std::string head = args;
    std::int64_t at = 0, times = 1;
    const bool has_at = args.find('@') != std::string::npos;
    if (const std::size_t amp = args.find('@'); amp != std::string::npos) {
      head = args.substr(0, amp);
      std::string at_tok = args.substr(amp + 1);
      if (const std::size_t x = at_tok.find('x'); x != std::string::npos) {
        times = parse_int(at_tok.substr(x + 1), clause);
        at_tok = at_tok.substr(0, x);
      }
      at = parse_int(at_tok, clause);
    }

    Spec spec;
    spec.at = at;
    spec.times = times;
    spec.ms = ms;
    if (kind == "nan-grad") {
      spec.kind = Kind::kNanGrad;
      spec.target = head;
      TX_CHECK(has_at, "TYXE_FAULT: nan-grad needs @<step> in '", clause, "'");
    } else if (kind == "write-open" || kind == "write-rename") {
      spec.kind = kind == "write-open" ? Kind::kWriteOpen : Kind::kWriteRename;
      // Grammar: write-open=<K>[@<nth>] — head is the failure count.
      spec.times = parse_int(head, clause);
      spec.at = has_at ? at : 1;  // nth write attempt (default: the next one)
    } else if (kind == "bad-alloc") {
      spec.kind = Kind::kBadAlloc;
      spec.target = head;
      TX_CHECK(at >= 1, "TYXE_FAULT: bad-alloc needs @<nth> >= 1 in '", clause,
               "'");
    } else if (kind == "stall") {
      spec.kind = Kind::kStall;
      spec.target = head;
      TX_CHECK(ms > 0, "TYXE_FAULT: stall needs ,ms=<M> in '", clause, "'");
    } else if (kind == "clock-skew") {
      spec.kind = Kind::kClockSkew;
      spec.target = head;
      TX_CHECK(ms > 0, "TYXE_FAULT: clock-skew needs ,ms=<M> in '", clause,
               "'");
    } else {
      TX_THROW("TYXE_FAULT: unknown fault kind '", kind, "'");
    }
    TX_CHECK(spec.times >= 1, "TYXE_FAULT: times must be >= 1 in '", clause,
             "'");
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

void install(Plan plan) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  rt.specs.clear();
  for (auto& s : plan.specs) rt.specs.push_back({s, 0, 0});
  detail::armed.store(!rt.specs.empty(), std::memory_order_relaxed);
}

void clear() { install(Plan{}); }

bool install_from_env() {
  const char* env = std::getenv("TYXE_FAULT");
  if (env == nullptr || *env == '\0') return false;
  install(parse(env));
  return true;
}

std::int64_t fires(Kind kind) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  std::int64_t total = 0;
  for (const auto& ls : rt.specs) {
    if (ls.spec.kind == kind) total += ls.fired;
  }
  return total;
}

namespace detail {

bool poison_grad_slow(const std::string& param, std::int64_t step) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  bool hit = false;
  for (auto& ls : rt.specs) {
    if (ls.spec.kind != Kind::kNanGrad) continue;
    if (!matches(ls.spec.target, param)) continue;
    // Step-indexed trigger with a total-fire cap: fires for matching params
    // once the step counter reaches `at`, at most `times` poisonings ever.
    // The cap is what lets rollback-and-replay recover deterministically —
    // a replayed step does not re-trip an exhausted fault.
    if (step >= ls.spec.at && ls.fired < ls.spec.times) {
      ++ls.fired;
      hit = true;
    }
  }
  return hit;
}

bool fail_write_open_slow(const std::string& path) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  bool hit = false;
  for (auto& ls : rt.specs) {
    if (ls.spec.kind != Kind::kWriteOpen) continue;
    if (!matches(ls.spec.target, path)) continue;
    if (count_and_check(ls)) hit = true;
  }
  return hit;
}

bool fail_write_rename_slow(const std::string& path) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  bool hit = false;
  for (auto& ls : rt.specs) {
    if (ls.spec.kind != Kind::kWriteRename) continue;
    if (!matches(ls.spec.target, path)) continue;
    if (count_and_check(ls)) hit = true;
  }
  return hit;
}

void check_alloc_slow(const char* kernel) {
  auto& rt = runtime();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    for (auto& ls : rt.specs) {
      if (ls.spec.kind != Kind::kBadAlloc) continue;
      if (!matches(ls.spec.target, kernel)) continue;
      if (count_and_check(ls)) fire = true;
    }
  }
  if (fire) throw std::bad_alloc();
}

void check_stall_slow(const char* where) {
  auto& rt = runtime();
  std::int64_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    for (auto& ls : rt.specs) {
      if (ls.spec.kind != Kind::kStall) continue;
      if (!matches(ls.spec.target, where)) continue;
      if (count_and_check(ls)) sleep_ms = std::max(sleep_ms, ls.spec.ms);
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

std::int64_t clock_skew_slow(const char* where) {
  auto& rt = runtime();
  std::lock_guard<std::mutex> lock(rt.mu);
  std::int64_t total_ms = 0;
  for (auto& ls : rt.specs) {
    if (ls.spec.kind != Kind::kClockSkew) continue;
    if (!matches(ls.spec.target, where)) continue;
    if (count_and_check(ls)) total_ms += ls.spec.ms;
  }
  return total_ms;
}

}  // namespace detail

}  // namespace tx::fault
