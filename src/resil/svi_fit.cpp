#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "resil/guard.h"
#include "resil/io.h"
#include "resil/resil.h"
#include "util/textio.h"

namespace tx::resil {

namespace {

Bundle make_svi_bundle(infer::SVI& svi, const RetryPolicy& policy) {
  Bundle b;
  std::ostringstream meta;
  meta << "svi steps " << svi.steps_taken() << '\n';
  if (policy.scheduler != nullptr) {
    meta << "sched " << policy.scheduler->count() << '\n';
  }
  b.set("svi.meta", meta.str());
  b.set("store", param_store_bytes(svi.store()));
  b.set("optim", optimizer_bytes(svi.optimizer()));
  if (svi.generator() != nullptr) {
    b.set("gen", generator_bytes(*svi.generator()));
  }
  return b;
}

void apply_svi_bundle(const Bundle& b, infer::SVI& svi,
                      const RetryPolicy& policy) {
  // Parse the meta section before mutating anything; the section appliers
  // each stage-then-swap internally.
  std::istringstream meta(b.get("svi.meta"));
  textio::expect_tag(meta, "svi");
  textio::expect_tag(meta, "steps");
  const std::int64_t steps = textio::read_int(meta, "svi steps");
  std::int64_t sched_count = -1;
  if (policy.scheduler != nullptr) {
    textio::expect_tag(meta, "sched");
    sched_count = textio::read_int(meta, "sched count");
  }
  // prune_extra: the store must match the bundle exactly — a rolled-back
  // step may have lazily created (and NaN-poisoned) params the anchor has
  // never seen, and leaving them in place would defeat the rollback.
  apply_param_store_bytes(b.get("store"), svi.store(), /*prune_extra=*/true);
  apply_optimizer_bytes(b.get("optim"), svi.optimizer());
  if (svi.generator() != nullptr && b.has("gen")) {
    apply_generator_bytes(b.get("gen"), *svi.generator());
  }
  svi.set_steps_taken(steps);
  if (policy.scheduler != nullptr) policy.scheduler->set_count(sched_count);
}

void bump(const char* name) {
  if (obs::enabled()) obs::registry().counter(name).add(1);
}

void gauge(const char* name, double value) {
  if (obs::enabled()) obs::registry().gauge(name).set(value);
}

}  // namespace

FitReport fit_svi(infer::SVI& svi, std::int64_t num_steps,
                  const RetryPolicy& policy) {
  TX_CHECK(num_steps >= 0, "fit: num_steps must be >= 0");
  TX_CHECK(policy.checkpoint_every >= 1, "fit: checkpoint_every must be >= 1");
  TX_CHECK(policy.lr_decay > 0.0 && policy.lr_decay <= 1.0,
           "fit: lr_decay must be in (0, 1]");

  FitReport report;
  report.final_loss = std::numeric_limits<double>::quiet_NaN();
  const bool has_file = !policy.checkpoint_path.empty();

  if (has_file && policy.resume && file_exists(policy.checkpoint_path)) {
    // A real but corrupt checkpoint throws here — silently restarting from
    // scratch would hide data loss. Crash-mid-write never corrupts the file
    // (the atomic writer leaves the previous complete version in place).
    apply_svi_bundle(Bundle::read_file(policy.checkpoint_path), svi, policy);
    report.resumed = true;
    bump("resil.svi.resumes");
  }

  // The current state is the first rollback anchor, so even a failure on the
  // very first step has somewhere good to return to.
  Bundle last_good = make_svi_bundle(svi, policy);
  std::int64_t last_good_step = svi.steps_taken();
  double anchor_lr = svi.optimizer().lr();

  // Chain a step callback so loss AND grad-norm gate every step. The loss at
  // step t is computed before the optimizer applies the gradients, so a
  // finite loss with a poisoned gradient would otherwise look "good" while
  // the params are already NaN.
  struct StepStat {
    double loss = std::numeric_limits<double>::quiet_NaN();
    double grad_norm = std::numeric_limits<double>::quiet_NaN();
  };
  StepStat stat;
  const infer::StepCallback user_cb = svi.step_callback();
  svi.set_step_callback([&stat, &user_cb](const infer::SVIStepInfo& info) {
    stat.loss = info.loss;
    stat.grad_norm = info.grad_norm;
    if (user_cb) user_cb(info);
  });
  struct CallbackRestore {
    infer::SVI& svi;
    infer::StepCallback cb;
    ~CallbackRestore() { svi.set_step_callback(std::move(cb)); }
  } restore_cb{svi, user_cb};

  // One budget governs the whole fit — steps, retries, and backoff sleeps.
  // An explicit policy.budget is installed here; otherwise any ambient
  // guard::BudgetScope the caller opened already covers the loop.
  std::optional<guard::BudgetScope> budget_scope;
  if (policy.budget != nullptr) budget_scope.emplace(*policy.budget);

  int consecutive_rollbacks = 0;
  while (svi.steps_taken() < num_steps) {
    if (const guard::Reason stop = guard::poll("svi.fit");
        stop != guard::Reason::kNone) {
      // Graceful stop at a step boundary: state is the last completed step.
      report.cancelled = true;
      report.failure_reason = guard::reason_name(stop);
      bump("resil.svi.budget_stops");
      break;
    }
    stat = StepStat{};
    try {
      svi.step();
    } catch (const guard::Cancelled& c) {
      // Cancellation landed mid-step (a par chunk or the step's own budget
      // checkpoint): a half-applied step must not leak, so restore the last
      // good anchor before reporting.
      apply_svi_bundle(last_good, svi, policy);
      svi.optimizer().set_lr(anchor_lr);
      report.cancelled = true;
      report.failure_reason = guard::reason_name(c.reason());
      bump("resil.svi.budget_stops");
      break;
    }
    ++report.steps_run;
    if (policy.scheduler != nullptr) policy.scheduler->step();

    const bool good = std::isfinite(stat.loss) && std::isfinite(stat.grad_norm);
    if (!good) {
      ++report.rollbacks;
      ++consecutive_rollbacks;
      bump("resil.svi.rollbacks");
      if (consecutive_rollbacks > policy.max_retries) {
        // Retry budget for this segment exhausted: leave the process in the
        // last good state and report, with the diag forensics (which fired
        // on the same non-finite value) linked for the post-mortem.
        apply_svi_bundle(last_good, svi, policy);
        svi.optimizer().set_lr(anchor_lr);
        report.exhausted = true;
        report.failure_reason = obs::diag::last_forensic_reason();
        if (report.failure_reason.empty()) {
          report.failure_reason = std::isfinite(stat.loss)
                                      ? "non-finite gradient"
                                      : "non-finite loss";
        }
        bump("resil.svi.retries_exhausted");
        break;
      }
      apply_svi_bundle(last_good, svi, policy);
      const double lr =
          anchor_lr * std::pow(policy.lr_decay, consecutive_rollbacks);
      svi.optimizer().set_lr(lr);
      gauge("resil.svi.lr", lr);
      gauge("resil.svi.consecutive_rollbacks",
            static_cast<double>(consecutive_rollbacks));
      if (policy.backoff_seconds > 0.0) {
        double backoff = std::min(
            policy.backoff_seconds *
                std::pow(2.0, static_cast<double>(consecutive_rollbacks - 1)),
            policy.max_backoff_seconds);
        if (guard::active()) {
          // Retries respect the overall deadline: never sleep past it. The
          // loop-top poll then stops the fit instead of retrying.
          backoff = std::min(backoff, guard::current()->remaining_seconds());
        }
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      continue;
    }

    report.final_loss = stat.loss;
    const bool due = svi.steps_taken() - last_good_step >=
                         policy.checkpoint_every ||
                     svi.steps_taken() >= num_steps;
    if (due) {
      last_good = make_svi_bundle(svi, policy);
      last_good_step = svi.steps_taken();
      anchor_lr = svi.optimizer().lr();
      consecutive_rollbacks = 0;
      ++report.checkpoints;
      bump("resil.ckpt.snapshots");
      if (has_file) {
        if (last_good.write_file(policy.checkpoint_path)) {
          bump("resil.ckpt.writes");
        } else {
          // Keep going on the in-memory anchor: a failed write must never
          // take the run down, and the on-disk file is still the previous
          // complete checkpoint.
          ++report.checkpoint_failures;
          bump("resil.ckpt.write_failures");
        }
      }
      gauge("resil.svi.checkpoint_step", static_cast<double>(last_good_step));
    }
  }

  report.steps_completed = svi.steps_taken();
  gauge("resil.svi.rollbacks_total", static_cast<double>(report.rollbacks));
  return report;
}

}  // namespace tx::resil

namespace tx::infer {

resil::FitReport SVI::fit(std::int64_t num_steps,
                          const resil::RetryPolicy& policy) {
  return resil::fit_svi(*this, num_steps, policy);
}

}  // namespace tx::infer
