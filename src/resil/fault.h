// Deterministic fault injection (tx::fault): the test harness behind
// tx::resil. A *plan* names faults to inject at exact, countable points —
// poison a named gradient with NaN at SVI step N, fail the next K checkpoint
// writes, throw std::bad_alloc from the nth matching tensor kernel, stall a
// pool worker — so every recovery path in the library is exercised by tests
// instead of merely claimed.
//
// Plans are fully deterministic: every hook keeps a per-spec match counter
// and fires on exact counts, never on wall clock or randomness, so a failing
// fault test replays bit-for-bit. Plans install programmatically
// (install/ScopedPlan) or from the TYXE_FAULT environment variable (see
// docs/robustness.md for the grammar); nothing is ever installed implicitly.
//
// While no plan is armed every hook is a single relaxed atomic load, so the
// instrumented layers (tensor kernels, the pool worker loop, the SVI driver,
// file writes) pay nothing in production.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tx::fault {

enum class Kind {
  kNanGrad,      // poison gradients of matching params at an SVI step
  kWriteOpen,    // fail a file write at open time (torn temp file)
  kWriteRename,  // "crash" between temp write and rename (temp left behind)
  kBadAlloc,     // throw std::bad_alloc from a matching kernel hook
  kStall,        // sleep inside a matching hook (pool workers)
  kClockSkew,    // advance the tx::guard virtual clock at a matching hook
};

/// One fault clause. `target` is matched as a substring of the hook's
/// name/path (empty matches everything). For kNanGrad `at` is the 0-based
/// SVI step: the fault fires for matching params at steps >= `at`, at most
/// `times` total poisonings — so a driver that rolls back and replays the
/// step recovers instead of re-tripping forever. For the other kinds `at`
/// is the 1-based index of the matching call and the fault fires `times`
/// consecutive matches starting there.
struct Spec {
  Kind kind = Kind::kNanGrad;
  std::string target;
  std::int64_t at = 0;
  std::int64_t times = 1;
  std::int64_t ms = 0;  // kStall sleep duration
};

struct Plan {
  std::vector<Spec> specs;
  bool empty() const { return specs.empty(); }
};

/// Parse the TYXE_FAULT grammar: ';'-separated clauses of
///   nan-grad=<substr>@<step>[xN]
///   write-open=<K>[@<nth>]        (fail K writes starting at the nth)
///   write-rename=<K>[@<nth>]
///   bad-alloc=<substr>@<nth>[xN]
///   stall=<substr>@<nth>,ms=<M>
///   clock-skew=<substr>@<nth>[xN],ms=<M>
/// Throws tx::Error on bad syntax.
Plan parse(const std::string& spec);

/// Install a plan (replacing any active one) / disarm entirely.
void install(Plan plan);
void clear();

/// Install from TYXE_FAULT if set and non-empty; returns true if a plan was
/// installed. Call sites opt in explicitly (bench mains, the CI fault job);
/// the library never arms itself.
bool install_from_env();

/// Total fires of a kind since the current plan was installed.
std::int64_t fires(Kind kind);

/// RAII plan for tests: installs on construction, clears on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { install(std::move(plan)); }
  explicit ScopedPlan(const std::string& spec) { install(parse(spec)); }
  ~ScopedPlan() { clear(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

namespace detail {
extern std::atomic<bool> armed;
bool poison_grad_slow(const std::string& param, std::int64_t step);
bool fail_write_open_slow(const std::string& path);
bool fail_write_rename_slow(const std::string& path);
void check_alloc_slow(const char* kernel);
void check_stall_slow(const char* where);
std::int64_t clock_skew_slow(const char* where);
}  // namespace detail

/// True while a plan is installed (one relaxed load).
inline bool armed() { return detail::armed.load(std::memory_order_relaxed); }

// ---- hooks (called by the instrumented layers) -----------------------------

/// SVI driver, after backward: should `param`'s gradient at step `step` be
/// overwritten with NaN?
inline bool poison_grad(const std::string& param, std::int64_t step) {
  return armed() && detail::poison_grad_slow(param, step);
}

/// Crash-safe file writer: simulate an open/short-write failure for `path`?
inline bool fail_write_open(const std::string& path) {
  return armed() && detail::fail_write_open_slow(path);
}

/// Crash-safe file writer: simulate a kill between temp write and rename?
inline bool fail_write_rename(const std::string& path) {
  return armed() && detail::fail_write_rename_slow(path);
}

/// Tensor kernels: throws std::bad_alloc when a matching spec fires.
inline void check_alloc(const char* kernel) {
  if (armed()) detail::check_alloc_slow(kernel);
}

/// Pool workers / long loops: sleeps when a matching stall spec fires.
inline void check_stall(const char* where) {
  if (armed()) detail::check_stall_slow(where);
}

/// Guard clock hooks (budget checkpoints): milliseconds to advance the
/// tx::guard virtual clock by, 0 when no clock-skew spec fires. Firing is a
/// pure function of the matching-call count, so a deadline crossed via skew
/// replays at exactly the same checkpoint every run.
inline std::int64_t clock_skew(const char* where) {
  return armed() ? detail::clock_skew_slow(where) : 0;
}

}  // namespace tx::fault
