// Crash-safe file primitives shared by tx::resil and the nn checkpoint
// writers: atomic replace (temp file + fsync + rename + directory fsync) and
// the FNV-1a checksum used by tx.ckpt.v1 footers. Lives in tx_fault so the
// low-level layers (tensor, nn) can use it without depending on tx_resil.
#pragma once

#include <cstdint>
#include <string>

namespace tx::resil {

/// FNV-1a 64-bit over `data`. Stable across platforms; used as the
/// tx.ckpt.v1 footer checksum.
std::uint64_t fnv1a64(const std::string& data);

/// Write `content` to `path` atomically: write to `path + ".tmp"`, fflush +
/// fsync, close, rename over `path`, then best-effort fsync of the parent
/// directory. After a crash at ANY point the destination holds either the
/// complete old content or the complete new content, never a mix (the only
/// debris possible is a stale .tmp file, which writers overwrite).
///
/// Returns false (without throwing) when the write could not be completed —
/// real I/O errors and injected tx::fault write failures look identical to
/// the caller, which must keep its in-memory copy authoritative.
bool atomic_write_file(const std::string& path, const std::string& content);

/// Read a whole file. Returns false if it cannot be opened/read.
bool read_file(const std::string& path, std::string* out);

/// True if `path` exists (regular stat, no throw).
bool file_exists(const std::string& path);

}  // namespace tx::resil
