#include "resil/io.h"

#include <cstdio>
#include <sys/stat.h>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "resil/fault.h"

namespace tx::resil {

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

void fsync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort: rename durability, not correctness
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";

  if (fault::fail_write_open(path)) {
    // Simulate a failure partway through writing the temp file: leave a torn
    // temp behind, exactly what a crashed writer would.
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(content.data(), 1, content.size() / 2, f);
      std::fclose(f);
    }
    return false;
  }

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  if (written != content.size() || std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
#ifndef _WIN32
  ::fsync(::fileno(f));
#endif
  std::fclose(f);

  if (fault::fail_write_rename(path)) {
    // Simulate a kill between temp write and rename: the complete temp file
    // stays on disk but the destination is untouched.
    return false;
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok) *out = std::move(data);
  return ok;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace tx::resil
