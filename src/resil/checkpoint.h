// tx.ckpt.v1 checkpoint bundles: versioned, checksummed containers of named
// byte sections, written crash-safely (atomic_write_file) and parsed fully
// before anything is applied. The SVI/MCMC drivers in tx::resil compose
// bundles out of the section serializers below; every section is stable text
// (hexfloats), so a bundle round-trips training state bitwise.
//
// Wire format:
//   tx.ckpt.v1 <nsections>\n
//   @ <name> <nbytes>\n<bytes>\n          (x nsections, sorted by name)
//   @checksum <16 hex digits>\n           (FNV-1a 64 of everything above)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "infer/optim.h"
#include "ppl/param_store.h"
#include "util/random.h"

namespace tx::resil {

class Bundle {
 public:
  void set(const std::string& name, std::string bytes);
  bool has(const std::string& name) const;
  /// Throws tx::Error if the section is missing.
  const std::string& get(const std::string& name) const;
  std::size_t size() const { return sections_.size(); }
  std::vector<std::string> names() const;

  std::string serialize() const;
  /// Throws tx::Error on a bad header, truncated section, or checksum
  /// mismatch — a corrupt file can never yield a partially-filled Bundle.
  static Bundle deserialize(const std::string& data);

  /// Atomic write via tx::resil::atomic_write_file; false when the write (or
  /// an injected fault) failed, in which case the destination still holds
  /// its previous complete content.
  bool write_file(const std::string& path) const;
  /// Throws tx::Error when the file is missing, truncated, or corrupt.
  static Bundle read_file(const std::string& path);

 private:
  std::map<std::string, std::string> sections_;
};

// ---- section serializers ---------------------------------------------------
// Every apply_* stages the parsed state completely (throwing tx::Error on
// corruption) before the first mutation of the live object.

std::string param_store_bytes(const ppl::ParamStore& store);
/// Existing same-name params keep their handles (values copied through, so
/// live guides and optimizers see them); new names are created. With
/// `prune_extra` false, params absent from the bytes are left untouched; with
/// it true they are erased, so the store afterwards matches the bytes exactly
/// — what a rollback needs when a failed step lazily created params the
/// anchor has never seen (the guide re-creates them from the restored RNG
/// stream, so the replay is still bitwise-exact).
void apply_param_store_bytes(const std::string& bytes, ppl::ParamStore& store,
                             bool prune_extra = false);

std::string generator_bytes(const Generator& gen);
void apply_generator_bytes(const std::string& bytes, Generator& gen);

std::string optimizer_bytes(const infer::Optimizer& opt);
void apply_optimizer_bytes(const std::string& bytes, infer::Optimizer& opt);

}  // namespace tx::resil
