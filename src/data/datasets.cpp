#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tx::data {

RegressionData make_foong_regression(std::int64_t n, Generator& gen,
                                     float noise) {
  std::vector<float> xs(static_cast<std::size_t>(n));
  std::vector<float> ys(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = i % 2 == 0 ? gen.uniform(-1.0, -0.7)
                                : gen.uniform(0.5, 1.0);
    xs[static_cast<std::size_t>(i)] = static_cast<float>(x);
    ys[static_cast<std::size_t>(i)] = static_cast<float>(
        std::cos(4.0 * x + 0.8) + gen.normal(0.0, noise));
  }
  return RegressionData{Tensor(Shape{n, 1}, std::move(xs)),
                        Tensor(Shape{n, 1}, std::move(ys))};
}

namespace {

/// Fixed smooth per-class pattern: a few random low-frequency gratings per
/// channel, fully determined by (pattern_seed, class).
Tensor class_pattern(std::int64_t cls, const SyntheticImageConfig& cfg) {
  Generator pg(cfg.pattern_seed * 1000003ULL +
               static_cast<std::uint64_t>(cls) * 7919ULL);
  Tensor pattern = zeros({cfg.channels, cfg.size, cfg.size});
  for (std::int64_t ch = 0; ch < cfg.channels; ++ch) {
    for (int wave = 0; wave < 3; ++wave) {
      const float fx = static_cast<float>(pg.uniform(0.5, 2.0));
      const float fy = static_cast<float>(pg.uniform(0.5, 2.0));
      const float phase = static_cast<float>(pg.uniform(0.0, 6.2831853));
      const float amp = static_cast<float>(pg.uniform(0.3, 0.7));
      for (std::int64_t y = 0; y < cfg.size; ++y) {
        for (std::int64_t x = 0; x < cfg.size; ++x) {
          const float u = static_cast<float>(x) / static_cast<float>(cfg.size);
          const float v = static_cast<float>(y) / static_cast<float>(cfg.size);
          pattern.at((ch * cfg.size + y) * cfg.size + x) +=
              amp * std::sin(6.2831853f * (fx * u + fy * v) + phase);
        }
      }
    }
  }
  return pattern;
}

}  // namespace

ImageDataset make_pattern_images(const SyntheticImageConfig& cfg,
                                 Generator& gen) {
  const std::int64_t n = cfg.num_classes * cfg.per_class;
  const std::int64_t pixels = cfg.channels * cfg.size * cfg.size;
  Tensor images = zeros({n, cfg.channels, cfg.size, cfg.size});
  Tensor labels = zeros({n});
  std::vector<Tensor> patterns;
  patterns.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
    patterns.push_back(class_pattern(c, cfg));
  }
  std::int64_t idx = 0;
  for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
    for (std::int64_t k = 0; k < cfg.per_class; ++k, ++idx) {
      const float brightness = static_cast<float>(gen.uniform(-0.2, 0.2));
      for (std::int64_t p = 0; p < pixels; ++p) {
        images.at(idx * pixels + p) =
            patterns[static_cast<std::size_t>(c)].at(p) + brightness +
            static_cast<float>(gen.normal(0.0, cfg.noise));
      }
      labels.at(idx) = static_cast<float>(c);
    }
  }
  // Shuffle examples so mini-batches mix classes.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), gen.engine());
  Tensor shuffled_images = zeros(images.shape());
  Tensor shuffled_labels = zeros(labels.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t src = order[static_cast<std::size_t>(i)];
    for (std::int64_t p = 0; p < pixels; ++p) {
      shuffled_images.at(i * pixels + p) = images.at(src * pixels + p);
    }
    shuffled_labels.at(i) = labels.at(src);
  }
  return ImageDataset{shuffled_images, shuffled_labels, cfg.num_classes};
}

ImageDataset make_ood_images(std::int64_t count, std::int64_t channels,
                             std::int64_t size, Generator& gen) {
  const std::int64_t pixels = channels * size * size;
  Tensor images = zeros({count, channels, size, size});
  for (std::int64_t i = 0; i < count; ++i) {
    // High-frequency checker texture with a random period and phase; a
    // generative family disjoint from the smooth class gratings.
    const std::int64_t period = gen.randint(1, 3);
    const float phase_x = static_cast<float>(gen.randint(0, size - 1));
    const float phase_y = static_cast<float>(gen.randint(0, size - 1));
    const float amp = static_cast<float>(gen.uniform(0.6, 1.2));
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (std::int64_t y = 0; y < size; ++y) {
        for (std::int64_t x = 0; x < size; ++x) {
          const auto cell =
              (static_cast<std::int64_t>(x + phase_x) / period +
               static_cast<std::int64_t>(y + phase_y) / period) %
              2;
          const float v = (cell == 0 ? amp : -amp) +
                          static_cast<float>(gen.normal(0.0, 0.15));
          images.at(((i * channels + ch) * size + y) * size + x) = v;
        }
      }
    }
  }
  return ImageDataset{images, zeros({count}), 0};
}

std::vector<SplitTask> make_split_tasks(const SyntheticImageConfig& base_cfg,
                                        std::int64_t num_tasks,
                                        std::int64_t train_per_class,
                                        std::int64_t test_per_class,
                                        Generator& gen, bool relabel) {
  TX_CHECK(base_cfg.num_classes >= 2 * num_tasks,
           "make_split_tasks: need 2 classes per task");
  std::vector<SplitTask> tasks;
  for (std::int64_t t = 0; t < num_tasks; ++t) {
    const std::int64_t a = 2 * t, b = 2 * t + 1;
    auto make_subset = [&](std::int64_t per_class) {
      SyntheticImageConfig cfg = base_cfg;
      cfg.num_classes = base_cfg.num_classes;  // keep the pattern identities
      cfg.per_class = per_class;
      ImageDataset full = make_pattern_images(cfg, gen);
      // Keep only classes a and b, relabelled 0/1.
      const std::int64_t pixels =
          cfg.channels * cfg.size * cfg.size;
      std::vector<std::int64_t> keep;
      for (std::int64_t i = 0; i < full.labels.numel(); ++i) {
        const auto c = static_cast<std::int64_t>(std::llround(full.labels.at(i)));
        if (c == a || c == b) keep.push_back(i);
      }
      const auto m = static_cast<std::int64_t>(keep.size());
      ImageDataset sub;
      sub.images = zeros({m, cfg.channels, cfg.size, cfg.size});
      sub.labels = zeros({m});
      sub.num_classes = 2;
      for (std::int64_t i = 0; i < m; ++i) {
        const std::int64_t src = keep[static_cast<std::size_t>(i)];
        for (std::int64_t p = 0; p < pixels; ++p) {
          sub.images.at(i * pixels + p) = full.images.at(src * pixels + p);
        }
        const auto orig =
            static_cast<std::int64_t>(std::llround(full.labels.at(src)));
        sub.labels.at(i) = relabel ? (orig == a ? 0.0f : 1.0f)
                                   : static_cast<float>(orig);
      }
      if (!relabel) sub.num_classes = cfg.num_classes;
      return sub;
    };
    SplitTask task;
    task.class_a = a;
    task.class_b = b;
    task.train = make_subset(train_per_class);
    task.test = make_subset(test_per_class);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

DataLoader::DataLoader(Tensor inputs, Tensor targets, std::int64_t batch_size,
                       bool shuffle)
    : inputs_(std::move(inputs)),
      targets_(std::move(targets)),
      n_(inputs_.dim(0)),
      batch_size_(batch_size),
      shuffle_(shuffle) {
  TX_CHECK(targets_.dim(0) == n_, "DataLoader: inputs/targets length mismatch");
  TX_CHECK(batch_size_ >= 1, "DataLoader: batch_size must be >= 1");
}

std::int64_t DataLoader::num_batches() const {
  return (n_ + batch_size_ - 1) / batch_size_;
}

std::vector<std::pair<std::vector<Tensor>, Tensor>> DataLoader::batches(
    Generator* gen) const {
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), 0);
  if (shuffle_) {
    Generator& g = gen ? *gen : global_generator();
    std::shuffle(order.begin(), order.end(), g.engine());
  }
  std::vector<std::pair<std::vector<Tensor>, Tensor>> out;
  for (std::int64_t start = 0; start < n_; start += batch_size_) {
    const std::int64_t end = std::min(start + batch_size_, n_);
    std::vector<std::int64_t> idx(order.begin() + start, order.begin() + end);
    Tensor bx = index_select(inputs_, 0, idx);
    Tensor by = index_select(targets_, 0, idx);
    out.emplace_back(std::vector<Tensor>{bx.detach()}, by.detach());
  }
  return out;
}

}  // namespace tx::data
