// Synthetic dataset generators replacing the paper's external data (CIFAR10,
// SVHN, Cora, MNIST) per DESIGN.md's substitution table, plus a mini-batching
// DataLoader.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tx::data {

/// The paper's 1-d regression setup (Foong et al., 2019): two input clusters
/// x ~ U[-1,-0.7] and U[0.5,1], y ~ N(cos(4x + 0.8), 0.1²).
struct RegressionData {
  Tensor x;  // (N, 1)
  Tensor y;  // (N, 1)
};
RegressionData make_foong_regression(std::int64_t n, Generator& gen,
                                     float noise = 0.1f);

/// Labelled image set in NCHW layout.
struct ImageDataset {
  Tensor images;  // (N, C, H, W)
  Tensor labels;  // (N,) float-encoded classes
  std::int64_t num_classes = 0;
};

struct SyntheticImageConfig {
  std::int64_t num_classes = 10;
  std::int64_t per_class = 64;
  std::int64_t channels = 3;
  std::int64_t size = 16;      // H == W
  float noise = 0.35f;         // i.i.d. pixel noise on top of the pattern
  std::uint64_t pattern_seed = 1234;  // fixes class patterns across splits
};

/// CIFAR-analogue: each class has a fixed smooth pattern (sum of a few
/// low-frequency sinusoidal gratings per channel); samples add noise and a
/// small random brightness shift. Train/test splits share patterns by
/// construction (same pattern_seed).
ImageDataset make_pattern_images(const SyntheticImageConfig& config,
                                 Generator& gen);

/// SVHN-analogue OOD set: a *different* generative family (high-frequency
/// checker/stripe textures with per-image random phases) over the same pixel
/// space, so in-distribution classifiers should be uncertain on it.
ImageDataset make_ood_images(std::int64_t count, std::int64_t channels,
                             std::int64_t size, Generator& gen);

/// Split-task stream for continual learning: task t sees only the classes
/// {2t, 2t+1} of the base generator, relabelled to {0, 1}.
struct SplitTask {
  ImageDataset train;
  ImageDataset test;
  std::int64_t class_a = 0, class_b = 0;  // original class ids
};
/// With relabel=true task labels are {0, 1}; with relabel=false the original
/// class ids {2t, 2t+1} are kept (the class-incremental protocol where a
/// single shared softmax over all classes is trained).
std::vector<SplitTask> make_split_tasks(const SyntheticImageConfig& config,
                                        std::int64_t num_tasks,
                                        std::int64_t train_per_class,
                                        std::int64_t test_per_class,
                                        Generator& gen, bool relabel = true);

/// Mini-batch view over (inputs, targets): shuffles per epoch and yields
/// batches shaped like tyxe::Batch.
class DataLoader {
 public:
  DataLoader(Tensor inputs, Tensor targets, std::int64_t batch_size,
             bool shuffle = true);

  std::int64_t size() const { return n_; }
  std::int64_t num_batches() const;

  /// Fresh (shuffled) batch list for one epoch.
  std::vector<std::pair<std::vector<Tensor>, Tensor>> batches(
      Generator* gen = nullptr) const;

 private:
  Tensor inputs_, targets_;
  std::int64_t n_, batch_size_;
  bool shuffle_;
};

}  // namespace tx::data
