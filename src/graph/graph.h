// Graph substrate for the Bayesian GNN experiment: CSR sparse graphs with
// symmetric normalization, a differentiable sparse-dense product, and a
// stochastic-block-model generator producing Cora-like semi-supervised
// citation datasets.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tx::graph {

/// Undirected graph stored as CSR over the *normalized* adjacency with
/// self-loops: Â = D^{-1/2} (A + I) D^{-1/2}, the GCN propagation operator.
class Graph {
 public:
  /// Build from an undirected edge list over `num_nodes` nodes. Duplicate and
  /// self edges are ignored (self-loops are added by normalization).
  Graph(std::int64_t num_nodes,
        const std::vector<std::pair<std::int64_t, std::int64_t>>& edges);

  std::int64_t num_nodes() const { return n_; }
  std::int64_t num_edges() const { return num_edges_; }

  const std::vector<std::int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::int64_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

  /// Average neighbour label agreement for diagnostics (homophily).
  double homophily(const Tensor& labels) const;

 private:
  std::int64_t n_;
  std::int64_t num_edges_ = 0;
  std::vector<std::int64_t> row_offsets_, col_indices_;
  std::vector<float> values_;
};

/// Â X: sparse (constant) times dense (differentiable) product with autograd
/// through the dense side. X is (N, F).
Tensor spmm(const Graph& graph, const Tensor& x);

/// Cora-like stochastic-block-model citation dataset.
struct CitationDataset {
  Graph graph;
  Tensor features;  // (N, F)
  Tensor labels;    // (N,) float-encoded classes
  std::vector<std::int64_t> train_idx, val_idx, test_idx;

  Tensor train_mask() const;  // (N,) 0/1 — the selective_mask input
  Tensor labels_at(const std::vector<std::int64_t>& idx) const;
};

struct SbmConfig {
  std::int64_t num_nodes = 700;
  std::int64_t num_classes = 7;
  std::int64_t num_features = 32;
  double p_intra = 0.02;       // edge prob within a class
  double p_inter = 0.002;      // edge prob across classes
  float feature_signal = 0.8f; // strength of the class-mean feature shift
  /// Cora-style sparse binary bag-of-words features instead of Gaussian
  /// shifts: each class owns `keywords_per_class` (overlapping) keywords,
  /// active with prob p_keyword on its class and p_background elsewhere.
  bool sparse_features = false;
  std::int64_t keywords_per_class = 40;
  double p_keyword = 0.2;
  double p_background = 0.02;
  std::int64_t train_per_class = 20;  // Cora's 140-train split
  std::int64_t num_val = 100;
  std::int64_t num_test = 300;
};

CitationDataset make_sbm_citation(const SbmConfig& config, Generator& gen);

}  // namespace tx::graph
