#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace tx::graph {

Graph::Graph(std::int64_t num_nodes,
             const std::vector<std::pair<std::int64_t, std::int64_t>>& edges)
    : n_(num_nodes) {
  TX_CHECK(num_nodes >= 1, "Graph: need at least one node");
  // Deduplicated symmetric adjacency with self-loops.
  std::vector<std::set<std::int64_t>> adj(static_cast<std::size_t>(n_));
  for (const auto& [u, v] : edges) {
    TX_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_, "Graph: edge out of range");
    if (u == v) continue;
    adj[static_cast<std::size_t>(u)].insert(v);
    adj[static_cast<std::size_t>(v)].insert(u);
    ++num_edges_;
  }
  for (std::int64_t i = 0; i < n_; ++i) {
    adj[static_cast<std::size_t>(i)].insert(i);  // self-loop
  }
  std::vector<double> degree(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i) {
    degree[static_cast<std::size_t>(i)] =
        static_cast<double>(adj[static_cast<std::size_t>(i)].size());
  }
  row_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (std::int64_t i = 0; i < n_; ++i) {
    row_offsets_[static_cast<std::size_t>(i) + 1] =
        row_offsets_[static_cast<std::size_t>(i)] +
        static_cast<std::int64_t>(adj[static_cast<std::size_t>(i)].size());
  }
  col_indices_.reserve(static_cast<std::size_t>(row_offsets_.back()));
  values_.reserve(static_cast<std::size_t>(row_offsets_.back()));
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t j : adj[static_cast<std::size_t>(i)]) {
      col_indices_.push_back(j);
      values_.push_back(static_cast<float>(
          1.0 / std::sqrt(degree[static_cast<std::size_t>(i)] *
                          degree[static_cast<std::size_t>(j)])));
    }
  }
}

double Graph::homophily(const Tensor& labels) const {
  TX_CHECK(labels.numel() == n_, "homophily: label count mismatch");
  std::int64_t same = 0, total = 0;
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t k = row_offsets_[static_cast<std::size_t>(i)];
         k < row_offsets_[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = col_indices_[static_cast<std::size_t>(k)];
      if (j == i) continue;
      ++total;
      if (labels.at(i) == labels.at(j)) ++same;
    }
  }
  return total > 0 ? static_cast<double>(same) / static_cast<double>(total)
                   : 1.0;
}

Tensor spmm(const Graph& graph, const Tensor& x) {
  TX_CHECK(x.rank() == 2 && x.dim(0) == graph.num_nodes(),
           "spmm: x must be (num_nodes, F)");
  const std::int64_t n = graph.num_nodes();
  const std::int64_t f = x.dim(1);
  const auto& rows = graph.row_offsets();
  const auto& cols = graph.col_indices();
  const auto& vals = graph.values();
  std::vector<float> out(static_cast<std::size_t>(n * f), 0.0f);
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float* dst = out.data() + i * f;
    for (std::int64_t k = rows[static_cast<std::size_t>(i)];
         k < rows[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = cols[static_cast<std::size_t>(k)];
      const float w = vals[static_cast<std::size_t>(k)];
      const float* src = px + j * f;
      for (std::int64_t c = 0; c < f; ++c) dst[c] += w * src[c];
    }
  }
  const Graph* g = &graph;  // graphs outlive their uses in this library
  return make_tensor_from_op(
      "spmm", Shape{n, f}, std::move(out), {x},
      [g, n, f](const Tensor& grad) {
        // Â is symmetric, so dX = Â^T G = Â G.
        return std::vector<Tensor>{spmm(*g, grad)};
      });
}

Tensor CitationDataset::train_mask() const {
  Tensor mask = zeros({graph.num_nodes()});
  for (auto i : train_idx) mask.at(i) = 1.0f;
  return mask;
}

Tensor CitationDataset::labels_at(const std::vector<std::int64_t>& idx) const {
  Tensor out = zeros({static_cast<std::int64_t>(idx.size())});
  for (std::size_t k = 0; k < idx.size(); ++k) {
    out.at(static_cast<std::int64_t>(k)) = labels.at(idx[k]);
  }
  return out;
}

CitationDataset make_sbm_citation(const SbmConfig& cfg, Generator& gen) {
  TX_CHECK(cfg.num_nodes >= cfg.num_classes, "SBM: too few nodes");
  const std::int64_t n = cfg.num_nodes;
  // Round-robin class assignment, then shuffled.
  std::vector<std::int64_t> classes(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    classes[static_cast<std::size_t>(i)] = i % cfg.num_classes;
  }
  std::shuffle(classes.begin(), classes.end(), gen.engine());

  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double p = classes[static_cast<std::size_t>(i)] ==
                               classes[static_cast<std::size_t>(j)]
                           ? cfg.p_intra
                           : cfg.p_inter;
      if (gen.bernoulli(p)) edges.emplace_back(i, j);
    }
  }

  Tensor features;
  if (cfg.sparse_features) {
    // Bag-of-words features: overlapping per-class keyword sets.
    std::vector<std::vector<std::int64_t>> keywords(
        static_cast<std::size_t>(cfg.num_classes));
    for (auto& kw : keywords) {
      for (std::int64_t k = 0; k < cfg.keywords_per_class; ++k) {
        kw.push_back(gen.randint(0, cfg.num_features - 1));
      }
    }
    features = zeros({n, cfg.num_features});
    for (std::int64_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(classes[static_cast<std::size_t>(i)]);
      for (std::int64_t d = 0; d < cfg.num_features; ++d) {
        if (gen.bernoulli(cfg.p_background)) {
          features.at(i * cfg.num_features + d) = 1.0f;
        }
      }
      for (std::int64_t kw : keywords[c]) {
        if (gen.bernoulli(cfg.p_keyword)) {
          features.at(i * cfg.num_features + kw) = 1.0f;
        }
      }
    }
  } else {
    // Class-dependent feature means on random unit directions plus noise.
    Tensor class_means = randn({cfg.num_classes, cfg.num_features}, &gen);
    features = randn({n, cfg.num_features}, &gen);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t c = classes[static_cast<std::size_t>(i)];
      for (std::int64_t d = 0; d < cfg.num_features; ++d) {
        features.at(i * cfg.num_features + d) +=
            cfg.feature_signal * class_means.at(c * cfg.num_features + d);
      }
    }
  }

  Tensor labels = zeros({n});
  for (std::int64_t i = 0; i < n; ++i) {
    labels.at(i) = static_cast<float>(classes[static_cast<std::size_t>(i)]);
  }

  // Semi-supervised split: train_per_class per class, then val, then test.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), gen.engine());
  std::vector<std::int64_t> per_class(static_cast<std::size_t>(cfg.num_classes), 0);
  std::vector<std::int64_t> train, rest;
  for (auto i : order) {
    const auto c = static_cast<std::size_t>(classes[static_cast<std::size_t>(i)]);
    if (per_class[c] < cfg.train_per_class) {
      train.push_back(i);
      ++per_class[c];
    } else {
      rest.push_back(i);
    }
  }
  TX_CHECK(static_cast<std::int64_t>(rest.size()) >= cfg.num_val + cfg.num_test,
           "SBM: not enough nodes for the requested val/test split");
  std::vector<std::int64_t> val(rest.begin(), rest.begin() + cfg.num_val);
  std::vector<std::int64_t> test(rest.begin() + cfg.num_val,
                                 rest.begin() + cfg.num_val + cfg.num_test);

  return CitationDataset{Graph(n, edges), features, labels, std::move(train),
                         std::move(val), std::move(test)};
}

}  // namespace tx::graph
