#include "graph/gcn.h"

namespace tx::graph {

GCNLayer::GCNLayer(const Graph* graph, std::int64_t in_features,
                   std::int64_t out_features, Generator* gen)
    : graph_(graph),
      linear_(std::make_shared<nn::Linear>(in_features, out_features,
                                           /*bias=*/true, gen)) {
  TX_CHECK(graph_ != nullptr, "GCNLayer: null graph");
  register_module("linear", linear_);
}

Tensor GCNLayer::forward_one(const Tensor& x) {
  return spmm(*graph_, linear_->forward(x));
}

GCN::GCN(const Graph* graph, std::int64_t in_features, std::int64_t hidden,
         std::int64_t num_classes, Generator* gen) {
  layer1_ = std::make_shared<GCNLayer>(graph, in_features, hidden, gen);
  layer2_ = std::make_shared<GCNLayer>(graph, hidden, num_classes, gen);
  register_module("gcn_layer1", layer1_);
  register_module("gcn_layer2", layer2_);
}

Tensor GCN::forward_one(const Tensor& x) {
  return layer2_->forward(relu(layer1_->forward(x)));
}

}  // namespace tx::graph
