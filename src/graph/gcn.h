// Graph convolutional network modules (Kipf & Welling style, matching the
// DGL tutorial architecture of the paper's Listing 4). GCNLayer uses a
// Linear internally, so it is flipout-compatible and its parameters are
// ordinary named slots — the whole point of the "no bespoke layers" design:
// a GCN becomes Bayesian without any graph-specific support code.
#pragma once

#include "graph/graph.h"
#include "nn/nn.h"

namespace tx::graph {

/// h = Â (X W^T + b): neighbourhood aggregation after a linear map.
class GCNLayer : public nn::UnaryModule {
 public:
  GCNLayer(const Graph* graph, std::int64_t in_features,
           std::int64_t out_features, Generator* gen = nullptr);

  std::string type_name() const override { return "GCNLayer"; }
  Tensor forward_one(const Tensor& x) override;

 private:
  const Graph* graph_;
  std::shared_ptr<nn::Linear> linear_;
};

/// Two-layer GCN with ReLU, the standard semi-supervised node classifier.
class GCN : public nn::UnaryModule {
 public:
  GCN(const Graph* graph, std::int64_t in_features, std::int64_t hidden,
      std::int64_t num_classes, Generator* gen = nullptr);

  std::string type_name() const override { return "GCN"; }
  Tensor forward_one(const Tensor& x) override;

 private:
  std::shared_ptr<GCNLayer> layer1_, layer2_;
};

}  // namespace tx::graph
