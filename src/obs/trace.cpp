#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flags.h"
#include "obs/registry.h"

namespace tx::obs {

#ifndef TX_OBS_DISABLED

namespace {

struct TraceEvent {
  char phase = 'i';  // 'B', 'E', 'i', 'C'
  double ts_us = 0.0;
  std::string name;
  std::string args;  // pre-rendered JSON object, or empty
};

/// Events retained per thread; the oldest are overwritten past this. Sized
/// so a full fig1_regression run (~300k events on the main thread) fits
/// without eviction; at ~100 bytes/event the worst case is ~50 MB per
/// *emitting* thread, paid only while tracing (buffers grow on demand).
constexpr std::size_t kRingCapacity = std::size_t{1} << 19;

/// One thread's ring buffer. The owning thread appends under the buffer's
/// own (uncontended) mutex; the exporter takes the same mutex briefly while
/// draining. Buffers are owned by the global recorder, so events survive the
/// thread itself (pool workers die on every set_num_threads).
struct ThreadBuffer {
  int tid = 0;
  std::string thread_name;
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;  // overwrite cursor once the ring is full
  std::int64_t dropped = 0;

  void append(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < kRingCapacity) {
      ring.push_back(std::move(ev));
    } else {
      ring[head] = std::move(ev);
      head = (head + 1) % kRingCapacity;
      ++dropped;
    }
  }

  /// Events oldest-first (unwraps the ring).
  std::vector<TraceEvent> drain_copy() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      out.push_back(ring[(head + i) % ring.size()]);
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu);
    ring.clear();
    head = 0;
    dropped = 0;
  }
};

struct Recorder {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

Recorder& recorder() {
  static Recorder* rec = new Recorder();  // never destroyed
  return *rec;
}

std::atomic<bool> g_tracing{false};
std::atomic<std::int64_t> g_epoch_ns{0};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double trace_now_us() {
  return static_cast<double>(steady_ns() -
                             g_epoch_ns.load(std::memory_order_relaxed)) /
         1e3;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    b->tid = rec.next_tid++;
    b->thread_name = "thread-" + std::to_string(b->tid);
    rec.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void emit(char phase, const std::string& name, std::string args) {
  TraceEvent ev;
  ev.phase = phase;
  ev.ts_us = trace_now_us();
  ev.name = name;
  ev.args = std::move(args);
  local_buffer().append(std::move(ev));
}

void render_event(std::ofstream& out, int tid, const TraceEvent& ev) {
  char ts[40];
  std::snprintf(ts, sizeof(ts), "%.3f", ev.ts_us);
  out << "{\"ph\": \"" << ev.phase << "\", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": " << ts << ", \"name\": \"" << escape_json(ev.name)
      << "\", \"cat\": \"tx\"";
  if (!ev.args.empty()) out << ", \"args\": " << ev.args;
  out << "}";
}

void render_thread_meta(std::ofstream& out, int tid, const std::string& name) {
  out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
      << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
      << escape_json(name) << "\"}},\n";
  // Perfetto sorts tracks by sort_index; tid order keeps main on top.
  out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
      << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
      << tid << "}}";
}

}  // namespace

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

void start_tracing() {
  clear_trace();
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() { g_tracing.store(false, std::memory_order_relaxed); }

void clear_trace() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  for (auto& b : rec.buffers) b->clear();
}

std::int64_t trace_event_count() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  std::int64_t n = 0;
  for (auto& b : rec.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += static_cast<std::int64_t>(b->ring.size());
  }
  return n;
}

std::int64_t trace_dropped_count() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  std::int64_t n = 0;
  for (auto& b : rec.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->dropped;
  }
  return n;
}

void set_trace_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.thread_name = name;
}

void trace_begin(const std::string& name, std::string args_json) {
  if (!tracing()) return;
  emit('B', name, std::move(args_json));
}

void trace_end(const std::string& name, std::string args_json) {
  if (!tracing()) return;
  emit('E', name, std::move(args_json));
}

void trace_instant(const std::string& name, std::string args_json) {
  if (!tracing()) return;
  emit('i', name, std::move(args_json));
}

void trace_counter(const std::string& name, double value) {
  if (!tracing()) return;
  Event args;
  args.set("value", value);
  emit('C', name, args.to_json());
}

bool write_trace(const std::string& path) {
  // Snapshot every buffer first (brief per-buffer locks), then render with
  // no locks held.
  struct Track {
    int tid;
    std::string name;
    std::vector<TraceEvent> events;
    std::int64_t dropped;
  };
  std::vector<Track> tracks;
  {
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    tracks.reserve(rec.buffers.size());
    for (auto& b : rec.buffers) {
      Track t;
      t.events = b->drain_copy();
      std::lock_guard<std::mutex> blk(b->mu);
      t.tid = b->tid;
      t.name = b->thread_name;
      t.dropped = b->dropped;
      tracks.push_back(std::move(t));
    }
  }

  // Balance B/E per track: ring wrap can strand an E whose B was overwritten
  // (dropped here), and spans still open at export need a synthetic close so
  // the file loads as complete slices.
  std::int64_t dropped_total = 0;
  for (Track& t : tracks) {
    dropped_total += t.dropped;
    std::vector<std::size_t> open;  // indices of unmatched B events
    std::vector<TraceEvent> balanced;
    balanced.reserve(t.events.size());
    double last_ts = 0.0;
    for (TraceEvent& ev : t.events) {
      last_ts = std::max(last_ts, ev.ts_us);
      if (ev.phase == 'E') {
        if (open.empty()) continue;  // B lost to ring wrap
        open.pop_back();
      } else if (ev.phase == 'B') {
        open.push_back(balanced.size());
      }
      balanced.push_back(std::move(ev));
    }
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      TraceEvent close;
      close.phase = 'E';
      close.ts_us = last_ts;
      close.name = balanced[*it].name;
      balanced.push_back(std::move(close));
    }
    t.events = std::move(balanced);
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  out << "{\n\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"schema\": \"tx.trace.v1\", \"dropped_events\": "
      << dropped_total << "},\n";
  out << "\"traceEvents\": [\n";
  out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"tyxe\"}}";
  for (const Track& t : tracks) {
    out << ",\n";
    render_thread_meta(out, t.tid, t.name);
    for (const TraceEvent& ev : t.events) {
      out << ",\n";
      render_event(out, t.tid, ev);
    }
  }
  out << "\n]}\n";
  out.flush();
  if (!out.good()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  return true;
}

#endif  // !TX_OBS_DISABLED

std::string trace_path_from_args(int argc, char** argv) {
  return detail::path_flag(argc, argv, "--trace", "TYXE_TRACE");
}

}  // namespace tx::obs
