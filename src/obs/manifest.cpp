#include "obs/manifest.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "obs/event_sink.h"
#include "util/env.h"

#ifndef TX_GIT_SHA
#define TX_GIT_SHA "unknown"
#endif
#ifndef TX_BUILD_TYPE
#define TX_BUILD_TYPE "unknown"
#endif

namespace tx::obs::manifest {

namespace {

struct State {
  std::mutex mu;
  bool captured = false;
  std::vector<std::function<void()>> providers;
  std::map<std::string, std::string> fields;  // key -> rendered JSON value
};

State& state() {
  static State* s = new State();  // never destroyed (static registrars)
  return *s;
}

void set_rendered(const std::string& key, std::string rendered) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.fields[key] = std::move(rendered);
}

}  // namespace

void register_provider(std::function<void()> provider) {
  State& s = state();
  bool run_now = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.captured) {
      run_now = true;  // late registration: publish immediately
    } else {
      s.providers.push_back(std::move(provider));
    }
  }
  if (run_now) provider();
}

void set_field(const std::string& key, const std::string& value) {
  set_rendered(key, "\"" + escape_json(value) + "\"");
}

void set_field(const std::string& key, std::int64_t value) {
  set_rendered(key, std::to_string(value));
}

void set_field(const std::string& key, bool value) {
  set_rendered(key, value ? "true" : "false");
}

void capture() {
  State& s = state();
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.captured) return;
    s.captured = true;
    to_run.swap(s.providers);
  }
  // Run outside the lock: providers call set_field.
  for (const auto& provider : to_run) provider();
}

std::string json(const std::string& indent) {
  capture();
  const std::string pad = indent + "  ";
  std::string out = "{\n";
  out += pad + "\"schema\": \"tx.manifest.v1\",\n";
  out += pad + "\"git_sha\": \"" + escape_json(TX_GIT_SHA) + "\",\n";
  out += pad + "\"build_type\": \"" + escape_json(TX_BUILD_TYPE) + "\",\n";

  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, rendered] : s.fields) {
      out += pad + "\"" + escape_json(key) + "\": " + rendered + ",\n";
    }
  }

  out += pad + "\"env\": {";
  bool first = true;
  for (const auto& var : env::known_vars()) {
    const char* v = std::getenv(var.name);
    out += first ? "\n" : ",\n";
    out += pad + "  \"" + escape_json(var.name) + "\": {\"set\": ";
    out += v != nullptr ? "true" : "false";
    out += ", \"value\": ";
    out += v != nullptr ? "\"" + escape_json(v) + "\"" : std::string("null");
    out += ", \"default\": \"" + escape_json(var.default_value) + "\"";
    if (var.build_time) out += ", \"build_time\": true";
    out += "}";
    first = false;
  }
  out += first ? "" : "\n" + pad;
  out += "},\n";

  out += pad + "\"unknown_env\": [";
  first = true;
  for (const auto& name : env::unknown_set_vars()) {
    if (!first) out += ", ";
    out += "\"" + escape_json(name) + "\"";
    first = false;
  }
  out += "]\n" + indent + "}";
  return out;
}

void reset_for_testing() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.captured = false;
  s.providers.clear();
  s.fields.clear();
}

}  // namespace tx::obs::manifest
