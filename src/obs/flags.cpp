#include "obs/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/manifest.h"
#include "util/env.h"

namespace tx::obs {

namespace {

// ""/off/0 -> off (-1), auto -> ephemeral (0), else the literal port.
// Unparsable values warn and leave the server off rather than aborting a
// long run over a telemetry typo.
int parse_http_port(const char* spec, const char* origin) {
  if (spec == nullptr || *spec == '\0' || std::strcmp(spec, "off") == 0 ||
      std::strcmp(spec, "0") == 0) {
    return -1;
  }
  if (std::strcmp(spec, "auto") == 0) return 0;
  char* end = nullptr;
  const long port = std::strtol(spec, &end, 10);
  if (end == spec || *end != '\0' || port < 0 || port > 65535) {
    std::fprintf(stderr,
                 "warning: %s: bad port '%s' (want off, auto, or 1-65535); "
                 "telemetry server disabled\n",
                 origin, spec);
    return -1;
  }
  return static_cast<int>(port);
}

}  // namespace

namespace detail {

std::string path_flag(int argc, char** argv, const char* flag,
                      const char* env) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 < argc) return argv[i + 1];
    // A trailing path flag means the path was forgotten; say so instead of
    // silently running with the feature off.
    std::fprintf(stderr, "warning: %s given without a path; falling back to %s\n",
                 flag, env);
    break;
  }
  if (const char* v = std::getenv(env)) {
    if (*v != '\0') return v;
  }
  return "";
}

}  // namespace detail

BenchFlags parse_bench_flags(int& argc, char** argv) {
  BenchFlags flags;
  flags.trace_path = detail::path_flag(argc, argv, "--trace", "TYXE_TRACE");
  flags.diag_path = detail::path_flag(argc, argv, "--diag", "TYXE_DIAG");

  // Strip consumed arguments so downstream parsers never see them.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 ||
        std::strcmp(argv[i], "--diag") == 0) {
      if (i + 1 < argc) ++i;  // skip the path operand too
      continue;
    }
    if (std::strcmp(argv[i], "--prof") == 0) {
      flags.prof = true;
      continue;
    }
    if (std::strcmp(argv[i], "--pq") == 0) {
      flags.pq = true;
      continue;
    }
    if (std::strcmp(argv[i], "--watchdog") == 0) {
      flags.watchdog = true;
      continue;
    }
    if (std::strcmp(argv[i], "--obs-http") == 0) {
      flags.http_port = 0;  // bare flag: ephemeral port
      continue;
    }
    if (std::strncmp(argv[i], "--obs-http=", 11) == 0) {
      flags.http_port = parse_http_port(argv[i] + 11, "--obs-http");
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  argc = out;

  if (!flags.prof) {
    if (const char* v = std::getenv("TYXE_PROF")) {
      flags.prof = *v != '\0' && std::strcmp(v, "0") != 0;
    }
  }
  if (!flags.pq) {
    if (const char* v = std::getenv("TYXE_PQ")) {
      flags.pq = *v != '\0' && std::strcmp(v, "0") != 0;
    }
  }
  if (!flags.watchdog) {
    if (const char* v = std::getenv("TYXE_WATCHDOG")) {
      flags.watchdog = *v != '\0' && std::strcmp(v, "0") != 0;
    }
  }
  if (flags.http_port < 0) {
    if (const char* v = std::getenv("TYXE_OBS_HTTP")) {
      if (*v != '\0') flags.http_port = parse_http_port(v, "TYXE_OBS_HTTP");
    }
  }

  // Every bench passes through here, so this is the natural startup hook:
  // catch TYXE_* typos once, then freeze the run manifest.
  env::warn_unknown_once();
  manifest::capture();
  return flags;
}

}  // namespace tx::obs
