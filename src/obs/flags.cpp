#include "obs/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tx::obs {

namespace detail {

std::string path_flag(int argc, char** argv, const char* flag,
                      const char* env) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 < argc) return argv[i + 1];
    // A trailing path flag means the path was forgotten; say so instead of
    // silently running with the feature off.
    std::fprintf(stderr, "warning: %s given without a path; falling back to %s\n",
                 flag, env);
    break;
  }
  if (const char* v = std::getenv(env)) {
    if (*v != '\0') return v;
  }
  return "";
}

}  // namespace detail

BenchFlags parse_bench_flags(int& argc, char** argv) {
  BenchFlags flags;
  flags.trace_path = detail::path_flag(argc, argv, "--trace", "TYXE_TRACE");
  flags.diag_path = detail::path_flag(argc, argv, "--diag", "TYXE_DIAG");

  // Strip consumed arguments so downstream parsers never see them.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 ||
        std::strcmp(argv[i], "--diag") == 0) {
      if (i + 1 < argc) ++i;  // skip the path operand too
      continue;
    }
    if (std::strcmp(argv[i], "--prof") == 0) {
      flags.prof = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  argc = out;

  if (!flags.prof) {
    if (const char* v = std::getenv("TYXE_PROF")) {
      flags.prof = *v != '\0' && std::strcmp(v, "0") != 0;
    }
  }
  return flags;
}

}  // namespace tx::obs
