// tx::obs watchdog — a liveness monitor for the inference drivers.
//
// A background thread samples the obs.heartbeat_seconds gauge (touched by
// every SVI step, MCMC transition, and predict batch) against the real
// wall clock. When the heartbeat goes older than the staleness threshold
// — the same TYXE_HEALTH_STALE_S knob /healthz uses — the watchdog:
//
//   1. writes a tx.diag.forensic.v1 bundle (diag::force_forensic_dump, so
//      it fires even when diag never ran or already spent its dump budget),
//      blaming the last span path a heartbeat touch point reported via
//      guard::note_liveness;
//   2. flips /healthz to 503 {"status": "stalled", "reason": ...} through
//      the guard health override, clearing it again if the heartbeat
//      recovers;
//   3. optionally escalates by hard-cancelling every live guard::Budget
//      with Reason::kWatchdog, so a wedged-but-polling driver unwinds.
//
// One forensic dump per stall episode: a recovery re-arms the dump, a
// still-stalled heartbeat only keeps the override in place. The watchdog
// deliberately uses the *real* clock (obs::now_seconds), not the guard
// virtual clock — fault clock-skew plans must not fake a stall.
//
// Off by default; benches enable it with --watchdog / TYXE_WATCHDOG
// (obs/flags.h). Deliberately one-per-concern: run a single Watchdog per
// process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/live.h"

namespace tx::obs {

struct WatchdogOptions {
  /// Heartbeat age that counts as a stall (TYXE_HEALTH_STALE_S / 30s).
  double stale_after_seconds = live::default_staleness_seconds();
  /// How often the monitor thread samples the heartbeat.
  double poll_interval_seconds = 0.5;
  /// On a stall, hard-cancel every live Budget (Reason::kWatchdog) so
  /// cooperative checks unwind the stuck work instead of just reporting.
  bool escalate_cancel = false;
};

class Watchdog {
 public:
  using Options = WatchdogOptions;

  explicit Watchdog(Options opts = {});
  ~Watchdog();  // stops if still running
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Launch the monitor thread (idempotent). Turns on guard watchdog
  /// interest so heartbeat touch points start recording blame spans.
  void start();

  /// Join the thread and clear any stall override this watchdog set.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stall episodes detected since start() (not reset by recovery).
  std::int64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void poll_once();

  Options opts_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> stalls_{0};
  bool in_stall_ = false;  // monitor thread only
  std::mutex mu_;          // guards cv_ wakeups
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace tx::obs
