#include "obs/live.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/event_sink.h"
#include "obs/manifest.h"
#include "obs/timer.h"
#include "resil/guard.h"

namespace tx::obs::live {

double default_staleness_seconds() {
  static const double value = [] {
    const char* raw = std::getenv("TYXE_HEALTH_STALE_S");
    if (raw != nullptr && *raw != '\0') {
      char* end = nullptr;
      const double parsed = std::strtod(raw, &end);
      if (end != raw && *end == '\0' && std::isfinite(parsed) && parsed > 0.0) {
        return parsed;
      }
      std::fprintf(stderr,
                   "warning: ignoring TYXE_HEALTH_STALE_S=%s (want a positive "
                   "number of seconds)\n",
                   raw);
    }
    return 30.0;
  }();
  return value;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "tx_";
  out.reserve(name.size() + 3);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

std::string render_metric_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string render_prometheus(MetricsRegistry& reg) {
  std::string out;
  for (const auto& [name, value] : reg.counters()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : reg.gauges()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + render_metric_number(value) + "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative le-buckets. Non-finite bounds (the log kind's explicit
    // overflow bucket) fold into the final +Inf line, which always equals
    // the total count.
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cum += h.bucket_counts[i];
      if (i < h.bounds.size() && std::isfinite(h.bounds[i])) {
        out += pname + "_bucket{le=\"" + render_metric_number(h.bounds[i]) +
               "\"} " + std::to_string(cum) + "\n";
      }
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + render_metric_number(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string render_healthz(double staleness_seconds, int& http_status,
                           MetricsRegistry& reg) {
  // The watchdog's verdict wins outright: it carries a structured reason
  // (what stalled, where) that a bare heartbeat-age comparison cannot, and
  // it clears itself on recovery.
  if (guard::health_overridden()) {
    http_status = 503;
    return "{\"status\": \"stalled\", \"reason\": \"" +
           escape_json(guard::health_override()) +
           "\", \"staleness_threshold_seconds\": " +
           render_json_number(staleness_seconds) + "}\n";
  }
  // gauges() (not gauge()) so probing health never creates the metric.
  const auto gauges = reg.gauges();
  const auto it = gauges.find("obs.heartbeat_seconds");
  std::string status;
  double age = -1.0;
  if (it == gauges.end()) {
    status = "idle";  // no inference driver has stepped yet
    http_status = 200;
  } else {
    age = now_seconds() - it->second;
    const bool stale = age > staleness_seconds;
    status = stale ? "stale" : "ok";
    http_status = stale ? 503 : 200;
  }
  std::string out = "{\"status\": \"" + status + "\"";
  if (age >= 0.0) {
    out += ", \"heartbeat_age_seconds\": " + render_json_number(age);
  }
  out += ", \"staleness_threshold_seconds\": " +
         render_json_number(staleness_seconds) + "}\n";
  return out;
}

Server::Server(Options opts) : opts_(std::move(opts)) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "obs::live: socket() failed: %s\n",
                 std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    std::fprintf(stderr, "obs::live: cannot listen on port %d: %s\n",
                 opts_.port, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::serve() {
  while (running_.load(std::memory_order_acquire)) {
    // Poll with a timeout so stop() is noticed without needing to wake the
    // accept call from another thread.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    // Bound the read so a half-open client cannot wedge the loop.
    timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16 * 1024) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }

    std::string method, target;
    const std::size_t sp1 = req.find(' ');
    if (sp1 != std::string::npos) {
      method = req.substr(0, sp1);
      const std::size_t sp2 = req.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        target = req.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }

    std::string response;
    if (method != "GET") {
      response =
          "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
    } else {
      response = respond(target);
    }
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::string Server::respond(const std::string& target) const {
  registry().counter("obs.http_requests").add(1);
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (target == "/metrics") {
    body = render_prometheus();
  } else if (target == "/healthz") {
    content_type = "application/json";
    body = render_healthz(opts_.health_staleness_seconds, status);
  } else if (target == "/snapshot") {
    content_type = "application/json";
    body = EventSink::render_snapshot_json(opts_.bench_name);
  } else if (target == "/manifest") {
    content_type = "application/json";
    body = manifest::json() + "\n";
  } else {
    registry().counter("obs.http_not_found").add(1);
    status = 404;
    content_type = "text/plain";
    body = "not found; try /metrics /healthz /snapshot /manifest\n";
  }
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                                       : "Service Unavailable";
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace tx::obs::live
