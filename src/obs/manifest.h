// tx.manifest.v1 — run provenance captured once at startup.
//
// The manifest answers "what exactly produced this number?": git sha and
// build type (baked in at configure time), the SIMD dispatch level actually
// selected, arena allocator state, tx::par thread count, the bench seed, and
// the full TYXE_* environment table (tx::env) including any unrecognized
// TYXE_* variables that were set. It is
//
//   * stamped into every BENCH_*.json snapshot as a "manifest" section, so
//     scripts/bench_diff.py can refuse to compare apples to oranges (e.g. an
//     AVX2 baseline against a scalar candidate), and
//   * served live on the /manifest endpoint of the telemetry server
//     (obs/live.h).
//
// Layering: tx_obs sits below tx_tensor and tx_par, so those subsystems
// publish their fields through register_provider — a static registrar in
// simd.cpp / alloc.cpp / pool.cpp hands the manifest a callback, and
// capture() runs every callback exactly once, the first time the manifest is
// rendered (or explicitly from obs::parse_bench_flags). Binaries that do not
// link a provider's object file simply omit its fields.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tx::obs::manifest {

/// Register a callback that publishes fields via set_field when the manifest
/// is captured. Safe to call from static initializers (registration order is
/// irrelevant; fields render sorted by key). Providers registered after
/// capture() run immediately.
void register_provider(std::function<void()> provider);

/// Set one manifest field. Normally called from provider callbacks; benches
/// also call it directly for run parameters ("seed"). Later writes to the
/// same key win.
void set_field(const std::string& key, const std::string& value);
/// Without this overload a string literal would resolve to the bool one.
inline void set_field(const std::string& key, const char* value) {
  set_field(key, std::string(value));
}
void set_field(const std::string& key, std::int64_t value);
void set_field(const std::string& key, bool value);

/// Run every registered provider once (idempotent; thread-safe). json()
/// calls this implicitly, so explicit capture is only needed to pin the
/// "captured at startup" timestamp semantics.
void capture();

/// Render the tx.manifest.v1 document. `indent` is the whitespace prefix of
/// the opening brace's *contents* (the brace itself is not indented), so the
/// result can be embedded in a larger document: json("  ") nests one level.
std::string json(const std::string& indent = "");

/// Drop all fields and providers and forget that capture() ran. Tests only —
/// the static registrars from other translation units are gone afterwards.
void reset_for_testing();

}  // namespace tx::obs::manifest
