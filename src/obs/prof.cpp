#include "obs/prof.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "obs/event_sink.h"
#include "obs/mem.h"
#include "obs/registry.h"

namespace tx::obs::prof {

#ifndef TX_OBS_DISABLED

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_steps{0};
// obs::mem total-allocated baseline captured when profiling was switched on.
std::atomic<std::int64_t> g_mem_baseline{0};
// Accumulated enabled wall-time across enable/disable windows, plus the
// start of the currently open window (0 when disabled).
std::atomic<double> g_seconds_accum{0.0};
std::atomic<double> g_window_start{0.0};

std::size_t size_class_of(std::int64_t bytes) {
  for (std::size_t i = 0; i < kSizeClassBounds.size(); ++i) {
    if (bytes <= kSizeClassBounds[i]) return i;
  }
  return kSizeClassBounds.size();
}

/// Global state lives in a leaked singleton so thread-shard destructors
/// running at any point of process teardown can still flush safely.
struct Globals {
  std::mutex kernel_mu;
  std::map<std::string, KernelStats> kernels;

  std::mutex churn_mu;
  std::map<std::string, SpanChurn> churn;
  std::atomic<bool> any_data{false};
};

Globals& g() {
  static Globals* globals = new Globals;
  return *globals;
}

/// Per-thread churn shard: uncontended accumulation between flushes.
struct ThreadShard {
  std::unordered_map<std::string, SpanChurn> spans;

  ~ThreadShard() { flush(); }

  void flush() {
    if (spans.empty()) return;
    Globals& gl = g();
    std::lock_guard<std::mutex> lock(gl.churn_mu);
    for (auto& [path, churn] : spans) {
      SpanChurn& dst = gl.churn[path];
      dst.allocs += churn.allocs;
      dst.bytes += churn.bytes;
      for (std::size_t i = 0; i < kNumSizeClasses; ++i) {
        dst.size_classes[i] += churn.size_classes[i];
      }
    }
    spans.clear();
  }
};

ThreadShard& shard() {
  thread_local ThreadShard s;
  return s;
}

double seconds_enabled_now() {
  const double accum = g_seconds_accum.load(std::memory_order_relaxed);
  const double start = g_window_start.load(std::memory_order_relaxed);
  return start > 0.0 ? accum + (now_seconds() - start) : accum;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  const bool was = g_enabled.exchange(on, std::memory_order_relaxed);
  if (on && !was) {
    g_mem_baseline.store(mem::total_allocated_bytes(),
                         std::memory_order_relaxed);
    g_window_start.store(now_seconds(), std::memory_order_relaxed);
    g().any_data.store(true, std::memory_order_relaxed);
  } else if (!on && was) {
    const double start = g_window_start.load(std::memory_order_relaxed);
    if (start > 0.0) {
      const double accum = g_seconds_accum.load(std::memory_order_relaxed);
      g_seconds_accum.store(accum + (now_seconds() - start),
                            std::memory_order_relaxed);
      g_window_start.store(0.0, std::memory_order_relaxed);
    }
  }
}

void reset() {
  Globals& gl = g();
  shard().spans.clear();
  {
    std::lock_guard<std::mutex> lock(gl.kernel_mu);
    gl.kernels.clear();
  }
  {
    std::lock_guard<std::mutex> lock(gl.churn_mu);
    gl.churn.clear();
  }
  g_steps.store(0, std::memory_order_relaxed);
  g_seconds_accum.store(0.0, std::memory_order_relaxed);
  g_mem_baseline.store(mem::total_allocated_bytes(), std::memory_order_relaxed);
  if (enabled()) {
    g_window_start.store(now_seconds(), std::memory_order_relaxed);
  } else {
    g_window_start.store(0.0, std::memory_order_relaxed);
    gl.any_data.store(false, std::memory_order_relaxed);
  }
}

bool has_data() {
  return enabled() || g().any_data.load(std::memory_order_relaxed);
}

void on_kernel(const char* kernel, std::int64_t flops, std::int64_t bytes,
               double seconds) {
  if (!enabled()) return;
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.kernel_mu);
  KernelStats& ks = gl.kernels[kernel];
  ks.calls += 1;
  ks.flops += flops;
  ks.bytes += bytes;
  ks.seconds += seconds;
}

void on_alloc(std::int64_t bytes) {
  if (!enabled() || bytes <= 0) return;
  std::string path = current_span_path();
  if (path.empty()) path = "(root)";
  SpanChurn& churn = shard().spans[path];
  churn.allocs += 1;
  churn.bytes += bytes;
  churn.size_classes[size_class_of(bytes)] += 1;
}

void on_step() {
  if (!enabled()) return;
  g_steps.fetch_add(1, std::memory_order_relaxed);
}

void flush_thread_cache() { shard().flush(); }

std::int64_t steps() { return g_steps.load(std::memory_order_relaxed); }

std::map<std::string, KernelStats> kernel_table() {
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.kernel_mu);
  return gl.kernels;
}

std::map<std::string, SpanChurn> churn_table() {
  flush_thread_cache();
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.churn_mu);
  return gl.churn;
}

std::int64_t attributed_bytes() {
  std::int64_t total = 0;
  for (const auto& [path, churn] : churn_table()) total += churn.bytes;
  return total;
}

std::int64_t window_allocated_bytes() {
  return mem::total_allocated_bytes() -
         g_mem_baseline.load(std::memory_order_relaxed);
}

std::string section_json(const std::string& indent) {
  if (!has_data()) return "";
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  const auto kernels = kernel_table();
  const auto churn = churn_table();
  const std::int64_t nsteps = steps();

  std::string out = "{\n";
  out += in1 + "\"schema\": \"tx.prof.v1\",\n";
  out += in1 + "\"seconds_enabled\": " +
         render_json_number(seconds_enabled_now()) + ",\n";
  out += in1 + "\"steps\": " + std::to_string(nsteps) + ",\n";

  out += in1 + "\"kernels\": {";
  bool first = true;
  for (const auto& [name, ks] : kernels) {
    out += first ? "\n" : ",\n";
    first = false;
    const double gflops =
        ks.seconds > 0.0 ? static_cast<double>(ks.flops) / ks.seconds / 1e9
                         : 0.0;
    const double gbps =
        ks.seconds > 0.0 ? static_cast<double>(ks.bytes) / ks.seconds / 1e9
                         : 0.0;
    const double intensity =
        ks.bytes > 0 ? static_cast<double>(ks.flops) /
                           static_cast<double>(ks.bytes)
                     : 0.0;
    out += in2 + "\"" + escape_json(name) + "\": {";
    out += "\"calls\": " + std::to_string(ks.calls);
    out += ", \"flops\": " + std::to_string(ks.flops);
    out += ", \"bytes\": " + std::to_string(ks.bytes);
    out += ", \"seconds\": " + render_json_number(ks.seconds);
    out += ", \"gflops\": " + render_json_number(gflops);
    out += ", \"gbps\": " + render_json_number(gbps);
    out += ", \"intensity\": " + render_json_number(intensity);
    out += "}";
  }
  out += (first ? "" : "\n" + in1) + "},\n";

  std::int64_t total_allocs = 0, total_bytes = 0;
  for (const auto& [path, c] : churn) {
    total_allocs += c.allocs;
    total_bytes += c.bytes;
  }
  const std::int64_t window = window_allocated_bytes();
  const double coverage =
      window > 0 ? static_cast<double>(total_bytes) /
                       static_cast<double>(window)
                 : (total_bytes == 0 ? 1.0 : 0.0);

  out += in1 + "\"churn\": {\n";
  out += in2 + "\"attributed_allocs\": " + std::to_string(total_allocs) + ",\n";
  out += in2 + "\"attributed_bytes\": " + std::to_string(total_bytes) + ",\n";
  out += in2 + "\"window_allocated_bytes\": " + std::to_string(window) + ",\n";
  out += in2 + "\"coverage\": " + render_json_number(coverage) + ",\n";
  out += in2 + "\"spans\": {";
  first = true;
  for (const auto& [path, c] : churn) {
    out += first ? "\n" : ",\n";
    first = false;
    out += in3 + "\"" + escape_json(path) + "\": {";
    out += "\"allocs\": " + std::to_string(c.allocs);
    out += ", \"bytes\": " + std::to_string(c.bytes);
    out += ", \"bytes_per_step\": " +
           render_json_number(nsteps > 0 ? static_cast<double>(c.bytes) /
                                               static_cast<double>(nsteps)
                                         : 0.0);
    out += ", \"size_classes\": [";
    for (std::size_t i = 0; i < kNumSizeClasses; ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < kSizeClassBounds.size()
                 ? std::to_string(kSizeClassBounds[i])
                 : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(c.size_classes[i]) + "}";
    }
    out += "]}";
  }
  out += (first ? "" : "\n" + in2) + "}\n";
  out += in1 + "}\n";
  out += indent + "}";
  return out;
}

#endif  // !TX_OBS_DISABLED

void publish(MetricsRegistry& reg) {
  const auto kernels = kernel_table();
  std::int64_t flops = 0;
  for (const auto& [name, ks] : kernels) flops += ks.flops;
  reg.gauge("prof.kernels").set(static_cast<double>(kernels.size()));
  reg.gauge("prof.kernel_flops").set(static_cast<double>(flops));
  reg.gauge("prof.attributed_bytes")
      .set(static_cast<double>(attributed_bytes()));
  reg.gauge("prof.steps").set(static_cast<double>(steps()));
}

}  // namespace tx::obs::prof
