#include "obs/hist.h"

#include <cmath>

namespace tx::obs {

void LogHistogram::record(double v) {
  buckets_[static_cast<std::size_t>(index_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(sum_bits_, v);
  detail::atomic_min_double(min_bits_, v);
  detail::atomic_max_double(max_bits_, v);
}

void LogHistogram::merge_from(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t n =
        other.buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    if (n != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  detail::atomic_add_double(
      sum_bits_,
      detail::unpack_double(other.sum_bits_.load(std::memory_order_relaxed)));
  detail::atomic_min_double(
      min_bits_,
      detail::unpack_double(other.min_bits_.load(std::memory_order_relaxed)));
  detail::atomic_max_double(
      max_bits_,
      detail::unpack_double(other.max_bits_.load(std::memory_order_relaxed)));
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(detail::pack_double(0.0), std::memory_order_relaxed);
  min_bits_.store(
      detail::pack_double(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  max_bits_.store(
      detail::pack_double(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

int LogHistogram::index_of(double v) {
  if (!(v > 0.0)) return 0;               // <= 0 and NaN -> underflow
  if (std::isinf(v)) return kBuckets - 1; // frexp(inf) is unspecified
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;            // v in [2^octave, 2^(octave+1))
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kBuckets - 1;
  // Linear position within the octave. m - 0.5 is exact (both are dyadic
  // with the same scale) and the edges land on exact integers, so the map
  // is deterministic across platforms.
  int sub = static_cast<int>((m - 0.5) * (2 * kSub));
  if (sub >= kSub) sub = kSub - 1;  // guard against rounding at m -> 1
  return 1 + (octave - kMinExp) * kSub + sub;
}

double LogHistogram::lower_edge_of(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int j = index - 1;
  const double base = std::ldexp(1.0, kMinExp + j / kSub);
  return base + base * static_cast<double>(j % kSub) / kSub;
}

double LogHistogram::upper_edge_of(int index) {
  if (index <= 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const int j = index - 1;
  const double base = std::ldexp(1.0, kMinExp + j / kSub);
  return base + base * static_cast<double>(j % kSub + 1) / kSub;
}

double LogHistogram::representative_of(int index) {
  if (index <= 0) return 0.0;  // underflow stands in for "effectively zero"
  if (index >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  return 0.5 * (lower_edge_of(index) + upper_edge_of(index));
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = detail::unpack_double(sum_bits_.load(std::memory_order_relaxed));
  if (snap.count > 0) {
    snap.min = detail::unpack_double(min_bits_.load(std::memory_order_relaxed));
    snap.max = detail::unpack_double(max_bits_.load(std::memory_order_relaxed));
  }
  // Trim to [first, last] non-empty bucket; a full dense dump would be
  // kBuckets entries of mostly zeros in every snapshot.
  int first = -1, last = -1;
  std::array<std::int64_t, kBuckets> counts;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (counts[static_cast<std::size_t>(i)] != 0) {
      if (first < 0) first = i;
      last = i;
    }
  }
  if (first >= 0) {
    snap.bounds.reserve(static_cast<std::size_t>(last - first + 1));
    snap.bucket_counts.reserve(static_cast<std::size_t>(last - first + 1));
    snap.representatives.reserve(static_cast<std::size_t>(last - first + 1));
    for (int i = first; i <= last; ++i) {
      snap.bounds.push_back(upper_edge_of(i));
      snap.bucket_counts.push_back(counts[static_cast<std::size_t>(i)]);
      snap.representatives.push_back(representative_of(i));
    }
  }
  return snap;
}

}  // namespace tx::obs
