// Kernel roofline profiling and allocator-churn attribution.
//
// Two measurement streams, both off by default (one relaxed atomic load per
// hook while disabled; -DTX_OBS_DISABLED compiles everything away):
//
//  * Kernels: every traced kernel slice (matmul/bmm/conv2d forward+backward,
//    fanned-out elementwise/unary/reduce chains) reports its closed-form FLOP
//    count and a minimal-traffic bytes-moved model (each operand read once,
//    each output written once) plus measured wall time. Aggregated per
//    kernel into calls / flops / bytes / seconds, from which the snapshot
//    derives achieved GFLOP/s, GB/s, and arithmetic intensity (flops/byte) —
//    a software roofline that says which kernels are memory- vs
//    compute-bound before anyone writes a line of SIMD.
//  * Churn: every positive tensor-buffer byte delta (TensorImpl::account on
//    data/grad (re)allocation) is attributed to the innermost open span path
//    (obs/timer.h), with an alloc count, byte total, and a power-of-two-ish
//    size-class histogram per path. The ranked table turns the
//    allocated-vs-peak churn ratio into named offenders.
//
// Churn updates land in a per-thread shard; tx::par workers flush their
// shard into the global table before a parallel job completes, so aggregates
// are complete once a parallel region returns and — because merging is
// integer addition — bitwise-identical at every TYXE_NUM_THREADS.
//
// The whole layer serializes as a "prof" section (schema tx.prof.v1) inside
// the tx.obs.v1 BENCH snapshot; scripts/bench_diff.py compares two snapshots
// and CI gates on FLOP/byte drift. See docs/observability.md ("Performance
// profiling").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/timer.h"

namespace tx::obs {
class MetricsRegistry;
}  // namespace tx::obs

namespace tx::obs::prof {

/// Upper bounds (bytes) of the churn size-class histogram; the final class
/// is the overflow (> 64 MiB). Geometric, factor 16.
inline constexpr std::array<std::int64_t, 6> kSizeClassBounds = {
    64, 1024, 16384, 262144, 4194304, 67108864};
inline constexpr std::size_t kNumSizeClasses = kSizeClassBounds.size() + 1;

/// Aggregate of one named kernel (see kernel_table()).
struct KernelStats {
  std::int64_t calls = 0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  double seconds = 0.0;
};

/// Aggregate churn of one span path (see churn_table()).
struct SpanChurn {
  std::int64_t allocs = 0;
  std::int64_t bytes = 0;
  std::array<std::int64_t, kNumSizeClasses> size_classes{};

  bool operator==(const SpanChurn& o) const {
    return allocs == o.allocs && bytes == o.bytes &&
           size_classes == o.size_classes;
  }
};

#ifndef TX_OBS_DISABLED

/// Master switch. Defaults to off; while off every hook below is one relaxed
/// atomic load and an early return. Enabling records the current
/// obs::mem::total_allocated_bytes() as the churn coverage baseline.
bool enabled();
void set_enabled(bool on);

/// Drop all kernel aggregates, churn tables, and counters (benches and tests
/// call this between phases; do not call while a parallel region is live).
void reset();

/// True once anything was recorded (or profiling is currently enabled) —
/// gates whether write_snapshot emits a "prof" section at all.
bool has_data();

// ---- kernel stream ---------------------------------------------------------

/// Accumulate one kernel invocation. Normally via KernelScope.
void on_kernel(const char* kernel, std::int64_t flops, std::int64_t bytes,
               double seconds);

/// RAII kernel slice: times the enclosed scope and accumulates into the
/// named kernel's aggregate on destruction. One relaxed load when disabled.
class KernelScope {
 public:
  KernelScope(const char* kernel, std::int64_t flops, std::int64_t bytes)
      : armed_(enabled()), kernel_(kernel), flops_(flops), bytes_(bytes) {
    if (armed_) start_ = now_seconds();
  }
  ~KernelScope() {
    if (armed_) on_kernel(kernel_, flops_, bytes_, now_seconds() - start_);
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  bool armed_;
  const char* kernel_;
  std::int64_t flops_;
  std::int64_t bytes_;
  double start_ = 0.0;
};

// ---- churn stream ----------------------------------------------------------

/// A tensor buffer grew by `bytes` (> 0). Attributed to the calling thread's
/// innermost open span path ("(root)" when none). Called from
/// TensorImpl::account().
void on_alloc(std::int64_t bytes);

/// An optimization step finished (SVI::step). Divides churn into
/// bytes-allocated-per-step in the snapshot.
void on_step();

/// Merge this thread's churn shard into the global table. tx::par calls
/// this from every chunk before completion is signalled; readers call it for
/// the calling thread. Cheap no-op when the shard is empty.
void flush_thread_cache();

// ---- aggregates ------------------------------------------------------------

std::int64_t steps();
/// Per-kernel aggregates (flushes nothing; kernels are recorded globally).
std::map<std::string, KernelStats> kernel_table();
/// Per-span churn (flushes the calling thread's shard first).
std::map<std::string, SpanChurn> churn_table();
/// Sum of churn_table() bytes.
std::int64_t attributed_bytes();
/// obs::mem::total_allocated_bytes() growth since profiling was enabled —
/// the denominator of churn coverage.
std::int64_t window_allocated_bytes();

/// The "prof" snapshot section (schema tx.prof.v1) as a pre-rendered JSON
/// object, or "" when has_data() is false. `indent` is the prefix of nested
/// lines when embedding into a larger document.
std::string section_json(const std::string& indent = "  ");

#else  // TX_OBS_DISABLED: every hook compiles to nothing.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}
inline bool has_data() { return false; }
inline void on_kernel(const char*, std::int64_t, std::int64_t, double) {}
class KernelScope {
 public:
  KernelScope(const char*, std::int64_t, std::int64_t) {}
};
inline void on_alloc(std::int64_t) {}
inline void on_step() {}
inline void flush_thread_cache() {}
inline std::int64_t steps() { return 0; }
inline std::map<std::string, KernelStats> kernel_table() { return {}; }
inline std::map<std::string, SpanChurn> churn_table() { return {}; }
inline std::int64_t attributed_bytes() { return 0; }
inline std::int64_t window_allocated_bytes() { return 0; }
inline std::string section_json(const std::string& = "  ") { return ""; }

#endif

/// Mirror headline aggregates into `reg` as gauges ("prof.kernels",
/// "prof.kernel_flops", "prof.attributed_bytes", "prof.steps").
/// write_snapshot calls this when has_data().
void publish(MetricsRegistry& reg);

}  // namespace tx::obs::prof
