// Deterministic log-bucketed (HDR-style) latency histograms.
//
// The reservoir-based quantiles of obs::Histogram are cheap but not
// mergeable: two workers' reservoirs cannot be combined into the reservoir
// of the concatenated stream, so p50/p99 over a tx::par run (or, later,
// over serving replicas) were only estimates of one shard. LogHistogram
// replaces them for duration metrics with the classic HDR construction:
//
//   * Every instance shares ONE fixed bucket layout: the seconds axis from
//     2^kMinExp (~0.93 ns) to 2^kMaxExp (1024 s) is split into octaves
//     [2^e, 2^(e+1)), each divided into kSub = 2^kSubBits linear subbuckets,
//     plus an underflow bucket (<= 0, NaN, and anything below the range) and
//     an overflow bucket. The value -> index map is a pure O(1) function of
//     the double's exponent and top mantissa bits (std::frexp), identical on
//     every platform, so bucket counts are bitwise-reproducible.
//   * record() is lock-free: one fetch_add on the bucket, plus the same
//     count/sum/min/max cells obs::Histogram maintains.
//   * merge_from() adds bucket counts integer-for-integer, so
//     merge(h(A), h(B)) has exactly the bucket counts of h(A ++ B) — the
//     property tested in tests/hist_test.cpp and relied on by anything that
//     aggregates per-worker histograms.
//   * Quantiles come from the buckets: the estimate is the midpoint of the
//     bucket containing the target rank, clamped to the observed [min, max].
//     Relative error is bounded by half a subbucket width over the bucket's
//     lower edge: kMaxRelativeError = 1 / (2 * kSub) (1.5625% at kSubBits
//     = 5). The bound is enforced against exact sorted quantiles by the
//     property tests.
//
// The registry exposes these via MetricsRegistry::log_histogram(); snapshots
// fold into the same HistogramSnapshot shape as fixed-bucket histograms
// (trimmed to the non-empty bucket range) so the tx.obs.v1 schema, the
// Prometheus renderer, and bench_diff.py see one histogram namespace.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>

#include "obs/registry.h"

namespace tx::obs {

class LogHistogram {
 public:
  // Layout constants. Shared by every instance (merge compatibility is
  // guaranteed by construction, never negotiated at runtime).
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;  // subbuckets per octave
  static constexpr int kMinExp = -30;         // lowest octave: [2^-30, 2^-29)
  static constexpr int kMaxExp = 10;          // first out-of-range power: 2^10 s
  static constexpr int kOctaves = kMaxExp - kMinExp;
  static constexpr int kBuckets = kOctaves * kSub + 2;  // + under/overflow
  /// Worst-case relative error of a bucket-midpoint quantile estimate for
  /// in-range values: half a subbucket width over the bucket's lower edge.
  static constexpr double kMaxRelativeError = 1.0 / (2 * kSub);

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// O(1), lock-free. v <= 0, NaN, and v < 2^kMinExp land in the underflow
  /// bucket (represented as 0); v >= 2^kMaxExp lands in the overflow bucket.
  void record(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Exact merge: integer-adds other's bucket counts (and count/min/max;
  /// sum is a double accumulation, exact only up to FP addition order).
  void merge_from(const LogHistogram& other);

  /// Zero every cell (tests / bench isolation; not thread-safe vs record).
  void reset();

  /// Point-in-time view in the shared HistogramSnapshot shape: bounds are
  /// the upper edges of the trimmed non-empty bucket range, representatives
  /// their midpoints, samples empty (quantiles come from the buckets).
  HistogramSnapshot snapshot() const;

  // ---- the pure value <-> bucket mapping (unit-tested directly) ----------
  static int index_of(double v);
  static double lower_edge_of(int index);      // 0 for the underflow bucket
  static double upper_edge_of(int index);      // +inf for the overflow bucket
  static double representative_of(int index);  // midpoint; 0 for underflow

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{detail::pack_double(0.0)};
  std::atomic<std::uint64_t> min_bits_{
      detail::pack_double(std::numeric_limits<double>::infinity())};
  std::atomic<std::uint64_t> max_bits_{
      detail::pack_double(-std::numeric_limits<double>::infinity())};
};

}  // namespace tx::obs
