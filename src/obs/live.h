// tx::obs::live — embedded HTTP exposition server for live telemetry.
//
// A Server runs a blocking accept loop on one dedicated thread (plain POSIX
// sockets, GET-only, Connection: close — no third-party dependencies) and
// serves four read-only views of the process:
//
//   /metrics    Prometheus text exposition of the metrics registry
//   /healthz    driver liveness from the obs.heartbeat_seconds gauge
//               (200 ok / 200 idle when no driver ran yet / 503 stale)
//   /snapshot   the live tx.obs.v1 document (EventSink::render_snapshot_json,
//               including prof/diag metrics and the manifest section)
//   /manifest   the tx.manifest.v1 run-provenance document alone
//
// The server only *reads* the registry (relaxed-atomic snapshots; the
// registry mutex is taken only by name lookup), so scraping a live run
// cannot perturb inference: results are bitwise-identical with the server
// on or off — CI enforces this. The request counters it bumps
// (obs.http_requests etc.) exist only in server-enabled runs, keeping
// server-off BENCH snapshots unchanged for the perf gate.
//
// Benches enable it with --obs-http[=PORT] or TYXE_OBS_HTTP (obs/flags.h);
// port 0 binds an ephemeral port, reported by port() after start().
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace tx::obs::live {

/// The /healthz staleness threshold: TYXE_HEALTH_STALE_S when set to a
/// positive number (read once per process), else 30 seconds. The watchdog
/// (obs/watchdog.h) defaults its stall threshold to the same knob so probe
/// and watchdog agree on what "stalled" means.
double default_staleness_seconds();

struct Options {
  int port = 0;             ///< TCP port; 0 = kernel-assigned ephemeral
  std::string bench_name = "live";  ///< stamped into /snapshot documents
  /// Heartbeat age before "stale" (defaults to TYXE_HEALTH_STALE_S / 30s).
  double health_staleness_seconds = default_staleness_seconds();
};

class Server {
 public:
  explicit Server(Options opts = {});
  ~Server();  // stops if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and launch the accept thread. Returns false (with a
  /// stderr diagnostic) if the port cannot be bound; the process continues
  /// without telemetry rather than dying.
  bool start();

  /// Unblock the accept loop, join the thread, close the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves ephemeral binds); -1 before start().
  int port() const { return port_; }

 private:
  void serve();
  std::string respond(const std::string& target) const;

  Options opts_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// Prometheus text exposition of `reg` — exposed for tests so the format
/// can be checked without sockets. Metric names are sanitized to the
/// Prometheus charset ([a-zA-Z0-9_:]) and prefixed "tx_"; histograms render
/// as cumulative le-buckets with _sum/_count.
std::string render_prometheus(MetricsRegistry& reg = registry());

/// One Prometheus metric name from a registry name: "span.fit/step" ->
/// "tx_span_fit_step".
std::string prometheus_name(const std::string& name);

/// The /healthz JSON body; `http_status` receives 200 or 503. Reads the
/// obs.heartbeat_seconds gauge via the gauges() snapshot (never creates it).
std::string render_healthz(double staleness_seconds, int& http_status,
                           MetricsRegistry& reg = registry());

}  // namespace tx::obs::live
