// Streaming inference-health diagnostics with per-site attribution and
// failure forensics — the *statistical* observability layer on top of the
// systems layer (registry/trace/mem).
//
// What it tracks while enabled:
//  * SVI: per-site running statistics of the variational draws (mean drift
//    via Welford, value range), per-site analytic KL(q‖p) where registered,
//    per-parameter-group gradient SNR / noise scale, and the ELBO running
//    mean + variance.
//  * MCMC: per-site split-R̂ / ESS refreshed incrementally during sampling
//    (fed by the driver, which reuses src/infer/diagnostics.h), per-site
//    value statistics and moved-fractions, the transition-level Metropolis
//    acceptance mean, and divergence localization —
//    each HMC/NUTS energy blow-up is blamed on the site with the largest
//    momentum/gradient contribution.
//
// A flight recorder keeps a ring buffer of the last N step records; on a
// NaN/Inf sentinel trip (loss, gradient, or site value) or a divergence it
// dumps a forensic JSONL bundle (recent steps + offending site values +
// the current trace span path) before the driver raises/continues.
//
// Everything is OFF by default: every hook is one relaxed atomic load while
// disabled, and -DTX_OBS_DISABLED compiles the hooks away entirely. Enabled
// updates take one process-global mutex — diagnostics run at step/transition
// frequency, not kernel frequency, so contention is negligible even under
// tx::par multi-chain MCMC (the CI TSan pass pins this down).
//
// The subsystem is tensor-free by design: messengers and drivers reduce
// values to scalars before they reach this layer, so tx_obs keeps its
// dependency footprint (tx_util only). See docs/observability.md
// ("Inference health").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace tx::obs::diag {

/// Streaming mean/variance accumulator (Welford). Exposed for reuse by
/// drivers and tests; variance() is NaN until two samples arrived.
struct Welford {
  std::int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void add(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  double variance() const;  // sample variance; NaN when count < 2
  double stddev() const;    // sqrt(variance()); NaN when count < 2
};

/// Flight-recorder / health-stream configuration (set before enabling).
struct Config {
  /// Target file of the forensic JSONL bundle dumped on a sentinel trip.
  std::string forensic_path = "tx_forensic.jsonl";
  /// Ring-buffer depth: the last N step/transition records kept for dumps.
  std::size_t ring_capacity = 64;
  /// MCMC drivers recompute per-site split-R̂/ESS every this many kept draws
  /// (and once more at the end of each chain).
  int refresh_interval = 64;
  /// How many raw values of an offending (non-finite) site the dump keeps.
  std::size_t max_dump_values = 16;
  /// Forensic bundles written per reset() — the first failure is the
  /// interesting one; later trips only bump counters.
  std::size_t max_forensic_dumps = 1;
};

/// Coordinate range of one named site inside a flattened MCMC position
/// vector: [begin, end).
struct SiteSpan {
  std::string name;
  std::size_t begin = 0;
  std::size_t end = 0;
};

#ifndef TX_OBS_DISABLED

/// Master switch. Defaults to off; while off every hook below is one relaxed
/// atomic load and an early return.
bool enabled();
void set_enabled(bool on);

/// True between svi_step_begin and svi_step_end. The DiagnosticsMessenger
/// consults this so site recording only happens inside SVI steps (an MCMC
/// potential evaluates the model hundreds of times per transition — those
/// sightings are accounted by the driver instead).
bool in_svi_step();

/// Index of the currently open SVI step, -1 outside one. The
/// DiagnosticsMessenger tags pending guide sightings with this so q/p
/// pairing can never cross a step boundary.
std::int64_t current_svi_step();

void configure(Config cfg);
Config config();

/// Drop all accumulated health state, the flight-recorder ring, and the trip
/// counters (benches and tests call this between phases).
void reset();

// ---- SVI stream ------------------------------------------------------------

/// Marks the start of an optimization step. Assigns the monotone global diag
/// step index recorded in snapshots ("steps").
void svi_step_begin(std::int64_t svi_step);

/// Per-site value summary from the DiagnosticsMessenger. With finite ==
/// false this is a sentinel trip: `sample_values` should carry the first few
/// raw values of the offending tensor for the forensic dump.
void record_site_value(const std::string& site, double mean, double lo,
                       double hi, std::int64_t numel, bool finite,
                       const std::vector<double>& sample_values = {});

/// Per-site analytic KL(q‖p), computed by the DiagnosticsMessenger when the
/// guide's q and the model's p pair up under a registered closed form.
void record_site_kl(const std::string& site, double kl);

/// Per-parameter-group gradient summary from the SVI driver (mean element
/// and L2 norm of this step's gradient). Non-finite values trip the
/// sentinel.
void record_param_grad(const std::string& param, double grad_mean,
                       double grad_norm, bool finite);

/// Completes the step: updates the ELBO running mean/variance, pushes the
/// flight-recorder record, and trips the sentinel if loss or grad_norm went
/// non-finite.
void svi_step_end(double loss, double grad_norm);

// ---- MCMC stream -----------------------------------------------------------

/// One kernel transition. `prev`/`next` are the positions before and after;
/// per-site value statistics and moved-fractions are derived from them, and
/// non-finite coordinates in `next` trip the sentinel with the owning site.
void mcmc_record_transition(const std::vector<SiteSpan>& spans, int chain,
                            std::int64_t step, bool warmup, double accept_prob,
                            bool divergent, const std::vector<double>& prev,
                            const std::vector<double>& next);

/// Divergence localization: called by HMC/NUTS kernels at the point of an
/// energy blow-up with the end-of-trajectory state. The site with the
/// largest momentum/gradient contribution (any non-finite coordinate wins
/// outright) is blamed, counted, and named in the forensic dump.
void mcmc_record_divergence(const std::vector<SiteSpan>& spans,
                            const std::vector<double>& q,
                            const std::vector<double>& p,
                            const std::vector<double>& grad,
                            const std::vector<double>& inv_mass, double h0,
                            double h1);

/// Latest per-site split-R̂ / ESS from the driver's incremental refresh.
/// Non-finite values are ignored (the short-chain NaN contract of
/// src/infer/diagnostics.h), so early refreshes can call this untested.
void mcmc_update_site_health(const std::string& site, double ess, double rhat);

// ---- introspection ---------------------------------------------------------

std::int64_t records();         // flight-recorder records ever pushed
std::int64_t nan_trips();       // sentinel trips (non-finite loss/grad/site)
std::int64_t forensic_dumps();  // bundles actually written
std::string last_forensic_reason();  // reason of the forensic bundle; ""
                                     // until the first dump
std::string last_offending_site();   // "" when the dump had no site to blame

/// Write a tx.diag.forensic.v1 bundle unconditionally: works while diag is
/// disabled (the ring is just empty then) and bypasses max_forensic_dumps —
/// callers are external failure detectors (the tx::obs watchdog), whose one
/// trigger must never be swallowed because an earlier NaN already used the
/// per-run dump budget. `blame_site` names what the caller holds responsible
/// (the watchdog passes the last live span path). Returns false on I/O
/// failure (counted in obs.sink_errors).
bool force_forensic_dump(const std::string& reason,
                         const std::string& blame_site);

/// Mirror aggregate health gauges ("diag.*") into `reg` so tx.obs.v1
/// snapshots carry them. write_snapshot() calls this on the global registry.
void publish(MetricsRegistry& reg);

/// Write the tx.diag.v1 snapshot document (see docs/observability.md).
/// Returns false (and counts obs.sink_errors) on I/O failure.
bool write_snapshot(const std::string& path, const std::string& bench_name);

#else  // TX_OBS_DISABLED: every hook compiles to nothing.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline bool in_svi_step() { return false; }
inline std::int64_t current_svi_step() { return -1; }
inline void configure(Config) {}
inline Config config() { return {}; }
inline void reset() {}
inline void svi_step_begin(std::int64_t) {}
inline void record_site_value(const std::string&, double, double, double,
                              std::int64_t, bool,
                              const std::vector<double>& = {}) {}
inline void record_site_kl(const std::string&, double) {}
inline void record_param_grad(const std::string&, double, double, bool) {}
inline void svi_step_end(double, double) {}
inline void mcmc_record_transition(const std::vector<SiteSpan>&, int,
                                   std::int64_t, bool, double, bool,
                                   const std::vector<double>&,
                                   const std::vector<double>&) {}
inline void mcmc_record_divergence(const std::vector<SiteSpan>&,
                                   const std::vector<double>&,
                                   const std::vector<double>&,
                                   const std::vector<double>&,
                                   const std::vector<double>&, double,
                                   double) {}
inline void mcmc_update_site_health(const std::string&, double, double) {}
inline std::int64_t records() { return 0; }
inline std::int64_t nan_trips() { return 0; }
inline std::int64_t forensic_dumps() { return 0; }
inline std::string last_forensic_reason() { return ""; }
inline std::string last_offending_site() { return ""; }
inline bool force_forensic_dump(const std::string&, const std::string&) {
  return false;
}
inline void publish(MetricsRegistry&) {}
inline bool write_snapshot(const std::string&, const std::string&) {
  return false;
}

#endif

/// Resolve a diagnostics output path for a benchmark: `--diag <path>` on the
/// command line wins, else the TYXE_DIAG environment variable, else "".
std::string diag_path_from_args(int argc, char** argv);

}  // namespace tx::obs::diag
