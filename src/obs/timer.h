// RAII wall-clock spans feeding the metrics registry.
//
//   {
//     obs::ScopedTimer fit("fit");
//     ...
//     { obs::ScopedTimer step("step"); ... }   // records "span.fit/step"
//   }                                          // records "span.fit"
//
// Span names nest via a thread-local stack, so the histogram key encodes the
// call path. While the tracer (obs/trace.h) is active, every ScopedTimer also
// doubles as a Chrome-trace duration slice: the begin event can carry
// structured args (shapes, FLOPs — pass pre-rendered JSON via `trace_args`),
// and the end event reports the span's net tensor allocation ("net_bytes")
// plus a sample of the mem.live_bytes counter track.
//
// Cost when disabled: one relaxed atomic load (runtime switch) or literally
// nothing (-DTX_OBS_DISABLED compiles the body away). The trace plumbing adds
// one more relaxed load per span while metrics are on but tracing is off.
#pragma once

#include <chrono>
#include <string>

#include "obs/registry.h"

namespace tx::obs {

/// Monotonic wall-clock in seconds (steady_clock).
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifndef TX_OBS_DISABLED

class ScopedTimer {
 public:
  /// `trace_args` is a pre-rendered JSON object (obs::Event::to_json)
  /// attached to the trace slice's begin event; ignored unless tracing.
  /// Build it behind a tracing() check so the cost is trace-only.
  explicit ScopedTimer(std::string name, std::string trace_args = {});
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (live reading, also works when disabled).
  double elapsed() const { return armed_ ? now_seconds() - start_ : 0.0; }

 private:
  const char* leaf() const { return path_.c_str() + leaf_pos_; }

  bool armed_;
  bool tracing_ = false;
  std::string path_;  // full nested span path, "outer/inner"
  std::size_t leaf_pos_ = 0;
  std::int64_t live_bytes0_ = 0;
  double start_ = 0.0;
};

#else  // TX_OBS_DISABLED: compile-time no-op.

class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string&, const std::string& = {}) {}
  double elapsed() const { return 0.0; }
};

#endif

/// Depth of the active span stack on this thread (tests).
std::size_t span_depth();

/// Full "outer/inner" path of this thread's innermost open span ("" if none).
/// Used to hand a caller's span context to tx::par workers.
std::string current_span_path();

namespace detail {
/// Prefix prepended to this thread's next root-level span — how a tx::par
/// worker continues its submitter's span path. Returns the previous base so
/// scoped installers can restore it. Not part of the public API.
std::string set_span_base(std::string base);
}  // namespace detail

}  // namespace tx::obs
