// RAII wall-clock spans feeding the metrics registry.
//
//   {
//     obs::ScopedTimer fit("fit");
//     ...
//     { obs::ScopedTimer step("step"); ... }   // records "span.fit/step"
//   }                                          // records "span.fit"
//
// Span names nest via a thread-local stack, so the histogram key encodes the
// call path. Cost when disabled: one relaxed atomic load (runtime switch) or
// literally nothing (-DTX_OBS_DISABLED compiles the body away).
#pragma once

#include <chrono>
#include <string>

#include "obs/registry.h"

namespace tx::obs {

/// Monotonic wall-clock in seconds (steady_clock).
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifndef TX_OBS_DISABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (live reading, also works when disabled).
  double elapsed() const { return armed_ ? now_seconds() - start_ : 0.0; }

 private:
  bool armed_;
  std::string path_;  // full nested span path, "outer/inner"
  double start_ = 0.0;
};

#else  // TX_OBS_DISABLED: compile-time no-op.

class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string&) {}
  double elapsed() const { return 0.0; }
};

#endif

/// Depth of the active span stack on this thread (tests).
std::size_t span_depth();

}  // namespace tx::obs
