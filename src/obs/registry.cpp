#include "obs/registry.h"

#include <algorithm>
#include <limits>

#include "obs/hist.h"
#include "util/stats.h"

namespace tx::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

void atomic_add_double(std::atomic<std::uint64_t>& cell, double delta) {
  std::uint64_t expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(
      expected, pack_double(unpack_double(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& cell, double v) {
  std::uint64_t expected = cell.load(std::memory_order_relaxed);
  while (unpack_double(expected) > v &&
         !cell.compare_exchange_weak(expected, pack_double(v),
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& cell, double v) {
  std::uint64_t expected = cell.load(std::memory_order_relaxed);
  while (unpack_double(expected) < v &&
         !cell.compare_exchange_weak(expected, pack_double(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace detail

double HistogramSnapshot::quantile(double q) const {
  if (!samples.empty()) return quantile_of(samples, q);
  // Log-bucketed kind: locate the bucket holding the nearest-rank (lower)
  // order statistic and return its midpoint, clamped to the observed range.
  // Relative error vs the exact order statistic is bounded by
  // LogHistogram::kMaxRelativeError.
  if (count <= 0 || representatives.empty()) return 0.0;
  const std::int64_t rank =
      static_cast<std::int64_t>(q * static_cast<double>(count - 1));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    cum += bucket_counts[i];
    if (cum > rank) {
      return std::clamp(representatives[i], min, max);
    }
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_bits_(detail::pack_double(std::numeric_limits<double>::infinity())),
      max_bits_(detail::pack_double(-std::numeric_limits<double>::infinity())),
      reservoir_(kReservoirSize) {
  TX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
           "Histogram: bucket bounds must be ascending");
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  TX_CHECK(start > 0.0 && factor > 1.0 && count >= 1,
           "Histogram: bad exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_time_bounds() {
  return exponential_bounds(1e-6, 4.0, 13);  // 1us .. ~17s
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(sum_bits_, v);
  detail::atomic_min_double(min_bits_, v);
  detail::atomic_max_double(max_bits_, v);
  const std::uint64_t slot =
      reservoir_next_.fetch_add(1, std::memory_order_relaxed) % kReservoirSize;
  reservoir_[slot].store(detail::pack_double(v), std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.bucket_counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = detail::unpack_double(sum_bits_.load(std::memory_order_relaxed));
  if (snap.count > 0) {
    snap.min = detail::unpack_double(min_bits_.load(std::memory_order_relaxed));
    snap.max = detail::unpack_double(max_bits_.load(std::memory_order_relaxed));
  }
  const std::uint64_t filled =
      std::min<std::uint64_t>(reservoir_next_.load(std::memory_order_relaxed),
                              kReservoirSize);
  snap.samples.reserve(filled);
  for (std::uint64_t i = 0; i < filled; ++i) {
    snap.samples.push_back(
        detail::unpack_double(reservoir_[i].load(std::memory_order_relaxed)));
  }
  std::sort(snap.samples.begin(), snap.samples.end());
  return snap;
}

// Out of line so unique_ptr<LogHistogram> members destroy where the type is
// complete (the header only forward-declares it).
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_time_bounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::map<std::string, std::int64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

LogHistogram& MetricsRegistry::log_histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = log_histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->snapshot());
  for (const auto& [name, h] : log_histograms_) out.emplace(name, h->snapshot());
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  log_histograms_.clear();
}

MetricsRegistry& registry() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

}  // namespace tx::obs
