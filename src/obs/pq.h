// Streaming predictive-quality telemetry: online calibration, uncertainty
// decomposition, and OOD monitoring on the posterior-predictive path.
//
// The rest of the obs stack (trace/diag/prof/live) watches training-time
// health; this layer watches the *predictions* — the paper's actual
// deliverable (Fig 2 calibration curves, Table 1 NLL/ECE/OOD rows). It is
// off by default (one relaxed atomic load per hook while disabled;
// -DTX_OBS_DISABLED compiles everything away) and is enabled by the shared
// bench flag `--pq` / TYXE_PQ (obs/flags.h).
//
// Feeds arrive as per-example scalars — tx_obs is tensor-free by design
// (it links tx_util only), so the tensor-to-scalar reductions live in the
// callers: metrics/pq_feed.h reduces probability tables and posterior
// sample stacks, and SupervisedBNN::predict/evaluate route through the
// likelihood's record_predictive_quality hook. Examples land in the calling
// thread's *stream*, a label installed with StreamScope ("predict" when no
// scope is open); fig2/table1 label per-strategy test and OOD streams
// ("MF/test", "MF/ood", ...).
//
// Every accumulator is one-pass and exactly mergeable:
//
//  * Reliability bins — fixed equal-width confidence bins carrying
//    (confidence_sum, accuracy_sum, count), accumulated with *bitwise* the
//    same arithmetic as tx::metrics::calibration_curve, so the streaming
//    ECE equals the batch expected_calibration_error exactly on the same
//    stream (CI-enforced by the fig2 --pq leg and pq_test).
//  * Streaming NLL / Brier / accuracy — per-example terms replicate the
//    batch metrics' float clamps and summation order, same bitwise
//    contract.
//  * Predictive-entropy decomposition — per example, predictive entropy
//    H[mean_s p_s] splits into aleatoric (mean_s H[p_s]) plus epistemic
//    (mutual information); epistemic is derived at snapshot time as the
//    difference of the two sums, so the identity holds to rounding of one
//    division.
//  * OOD-score histograms — fixed-bin max-probability counts per stream;
//    a binned Mann-Whitney AUROC (ties count half within a bin) is derived
//    at snapshot time for every "<p>/test" vs "<p>/ood" stream pair.
//  * Posterior-sample-pool health — MC sample count and mean across-sample
//    variance of the class probabilities.
//
// Updates land in a per-thread shard; tx::par workers flush their shard
// into the global table before a parallel job completes (same
// drain-before-completion pattern as the prof churn shards), so aggregates
// are complete once a parallel region returns. Merging is addition on
// integers and double sums: integer fields are bitwise-identical at every
// TYXE_NUM_THREADS unconditionally, and the double sums are too whenever
// each stream is fed from one thread in a fixed order — which is how every
// in-tree feeder (the predict path) works.
//
// The layer serializes as a "pq" section (schema tx.pq.v1) inside tx.obs.v1
// snapshots, and publish() mirrors headline aggregates as pq.* registry
// gauges (plus a live pq.confidence.<stream> histogram recorded per
// example) for the Prometheus /metrics endpoint. This is the quality
// surface the tx::serve arc and VCL shadow-evaluation plug into. See
// docs/observability.md ("Predictive quality").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tx::obs {
class MetricsRegistry;
}  // namespace tx::obs

namespace tx::obs::pq {

/// Accumulator shape; reliability_bins must match the `num_bins` of the
/// batch tx::metrics calls for the bitwise-ECE contract to hold (both
/// default to 10). Reconfiguring drops recorded data.
struct Config {
  int reliability_bins = 10;
  int score_bins = 64;
};

/// One stream's accumulators. All fields merge by addition, except
/// mc_samples (last batch's sample count; merges by max across shards).
struct StreamStats {
  // Label-free prediction feed (record_prediction).
  std::int64_t examples = 0;
  double confidence_sum = 0.0;
  double predictive_entropy_sum = 0.0;
  double aleatoric_entropy_sum = 0.0;
  std::vector<std::int64_t> score_bins;  // max-prob histogram, equal width

  // Labelled outcome feed (record_outcome).
  std::int64_t labeled = 0;
  std::int64_t correct = 0;
  double nll_sum = 0.0;    // sum of -log(max(p_true, 1e-12f))
  double brier_sum = 0.0;  // sum of per-example squared one-hot error
  std::vector<double> bin_confidence_sum;  // reliability bins
  std::vector<double> bin_accuracy_sum;
  std::vector<std::int64_t> bin_count;

  // Posterior-sample-pool health (record_sample_pool).
  std::int64_t sample_batches = 0;
  std::int64_t mc_samples = 0;
  double variance_sum = 0.0;  // across-sample variance, summed per example
  std::int64_t variance_examples = 0;

  // Batches whose MC sample stack was budget-truncated (guard degradation;
  // record_degraded_batch). Merges by addition.
  std::int64_t degraded_batches = 0;
};

#ifndef TX_OBS_DISABLED

/// Master switch. Defaults to off; while off every record hook below is one
/// relaxed atomic load and an early return.
bool enabled();
void set_enabled(bool on);

/// Replace the accumulator shape. Drops all recorded data (streams are
/// re-binned from scratch); do not call while a parallel region is live.
void configure(const Config& config);
Config config();

/// Drop every stream (benches and tests call this between phases; do not
/// call while a parallel region is live). Keeps the enabled flag and config.
void reset();

/// True once anything was recorded (or pq is currently enabled) — gates
/// whether write_snapshot emits a "pq" section at all.
bool has_data();

// ---- stream labels ---------------------------------------------------------

/// RAII stream label for the calling thread; record hooks attribute to the
/// innermost open scope ("predict" when none). Labels nest like spans.
class StreamScope {
 public:
  explicit StreamScope(std::string label);
  ~StreamScope();
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  std::string prev_;
};

/// The calling thread's current stream label.
const std::string& current_stream();

// ---- record hooks (per-example scalars; see metrics/pq_feed.h) -------------

/// One label-free prediction: `confidence` is the max aggregated-mean class
/// probability (float, to replicate the batch metrics' arithmetic),
/// `predictive_entropy` is H of the mean distribution and
/// `aleatoric_entropy` the mean per-sample entropy; epistemic (mutual
/// information) is derived as their difference at snapshot time.
void record_prediction(float confidence, double predictive_entropy,
                       double aleatoric_entropy);

/// One labelled outcome. `confidence` and `correct` must follow the batch
/// metrics' first-max argmax rule, `p_true` is the aggregated probability of
/// the true class, and `brier` the per-example squared one-hot error — the
/// accumulation replicates tx::metrics::{calibration_curve,nll,accuracy}
/// bitwise.
void record_outcome(float confidence, bool correct, float p_true,
                    double brier);

/// Posterior-sample-pool health for one predicted batch: the MC sample
/// count behind it and the across-sample variance of the class
/// probabilities, summed over the batch's `examples`.
void record_sample_pool(std::int64_t mc_samples, double variance_sum,
                        std::int64_t examples);

/// One predicted batch whose posterior-sample stack was truncated by a
/// guard budget (tx::guard degradation). Degraded batches feed the same
/// quality accumulators as full ones — the draws are honest posterior
/// samples, just fewer — but the count marks the stream so readers never
/// mistake a truncated aggregate for full-quality numbers.
void record_degraded_batch();

/// Merge this thread's shard into the global table. tx::par calls this from
/// every chunk before completion is signalled; readers flush the calling
/// thread themselves. Cheap no-op when the shard is empty.
void flush_thread_cache();

// ---- aggregates ------------------------------------------------------------

/// All streams (flushes the calling thread's shard first).
std::map<std::string, StreamStats> stream_table();

/// Derived one-stream scalars, replicating the batch metrics' final
/// arithmetic so equality with tx::metrics is bitwise on the same data.
/// Zero for an unknown or empty stream.
std::int64_t examples(const std::string& stream);
std::int64_t labeled(const std::string& stream);
double streaming_ece(const std::string& stream);
double streaming_nll(const std::string& stream);
double streaming_accuracy(const std::string& stream);
double streaming_brier(const std::string& stream);

/// Binned Mann-Whitney AUROC of `pos_stream` scores over `neg_stream`
/// scores (ties within a bin count half). Zero when either stream has no
/// scores. A binned estimate — it approaches tx::metrics::auroc as
/// score_bins grows but is not bitwise-comparable to it.
double ood_auroc(const std::string& pos_stream, const std::string& neg_stream);

/// The "pq" snapshot section (schema tx.pq.v1) as a pre-rendered JSON
/// object, or "" when has_data() is false. `indent` is the prefix of nested
/// lines when embedding into a larger document.
std::string section_json(const std::string& indent = "  ");

#else  // TX_OBS_DISABLED: every hook compiles to nothing.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void configure(const Config&) {}
inline Config config() { return {}; }
inline void reset() {}
inline bool has_data() { return false; }
class StreamScope {
 public:
  explicit StreamScope(const std::string&) {}
};
inline const std::string& current_stream() {
  static const std::string kDefault = "predict";
  return kDefault;
}
inline void record_prediction(float, double, double) {}
inline void record_outcome(float, bool, float, double) {}
inline void record_sample_pool(std::int64_t, double, std::int64_t) {}
inline void record_degraded_batch() {}
inline void flush_thread_cache() {}
inline std::map<std::string, StreamStats> stream_table() { return {}; }
inline std::int64_t examples(const std::string&) { return 0; }
inline std::int64_t labeled(const std::string&) { return 0; }
inline double streaming_ece(const std::string&) { return 0.0; }
inline double streaming_nll(const std::string&) { return 0.0; }
inline double streaming_accuracy(const std::string&) { return 0.0; }
inline double streaming_brier(const std::string&) { return 0.0; }
inline double ood_auroc(const std::string&, const std::string&) { return 0.0; }
inline std::string section_json(const std::string& = "  ") { return ""; }

#endif

/// Mirror headline aggregates into `reg` as gauges: "pq.streams" plus
/// per-stream "pq.examples.<s>" / "pq.ece.<s>" / "pq.nll.<s>" / ... and
/// "pq.ood_auroc.<prefix>" per test/ood pair. The feeders call this at the
/// end of every observed batch so live /metrics scrapes stay fresh;
/// write_snapshot calls it when has_data().
void publish(MetricsRegistry& reg);

}  // namespace tx::obs::pq
