#include "obs/diag.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <set>

#include "obs/event_sink.h"
#include "obs/flags.h"
#include "obs/timer.h"

namespace tx::obs::diag {

double Welford::variance() const {
  if (count < 2) return std::numeric_limits<double>::quiet_NaN();
  return m2 / static_cast<double>(count - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

#ifndef TX_OBS_DISABLED

namespace {

constexpr std::size_t kMaxStepIndices = 1 << 20;  // snapshot "steps" cap

struct SviSiteStats {
  Welford mean_w;            // Welford over the per-step value means
  double last_mean = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::int64_t numel = 0;
  std::int64_t nonfinite = 0;
  Welford kl_w;              // analytic KL(q‖p) over steps, when registered
  double kl_last = 0.0;
};

struct ParamStats {
  Welford gmean_w;  // Welford over per-step mean gradient elements
  Welford gnorm_w;  // Welford over per-step gradient L2 norms
  std::int64_t nonfinite = 0;
};

struct McmcSiteStats {
  Welford value_w;  // per-draw site means (sampling phase)
  std::int64_t moved = 0;        // transitions where this site's block changed
  std::int64_t transitions = 0;  // sampling-phase transitions seen
  double ess = std::numeric_limits<double>::quiet_NaN();
  double rhat = std::numeric_limits<double>::quiet_NaN();
  std::int64_t blame = 0;  // divergences localized to this site
};

// Everything reset() is allowed to wipe. Kept apart from the mutex (and the
// Config, which survives resets) so reset() can assign a fresh value without
// ever destroying a locked mutex.
struct HealthState {
  // Flight recorder.
  std::deque<std::string> ring;  // pre-rendered JSON records, oldest first
  std::int64_t seq = 0;          // global monotone record index
  std::vector<std::int64_t> steps;  // recorded indices (snapshot "steps")

  // SVI health.
  std::int64_t svi_steps = 0;
  std::int64_t cur_svi_step = -1;
  Welford elbo;
  double elbo_last = 0.0;
  std::map<std::string, SviSiteStats> sites;
  std::map<std::string, ParamStats> params;

  // MCMC health.
  std::int64_t mcmc_transitions = 0;
  std::int64_t mcmc_divergences = 0;
  Welford accept_w;  // sampling-phase Metropolis accept_prob per transition
  std::set<int> chains_seen;
  std::map<std::string, McmcSiteStats> mcmc_sites;

  // Sentinel / forensics.
  std::int64_t records = 0;
  std::int64_t nan_trips = 0;
  std::int64_t dumps = 0;
  std::string last_reason;
  std::string last_site;
};

struct State : HealthState {
  std::mutex mu;
  Config cfg;
};

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_in_svi_step{false};
std::atomic<std::int64_t> g_cur_svi_step{-1};

State& state() {
  static State* s = new State();  // leaked: usable during static destruction
  return *s;
}

void push_record(State& s, std::string json) {
  ++s.seq;
  ++s.records;
  if (s.steps.size() < kMaxStepIndices) s.steps.push_back(s.seq);
  s.ring.push_back(std::move(json));
  while (s.ring.size() > s.cfg.ring_capacity) s.ring.pop_front();
}

/// Write the forensic bundle: header + ring (oldest first) + offending
/// values. Called with the state mutex held; failures never throw.
void dump_bundle(State& s, const std::string& reason, const std::string& site,
                 Event detail, const std::vector<double>& values,
                 bool force = false) {
  if (!force &&
      s.dumps >= static_cast<std::int64_t>(s.cfg.max_forensic_dumps)) {
    return;
  }
  // last_* describe the forensic bundle, so they freeze with the first dump
  // — the first failure is the one worth reading, and later cascade trips
  // (a NaN site usually drags loss and gradients down with it) only count.
  s.last_reason = reason;
  s.last_site = site;
  std::ofstream out(s.cfg.forensic_path, std::ios::trunc);
  if (!out.is_open()) {
    registry().counter("obs.sink_errors").add(1);
    return;
  }
  Event header;
  header.set("schema", "tx.diag.forensic.v1")
      .set("reason", reason)
      .set("offending_site", site)
      .set("span_path", current_span_path())
      .set("step", s.seq)
      .set("recent_records", static_cast<std::int64_t>(s.ring.size()));
  out << header.to_json() << '\n';
  out << detail.to_json() << '\n';
  for (const auto& line : s.ring) out << line << '\n';
  if (!values.empty()) {
    std::string vals = "{\"offending_values\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) vals += ", ";
      vals += render_json_number(values[i]);
    }
    vals += "]}";
    out << vals << '\n';
  }
  out.flush();
  if (!out.good()) {
    registry().counter("obs.sink_errors").add(1);
    return;
  }
  ++s.dumps;
}

/// Sentinel trip for non-finite loss / gradient / site value.
void trip_nonfinite(State& s, const std::string& reason,
                    const std::string& site, Event detail,
                    const std::vector<double>& values) {
  ++s.nan_trips;
  dump_bundle(s, reason, site, std::move(detail), values);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool in_svi_step() { return g_in_svi_step.load(std::memory_order_relaxed); }

std::int64_t current_svi_step() {
  return g_cur_svi_step.load(std::memory_order_relaxed);
}

void configure(Config cfg) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (cfg.ring_capacity == 0) cfg.ring_capacity = 1;
  if (cfg.refresh_interval < 1) cfg.refresh_interval = 1;
  s.cfg = std::move(cfg);
  while (s.ring.size() > s.cfg.ring_capacity) s.ring.pop_front();
}

Config config() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cfg;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Assigning the HealthState base wipes every accumulator while keeping the
  // mutex (held right now!) and the Config alive.
  static_cast<HealthState&>(s) = HealthState();
  g_in_svi_step.store(false, std::memory_order_relaxed);
  g_cur_svi_step.store(-1, std::memory_order_relaxed);
}

void svi_step_begin(std::int64_t svi_step) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.cur_svi_step = svi_step;
  g_in_svi_step.store(true, std::memory_order_relaxed);
  g_cur_svi_step.store(svi_step, std::memory_order_relaxed);
}

void record_site_value(const std::string& site, double mean, double lo,
                       double hi, std::int64_t numel, bool finite,
                       const std::vector<double>& sample_values) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  SviSiteStats& st = s.sites[site];
  st.numel = numel;
  if (finite) {
    st.mean_w.add(mean);
    st.last_mean = mean;
    if (lo < st.lo) st.lo = lo;
    if (hi > st.hi) st.hi = hi;
    return;
  }
  ++st.nonfinite;
  Event detail;
  detail.set("site", site)
      .set("numel", numel)
      .set("svi_step", s.cur_svi_step);
  trip_nonfinite(s, "nonfinite_site", site, std::move(detail), sample_values);
}

void record_site_kl(const std::string& site, double kl) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!std::isfinite(kl)) return;  // non-finite KL follows from a value trip
  SviSiteStats& st = s.sites[site];
  st.kl_w.add(kl);
  st.kl_last = kl;
}

void record_param_grad(const std::string& param, double grad_mean,
                       double grad_norm, bool finite) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ParamStats& st = s.params[param];
  if (finite) {
    st.gmean_w.add(grad_mean);
    st.gnorm_w.add(grad_norm);
    return;
  }
  ++st.nonfinite;
  Event detail;
  detail.set("param", param).set("svi_step", s.cur_svi_step);
  trip_nonfinite(s, "nonfinite_grad", param, std::move(detail), {});
}

void svi_step_end(double loss, double grad_norm) {
  if (!enabled()) {
    g_in_svi_step.store(false, std::memory_order_relaxed);
    g_cur_svi_step.store(-1, std::memory_order_relaxed);
    return;
  }
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  g_in_svi_step.store(false, std::memory_order_relaxed);
  g_cur_svi_step.store(-1, std::memory_order_relaxed);
  ++s.svi_steps;
  const bool finite = std::isfinite(loss) && std::isfinite(grad_norm);
  if (std::isfinite(loss)) {
    s.elbo.add(-loss);  // loss is -ELBO
    s.elbo_last = -loss;
  }
  Event rec;
  rec.set("kind", "svi")
      .set("step", s.cur_svi_step)
      .set("loss", loss)
      .set("grad_norm", grad_norm)
      .set("elbo_mean", s.elbo.mean)
      .set("elbo_std", s.elbo.count >= 2 ? s.elbo.stddev() : 0.0)
      .set("sites", static_cast<std::int64_t>(s.sites.size()));
  push_record(s, rec.to_json());
  if (!finite) {
    Event detail;
    detail.set("loss", loss)
        .set("grad_norm", grad_norm)
        .set("svi_step", s.cur_svi_step);
    trip_nonfinite(s, std::isfinite(loss) ? "nonfinite_grad" : "nonfinite_loss",
                   "", std::move(detail), {});
  }
}

void mcmc_record_transition(const std::vector<SiteSpan>& spans, int chain,
                            std::int64_t step, bool warmup, double accept_prob,
                            bool divergent, const std::vector<double>& prev,
                            const std::vector<double>& next) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.mcmc_transitions;
  s.chains_seen.insert(chain);
  if (!warmup && std::isfinite(accept_prob)) s.accept_w.add(accept_prob);
  std::string bad_site;
  std::vector<double> bad_values;
  for (const SiteSpan& span : spans) {
    double sum = 0.0;
    bool moved = false;
    bool finite = true;
    for (std::size_t i = span.begin; i < span.end && i < next.size(); ++i) {
      const double v = next[i];
      sum += v;
      // A non-finite coordinate never counts as "moved" — NaN != NaN would
      // otherwise inflate the moved-fraction of a broken chain.
      if (!std::isfinite(v)) {
        finite = false;
      } else if (i < prev.size() && v != prev[i]) {
        moved = true;
      }
    }
    if (!finite && bad_site.empty()) {
      bad_site = span.name;
      for (std::size_t i = span.begin;
           i < span.end && i < next.size() &&
           bad_values.size() < s.cfg.max_dump_values;
           ++i) {
        bad_values.push_back(next[i]);
      }
    }
    if (warmup) continue;  // health statistics cover the sampling phase
    McmcSiteStats& st = s.mcmc_sites[span.name];
    ++st.transitions;
    if (moved) ++st.moved;
    const auto n = static_cast<double>(span.end - span.begin);
    if (finite && n > 0) st.value_w.add(sum / n);
  }
  Event rec;
  rec.set("kind", "mcmc")
      .set("chain", chain)
      .set("step", step)
      .set("warmup", warmup)
      .set("accept_prob", accept_prob)
      .set("divergent", divergent);
  push_record(s, rec.to_json());
  if (!bad_site.empty()) {
    Event detail;
    detail.set("site", bad_site).set("chain", chain).set("mcmc_step", step);
    trip_nonfinite(s, "nonfinite_site", bad_site, std::move(detail),
                   bad_values);
  }
}

void mcmc_record_divergence(const std::vector<SiteSpan>& spans,
                            const std::vector<double>& q,
                            const std::vector<double>& p,
                            const std::vector<double>& grad,
                            const std::vector<double>& inv_mass, double h0,
                            double h1) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.mcmc_divergences;
  // Blame the site with the largest energy contribution at the blow-up
  // point: kinetic (momentum) plus squared-gradient terms summed over the
  // site's coordinates. Any non-finite coordinate wins outright — the first
  // site to go non-finite is exactly the forensic answer we want.
  std::string blamed;
  double best = -1.0;
  std::vector<double> blamed_values;
  for (const SiteSpan& span : spans) {
    double score = 0.0;
    bool finite = true;
    for (std::size_t i = span.begin; i < span.end; ++i) {
      const double pi = i < p.size() ? p[i] : 0.0;
      const double gi = i < grad.size() ? grad[i] : 0.0;
      const double qi = i < q.size() ? q[i] : 0.0;
      const double mi = i < inv_mass.size() ? inv_mass[i] : 1.0;
      if (!std::isfinite(pi) || !std::isfinite(gi) || !std::isfinite(qi)) {
        finite = false;
        break;
      }
      score += 0.5 * mi * pi * pi + gi * gi;
    }
    if (!finite) score = std::numeric_limits<double>::infinity();
    if (score > best) {
      best = score;
      blamed = span.name;
      blamed_values.clear();
      for (std::size_t i = span.begin;
           i < span.end && i < q.size() &&
           blamed_values.size() < s.cfg.max_dump_values;
           ++i) {
        blamed_values.push_back(q[i]);
      }
    }
  }
  if (!blamed.empty()) ++s.mcmc_sites[blamed].blame;
  Event rec;
  rec.set("kind", "divergence")
      .set("site", blamed)
      .set("h0", h0)
      .set("h1", h1)
      .set("score", best);
  push_record(s, rec.to_json());
  Event detail;
  detail.set("site", blamed).set("h0", h0).set("h1", h1).set("score", best);
  dump_bundle(s, "divergence", blamed, std::move(detail), blamed_values);
}

void mcmc_update_site_health(const std::string& site, double ess,
                             double rhat) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  McmcSiteStats& st = s.mcmc_sites[site];
  if (std::isfinite(ess)) st.ess = ess;
  if (std::isfinite(rhat)) st.rhat = rhat;
}

std::int64_t records() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.records;
}

std::int64_t nan_trips() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.nan_trips;
}

std::int64_t forensic_dumps() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dumps;
}

std::string last_forensic_reason() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.last_reason;
}

std::string last_offending_site() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.last_site;
}

bool force_forensic_dump(const std::string& reason,
                         const std::string& blame_site) {
  // No enabled() gate and force=true: an external failure detector's one
  // trigger must produce a bundle even when the flight recorder never ran or
  // an earlier NaN trip already spent max_forensic_dumps.
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::int64_t before = s.dumps;
  Event detail;
  detail.set("reason", reason).set("blame_site", blame_site).set("forced",
                                                                 true);
  dump_bundle(s, reason, blame_site, std::move(detail), {}, /*force=*/true);
  return s.dumps == before + 1;
}

void publish(MetricsRegistry& reg) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  reg.gauge("diag.svi.steps").set(static_cast<double>(s.svi_steps));
  reg.gauge("diag.svi.sites").set(static_cast<double>(s.sites.size()));
  if (s.elbo.count > 0) {
    reg.gauge("diag.svi.elbo_mean").set(s.elbo.mean);
    reg.gauge("diag.svi.elbo_last").set(s.elbo_last);
    if (s.elbo.count >= 2) reg.gauge("diag.svi.elbo_std").set(s.elbo.stddev());
  }
  reg.gauge("diag.mcmc.transitions")
      .set(static_cast<double>(s.mcmc_transitions));
  reg.gauge("diag.mcmc.divergences")
      .set(static_cast<double>(s.mcmc_divergences));
  reg.gauge("diag.mcmc.chains").set(static_cast<double>(s.chains_seen.size()));
  if (s.accept_w.count > 0 && std::isfinite(s.accept_w.mean)) {
    reg.gauge("diag.mcmc.accept_prob_mean").set(s.accept_w.mean);
  }
  double rhat_max = -std::numeric_limits<double>::infinity();
  double ess_min = std::numeric_limits<double>::infinity();
  for (const auto& [name, st] : s.mcmc_sites) {
    if (std::isfinite(st.rhat) && st.rhat > rhat_max) rhat_max = st.rhat;
    if (std::isfinite(st.ess) && st.ess < ess_min) ess_min = st.ess;
  }
  if (std::isfinite(rhat_max)) reg.gauge("diag.mcmc.rhat_max").set(rhat_max);
  if (std::isfinite(ess_min)) reg.gauge("diag.mcmc.ess_min").set(ess_min);
  reg.gauge("diag.nan_trips").set(static_cast<double>(s.nan_trips));
  reg.gauge("diag.forensic_dumps").set(static_cast<double>(s.dumps));
  reg.gauge("diag.records").set(static_cast<double>(s.records));
}

namespace {

/// Append `"key": number` to `out` only when the value is finite — the
/// tx.diag.v1 contract is that every emitted per-site statistic is finite.
void emit_field(std::string& out, bool& first, const std::string& key,
                double v) {
  if (!std::isfinite(v)) return;
  out += first ? "" : ", ";
  out += "\"" + escape_json(key) + "\": " + render_json_number(v);
  first = false;
}

void emit_field(std::string& out, bool& first, const std::string& key,
                std::int64_t v) {
  out += first ? "" : ", ";
  out += "\"" + escape_json(key) + "\": " + std::to_string(v);
  first = false;
}

}  // namespace

bool write_snapshot(const std::string& path, const std::string& bench_name) {
  publish(registry());
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }

  out << "{\n";
  out << "  \"bench\": \"" << escape_json(bench_name) << "\",\n";
  out << "  \"schema\": \"tx.diag.v1\",\n";

  out << "  \"steps\": [";
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    if (i > 0) out << ", ";
    out << s.steps[i];
  }
  out << "],\n";

  out << "  \"svi\": {\n";
  out << "    \"steps\": " << s.svi_steps << ",\n";
  {
    std::string agg;
    bool first = true;
    emit_field(agg, first, "elbo_mean", s.elbo.count > 0 ? s.elbo.mean
                                                         : 0.0);
    emit_field(agg, first, "elbo_std",
               s.elbo.count >= 2 ? s.elbo.stddev() : 0.0);
    emit_field(agg, first, "elbo_last", s.elbo.count > 0 ? s.elbo_last : 0.0);
    out << "    " << agg << ",\n";
  }
  out << "    \"sites\": {";
  bool first_site = true;
  for (const auto& [name, st] : s.sites) {
    out << (first_site ? "\n" : ",\n") << "      \"" << escape_json(name)
        << "\": {";
    std::string body;
    bool first = true;
    emit_field(body, first, "count", st.mean_w.count);
    emit_field(body, first, "numel", st.numel);
    emit_field(body, first, "nonfinite", st.nonfinite);
    if (st.mean_w.count > 0) {
      emit_field(body, first, "mean", st.mean_w.mean);
      emit_field(body, first, "last_mean", st.last_mean);
      emit_field(body, first, "drift",
                 st.mean_w.count >= 2 ? st.mean_w.stddev() : 0.0);
      emit_field(body, first, "min", st.lo);
      emit_field(body, first, "max", st.hi);
    }
    if (st.kl_w.count > 0) {
      emit_field(body, first, "kl_count", st.kl_w.count);
      emit_field(body, first, "kl_mean", st.kl_w.mean);
      emit_field(body, first, "kl_last", st.kl_last);
    }
    out << body << "}";
    first_site = false;
  }
  out << (first_site ? "" : "\n    ") << "},\n";

  out << "    \"params\": {";
  bool first_param = true;
  for (const auto& [name, st] : s.params) {
    out << (first_param ? "\n" : ",\n") << "      \"" << escape_json(name)
        << "\": {";
    std::string body;
    bool first = true;
    emit_field(body, first, "steps", st.gnorm_w.count);
    emit_field(body, first, "nonfinite", st.nonfinite);
    if (st.gnorm_w.count > 0) {
      emit_field(body, first, "grad_norm_mean", st.gnorm_w.mean);
      emit_field(body, first, "grad_mean", st.gmean_w.mean);
    }
    if (st.gnorm_w.count >= 2) {
      emit_field(body, first, "grad_norm_std", st.gnorm_w.stddev());
      // Signal-to-noise of the mean gradient element over steps, and the
      // relative variance of the gradient norm (a gradient-noise-scale
      // proxy). Both guarded so degenerate streams stay finite.
      const double gstd = st.gmean_w.stddev();
      if (gstd > 0.0) {
        emit_field(body, first, "grad_snr", std::abs(st.gmean_w.mean) / gstd);
      }
      if (st.gnorm_w.mean != 0.0) {
        emit_field(body, first, "grad_noise_scale",
                   st.gnorm_w.variance() /
                       (st.gnorm_w.mean * st.gnorm_w.mean));
      }
    }
    out << body << "}";
    first_param = false;
  }
  out << (first_param ? "" : "\n    ") << "}\n";
  out << "  },\n";

  out << "  \"mcmc\": {\n";
  out << "    \"chains\": " << s.chains_seen.size() << ",\n";
  out << "    \"transitions\": " << s.mcmc_transitions << ",\n";
  out << "    \"divergences\": " << s.mcmc_divergences << ",\n";
  if (s.accept_w.count > 0 && std::isfinite(s.accept_w.mean)) {
    out << "    \"accept_prob_mean\": " << render_json_number(s.accept_w.mean)
        << ",\n";
  }
  out << "    \"sites\": {";
  bool first_msite = true;
  for (const auto& [name, st] : s.mcmc_sites) {
    out << (first_msite ? "\n" : ",\n") << "      \"" << escape_json(name)
        << "\": {";
    std::string body;
    bool first = true;
    emit_field(body, first, "draws", st.value_w.count);
    emit_field(body, first, "transitions", st.transitions);
    emit_field(body, first, "moved", st.moved);
    emit_field(body, first, "divergence_blame", st.blame);
    if (st.transitions > 0) {
      // Fraction of sampling-phase transitions on which the block changed —
      // not the Metropolis acceptance rate (see mcmc.accept_prob_mean).
      emit_field(body, first, "moved_fraction",
                 static_cast<double>(st.moved) /
                     static_cast<double>(st.transitions));
    }
    if (st.value_w.count > 0) {
      emit_field(body, first, "mean", st.value_w.mean);
      emit_field(body, first, "std",
                 st.value_w.count >= 2 ? st.value_w.stddev() : 0.0);
    }
    emit_field(body, first, "ess", st.ess);    // skipped unless finite
    emit_field(body, first, "rhat", st.rhat);  // skipped unless finite
    out << body << "}";
    first_msite = false;
  }
  out << (first_msite ? "" : "\n    ") << "}\n";
  out << "  },\n";

  out << "  \"events\": {\"nan_trips\": " << s.nan_trips
      << ", \"forensic_dumps\": " << s.dumps << ", \"records\": " << s.records
      << ", \"divergences\": " << s.mcmc_divergences << "}\n";
  out << "}\n";
  out.flush();
  if (!out.good()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  return true;
}

#endif  // TX_OBS_DISABLED

std::string diag_path_from_args(int argc, char** argv) {
  return obs::detail::path_flag(argc, argv, "--diag", "TYXE_DIAG");
}

}  // namespace tx::obs::diag
