#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/diag.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "resil/guard.h"

namespace tx::obs {

Watchdog::Watchdog(Options opts) : opts_(std::move(opts)) {
  if (opts_.stale_after_seconds <= 0.0) opts_.stale_after_seconds = 30.0;
  if (opts_.poll_interval_seconds <= 0.0) opts_.poll_interval_seconds = 0.5;
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  guard::set_watchdog_interest(true);
  thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    thread_.join();
    guard::set_watchdog_interest(false);
    // A 503 left behind by a dead watchdog would be unactionable — the
    // monitor that would clear it on recovery no longer exists.
    if (in_stall_) {
      guard::clear_health_override();
      in_stall_ = false;
    }
  } else if (thread_.joinable()) {
    thread_.join();
  }
}

void Watchdog::run() {
  const auto interval =
      std::chrono::duration<double>(opts_.poll_interval_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (running_.load(std::memory_order_acquire)) {
    lock.unlock();
    poll_once();
    lock.lock();
    cv_.wait_for(lock, interval, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
}

void Watchdog::poll_once() {
  // gauges() (not gauge()) so monitoring never creates the metric; no
  // heartbeat yet means the drivers simply have not started — not a stall.
  const auto gauges = registry().gauges();
  const auto it = gauges.find("obs.heartbeat_seconds");
  if (it == gauges.end()) return;
  // Real wall clock on purpose: fault clock-skew plans advance only the
  // guard virtual clock, and an injected deadline must not read as a hang.
  const double age = now_seconds() - it->second;
  if (age <= opts_.stale_after_seconds) {
    if (in_stall_) {
      in_stall_ = false;  // recovered: re-arm the per-episode forensic dump
      guard::clear_health_override();
      registry().counter("guard.watchdog.recoveries").add(1);
    }
    return;
  }
  if (in_stall_) return;  // one dump + override per stall episode
  in_stall_ = true;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  registry().counter("guard.watchdog.stalls").add(1);

  const std::string blame = guard::last_liveness_span();
  char head[160];
  std::snprintf(head, sizeof(head),
                "heartbeat stalled for %.1fs (threshold %.1fs)", age,
                opts_.stale_after_seconds);
  std::string reason = head;
  if (!blame.empty()) reason += "; last live span: " + blame;

  diag::force_forensic_dump("watchdog_stall", blame);
  guard::set_health_override(reason);
  std::fprintf(stderr, "obs::watchdog: %s\n", reason.c_str());
  if (opts_.escalate_cancel) {
    const int cancelled = guard::cancel_all(guard::Reason::kWatchdog);
    registry().counter("guard.watchdog.cancels").add(cancelled);
  }
}

}  // namespace tx::obs
