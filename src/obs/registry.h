// Process-global metrics: counters, gauges, and fixed-bucket histograms.
//
// Updates are lock-free (relaxed atomics; doubles live in bit-cast uint64
// cells updated by CAS); only the first registration of a name takes the
// registry mutex. References returned by the registry stay valid for the
// process lifetime, so hot paths resolve a metric once and then update it
// without ever touching the map again.
//
// The whole subsystem has a runtime kill switch (set_enabled) and a
// compile-time one (-DTX_OBS_DISABLED makes ScopedTimer a no-op); metric
// objects themselves stay functional either way so tests can poke them
// directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace tx::obs {

/// Runtime switch consulted by the instrumentation hooks (timers, SVI/MCMC
/// emission). Defaults to on.
bool enabled();
void set_enabled(bool on);

namespace detail {

inline std::uint64_t pack_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double unpack_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// CAS-add into a bit-cast double cell.
void atomic_add_double(std::atomic<std::uint64_t>& cell, double delta);
/// CAS-min / CAS-max into a bit-cast double cell.
void atomic_min_double(std::atomic<std::uint64_t>& cell, double v);
void atomic_max_double(std::atomic<std::uint64_t>& cell, double v);

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins scalar (e.g. current loss, current accept probability).
class Gauge {
 public:
  void set(double v) {
    bits_.store(detail::pack_double(v), std::memory_order_relaxed);
  }
  double value() const {
    return detail::unpack_double(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{detail::pack_double(0.0)};
};

/// Point-in-time view of a histogram, safe to keep after the fact. Produced
/// by both histogram kinds: fixed-bucket Histogram (raw-value reservoir,
/// `representatives` empty) and log-bucketed LogHistogram (obs/hist.h;
/// `samples` empty, `representatives` carries per-bucket midpoints and
/// bounds/bucket_counts are trimmed to the non-empty range).
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // undefined (0) when count == 0
  double max = 0.0;
  std::vector<double> bounds;               // ascending upper bounds
  std::vector<std::int64_t> bucket_counts;  // bounds.size() + 1 (last = +inf)
                                            // (log kind: bounds.size())
  std::vector<double> samples;              // sorted reservoir of raw values
  std::vector<double> representatives;      // log kind: bucket midpoints

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate: from the raw-value reservoir when present (util
  /// quantile_of), else from the bucket counts via `representatives`,
  /// clamped to the observed [min, max] (relative error bounded by
  /// LogHistogram::kMaxRelativeError).
  double quantile(double q) const;
};

/// Fixed-bucket histogram with a lock-free ring reservoir of raw values for
/// quantile estimation. Bucket i counts values <= bounds[i]; the final
/// overflow bucket counts everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Geometric bucket ladder: start, start*factor, ... (count bounds).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);
  /// Default ladder for wall-clock seconds: 1us .. ~17s.
  static std::vector<double> default_time_bounds();

  void record(double v);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

 private:
  static constexpr std::size_t kReservoirSize = 512;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{detail::pack_double(0.0)};
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
  std::vector<std::atomic<std::uint64_t>> reservoir_;
  std::atomic<std::uint64_t> reservoir_next_{0};
};

class LogHistogram;  // obs/hist.h — log-bucketed, mergeable duration metrics

/// Name -> metric map. get-or-create takes a mutex; returned references are
/// stable (metrics are heap-allocated and never removed, only reset).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted on first creation; empty = time ladder.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});
  /// Log-bucketed histogram (obs/hist.h): O(1) record, bounded relative
  /// error, exact merge. The duration metrics (svi.step_seconds,
  /// mcmc.step_seconds, span.*) live here; names must not collide with
  /// fixed-bucket histograms (the merged snapshot view keeps one namespace).
  LogHistogram& log_histogram(const std::string& name);

  /// Snapshot views (each takes the registration mutex once). histograms()
  /// merges both histogram kinds into one map.
  std::map<std::string, std::int64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistogramSnapshot> histograms() const;

  /// Drop every registered metric (tests and bench isolation).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LogHistogram>> log_histograms_;
};

/// The process-global registry every instrumentation hook feeds.
MetricsRegistry& registry();

}  // namespace tx::obs
