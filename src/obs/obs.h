// Umbrella header for tx::obs — the observability substrate: metrics
// registry, RAII span timers, the JSONL event sink / BENCH snapshot writer,
// the Chrome-trace timeline recorder, tensor memory accounting, the streaming
// inference-health diagnostics, and the kernel roofline / allocator-churn
// profiler. See docs/observability.md.
#pragma once

#include "obs/diag.h"
#include "obs/event_sink.h"
#include "obs/flags.h"
#include "obs/mem.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"
