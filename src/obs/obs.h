// Umbrella header for tx::obs — the observability substrate: metrics
// registry (with mergeable log-bucketed latency histograms), RAII span
// timers, the JSONL event sink / BENCH snapshot writer, the Chrome-trace
// timeline recorder, tensor memory accounting, the streaming
// inference-health diagnostics, the kernel roofline / allocator-churn
// profiler, the tx.manifest.v1 run manifest, and the live telemetry HTTP
// server. See docs/observability.md.
#pragma once

#include "obs/diag.h"
#include "obs/event_sink.h"
#include "obs/flags.h"
#include "obs/hist.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/mem.h"
#include "obs/pq.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
