// Umbrella header for tx::obs — the observability substrate: metrics
// registry, RAII span timers, the JSONL event sink / BENCH snapshot writer,
// the Chrome-trace timeline recorder, and tensor memory accounting. See
// docs/observability.md.
#pragma once

#include "obs/event_sink.h"
#include "obs/mem.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"
