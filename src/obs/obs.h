// Umbrella header for tx::obs — the observability substrate: metrics
// registry, RAII span timers, and the JSONL event sink / BENCH snapshot
// writer. See docs/observability.md.
#pragma once

#include "obs/event_sink.h"
#include "obs/registry.h"
#include "obs/timer.h"
