// Shared observability command-line flags for benchmark binaries.
//
// Every bench accepts the same switches:
//
//   --trace <path>     write a Chrome-trace timeline (obs/trace.h)
//   --diag <path>      write streaming inference diagnostics (obs/diag.h)
//   --prof             enable the kernel/churn profiler (obs/prof.h); the
//                      "prof" section lands inside the bench's BENCH_*.json
//   --pq               enable streaming predictive-quality telemetry
//                      (obs/pq.h); the "pq" section lands inside the bench's
//                      BENCH_*.json
//   --obs-http[=PORT]  serve live telemetry over HTTP (obs/live.h); bare
//                      --obs-http binds an ephemeral port
//   --watchdog         run the stall watchdog (obs/watchdog.h): forensic
//                      dump + 503 /healthz when the heartbeat goes stale
//
// parse_bench_flags recognizes them in one place (replacing per-bench
// copies), warns on a trailing path flag with no path instead of silently
// dropping it, falls back to the TYXE_TRACE / TYXE_DIAG / TYXE_PROF /
// TYXE_PQ / TYXE_OBS_HTTP environment variables, and *strips* everything it
// consumed
// from argv so the remaining arguments can be handed to another parser
// (e.g. google benchmark) without "unrecognized flag" failures.
//
// It is also the benches' startup hook: it audits the environment for
// unrecognized TYXE_* variables (util/env.h) and captures the tx.manifest.v1
// run manifest (obs/manifest.h), so every bench gets both for free.
#pragma once

#include <string>

namespace tx::obs {

/// Resolved observability flags for one bench invocation.
struct BenchFlags {
  std::string trace_path;  ///< "" when tracing is off
  std::string diag_path;   ///< "" when diagnostics are off
  bool prof = false;       ///< profiler on (--prof or TYXE_PROF=1)
  bool pq = false;         ///< predictive-quality telemetry (--pq / TYXE_PQ=1)
  /// Live telemetry server port: -1 = off, 0 = bind an ephemeral port,
  /// otherwise the literal TCP port. From --obs-http[=PORT] or TYXE_OBS_HTTP
  /// (""/"off"/"0" off, "auto" ephemeral, number = port).
  int http_port = -1;
  bool watchdog = false;  ///< stall watchdog (--watchdog / TYXE_WATCHDOG=1)
};

/// Parse --trace/--diag/--prof out of argv (see file comment). Consumed
/// arguments are removed in place and argc is updated; argv[0] and
/// unrecognized arguments are preserved in order.
BenchFlags parse_bench_flags(int& argc, char** argv);

namespace detail {
/// Scan argv for `flag <path>`; a trailing `flag` with no path prints a
/// warning naming the env fallback. Returns the path, else the non-empty
/// value of `env`, else "". Non-stripping — shared by the legacy
/// trace_path_from_args / diag_path_from_args entry points.
std::string path_flag(int argc, char** argv, const char* flag,
                      const char* env);
}  // namespace detail

}  // namespace tx::obs
