// Chrome-trace timeline recorder.
//
// A low-overhead, thread-safe tracer: each thread appends events to its own
// fixed-capacity ring buffer (one uncontended mutex per append, no global
// locks on the hot path), and write_trace() merges every buffer into Chrome
// trace-event JSON that loads in chrome://tracing and Perfetto.
//
//   tx::obs::start_tracing();
//   { tx::obs::TraceSpan s("svi.step"); ... }   // duration slice B/E pair
//   tx::obs::trace_counter("mem.live_bytes", 1.5e6);  // counter track
//   tx::obs::write_trace("run.trace.json");
//   tx::obs::stop_tracing();
//
// ScopedTimer (obs/timer.h) doubles as a trace slice while tracing is on, so
// every existing span in the stack appears on the timeline for free; tx::par
// names its worker threads so pool tasks land on attributed tracks.
//
// Cost when off: emission helpers check one relaxed atomic and return.
// Tracing rides the obs runtime switch: ScopedTimer only traces while
// obs::enabled() too, and -DTX_OBS_DISABLED compiles the emitters away.
#pragma once

#include <cstdint>
#include <string>

#include "obs/event_sink.h"

namespace tx::obs {

#ifndef TX_OBS_DISABLED

/// Is the recorder currently collecting events? (one relaxed atomic load).
bool tracing();

/// Clear all buffers, restart the trace clock, and begin collecting.
void start_tracing();

/// Stop collecting. Buffered events are retained until clear/start.
void stop_tracing();

/// Drop every buffered event (start_tracing also does this).
void clear_trace();

/// Export everything buffered so far as Chrome trace-event JSON. Works while
/// tracing is active or stopped. Per-(pid,tid) timestamps are monotone and
/// B/E pairs are balanced on export: an E orphaned by ring-buffer wrap is
/// dropped, a B still open at export gets a synthetic closing E. Returns
/// false (and counts obs.sink_errors) if the file cannot be written.
bool write_trace(const std::string& path);

/// Events buffered across all threads (after ring-buffer drops; tests).
std::int64_t trace_event_count();
/// Events lost to ring-buffer wrap since the last clear.
std::int64_t trace_dropped_count();

/// Name this thread's track in exported traces ("main", "par-worker-3", …).
/// Callable any time; the last name wins.
void set_trace_thread_name(const std::string& name);

// ---- emission (each is a no-op unless tracing() is true) -------------------

/// Open a duration slice on this thread. `args_json` is a pre-rendered JSON
/// object (use obs::Event::to_json) or empty.
void trace_begin(const std::string& name, std::string args_json = {});
/// Close the most recent open slice. Args attach to the closing event (shown
/// merged onto the slice by Chrome/Perfetto).
void trace_end(const std::string& name, std::string args_json = {});
/// Thread-scoped instant event (a vertical tick on the thread's track).
void trace_instant(const std::string& name, std::string args_json = {});
/// Sample of a counter track (rendered as a stacked area chart).
void trace_counter(const std::string& name, double value);

/// RAII B/E pair.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string args_json = {})
      : armed_(tracing()), name_(std::move(name)) {
    if (armed_) trace_begin(name_, std::move(args_json));
  }
  ~TraceSpan() {
    if (armed_) trace_end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_;
  std::string name_;
};

#else  // TX_OBS_DISABLED: compile-time no-ops.

inline bool tracing() { return false; }
inline void start_tracing() {}
inline void stop_tracing() {}
inline void clear_trace() {}
inline bool write_trace(const std::string&) { return false; }
inline std::int64_t trace_event_count() { return 0; }
inline std::int64_t trace_dropped_count() { return 0; }
inline void set_trace_thread_name(const std::string&) {}
inline void trace_begin(const std::string&, std::string = {}) {}
inline void trace_end(const std::string&, std::string = {}) {}
inline void trace_instant(const std::string&, std::string = {}) {}
inline void trace_counter(const std::string&, double) {}
class TraceSpan {
 public:
  explicit TraceSpan(const std::string&, const std::string& = {}) {}
};

#endif

/// Resolve a trace output path for a benchmark: `--trace <path>` on the
/// command line wins, else the TYXE_TRACE environment variable, else "".
std::string trace_path_from_args(int argc, char** argv);

}  // namespace tx::obs
