// Process-wide tensor memory accounting.
//
// tx::Tensor storage (TensorImpl data + grad buffers) reports its lifecycle
// here: creation/destruction bumps the live-tensor count, and every material
// buffer resize reports a byte delta. The module keeps live bytes, a
// monotone high-water mark, and cumulative allocation totals, all as relaxed
// atomics — a handful of uncontended atomic ops per tensor, cheap enough to
// stay on unconditionally (the compile-time TX_OBS_DISABLED switch compiles
// the hooks away entirely).
//
// The tracer (obs/trace.h) surfaces live_bytes as a Chrome-trace counter
// track, ScopedTimer attributes per-span net allocation, and
// EventSink::write_snapshot publishes the gauges into every tx.obs.v1
// snapshot. See docs/observability.md ("Memory accounting").
#pragma once

#include <cstdint>

namespace tx::obs {
class MetricsRegistry;
}  // namespace tx::obs

namespace tx::obs::mem {

#ifndef TX_OBS_DISABLED

/// A tensor storage object came into / went out of existence.
void on_tensor_create();
void on_tensor_destroy();

/// Live buffer bytes changed by `delta` (negative on shrink/free). Positive
/// deltas also feed the high-water mark and the cumulative allocation total.
void on_bytes_delta(std::int64_t delta);

/// Currently live tensor storage objects.
std::int64_t live_tensors();
/// Currently live buffer bytes across all tensors.
std::int64_t live_bytes();
/// High-water mark of live_bytes since process start (or last reset_peak).
std::int64_t peak_bytes();
/// Cumulative bytes ever allocated (sum of positive deltas).
std::int64_t total_allocated_bytes();

/// Reset the high-water mark to the current live_bytes — lets a caller
/// measure the peak footprint of one region (e.g. one HMC trajectory).
void reset_peak();

#else  // TX_OBS_DISABLED: every hook compiles to nothing.

inline void on_tensor_create() {}
inline void on_tensor_destroy() {}
inline void on_bytes_delta(std::int64_t) {}
inline std::int64_t live_tensors() { return 0; }
inline std::int64_t live_bytes() { return 0; }
inline std::int64_t peak_bytes() { return 0; }
inline std::int64_t total_allocated_bytes() { return 0; }
inline void reset_peak() {}

#endif

/// Mirror the current accounting into `reg` as gauges ("mem.live_tensors",
/// "mem.live_bytes", "mem.peak_bytes", "mem.total_allocated_bytes").
/// write_snapshot calls this so every tx.obs.v1 snapshot carries them.
void publish(MetricsRegistry& reg);

}  // namespace tx::obs::mem
