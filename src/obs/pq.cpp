#include "obs/pq.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "obs/event_sink.h"
#include "obs/registry.h"
#include "util/common.h"

namespace tx::obs::pq {

namespace {

/// "<prefix>/test" -> prefix; "" when the label has no such suffix. Shared
/// by section_json and publish (the latter compiles even when obs is
/// disabled, so this helper lives outside the guard).
std::string test_prefix_of(const std::string& label) {
  const std::string suffix = "/test";
  if (label.size() <= suffix.size()) return "";
  if (label.compare(label.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  return label.substr(0, label.size() - suffix.size());
}

}  // namespace

#ifndef TX_OBS_DISABLED

namespace {

std::atomic<bool> g_enabled{false};

/// Global state lives in a leaked singleton so thread-shard destructors
/// running at any point of process teardown can still flush safely.
struct Globals {
  std::mutex mu;
  Config config;
  std::map<std::string, StreamStats> streams;
  std::atomic<bool> any_data{false};
};

Globals& g() {
  static Globals* globals = new Globals;
  return *globals;
}

void size_stats(StreamStats& s, const Config& cfg) {
  if (s.score_bins.empty()) {
    s.score_bins.assign(static_cast<std::size_t>(cfg.score_bins), 0);
  }
  if (s.bin_count.empty()) {
    const auto n = static_cast<std::size_t>(cfg.reliability_bins);
    s.bin_confidence_sum.assign(n, 0.0);
    s.bin_accuracy_sum.assign(n, 0.0);
    s.bin_count.assign(n, 0);
  }
}

void merge_stats(StreamStats& dst, const StreamStats& src, const Config& cfg) {
  size_stats(dst, cfg);
  dst.examples += src.examples;
  dst.confidence_sum += src.confidence_sum;
  dst.predictive_entropy_sum += src.predictive_entropy_sum;
  dst.aleatoric_entropy_sum += src.aleatoric_entropy_sum;
  for (std::size_t i = 0; i < src.score_bins.size(); ++i) {
    dst.score_bins[i] += src.score_bins[i];
  }
  dst.labeled += src.labeled;
  dst.correct += src.correct;
  dst.nll_sum += src.nll_sum;
  dst.brier_sum += src.brier_sum;
  for (std::size_t i = 0; i < src.bin_count.size(); ++i) {
    dst.bin_confidence_sum[i] += src.bin_confidence_sum[i];
    dst.bin_accuracy_sum[i] += src.bin_accuracy_sum[i];
    dst.bin_count[i] += src.bin_count[i];
  }
  dst.sample_batches += src.sample_batches;
  dst.mc_samples = std::max(dst.mc_samples, src.mc_samples);
  dst.variance_sum += src.variance_sum;
  dst.variance_examples += src.variance_examples;
  dst.degraded_batches += src.degraded_batches;
}

/// Per-thread shard: uncontended accumulation between flushes.
struct ThreadShard {
  std::unordered_map<std::string, StreamStats> streams;
  std::string stream = "predict";

  ~ThreadShard() { flush(); }

  void flush() {
    if (streams.empty()) return;
    Globals& gl = g();
    std::lock_guard<std::mutex> lock(gl.mu);
    for (auto& [label, stats] : streams) {
      merge_stats(gl.streams[label], stats, gl.config);
    }
    streams.clear();
  }
};

ThreadShard& shard() {
  thread_local ThreadShard s;
  return s;
}

StreamStats& shard_stream() {
  ThreadShard& sh = shard();
  StreamStats& stats = sh.streams[sh.stream];
  if (stats.score_bins.empty()) {
    Globals& gl = g();
    std::lock_guard<std::mutex> lock(gl.mu);
    size_stats(stats, gl.config);
    gl.any_data.store(true, std::memory_order_relaxed);
  }
  return stats;
}

StreamStats stats_for(const std::string& stream) {
  shard().flush();
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  auto it = gl.streams.find(stream);
  return it != gl.streams.end() ? it->second : StreamStats{};
}

/// Binned Mann-Whitney U from two max-prob histograms; ties within a bin
/// count half. Bins iterate low to high so `below` tracks negatives with
/// strictly smaller scores.
double auroc_from_bins(const std::vector<std::int64_t>& pos,
                       const std::vector<std::int64_t>& neg) {
  std::int64_t total_pos = 0, total_neg = 0;
  for (std::int64_t c : pos) total_pos += c;
  for (std::int64_t c : neg) total_neg += c;
  if (total_pos == 0 || total_neg == 0) return 0.0;
  double u = 0.0;
  std::int64_t below = 0;
  const std::size_t bins = std::min(pos.size(), neg.size());
  for (std::size_t b = 0; b < bins; ++b) {
    u += static_cast<double>(pos[b]) *
         (static_cast<double>(below) + 0.5 * static_cast<double>(neg[b]));
    below += neg[b];
  }
  return u / (static_cast<double>(total_pos) * static_cast<double>(total_neg));
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (on) g().any_data.store(true, std::memory_order_relaxed);
}

void configure(const Config& config) {
  TX_CHECK(config.reliability_bins >= 1 && config.score_bins >= 1,
           "pq::configure: bin counts must be >= 1");
  shard().streams.clear();
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  gl.config = config;
  gl.streams.clear();
}

Config config() {
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  return gl.config;
}

void reset() {
  shard().streams.clear();
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  gl.streams.clear();
  gl.any_data.store(enabled(), std::memory_order_relaxed);
}

bool has_data() {
  return enabled() || g().any_data.load(std::memory_order_relaxed);
}

StreamScope::StreamScope(std::string label) {
  ThreadShard& sh = shard();
  prev_ = std::move(sh.stream);
  sh.stream = std::move(label);
}

StreamScope::~StreamScope() { shard().stream = std::move(prev_); }

const std::string& current_stream() { return shard().stream; }

void record_prediction(float confidence, double predictive_entropy,
                       double aleatoric_entropy) {
  if (!enabled()) return;
  StreamStats& s = shard_stream();
  s.examples += 1;
  s.confidence_sum += confidence;
  s.predictive_entropy_sum += predictive_entropy;
  s.aleatoric_entropy_sum += aleatoric_entropy;
  const int bins = static_cast<int>(s.score_bins.size());
  int bin = static_cast<int>(confidence * bins);
  bin = std::clamp(bin, 0, bins - 1);
  s.score_bins[static_cast<std::size_t>(bin)] += 1;
  // Lock-free live mirror so /metrics scrapes see a tx_pq_* histogram
  // filling mid-run, not just the end-of-batch gauges.
  registry()
      .histogram("pq.confidence." + current_stream(),
                 {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
      .record(confidence);
}

void record_outcome(float confidence, bool correct, float p_true,
                    double brier) {
  if (!enabled()) return;
  StreamStats& s = shard_stream();
  s.labeled += 1;
  s.correct += correct ? 1 : 0;
  // Same clamp and float log as tx::metrics::nll — bitwise contract.
  s.nll_sum -= std::log(std::max(p_true, 1e-12f));
  s.brier_sum += brier;
  // Same bin rule as tx::metrics::calibration_curve: float*int truncation,
  // clamped so confidence == 1.0 lands in the top bin.
  const int bins = static_cast<int>(s.bin_count.size());
  int bin = static_cast<int>(confidence * bins);
  bin = std::clamp(bin, 0, bins - 1);
  s.bin_confidence_sum[static_cast<std::size_t>(bin)] += confidence;
  s.bin_accuracy_sum[static_cast<std::size_t>(bin)] += correct ? 1.0 : 0.0;
  s.bin_count[static_cast<std::size_t>(bin)] += 1;
}

void record_sample_pool(std::int64_t mc_samples, double variance_sum,
                        std::int64_t examples) {
  if (!enabled()) return;
  StreamStats& s = shard_stream();
  s.sample_batches += 1;
  s.mc_samples = mc_samples;
  s.variance_sum += variance_sum;
  s.variance_examples += examples;
}

void record_degraded_batch() {
  if (!enabled()) return;
  shard_stream().degraded_batches += 1;
}

void flush_thread_cache() { shard().flush(); }

std::map<std::string, StreamStats> stream_table() {
  shard().flush();
  Globals& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  return gl.streams;
}

std::int64_t examples(const std::string& stream) {
  return stats_for(stream).examples;
}

std::int64_t labeled(const std::string& stream) {
  return stats_for(stream).labeled;
}

double streaming_ece(const std::string& stream) {
  const StreamStats s = stats_for(stream);
  if (s.labeled == 0) return 0.0;
  // Bin-by-bin replica of tx::metrics::expected_calibration_error on the
  // calibration_curve of the same data: per-bin means then a count-weighted
  // |accuracy - confidence| sum, empty bins skipped.
  const double n = static_cast<double>(s.labeled);
  double ece = 0.0;
  for (std::size_t b = 0; b < s.bin_count.size(); ++b) {
    const std::int64_t count = s.bin_count[b];
    if (count == 0) continue;
    const double confidence =
        s.bin_confidence_sum[b] / static_cast<double>(count);
    const double accuracy = s.bin_accuracy_sum[b] / static_cast<double>(count);
    ece += (static_cast<double>(count) / n) * std::fabs(accuracy - confidence);
  }
  return ece;
}

double streaming_nll(const std::string& stream) {
  const StreamStats s = stats_for(stream);
  if (s.labeled == 0) return 0.0;
  return s.nll_sum / static_cast<double>(s.labeled);
}

double streaming_accuracy(const std::string& stream) {
  const StreamStats s = stats_for(stream);
  if (s.labeled == 0) return 0.0;
  return static_cast<double>(s.correct) / static_cast<double>(s.labeled);
}

double streaming_brier(const std::string& stream) {
  const StreamStats s = stats_for(stream);
  if (s.labeled == 0) return 0.0;
  return s.brier_sum / static_cast<double>(s.labeled);
}

double ood_auroc(const std::string& pos_stream,
                 const std::string& neg_stream) {
  return auroc_from_bins(stats_for(pos_stream).score_bins,
                         stats_for(neg_stream).score_bins);
}

std::string section_json(const std::string& indent) {
  if (!has_data()) return "";
  const Config cfg = config();
  const auto streams = stream_table();
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  const std::string in4 = in3 + "  ";

  std::string out = "{\n";
  out += in1 + "\"schema\": \"tx.pq.v1\",\n";
  out += in1 + "\"reliability_bins\": " + std::to_string(cfg.reliability_bins) +
         ",\n";
  out += in1 + "\"score_bins\": " + std::to_string(cfg.score_bins) + ",\n";

  out += in1 + "\"streams\": {";
  bool first = true;
  for (const auto& [label, s] : streams) {
    out += first ? "\n" : ",\n";
    first = false;
    out += in2 + "\"" + escape_json(label) + "\": {\n";
    out += in3 + "\"examples\": " + std::to_string(s.examples) + ",\n";
    out += in3 + "\"labeled\": " + std::to_string(s.labeled) + ",\n";
    out += in3 + "\"correct\": " + std::to_string(s.correct) + ",\n";
    if (s.examples > 0) {
      const double n = static_cast<double>(s.examples);
      const double pred = s.predictive_entropy_sum;
      const double alea = s.aleatoric_entropy_sum;
      out += in3 + "\"confidence_mean\": " +
             render_json_number(s.confidence_sum / n) + ",\n";
      out += in3 + "\"entropy\": {\n";
      out += in4 + "\"predictive_sum\": " + render_json_number(pred) + ",\n";
      out += in4 + "\"aleatoric_sum\": " + render_json_number(alea) + ",\n";
      out += in4 + "\"predictive_mean\": " + render_json_number(pred / n) +
             ",\n";
      out += in4 + "\"aleatoric_mean\": " + render_json_number(alea / n) +
             ",\n";
      // Epistemic (mutual information) is the difference of the sums, so
      // aleatoric_mean + epistemic_mean == predictive_mean to the rounding
      // of one division — validate_bench.py holds this to a ulp-scaled tol.
      out += in4 + "\"epistemic_mean\": " +
             render_json_number((pred - alea) / n) + "\n";
      out += in3 + "},\n";
    }
    if (s.labeled > 0) {
      out += in3 + "\"accuracy\": " +
             render_json_number(static_cast<double>(s.correct) /
                                static_cast<double>(s.labeled)) +
             ",\n";
      out += in3 + "\"nll\": " +
             render_json_number(s.nll_sum /
                                static_cast<double>(s.labeled)) +
             ",\n";
      out += in3 + "\"brier\": " +
             render_json_number(s.brier_sum /
                                static_cast<double>(s.labeled)) +
             ",\n";
      out += in3 + "\"ece\": " + render_json_number(streaming_ece(label)) +
             ",\n";
    }
    if (s.degraded_batches > 0) {
      // Emitted only when non-zero so snapshots from guard-free runs keep
      // their pre-guard schema byte-for-byte (golden baselines).
      out += in3 + "\"degraded_batches\": " +
             std::to_string(s.degraded_batches) + ",\n";
    }
    if (s.sample_batches > 0) {
      out += in3 + "\"mc_samples\": " + std::to_string(s.mc_samples) + ",\n";
      out += in3 + "\"sample_batches\": " + std::to_string(s.sample_batches) +
             ",\n";
      out += in3 + "\"across_sample_variance_mean\": " +
             render_json_number(
                 s.variance_examples > 0
                     ? s.variance_sum /
                           static_cast<double>(s.variance_examples)
                     : 0.0) +
             ",\n";
    }
    out += in3 + "\"reliability\": [";
    for (std::size_t b = 0; b < s.bin_count.size(); ++b) {
      if (b > 0) out += ", ";
      const double le = static_cast<double>(b + 1) /
                        static_cast<double>(cfg.reliability_bins);
      out += "{\"le\": " + render_json_number(le);
      out += ", \"count\": " + std::to_string(s.bin_count[b]);
      out += ", \"confidence_sum\": " +
             render_json_number(s.bin_confidence_sum[b]);
      out += ", \"accuracy_sum\": " + render_json_number(s.bin_accuracy_sum[b]);
      out += "}";
    }
    out += "],\n";
    out += in3 + "\"scores\": [";
    for (std::size_t b = 0; b < s.score_bins.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(s.score_bins[b]);
    }
    out += "]\n";
    out += in2 + "}";
  }
  out += (first ? "" : "\n" + in1) + "},\n";

  out += in1 + "\"ood\": {";
  first = true;
  for (const auto& [label, s] : streams) {
    const std::string prefix = test_prefix_of(label);
    if (prefix.empty()) continue;
    const auto ood_it = streams.find(prefix + "/ood");
    if (ood_it == streams.end()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    // OOD examples are the positives: an OOD detector scores *low*
    // max-probability as suspicious, so AUROC is P(test score > ood score).
    out += in2 + "\"" + escape_json(prefix) + "\": " +
           render_json_number(
               auroc_from_bins(s.score_bins, ood_it->second.score_bins));
  }
  out += (first ? "" : "\n" + in1) + "}\n";
  out += indent + "}";
  return out;
}

#endif  // !TX_OBS_DISABLED

void publish(MetricsRegistry& reg) {
  const auto streams = stream_table();
  reg.gauge("pq.streams").set(static_cast<double>(streams.size()));
  for (const auto& [label, s] : streams) {
    reg.gauge("pq.examples." + label).set(static_cast<double>(s.examples));
    if (s.examples > 0) {
      const double n = static_cast<double>(s.examples);
      reg.gauge("pq.confidence_mean." + label).set(s.confidence_sum / n);
      reg.gauge("pq.entropy.predictive." + label)
          .set(s.predictive_entropy_sum / n);
      reg.gauge("pq.entropy.aleatoric." + label)
          .set(s.aleatoric_entropy_sum / n);
      reg.gauge("pq.entropy.epistemic." + label)
          .set((s.predictive_entropy_sum - s.aleatoric_entropy_sum) / n);
    }
    reg.gauge("pq.labeled." + label).set(static_cast<double>(s.labeled));
    if (s.labeled > 0) {
      reg.gauge("pq.accuracy." + label).set(streaming_accuracy(label));
      reg.gauge("pq.nll." + label).set(streaming_nll(label));
      reg.gauge("pq.brier." + label).set(streaming_brier(label));
      reg.gauge("pq.ece." + label).set(streaming_ece(label));
    }
    if (s.sample_batches > 0) {
      reg.gauge("pq.mc_samples." + label)
          .set(static_cast<double>(s.mc_samples));
    }
    if (s.degraded_batches > 0) {
      reg.gauge("pq.degraded_batches." + label)
          .set(static_cast<double>(s.degraded_batches));
    }
    const std::string prefix = test_prefix_of(label);
    if (!prefix.empty() && streams.count(prefix + "/ood") > 0) {
      reg.gauge("pq.ood_auroc." + prefix)
          .set(ood_auroc(label, prefix + "/ood"));
    }
  }
}

}  // namespace tx::obs::pq
