#include "obs/event_sink.h"

#include <cmath>
#include <cstdio>

#include "obs/mem.h"
#include "obs/prof.h"

namespace tx::obs {

std::string render_json_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan literals; emit null like most telemetry pipelines.
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

std::string render_number(double v) { return render_json_number(v); }

std::string render_series(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += render_number(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Event& Event::set(const std::string& key, double v) {
  fields_.emplace_back(key, render_number(v));
  return *this;
}

Event& Event::set(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

Event& Event::set(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + escape_json(v) + "\"");
  return *this;
}

Event& Event::set(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

std::string Event::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + escape_json(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

EventSink::EventSink(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? std::ios::app : std::ios::trunc) {
  if (!out_.is_open()) {
    ok_ = false;
    registry().counter("obs.sink_errors").add(1);
  }
}

void EventSink::emit(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  out_ << e.to_json() << '\n';
  out_.flush();
  if (!out_.good()) {
    ok_ = false;
    registry().counter("obs.sink_errors").add(1);
    return;
  }
  ++events_written_;
}

bool EventSink::write_snapshot(
    const std::string& path, const std::string& bench_name,
    MetricsRegistry& reg,
    const std::map<std::string, std::vector<double>>& series) {
  mem::publish(reg);
  const std::string prof_section = prof::section_json("  ");
  if (!prof_section.empty()) prof::publish(reg);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }

  out << "{\n";
  out << "  \"bench\": \"" << escape_json(bench_name) << "\",\n";
  out << "  \"schema\": \"tx.obs.v1\",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : reg.counters()) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : reg.gauges()) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
        << "\": " << render_number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(name) << "\": {";
    out << "\"count\": " << h.count << ", \"sum\": " << render_number(h.sum)
        << ", \"mean\": " << render_number(h.mean())
        << ", \"min\": " << render_number(h.min)
        << ", \"max\": " << render_number(h.max)
        << ", \"p50\": " << render_number(h.quantile(0.5))
        << ", \"p90\": " << render_number(h.quantile(0.9))
        << ", \"p99\": " << render_number(h.quantile(0.99))
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": "
          << (i < h.bounds.size() ? render_number(h.bounds[i])
                                  : std::string("\"inf\""))
          << ", \"count\": " << h.bucket_counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"series\": {";
  first = true;
  for (const auto& [name, values] : series) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
        << "\": " << render_series(values);
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  // The profiler section is optional so snapshots from non-profiled runs
  // stay byte-identical to the pre-prof schema.
  if (!prof_section.empty()) {
    out << ",\n  \"prof\": " << prof_section << "\n";
  } else {
    out << "\n";
  }
  out << "}\n";
  out.flush();
  if (!out.good()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  return true;
}

}  // namespace tx::obs
