#include "obs/event_sink.h"

#include <cmath>
#include <cstdio>

#include "obs/manifest.h"
#include "obs/mem.h"
#include "obs/pq.h"
#include "obs/prof.h"

namespace tx::obs {

std::string render_json_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan literals; emit null like most telemetry pipelines.
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

std::string render_number(double v) { return render_json_number(v); }

std::string render_series(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += render_number(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Event& Event::set(const std::string& key, double v) {
  fields_.emplace_back(key, render_number(v));
  return *this;
}

Event& Event::set(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

Event& Event::set(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + escape_json(v) + "\"");
  return *this;
}

Event& Event::set(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

std::string Event::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + escape_json(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

EventSink::EventSink(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? std::ios::app : std::ios::trunc) {
  if (!out_.is_open()) {
    ok_ = false;
    registry().counter("obs.sink_errors").add(1);
  }
}

void EventSink::emit(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  out_ << e.to_json() << '\n';
  out_.flush();
  if (!out_.good()) {
    ok_ = false;
    registry().counter("obs.sink_errors").add(1);
    return;
  }
  ++events_written_;
}

std::string EventSink::render_snapshot_json(
    const std::string& bench_name, MetricsRegistry& reg,
    const std::map<std::string, std::vector<double>>& series) {
  mem::publish(reg);
  const std::string prof_section = prof::section_json("  ");
  if (!prof_section.empty()) prof::publish(reg);
  const std::string pq_section = pq::section_json("  ");
  if (!pq_section.empty()) pq::publish(reg);

  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + escape_json(bench_name) + "\",\n";
  out += "  \"schema\": \"tx.obs.v1\",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : reg.counters()) {
    out += (first ? "\n" : ",\n");
    out += "    \"" + escape_json(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += (first ? "" : "\n  ");
  out += "},\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : reg.gauges()) {
    out += (first ? "\n" : ",\n");
    out += "    \"" + escape_json(name) + "\": " + render_number(value);
    first = false;
  }
  out += (first ? "" : "\n  ");
  out += "},\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    out += (first ? "\n" : ",\n");
    out += "    \"" + escape_json(name) + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + render_number(h.sum);
    out += ", \"mean\": " + render_number(h.mean());
    out += ", \"min\": " + render_number(h.min);
    out += ", \"max\": " + render_number(h.max);
    out += ", \"p50\": " + render_number(h.quantile(0.5));
    out += ", \"p90\": " + render_number(h.quantile(0.9));
    out += ", \"p99\": " + render_number(h.quantile(0.99));
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      // Log-bucketed histograms carry an explicit +inf overflow bound;
      // fixed-bucket ones leave the final overflow bucket boundless. Both
      // render as the string "inf" (JSON numbers cannot spell infinity).
      const bool finite_bound =
          i < h.bounds.size() && std::isfinite(h.bounds[i]);
      out += "{\"le\": ";
      out += finite_bound ? render_number(h.bounds[i]) : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(h.bucket_counts[i]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += (first ? "" : "\n  ");
  out += "},\n";

  out += "  \"series\": {";
  first = true;
  for (const auto& [name, values] : series) {
    out += (first ? "\n" : ",\n");
    out += "    \"" + escape_json(name) + "\": " + render_series(values);
    first = false;
  }
  out += (first ? "" : "\n  ");
  out += "},\n";

  // Run provenance — which build/SIMD level/thread count/environment
  // produced these numbers. bench_diff.py excludes it from metric diffs.
  out += "  \"manifest\": " + manifest::json("  ");

  // The profiler and predictive-quality sections are optional so snapshots
  // from runs without them keep their prior shape.
  if (!prof_section.empty()) {
    out += ",\n  \"prof\": " + prof_section;
  }
  if (!pq_section.empty()) {
    out += ",\n  \"pq\": " + pq_section;
  }
  out += "\n}\n";
  return out;
}

bool EventSink::write_snapshot(
    const std::string& path, const std::string& bench_name,
    MetricsRegistry& reg,
    const std::map<std::string, std::vector<double>>& series) {
  const std::string doc = render_snapshot_json(bench_name, reg, series);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  out << doc;
  out.flush();
  if (!out.good()) {
    registry().counter("obs.sink_errors").add(1);
    return false;
  }
  return true;
}

}  // namespace tx::obs
