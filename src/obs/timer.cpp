#include "obs/timer.h"

#include <vector>

namespace tx::obs {

namespace {
thread_local std::vector<const std::string*> g_spans;
}  // namespace

std::size_t span_depth() { return g_spans.size(); }

#ifndef TX_OBS_DISABLED

ScopedTimer::ScopedTimer(std::string name) : armed_(enabled()) {
  if (!armed_) return;
  if (g_spans.empty()) {
    path_ = std::move(name);
  } else {
    path_ = *g_spans.back() + "/" + name;
  }
  g_spans.push_back(&path_);
  start_ = now_seconds();
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  const double seconds = now_seconds() - start_;
  TX_CHECK(!g_spans.empty() && g_spans.back() == &path_,
           "span stack corrupted (unbalanced ScopedTimer scopes)");
  g_spans.pop_back();
  registry().histogram("span." + path_).record(seconds);
}

#endif

}  // namespace tx::obs
