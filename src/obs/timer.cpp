#include "obs/timer.h"

#include <vector>

#include "obs/event_sink.h"
#include "obs/hist.h"
#include "obs/mem.h"
#include "obs/trace.h"

namespace tx::obs {

namespace {
thread_local std::vector<const std::string*> g_spans;
// Span-path prefix inherited from another thread (tx::par installs the
// submitter's path here around each worker task).
thread_local std::string g_span_base;
}  // namespace

std::size_t span_depth() { return g_spans.size(); }

std::string current_span_path() {
  return g_spans.empty() ? g_span_base : *g_spans.back();
}

namespace detail {
std::string set_span_base(std::string base) {
  std::string prev = std::move(g_span_base);
  g_span_base = std::move(base);
  return prev;
}
}  // namespace detail

#ifndef TX_OBS_DISABLED

ScopedTimer::ScopedTimer(std::string name, std::string trace_args)
    : armed_(enabled()) {
  if (!armed_) return;
  const std::size_t leaf_len = name.size();
  if (!g_spans.empty()) {
    path_ = *g_spans.back() + "/" + name;
  } else if (!g_span_base.empty()) {
    path_ = g_span_base + "/" + name;
  } else {
    path_ = std::move(name);
  }
  leaf_pos_ = path_.size() - leaf_len;
  g_spans.push_back(&path_);
  tracing_ = tracing();
  if (tracing_) {
    live_bytes0_ = mem::live_bytes();
    trace_begin(leaf(), std::move(trace_args));
  }
  start_ = now_seconds();
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  const double seconds = now_seconds() - start_;
  TX_CHECK(!g_spans.empty() && g_spans.back() == &path_,
           "span stack corrupted (unbalanced ScopedTimer scopes)");
  g_spans.pop_back();
  if (tracing_) {
    const std::int64_t net = mem::live_bytes() - live_bytes0_;
    Event end_args;
    end_args.set("net_bytes", net);
    trace_end(leaf(), end_args.to_json());
    trace_counter("mem.live_bytes",
                  static_cast<double>(mem::live_bytes()));
    // Per-span net-allocation attribution; trace-mode only so the metrics
    // hot path stays one histogram record per span.
    registry()
        .histogram("mem.span." + path_,
                   Histogram::exponential_bounds(1024.0, 4.0, 12))
        .record(static_cast<double>(net));
  }
  // Log-bucketed (obs/hist.h) so per-worker span durations merge exactly
  // across tx::par workers and quantiles stay mergeable.
  registry().log_histogram("span." + path_).record(seconds);
}

#endif

}  // namespace tx::obs
