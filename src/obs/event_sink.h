// Structured JSONL event stream + BENCH_*.json snapshot writer.
//
// A sink appends one JSON object per line to a file (step, loss, grad-norm,
// accept-prob, wall-time, ... — whatever fields the caller sets); at the end
// of a run EventSink::write_snapshot dumps the metrics registry plus any
// per-step series into the single-document schema the committed BENCH_*.json
// files use (see docs/observability.md for both schemas).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace tx::obs {

/// JSON string escaping (quotes, backslashes, control characters).
std::string escape_json(const std::string& s);

/// Render a double as a JSON number ("%.17g"); non-finite values render as
/// null, JSON's only honest spelling for them.
std::string render_json_number(double v);

/// One structured record: ordered key/value pairs rendered as a JSON object.
/// Values are stored pre-rendered (numbers round-trip via %.17g).
class Event {
 public:
  Event& set(const std::string& key, double v);
  Event& set(const std::string& key, std::int64_t v);
  Event& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Event& set(const std::string& key, const std::string& v);
  Event& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Event& set(const std::string& key, bool v);

  std::size_t size() const { return fields_.size(); }
  std::string to_json() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> rendered
};

/// Append-only JSONL file writer. Thread-safe; each emit writes (and flushes)
/// one line so a crashed run still leaves a readable prefix.
///
/// I/O failures never throw: a sink that cannot open its file (or whose
/// stream goes bad mid-run) reports ok() == false, drops further emits, and
/// bumps the "obs.sink_errors" counter once per failure transition.
class EventSink {
 public:
  explicit EventSink(const std::string& path, bool append = false);

  /// False once the underlying stream failed (open or write). Check after
  /// construction and after the last emit of a run.
  bool ok() const { return ok_; }

  void emit(const Event& e);
  std::int64_t events_written() const { return events_written_; }
  const std::string& path() const { return path_; }

  /// Dump a registry snapshot (counters, gauges, histogram summaries with
  /// quantiles from util quantile_of/median_of) plus named per-step series
  /// as one JSON document — the BENCH_*.json schema. Memory-accounting
  /// gauges (obs/mem.h) are published into `reg` first so every snapshot
  /// carries them. Returns false (and counts obs.sink_errors) on I/O
  /// failure instead of leaving a silently truncated file behind.
  static bool write_snapshot(
      const std::string& path, const std::string& bench_name,
      MetricsRegistry& reg = registry(),
      const std::map<std::string, std::vector<double>>& series = {});

  /// The same tx.obs.v1 document as a string — what write_snapshot writes
  /// and what the live telemetry server (obs/live.h) serves on /snapshot.
  /// Includes the run manifest (obs/manifest.h) and, when the profiler ran,
  /// the "prof" section.
  static std::string render_snapshot_json(
      const std::string& bench_name, MetricsRegistry& reg = registry(),
      const std::map<std::string, std::vector<double>>& series = {});

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mu_;
  std::int64_t events_written_ = 0;
  bool ok_ = true;
};

}  // namespace tx::obs
