#include "obs/mem.h"

#include <atomic>

#include "obs/registry.h"

namespace tx::obs::mem {

#ifndef TX_OBS_DISABLED

namespace {

std::atomic<std::int64_t> g_live_tensors{0};
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};
std::atomic<std::int64_t> g_total_allocated{0};

void raise_peak(std::int64_t candidate) {
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (peak < candidate &&
         !g_peak_bytes.compare_exchange_weak(peak, candidate,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

void on_tensor_create() {
  g_live_tensors.fetch_add(1, std::memory_order_relaxed);
}

void on_tensor_destroy() {
  g_live_tensors.fetch_sub(1, std::memory_order_relaxed);
}

void on_bytes_delta(std::int64_t delta) {
  if (delta == 0) return;
  const std::int64_t live =
      g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) {
    g_total_allocated.fetch_add(delta, std::memory_order_relaxed);
    raise_peak(live);
  }
}

std::int64_t live_tensors() {
  return g_live_tensors.load(std::memory_order_relaxed);
}

std::int64_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

std::int64_t peak_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

std::int64_t total_allocated_bytes() {
  return g_total_allocated.load(std::memory_order_relaxed);
}

void reset_peak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

#endif  // !TX_OBS_DISABLED

void publish(MetricsRegistry& reg) {
  reg.gauge("mem.live_tensors").set(static_cast<double>(live_tensors()));
  reg.gauge("mem.live_bytes").set(static_cast<double>(live_bytes()));
  reg.gauge("mem.peak_bytes").set(static_cast<double>(peak_bytes()));
  reg.gauge("mem.total_allocated_bytes")
      .set(static_cast<double>(total_allocated_bytes()));
}

}  // namespace tx::obs::mem
