#include "tensor/grad_check.h"

#include <cmath>

namespace tx {

double max_grad_error(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps) {
  for (auto& in : inputs) {
    TX_CHECK(in.is_leaf(), "grad_check inputs must be leaves");
    in.set_requires_grad(true);
    in.zero_grad();
  }
  Tensor out = fn(inputs);
  TX_CHECK(out.numel() == 1, "grad_check function must return a scalar");
  out.backward();

  double worst = 0.0;
  for (auto& in : inputs) {
    const Tensor analytic = in.grad();
    for (std::int64_t i = 0; i < in.numel(); ++i) {
      const float original = in.at(i);
      double plus, minus;
      {
        NoGradGuard ng;
        in.at(i) = original + eps;
        plus = fn(inputs).item();
        in.at(i) = original - eps;
        minus = fn(inputs).item();
        in.at(i) = original;
      }
      const double numeric = (plus - minus) / (2.0 * static_cast<double>(eps));
      const double err = std::fabs(numeric - static_cast<double>(analytic.at(i)));
      // Normalize by gradient magnitude so large gradients aren't penalized.
      const double scale =
          std::max(1.0, std::fabs(numeric) + std::fabs(analytic.at(i)));
      worst = std::max(worst, err / scale);
    }
  }
  return worst;
}

bool grad_check(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                std::vector<Tensor> inputs, float eps, double tol) {
  return max_grad_error(fn, std::move(inputs), eps) <= tol;
}

}  // namespace tx
