// tx::alloc — a per-step buffer-recycling allocator for autograd temporaries.
//
// Motivation: one fig1 SVI/HMC run moves gigabytes through the heap while its
// live set is a couple of megabytes — every op allocates a fresh
// std::vector<float> that dies microseconds later. This module recycles those
// buffers across ops *within* an inference step instead of round-tripping
// them through the heap.
//
// Mechanics:
//   * `StepScope` marks a step region (SVI::step, one HMC/NUTS leapfrog
//     trajectory). While at least one StepScope is alive anywhere in the
//     process, recycling is active for every thread.
//   * `buffer(n)` / `buffer_uninit(n)` return an n-element vector, served
//     from the calling thread's pool when a buffer of capacity in [n, 2n]
//     is available, otherwise freshly heap-allocated. Pools are strictly
//     thread-local: no locks, no cross-thread reuse, and — because buffer
//     *values* are always fully written by the caller — recycling can never
//     change numerical results or their thread-count invariance.
//   * When a TensorImpl dies inside a step region it *donates* its data/grad
//     vectors back to the pool instead of freeing them.
//
// Accounting contract (keeps obs::mem truthful and obs::prof churn coverage
// exactly 1.0): obs::mem/obs::prof observe HEAP traffic, not logical tensor
// lifetimes.
//   * Fresh allocation (pool miss): reported by TensorImpl::account() as a
//     positive mem delta and a churn event, exactly as before this module.
//   * Pool hit: the pool's ledger already owns those bytes as live; acquiring
//     transfers ownership to the tensor via a thread-local *credit* that
//     account() consumes instead of re-reporting. Net mem delta: zero, no
//     churn event. live_bytes stays exact.
//   * Donation: bytes move from tensor accounting into the pool ledger; no
//     mem delta (they are still resident).
//   * Pool trim / thread-pool destruction: reports the ledger as a negative
//     mem delta (the bytes really return to the heap).
// Invariant: mem.live_bytes == sum of tensor-accounted bytes + pool ledgers,
// and mem.total_allocated_bytes grows only on real heap allocations.
//
// Buffers larger than kMaxPooledBytes bypass the pool entirely (heap
// fallback), and each thread pool is capped; donations beyond the cap are
// freed normally.
//
// TYXE_ARENA=off disables recycling process-wide; set_enabled() does the
// same programmatically for tests.
#pragma once

#include <cstdint>
#include <vector>

namespace tx::alloc {

// RAII marker for one inference step; nestable and cheap. While any scope is
// alive, buffer() may recycle and TensorImpl destruction donates.
class StepScope {
 public:
  StepScope();
  ~StepScope();
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;
};

// True when recycling is enabled and at least one StepScope is alive.
bool active();

// Process-wide kill switch (also via env TYXE_ARENA=off). Disabling does not
// free already-pooled buffers; call trim_thread_pool() for that.
void set_enabled(bool on);
bool enabled();

// An n-element vector, recycled when possible. buffer() zero-fills;
// buffer_uninit() leaves recycled contents unspecified and must only be used
// when the caller overwrites all n elements before any read.
std::vector<float> buffer(std::int64_t n);
std::vector<float> buffer_uninit(std::int64_t n);

// Offer a dying vector to the calling thread's pool. On acceptance the
// vector is moved out and its capacity bytes join the pool ledger; the
// caller must treat those bytes as still live (skip its negative mem
// report). Returns the accepted byte count, or 0 if rejected (inactive,
// out of size bounds, or pool at capacity) — then `v` is left untouched and
// the caller frees/reports as usual.
std::int64_t donate(std::vector<float>& v);

// Consume up to `want` bytes of this thread's acquisition credit. Called by
// TensorImpl::account() so recycled capacity is not double-reported.
std::int64_t consume_credit(std::int64_t want);

// Free every buffer pooled by the calling thread, reporting the released
// bytes to obs::mem. Tests use this to return to an exact-live_bytes state.
void trim_thread_pool();

struct Stats {
  std::int64_t hits = 0;           // buffer() served from the pool
  std::int64_t misses = 0;         // buffer() fell back to the heap
  std::int64_t donated = 0;        // vectors accepted into the pool
  std::int64_t rejected = 0;       // donations declined
  std::int64_t pooled_bytes = 0;   // current ledger (resident, idle)
  std::int64_t pooled_buffers = 0; // current buffer count
};
// Counters for the calling thread's pool.
Stats thread_stats();
void reset_thread_stats();

// Size bounds for pooling; larger requests/donations always use the heap.
inline constexpr std::int64_t kMaxPooledBytes = std::int64_t{16} << 20;

}  // namespace tx::alloc
