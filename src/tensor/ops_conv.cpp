// NCHW convolution and pooling, implemented as self-contained autograd ops
// with hand-written im2col / col2im so the backward pass needs no view
// gymnastics.
//
// conv2d fans out over images via tx::par above a flop threshold. The image
// decomposition writes disjoint output (and gx) ranges; the weight gradient
// uses per-image partial buffers folded in image order, which reproduces the
// sequential accumulation bit-for-bit (each image contributes exactly one
// float per gw cell), so results match at every TYXE_NUM_THREADS.
//
// The inner gemms run on tx::simd kernels (axpy_n / dot8), which evaluate the
// same canonical arithmetic at every dispatch level, so conv results are also
// bitwise identical across TYXE_SIMD settings. Output buffers come from
// tx::alloc; per-worker im2col scratch stays plain (never tensor-adopted).
#include <algorithm>
#include <limits>

#include "obs/event_sink.h"
#include "obs/prof.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tx {

namespace {

/// Flops (n * patch * spatial * oc) above which conv2d fans out.
constexpr std::int64_t kConvParThreshold = std::int64_t{1} << 16;
/// Per-image gw partials are skipped above this many floats (n * |W|): the
/// gate is a pure function of shapes, so determinism is unaffected.
constexpr std::int64_t kConvPartialCap = std::int64_t{1} << 22;

struct ConvDims {
  std::int64_t n, ic, ih, iw;      // input
  std::int64_t oc, kh, kw;         // kernel
  std::int64_t oh, ow;             // output spatial
  std::int64_t stride, padding;
};

ConvDims conv_dims(const Tensor& x, const Tensor& w, std::int64_t stride,
                   std::int64_t padding) {
  TX_CHECK(x.rank() == 4 && w.rank() == 4, "conv2d expects NCHW x and OIHW w");
  ConvDims d{};
  d.n = x.dim(0);
  d.ic = x.dim(1);
  d.ih = x.dim(2);
  d.iw = x.dim(3);
  d.oc = w.dim(0);
  d.kh = w.dim(2);
  d.kw = w.dim(3);
  d.stride = stride;
  d.padding = padding;
  TX_CHECK(w.dim(1) == d.ic, "conv2d: weight in-channels ", w.dim(1),
           " != input channels ", d.ic);
  TX_CHECK(stride >= 1 && padding >= 0, "conv2d: bad stride/padding");
  d.oh = (d.ih + 2 * padding - d.kh) / stride + 1;
  d.ow = (d.iw + 2 * padding - d.kw) / stride + 1;
  TX_CHECK(d.oh > 0 && d.ow > 0, "conv2d: empty output");
  return d;
}

/// Expand one image (ic, ih, iw) into columns (ic*kh*kw, oh*ow).
void im2col(const float* img, const ConvDims& d, float* cols) {
  const std::int64_t patch = d.ic * d.kh * d.kw;
  const std::int64_t spatial = d.oh * d.ow;
  for (std::int64_t c = 0; c < d.ic; ++c) {
    for (std::int64_t ky = 0; ky < d.kh; ++ky) {
      for (std::int64_t kx = 0; kx < d.kw; ++kx) {
        const std::int64_t row = (c * d.kh + ky) * d.kw + kx;
        float* dst = cols + row * spatial;
        for (std::int64_t oy = 0; oy < d.oh; ++oy) {
          const std::int64_t iy = oy * d.stride + ky - d.padding;
          for (std::int64_t ox = 0; ox < d.ow; ++ox) {
            const std::int64_t ix = ox * d.stride + kx - d.padding;
            const bool inside = iy >= 0 && iy < d.ih && ix >= 0 && ix < d.iw;
            dst[oy * d.ow + ox] =
                inside ? img[(c * d.ih + iy) * d.iw + ix] : 0.0f;
          }
        }
      }
    }
  }
  (void)patch;
}

/// Scatter columns (ic*kh*kw, oh*ow) back into an image, accumulating.
void col2im(const float* cols, const ConvDims& d, float* img) {
  const std::int64_t spatial = d.oh * d.ow;
  for (std::int64_t c = 0; c < d.ic; ++c) {
    for (std::int64_t ky = 0; ky < d.kh; ++ky) {
      for (std::int64_t kx = 0; kx < d.kw; ++kx) {
        const std::int64_t row = (c * d.kh + ky) * d.kw + kx;
        const float* src = cols + row * spatial;
        for (std::int64_t oy = 0; oy < d.oh; ++oy) {
          const std::int64_t iy = oy * d.stride + ky - d.padding;
          if (iy < 0 || iy >= d.ih) continue;
          for (std::int64_t ox = 0; ox < d.ow; ++ox) {
            const std::int64_t ix = ox * d.stride + kx - d.padding;
            if (ix < 0 || ix >= d.iw) continue;
            img[(c * d.ih + iy) * d.iw + ix] += src[oy * d.ow + ox];
          }
        }
      }
    }
  }
}

/// C(M,N) += A(M,K) * B(K,N). Per output cell, k contributions accumulate in
/// ascending-p order (each axpy adds exactly one product per cell).
void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      simd::axpy_n(arow[p], b + p * n, crow, n);
    }
  }
}

/// C(M,N) += A(K,M)^T * B(K,N). Per cell, p ascends outermost, so the
/// accumulation order per cell is ascending-p, same as gemm_acc.
void gemm_at_acc(const float* a, const float* b, float* c, std::int64_t k,
                 std::int64_t m, std::int64_t n) {
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      simd::axpy_n(arow[i], brow, c + i * n, n);
    }
  }
}

/// C(M,N) += A(M,K) * B(N,K)^T. Each cell is one canonical 8-lane dot.
void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      crow[j] += simd::dot8(arow, b + j * k, k);
    }
  }
}

/// Trace-slice args for a convolution (trace-mode-only cost).
std::string conv_trace_args(const ConvDims& d) {
  const std::int64_t patch = d.ic * d.kh * d.kw;
  obs::Event e;
  e.set("n", d.n).set("ic", d.ic).set("oc", d.oc);
  e.set("kh", d.kh).set("kw", d.kw).set("oh", d.oh).set("ow", d.ow);
  e.set("flops", 2 * d.n * patch * d.oh * d.ow * d.oc);
  return e.to_json();
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t stride, std::int64_t padding) {
  const ConvDims d = conv_dims(x, weight, stride, padding);
  const std::int64_t patch = d.ic * d.kh * d.kw;
  const std::int64_t spatial = d.oh * d.ow;
  std::vector<float> out = alloc::buffer(d.n * d.oc * spatial);
  const bool has_bias = bias.defined();
  const std::int64_t out_numel = d.n * d.oc * spatial;
  {
    // 2·n·patch·spatial·oc gemm flops, plus one add per output for the bias;
    // traffic model: x/w read once, out written once, bias adds a re-walk of
    // the output plus the bias vector itself.
    obs::prof::KernelScope prof(
        "conv2d",
        2 * d.n * patch * spatial * d.oc + (has_bias ? d.n * d.oc * spatial : 0),
        4 * (x.numel() + weight.numel() + out_numel) +
            (has_bias ? 4 * (d.oc + out_numel) : 0));
    {
      obs::ScopedTimer span(
          "par.conv2d", obs::tracing() ? conv_trace_args(d) : std::string());
      const std::int64_t flops = d.n * patch * spatial * d.oc;
      const std::int64_t grain = flops < kConvParThreshold ? d.n : 1;
      par::parallel_for(0, d.n, grain, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<float> cols(static_cast<std::size_t>(patch * spatial));
        for (std::int64_t img = i0; img < i1; ++img) {
          im2col(x.data() + img * d.ic * d.ih * d.iw, d, cols.data());
          // weight (oc, patch) * cols (patch, spatial) -> out (oc, spatial)
          gemm_acc(weight.data(), cols.data(),
                   out.data() + img * d.oc * spatial, d.oc, patch, spatial);
        }
      });
    }
    if (bias.defined()) {
      TX_CHECK(bias.rank() == 1 && bias.dim(0) == d.oc, "conv2d: bias mismatch");
      for (std::int64_t img = 0; img < d.n; ++img) {
        for (std::int64_t c = 0; c < d.oc; ++c) {
          float* dst = out.data() + (img * d.oc + c) * spatial;
          const float bv = bias.at(c);
          for (std::int64_t s = 0; s < spatial; ++s) dst[s] += bv;
        }
      }
    }
  }
  std::vector<Tensor> inputs{x, weight};
  if (has_bias) inputs.push_back(bias);
  return make_tensor_from_op(
      "conv2d", Shape{d.n, d.oc, d.oh, d.ow}, std::move(out), inputs,
      [x, weight, d, patch, spatial, has_bias](const Tensor& g) {
        Tensor gx = zeros(x.shape());
        Tensor gw = zeros(weight.shape());
        obs::ScopedTimer span(
            "par.conv2d_bwd",
            obs::tracing() ? conv_trace_args(d) : std::string());
        const std::int64_t wsize = weight.numel();
        const std::int64_t g_numel = d.n * d.oc * spatial;
        // Two gemms per image (dW and dcols): 4·n·patch·spatial·oc flops;
        // g is read by both products, x/w are each read once and their
        // gradients written once. The bias grad re-reads g and writes gb.
        obs::prof::KernelScope prof(
            "conv2d_bwd",
            4 * d.n * patch * spatial * d.oc +
                (has_bias ? d.n * d.oc * spatial : 0),
            4 * (2 * x.numel() + 2 * wsize + 2 * g_numel) +
                (has_bias ? 4 * (g_numel + d.oc) : 0));
        const std::int64_t flops = d.n * patch * spatial * d.oc;
        const bool fan_out = d.n > 1 && flops >= kConvParThreshold &&
                             d.n * wsize <= kConvPartialCap;
        if (fan_out) {
          // Disjoint per-image gx plus per-image gw partials; the fold below
          // replays the sequential per-image accumulation order exactly.
          std::vector<float> gw_parts(
              static_cast<std::size_t>(d.n * wsize), 0.0f);
          par::parallel_for(0, d.n, 1, [&](std::int64_t i0, std::int64_t i1) {
            std::vector<float> cols(static_cast<std::size_t>(patch * spatial));
            std::vector<float> gcols(static_cast<std::size_t>(patch * spatial));
            for (std::int64_t img = i0; img < i1; ++img) {
              const float* gout = g.data() + img * d.oc * spatial;
              im2col(x.data() + img * d.ic * d.ih * d.iw, d, cols.data());
              gemm_bt_acc(gout, cols.data(), gw_parts.data() + img * wsize,
                          d.oc, spatial, patch);
              std::fill(gcols.begin(), gcols.end(), 0.0f);
              gemm_at_acc(weight.data(), gout, gcols.data(), d.oc, patch,
                          spatial);
              col2im(gcols.data(), d, gx.data() + img * d.ic * d.ih * d.iw);
            }
          });
          float* pw = gw.data();
          for (std::int64_t img = 0; img < d.n; ++img) {
            simd::add_n(pw, gw_parts.data() + img * wsize, pw, wsize);
          }
        } else {
          std::vector<float> cols(static_cast<std::size_t>(patch * spatial));
          std::vector<float> gcols(static_cast<std::size_t>(patch * spatial));
          for (std::int64_t img = 0; img < d.n; ++img) {
            const float* gout = g.data() + img * d.oc * spatial;
            // dW (oc, patch) += gout (oc, spatial) * cols (patch, spatial)^T
            im2col(x.data() + img * d.ic * d.ih * d.iw, d, cols.data());
            gemm_bt_acc(gout, cols.data(), gw.data(), d.oc, spatial, patch);
            // dcols (patch, spatial) = W (oc, patch)^T * gout (oc, spatial)
            std::fill(gcols.begin(), gcols.end(), 0.0f);
            gemm_at_acc(weight.data(), gout, gcols.data(), d.oc, patch,
                        spatial);
            col2im(gcols.data(), d, gx.data() + img * d.ic * d.ih * d.iw);
          }
        }
        std::vector<Tensor> grads{gx, gw};
        if (has_bias) {
          Tensor gb = zeros(Shape{d.oc});
          for (std::int64_t img = 0; img < d.n; ++img) {
            for (std::int64_t c = 0; c < d.oc; ++c) {
              const float* src = g.data() + (img * d.oc + c) * spatial;
              float acc = 0.0f;
              for (std::int64_t s = 0; s < spatial; ++s) acc += src[s];
              gb.at(c) += acc;
            }
          }
          grads.push_back(gb);
        }
        return grads;
      });
}

Tensor max_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
  TX_CHECK(x.rank() == 4, "max_pool2d expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const std::int64_t oh = (ih - kernel) / stride + 1;
  const std::int64_t ow = (iw - kernel) / stride + 1;
  TX_CHECK(oh > 0 && ow > 0, "max_pool2d: empty output");
  const std::int64_t planes = n * c;
  std::vector<float> out = alloc::buffer_uninit(planes * oh * ow);
  std::vector<std::int64_t> arg(out.size());
  const float* px = x.data();
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* plane = px + p * ih * iw;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = -1;
        for (std::int64_t ky = 0; ky < kernel; ++ky) {
          for (std::int64_t kx = 0; kx < kernel; ++kx) {
            const std::int64_t iy = oy * stride + ky;
            const std::int64_t ix = ox * stride + kx;
            const float v = plane[iy * iw + ix];
            if (v > best) {
              best = v;
              best_idx = p * ih * iw + iy * iw + ix;
            }
          }
        }
        const auto o = static_cast<std::size_t>(p * oh * ow + oy * ow + ox);
        out[o] = best;
        arg[o] = best_idx;
      }
    }
  }
  const Shape in_shape = x.shape();
  return make_tensor_from_op(
      "max_pool2d", Shape{n, c, oh, ow}, std::move(out), {x},
      [in_shape, arg](const Tensor& g) {
        Tensor gx = zeros(in_shape);
        for (std::size_t o = 0; o < arg.size(); ++o) {
          gx.at(arg[o]) += g.at(static_cast<std::int64_t>(o));
        }
        return std::vector<Tensor>{gx};
      });
}

Tensor avg_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
  TX_CHECK(x.rank() == 4, "avg_pool2d expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const std::int64_t oh = (ih - kernel) / stride + 1;
  const std::int64_t ow = (iw - kernel) / stride + 1;
  TX_CHECK(oh > 0 && ow > 0, "avg_pool2d: empty output");
  const std::int64_t planes = n * c;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  std::vector<float> out = alloc::buffer_uninit(planes * oh * ow);
  const float* px = x.data();
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* plane = px + p * ih * iw;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::int64_t ky = 0; ky < kernel; ++ky) {
          for (std::int64_t kx = 0; kx < kernel; ++kx) {
            acc += plane[(oy * stride + ky) * iw + (ox * stride + kx)];
          }
        }
        out[static_cast<std::size_t>(p * oh * ow + oy * ow + ox)] = acc * inv;
      }
    }
  }
  const Shape in_shape = x.shape();
  const std::int64_t k = kernel, s = stride, IH = ih, IW = iw, OH = oh, OW = ow,
                     P = planes;
  return make_tensor_from_op(
      "avg_pool2d", Shape{n, c, oh, ow}, std::move(out), {x},
      [in_shape, k, s, IH, IW, OH, OW, P, inv](const Tensor& g) {
        Tensor gx = zeros(in_shape);
        float* pg = gx.data();
        const float* src = g.data();
        for (std::int64_t p = 0; p < P; ++p) {
          float* plane = pg + p * IH * IW;
          for (std::int64_t oy = 0; oy < OH; ++oy) {
            for (std::int64_t ox = 0; ox < OW; ++ox) {
              const float gv = src[p * OH * OW + oy * OW + ox] * inv;
              for (std::int64_t ky = 0; ky < k; ++ky) {
                for (std::int64_t kx = 0; kx < k; ++kx) {
                  plane[(oy * s + ky) * IW + (ox * s + kx)] += gv;
                }
              }
            }
          }
        }
        return std::vector<Tensor>{gx};
      });
}

}  // namespace tx
