// Shape arithmetic shared by tensor ops: sizes, strides, NumPy-style
// broadcasting rules, and multi-index iteration helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace tx {

using Shape = std::vector<std::int64_t>;

/// Number of elements described by a shape (1 for rank-0 scalars).
inline std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    TX_CHECK(d >= 0, "negative dimension in shape [", join(shape), "]");
    n *= d;
  }
  return n;
}

/// Row-major (C-order) strides for a contiguous tensor of the given shape.
inline Shape contiguous_strides(const Shape& shape) {
  Shape strides(shape.size());
  std::int64_t acc = 1;
  for (std::int64_t i = static_cast<std::int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[static_cast<std::size_t>(i)] = acc;
    acc *= shape[static_cast<std::size_t>(i)];
  }
  return strides;
}

/// True if two shapes are broadcast-compatible under NumPy rules.
bool broadcastable(const Shape& a, const Shape& b);

/// Resulting shape of broadcasting a against b; throws if incompatible.
Shape broadcast_shapes(const Shape& a, const Shape& b);

/// Normalize a possibly-negative axis into [0, rank); throws if out of range.
std::int64_t normalize_axis(std::int64_t axis, std::int64_t rank);

/// Shape after reducing `axes` (keepdim keeps them as size-1 dims).
Shape reduced_shape(const Shape& shape, const std::vector<std::int64_t>& axes,
                    bool keepdim);

/// Walks all multi-indices of `shape` in row-major order, calling fn with the
/// flat offset computed against `strides` (which may contain zeros to express
/// broadcasting). This is the generic slow path used by broadcast kernels.
template <typename Fn>
void for_each_index(const Shape& shape, Fn&& fn) {
  const std::int64_t n = numel_of(shape);
  const std::size_t rank = shape.size();
  std::vector<std::int64_t> idx(rank, 0);
  for (std::int64_t flat = 0; flat < n; ++flat) {
    fn(idx, flat);
    for (std::int64_t d = static_cast<std::int64_t>(rank) - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      if (++idx[ud] < shape[ud]) break;
      idx[ud] = 0;
    }
  }
}

/// Strides to read a tensor of shape `src` as if broadcast to `dst`:
/// size-1 (or missing leading) dims get stride 0.
Shape broadcast_strides(const Shape& src, const Shape& dst);

}  // namespace tx
