#include "tensor/tensor.h"

#include <algorithm>

#include "obs/mem.h"
#include "obs/prof.h"
#include "par/pool.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tx {

TensorImpl::TensorImpl() { obs::mem::on_tensor_create(); }

TensorImpl::~TensorImpl() {
  std::int64_t remaining = accounted_bytes_;
  if (remaining != 0) {
    // Inside a step region the buffers are donated to the thread's pool
    // (tx::alloc keeps them accounted as live); only the non-donated
    // remainder actually returns to the heap.
    remaining -= alloc::donate(data);
    remaining -= alloc::donate(grad);
    if (remaining != 0) obs::mem::on_bytes_delta(-remaining);
  }
  obs::mem::on_tensor_destroy();
}

void TensorImpl::account() {
  const std::int64_t now = static_cast<std::int64_t>(
      (data.capacity() + grad.capacity()) * sizeof(float));
  if (now == accounted_bytes_) return;
  const std::int64_t delta = now - accounted_bytes_;
  if (delta > 0) {
    // Growth served from the step pool was already live under the pool's
    // ledger (tracked by the thread's acquisition credit); only the fresh
    // remainder is new heap traffic and allocator churn.
    const std::int64_t fresh = delta - alloc::consume_credit(delta);
    if (fresh > 0) {
      obs::mem::on_bytes_delta(fresh);
      obs::prof::on_alloc(fresh);
    }
  } else {
    obs::mem::on_bytes_delta(delta);
  }
  accounted_bytes_ = now;
}

void TensorImpl::release_grad() {
  if (grad.capacity() == 0) return;
  const std::int64_t absorbed = alloc::donate(grad);
  if (absorbed != 0) {
    // The bytes moved into the pool ledger and are still live.
    accounted_bytes_ -= absorbed;
  } else {
    std::vector<float>().swap(grad);
  }
  account();
}

namespace {
thread_local bool g_grad_enabled = true;

// Propagate the caller's grad mode into tx::par worker tasks: without this a
// NoGradGuard on the caller would leave workers recording tape (and sampling
// through rsample instead of sample), breaking cross-thread-count bitwise
// determinism.
const bool g_par_grad_mode_registered = [] {
  par::register_context_capture([]() -> par::ContextInstaller {
    const bool enabled = g_grad_enabled;
    return [enabled]() -> std::function<void()> {
      const bool prev = g_grad_enabled;
      g_grad_enabled = enabled;
      return [prev] { g_grad_enabled = prev; };
    };
  });
  return true;
}();
}  // namespace

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

GradModeScope::GradModeScope(bool enabled) : previous_(g_grad_enabled) {
  g_grad_enabled = enabled;
}
GradModeScope::~GradModeScope() { g_grad_enabled = previous_; }

Tensor::Tensor(Shape shape, float fill) {
  const std::int64_t n = numel_of(shape);
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  if (fill == 0.0f) {
    impl_->data = alloc::buffer(n);
  } else {
    impl_->data = alloc::buffer_uninit(n);
    std::fill(impl_->data.begin(), impl_->data.end(), fill);
  }
  impl_->account();
}

Tensor::Tensor(Shape shape, std::vector<float> data) {
  const std::int64_t n = numel_of(shape);
  TX_CHECK(static_cast<std::int64_t>(data.size()) == n, "data size ",
           data.size(), " != numel ", n, " of shape [", join(shape), "]");
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  impl_->data = std::move(data);
  impl_->account();
}

Tensor Tensor::from_vector(std::vector<float> values) {
  Shape shape{static_cast<std::int64_t>(values.size())};
  return Tensor(std::move(shape), std::move(values));
}

const Shape& Tensor::shape() const {
  TX_CHECK(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  const auto& s = shape();
  const std::int64_t r = static_cast<std::int64_t>(s.size());
  if (i < 0) i += r;
  TX_CHECK(i >= 0 && i < r, "dim index ", i, " out of range for rank ", r);
  return s[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::numel() const {
  TX_CHECK(defined(), "numel() on undefined tensor");
  return static_cast<std::int64_t>(impl_->data.size());
}

float* Tensor::data() {
  TX_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

const float* Tensor::data() const {
  TX_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

std::vector<float> Tensor::to_vector() const {
  TX_CHECK(defined(), "to_vector() on undefined tensor");
  return impl_->data;
}

float Tensor::item() const {
  TX_CHECK(defined() && numel() == 1, "item() requires exactly one element");
  return impl_->data[0];
}

float& Tensor::at(std::int64_t flat) {
  TX_CHECK(defined() && flat >= 0 && flat < numel(), "flat index ", flat,
           " out of range");
  return impl_->data[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::int64_t flat) const {
  TX_CHECK(defined() && flat >= 0 && flat < numel(), "flat index ", flat,
           " out of range");
  return impl_->data[static_cast<std::size_t>(flat)];
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  TX_CHECK(defined(), "set_requires_grad on undefined tensor");
  TX_CHECK(!impl_->grad_fn, "set_requires_grad is only valid on leaf tensors");
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::is_leaf() const { return defined() && !impl_->grad_fn; }

bool Tensor::has_grad() const { return defined() && !impl_->grad.empty(); }

Tensor Tensor::grad() const {
  TX_CHECK(defined(), "grad() on undefined tensor");
  if (impl_->grad.empty()) return zeros(impl_->shape);
  const auto n = static_cast<std::int64_t>(impl_->grad.size());
  std::vector<float> v = alloc::buffer_uninit(n);
  simd::copy_n(impl_->grad.data(), v.data(), n);
  return Tensor(impl_->shape, std::move(v));
}

const std::vector<float>& Tensor::grad_buffer() const {
  TX_CHECK(defined(), "grad_buffer() on undefined tensor");
  return impl_->grad;
}

void Tensor::zero_grad() {
  TX_CHECK(defined(), "zero_grad() on undefined tensor");
  // Release the buffer (not just clear) so live-bytes accounting reflects
  // the drop between backward passes; inside a step region the buffer is
  // donated for reuse instead of freed.
  impl_->release_grad();
}

Tensor Tensor::detach() const {
  TX_CHECK(defined(), "detach() on undefined tensor");
  const std::int64_t n = numel();
  std::vector<float> v = alloc::buffer_uninit(n);
  simd::copy_n(impl_->data.data(), v.data(), n);
  return Tensor(impl_->shape, std::move(v));
}

Tensor Tensor::clone() const {
  TX_CHECK(defined(), "clone() on undefined tensor");
  const std::int64_t n = numel();
  std::vector<float> v = alloc::buffer_uninit(n);
  simd::copy_n(impl_->data.data(), v.data(), n);
  return make_tensor_from_op(
      "clone", impl_->shape, std::move(v), {*this},
      [](const Tensor& g) { return std::vector<Tensor>{g}; });
}

void Tensor::add_(const Tensor& other, float alpha) {
  TX_CHECK(defined() && other.defined(), "add_ on undefined tensor");
  TX_CHECK(is_leaf(), "in-place add_ only allowed on leaf tensors");
  TX_CHECK(numel() == other.numel(), "add_ numel mismatch: ", numel(), " vs ",
           other.numel());
  simd::axpy_n(alpha, other.data(), data(), numel());
}

void Tensor::mul_(float s) {
  TX_CHECK(defined(), "mul_ on undefined tensor");
  TX_CHECK(is_leaf(), "in-place mul_ only allowed on leaf tensors");
  simd::scale_n(impl_->data.data(), s, impl_->data.data(),
                static_cast<std::int64_t>(impl_->data.size()));
}

void Tensor::fill_(float v) {
  TX_CHECK(defined(), "fill_ on undefined tensor");
  TX_CHECK(is_leaf(), "in-place fill_ only allowed on leaf tensors");
  std::fill(impl_->data.begin(), impl_->data.end(), v);
}

void Tensor::copy_(const Tensor& src) {
  TX_CHECK(defined() && src.defined(), "copy_ on undefined tensor");
  TX_CHECK(is_leaf(), "in-place copy_ only allowed on leaf tensors");
  TX_CHECK(numel() == src.numel(), "copy_ numel mismatch");
  impl_->data = src.impl()->data;
  impl_->account();
}

Tensor Tensor::reshape(Shape new_shape) const { return tx::reshape(*this, std::move(new_shape)); }

Tensor Tensor::flatten(std::int64_t start_dim) const {
  const auto& s = shape();
  TX_CHECK(start_dim >= 0 && start_dim <= rank(), "bad flatten start_dim");
  Shape out(s.begin(), s.begin() + start_dim);
  std::int64_t rest = 1;
  for (std::size_t i = static_cast<std::size_t>(start_dim); i < s.size(); ++i) {
    rest *= s[i];
  }
  out.push_back(rest);
  return tx::reshape(*this, out);
}

Tensor Tensor::transpose(std::int64_t a, std::int64_t b) const {
  return tx::transpose(*this, a, b);
}

Tensor Tensor::sum() const { return tx::sum(*this); }
Tensor Tensor::mean() const { return tx::mean(*this); }

Tensor make_tensor_from_op(
    std::string op_name, Shape shape, std::vector<float> data,
    std::vector<Tensor> inputs,
    std::function<std::vector<Tensor>(const Tensor&)> backward_fn) {
  Tensor out(std::move(shape), std::move(data));
  if (!grad_enabled()) return out;
  bool needs_grad = false;
  for (const auto& in : inputs) {
    if (in.defined() && in.requires_grad()) {
      needs_grad = true;
      break;
    }
  }
  if (!needs_grad) return out;
  auto node = std::make_shared<GradNode>();
  node->op_name = std::move(op_name);
  node->inputs = std::move(inputs);
  node->backward_fn = std::move(backward_fn);
  out.impl()->grad_fn = std::move(node);
  out.impl()->requires_grad = true;
  return out;
}

Tensor make_tensor_from_op_with_out(
    std::string op_name, Shape shape, std::vector<float> data,
    std::vector<Tensor> inputs,
    std::function<std::vector<Tensor>(const Tensor&, const Tensor&)>
        backward_fn) {
  Tensor out(std::move(shape), std::move(data));
  if (!grad_enabled()) return out;
  bool needs_grad = false;
  for (const auto& in : inputs) {
    if (in.defined() && in.requires_grad()) {
      needs_grad = true;
      break;
    }
  }
  if (!needs_grad) return out;
  auto node = std::make_shared<GradNode>();
  node->op_name = std::move(op_name);
  node->inputs = std::move(inputs);
  node->backward_with_out_fn = std::move(backward_fn);
  out.impl()->grad_fn = std::move(node);
  out.impl()->requires_grad = true;
  return out;
}

namespace {

void accumulate_grad(const std::shared_ptr<TensorImpl>& impl, const Tensor& g) {
  TX_CHECK(g.defined(), "accumulating undefined gradient");
  TX_CHECK(g.numel() == static_cast<std::int64_t>(impl->data.size()),
           "gradient numel ", g.numel(), " != tensor numel ", impl->data.size());
  const auto n = static_cast<std::int64_t>(impl->data.size());
  if (impl->grad.empty()) {
    impl->grad = alloc::buffer_uninit(n);
    simd::copy_n(g.data(), impl->grad.data(), n);
    impl->account();
  } else {
    simd::add_n(impl->grad.data(), g.data(), impl->grad.data(), n);
  }
}

}  // namespace

void Tensor::backward() const {
  TX_CHECK(defined(), "backward() on undefined tensor");
  TX_CHECK(numel() == 1, "backward() requires a scalar root, got numel ",
           numel());
  // Topological order via iterative post-order DFS over grad_fn edges.
  std::vector<std::shared_ptr<TensorImpl>> topo;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<std::shared_ptr<TensorImpl>, std::size_t>> stack;
  if (impl_->grad_fn) {
    stack.emplace_back(impl_, 0);
    visited.insert(impl_.get());
  }
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& fn = node->grad_fn;
    if (!fn || next_child >= fn->inputs.size()) {
      topo.push_back(node);
      stack.pop_back();
      continue;
    }
    const Tensor& child = fn->inputs[next_child++];
    if (child.defined() && child.impl()->grad_fn &&
        !visited.count(child.impl().get())) {
      visited.insert(child.impl().get());
      stack.emplace_back(child.impl(), 0);
    }
  }

  // Seed the root gradient with 1.
  accumulate_grad(impl_, ones(impl_->shape));

  NoGradGuard no_grad;  // backward passes never build higher-order graphs
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const auto& node = *it;
    const auto& fn = node->grad_fn;
    if (!fn) continue;
    if (node->grad.empty()) continue;  // branch never reached by the root
    const auto gn = static_cast<std::int64_t>(node->grad.size());
    std::vector<float> gbuf = alloc::buffer_uninit(gn);
    simd::copy_n(node->grad.data(), gbuf.data(), gn);
    Tensor grad_out(node->shape, std::move(gbuf));
    std::vector<Tensor> input_grads =
        fn->backward_fn ? fn->backward_fn(grad_out)
                        : fn->backward_with_out_fn(grad_out, Tensor(node));
    TX_CHECK(input_grads.size() == fn->inputs.size(), "op ", fn->op_name,
             " backward returned ", input_grads.size(), " grads for ",
             fn->inputs.size(), " inputs");
    for (std::size_t i = 0; i < fn->inputs.size(); ++i) {
      const Tensor& in = fn->inputs[i];
      if (!in.defined() || !in.requires_grad()) continue;
      TX_CHECK(input_grads[i].defined(), "op ", fn->op_name,
               " returned undefined grad for differentiable input ", i);
      accumulate_grad(in.impl(), input_grads[i]);
    }
  }
}

// ---- factories -------------------------------------------------------------

Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
Tensor zeros_like(const Tensor& t) { return zeros(t.shape()); }
Tensor ones_like(const Tensor& t) { return ones(t.shape()); }

Tensor arange(std::int64_t n) {
  std::vector<float> v = alloc::buffer_uninit(n);
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return Tensor(Shape{n}, std::move(v));
}

Tensor linspace(float lo, float hi, std::int64_t n) {
  TX_CHECK(n >= 2, "linspace needs n >= 2");
  std::vector<float> v = alloc::buffer_uninit(n);
  const float step = (hi - lo) / static_cast<float>(n - 1);
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = lo + step * static_cast<float>(i);
  }
  return Tensor(Shape{n}, std::move(v));
}

Tensor eye(std::int64_t n) {
  Tensor t(Shape{n, n}, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) t.at(i * n + i) = 1.0f;
  return t;
}

Tensor randn(Shape shape, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  const std::int64_t n = numel_of(shape);
  std::vector<float> v = alloc::buffer_uninit(n);
  for (auto& x : v) x = static_cast<float>(g.normal());
  return Tensor(std::move(shape), std::move(v));
}

Tensor rand_uniform(Shape shape, float lo, float hi, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  const std::int64_t n = numel_of(shape);
  std::vector<float> v = alloc::buffer_uninit(n);
  for (auto& x : v) x = static_cast<float>(g.uniform(lo, hi));
  return Tensor(std::move(shape), std::move(v));
}

Tensor randint(Shape shape, std::int64_t lo, std::int64_t hi, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  const std::int64_t n = numel_of(shape);
  std::vector<float> v = alloc::buffer_uninit(n);
  for (auto& x : v) x = static_cast<float>(g.randint(lo, hi));
  return Tensor(std::move(shape), std::move(v));
}

Tensor rand_sign(Shape shape, Generator* gen) {
  Generator& g = gen ? *gen : global_generator();
  const std::int64_t n = numel_of(shape);
  std::vector<float> v = alloc::buffer_uninit(n);
  for (auto& x : v) x = g.bernoulli(0.5) ? 1.0f : -1.0f;
  return Tensor(std::move(shape), std::move(v));
}

// ---- comparisons / printing -------------------------------------------------

Tensor isclose(const Tensor& a, const Tensor& b, float atol) {
  TX_CHECK(a.shape() == b.shape(), "isclose shape mismatch");
  std::vector<float> v(static_cast<std::size_t>(a.numel()));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    v[static_cast<std::size_t>(i)] =
        std::fabs(a.at(i) - b.at(i)) <= atol ? 1.0f : 0.0f;
  }
  return Tensor(a.shape(), std::move(v));
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float x = a.at(i), y = b.at(i);
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

std::string to_string(const Tensor& t, std::int64_t max_elems) {
  if (!t.defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor([" << join(t.shape()) << "], [";
  const std::int64_t n = std::min<std::int64_t>(t.numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << t.at(i);
  }
  if (t.numel() > n) os << ", ...";
  os << "])";
  return os.str();
}

}  // namespace tx
