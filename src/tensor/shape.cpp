#include "tensor/shape.h"

#include <algorithm>

namespace tx {

bool broadcastable(const Shape& a, const Shape& b) {
  const std::size_t ra = a.size(), rb = b.size();
  const std::size_t r = std::max(ra, rb);
  for (std::size_t i = 0; i < r; ++i) {
    const std::int64_t da = i < ra ? a[ra - 1 - i] : 1;
    const std::int64_t db = i < rb ? b[rb - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  TX_CHECK(broadcastable(a, b), "shapes [", join(a), "] and [", join(b),
           "] are not broadcastable");
  const std::size_t ra = a.size(), rb = b.size();
  const std::size_t r = std::max(ra, rb);
  Shape out(r);
  for (std::size_t i = 0; i < r; ++i) {
    const std::int64_t da = i < ra ? a[ra - 1 - i] : 1;
    const std::int64_t db = i < rb ? b[rb - 1 - i] : 1;
    out[r - 1 - i] = std::max(da, db);
  }
  return out;
}

std::int64_t normalize_axis(std::int64_t axis, std::int64_t rank) {
  if (axis < 0) axis += rank;
  TX_CHECK(axis >= 0 && axis < rank, "axis ", axis, " out of range for rank ",
           rank);
  return axis;
}

Shape reduced_shape(const Shape& shape, const std::vector<std::int64_t>& axes,
                    bool keepdim) {
  std::vector<bool> reduce(shape.size(), false);
  for (auto ax : axes) {
    reduce[static_cast<std::size_t>(
        normalize_axis(ax, static_cast<std::int64_t>(shape.size())))] = true;
  }
  Shape out;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (reduce[i]) {
      if (keepdim) out.push_back(1);
    } else {
      out.push_back(shape[i]);
    }
  }
  return out;
}

Shape broadcast_strides(const Shape& src, const Shape& dst) {
  TX_CHECK(src.size() <= dst.size(), "cannot broadcast [", join(src), "] to [",
           join(dst), "]");
  const Shape natural = contiguous_strides(src);
  Shape out(dst.size(), 0);
  const std::size_t offset = dst.size() - src.size();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::int64_t d = src[i];
    const std::int64_t target = dst[offset + i];
    TX_CHECK(d == target || d == 1, "dim ", i, " of [", join(src),
             "] incompatible with [", join(dst), "]");
    out[offset + i] = (d == 1 && target != 1) ? 0 : natural[i];
  }
  return out;
}

}  // namespace tx
