// Elementwise binary ops with NumPy broadcasting and unary math ops.
//
// The same-shape binary fast path and the unary maps fan out over flat index
// ranges via tx::par above kElemParThreshold elements, and dispatch to
// tx::simd kernels where one exists. Each output element is a pure function
// of its inputs and the simd kernels are lane-independent mirrors of the
// scalar arithmetic, so results are bitwise-identical at every
// TYXE_NUM_THREADS and every TYXE_SIMD level. The generic broadcast path
// stays sequential and scalar; a scalar-operand fast path covers the
// ubiquitous tensor-op-scalar case without per-element index arithmetic.
//
// Output buffers come from tx::alloc (recycled within inference steps) and
// are moved straight into the result tensor — one allocation per op.
#include <cmath>

#include "obs/event_sink.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "resil/fault.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tx {

namespace {

/// Elements above which elementwise loops fan out.
constexpr std::int64_t kElemParThreshold = std::int64_t{1} << 15;
/// Minimum elements per chunk.
constexpr std::int64_t kElemGrain = std::int64_t{1} << 12;

using BinaryKernel = void (*)(const float*, const float*, float*,
                              std::int64_t);
using UnaryKernel = void (*)(const float*, float*, std::int64_t);

struct BinaryResult {
  Shape shape;
  std::vector<float> data;
};

/// Applies `fn(av, bv)` over the broadcast of a and b, returning the raw
/// output buffer (callers move it into the result tensor). `vk`, when given,
/// must compute exactly `fn` per lane; it serves the same-shape fast path.
template <typename Fn>
BinaryResult broadcast_binary_buffer(const Tensor& a, const Tensor& b, Fn fn,
                                     BinaryKernel vk = nullptr) {
  const Shape out_shape = broadcast_shapes(a.shape(), b.shape());
  const std::int64_t n = numel_of(out_shape);
  std::vector<float> out = alloc::buffer_uninit(n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (a.shape() == b.shape()) {  // fast path: no index arithmetic
    if (n >= kElemParThreshold) {
      // Trace-only slice: elementwise ops are too hot for a per-call
      // histogram, but fanned-out ones are worth seeing on the timeline.
      obs::TraceSpan trace(
          "par.elementwise",
          obs::tracing() ? obs::Event().set("n", n).to_json() : std::string());
      // One op per element; both inputs read, the output written.
      obs::prof::KernelScope prof("elementwise", n, 12 * n);
      par::parallel_for(0, n, kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          if (vk) {
                            vk(pa + i0, pb + i0, po + i0, i1 - i0);
                          } else {
                            for (std::int64_t i = i0; i < i1; ++i) {
                              po[i] = fn(pa[i], pb[i]);
                            }
                          }
                        });
    } else if (vk) {
      vk(pa, pb, po, n);
    } else {
      for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    }
  } else if (b.numel() == 1 && numel_of(a.shape()) == n) {
    // Scalar (or single-element) right operand: no index arithmetic needed.
    const float bv = pb[0];
    for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], bv);
  } else if (a.numel() == 1 && numel_of(b.shape()) == n) {
    const float av = pa[0];
    for (std::int64_t i = 0; i < n; ++i) po[i] = fn(av, pb[i]);
  } else {
    const Shape sa = broadcast_strides(a.shape(), out_shape);
    const Shape sb = broadcast_strides(b.shape(), out_shape);
    const std::size_t rank = out_shape.size();
    for_each_index(out_shape, [&](const std::vector<std::int64_t>& idx,
                                  std::int64_t flat) {
      std::int64_t oa = 0, ob = 0;
      for (std::size_t d = 0; d < rank; ++d) {
        oa += idx[d] * sa[d];
        ob += idx[d] * sb[d];
      }
      po[flat] = fn(pa[oa], pb[ob]);
    });
  }
  return {out_shape, std::move(out)};
}

/// Tensor-returning wrapper, used by backward closures computing masks.
template <typename Fn>
Tensor broadcast_binary_forward(const Tensor& a, const Tensor& b, Fn fn) {
  BinaryResult r = broadcast_binary_buffer(a, b, fn);
  return Tensor(std::move(r.shape), std::move(r.data));
}

/// Shared machinery for unary ops: forward map plus a backward closure that
/// receives (input, output alias, upstream grad). `vk`, when given, must
/// compute exactly `fwd` per element (same rounding) and serves both the
/// fanned-out and sequential paths.
template <typename Fwd, typename Bwd>
Tensor map_unary(const char* name, const Tensor& a, Fwd fwd, Bwd bwd,
                 UnaryKernel vk = nullptr) {
  TX_CHECK(a.defined(), name, " on undefined tensor");
  const std::int64_t n = a.numel();
  std::vector<float> out = alloc::buffer_uninit(n);
  const float* pa = a.data();
  float* po = out.data();
  if (n >= kElemParThreshold) {
    obs::TraceSpan trace(
        "par.unary", obs::tracing()
                         ? obs::Event().set("op", name).set("n", n).to_json()
                         : std::string());
    obs::prof::KernelScope prof("unary", n, 8 * n);
    par::parallel_for(0, n, kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
      if (vk) {
        vk(pa + i0, po + i0, i1 - i0);
      } else {
        for (std::int64_t i = i0; i < i1; ++i) po[i] = fwd(pa[i]);
      }
    });
  } else if (vk) {
    vk(pa, po, n);
  } else {
    for (std::int64_t i = 0; i < n; ++i) po[i] = fwd(pa[i]);
  }
  return make_tensor_from_op_with_out(
      name, a.shape(), std::move(out), {a},
      [a, bwd](const Tensor& g, const Tensor& y) {
        return std::vector<Tensor>{bwd(a, y, g)};
      });
}

void square_kernel(const float* a, float* o, std::int64_t n) {
  simd::mul_n(a, a, o, n);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  fault::check_alloc("tensor.add");
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x + y; }, simd::add_n);
  const Shape as = a.shape(), bs = b.shape();
  return make_tensor_from_op(
      "add", std::move(out.shape), std::move(out.data), {a, b},
      [as, bs](const Tensor& g) {
        return std::vector<Tensor>{sum_to(g, as), sum_to(g, bs)};
      });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x - y; }, simd::sub_n);
  const Shape as = a.shape(), bs = b.shape();
  return make_tensor_from_op(
      "sub", std::move(out.shape), std::move(out.data), {a, b},
      [as, bs](const Tensor& g) {
        return std::vector<Tensor>{sum_to(g, as), sum_to(neg(g), bs)};
      });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x * y; }, simd::mul_n);
  return make_tensor_from_op(
      "mul", std::move(out.shape), std::move(out.data), {a, b},
      [a, b](const Tensor& g) {
        return std::vector<Tensor>{sum_to(mul(g, b), a.shape()),
                                   sum_to(mul(g, a), b.shape())};
      });
}

Tensor div(const Tensor& a, const Tensor& b) {
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x / y; }, simd::div_n);
  return make_tensor_from_op(
      "div", std::move(out.shape), std::move(out.data), {a, b},
      [a, b](const Tensor& g) {
        Tensor ga = sum_to(div(g, b), a.shape());
        Tensor gb = sum_to(neg(div(mul(g, a), mul(b, b))), b.shape());
        return std::vector<Tensor>{ga, gb};
      });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  // Scalar on purpose (no simd kernel): the x >= y tie-break routing
  // gradients to `a` is part of the documented contract, and vmaxps breaks
  // ties the other way.
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x >= y ? x : y; });
  return make_tensor_from_op(
      "maximum", std::move(out.shape), std::move(out.data), {a, b},
      [a, b](const Tensor& g) {
        NoGradGuard ng;
        Tensor mask = broadcast_binary_forward(
            a, b, [](float x, float y) { return x >= y ? 1.0f : 0.0f; });
        Tensor inv = 1.0f - mask;
        return std::vector<Tensor>{sum_to(mul(g, mask), a.shape()),
                                   sum_to(mul(g, inv), b.shape())};
      });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  BinaryResult out = broadcast_binary_buffer(
      a, b, [](float x, float y) { return x <= y ? x : y; });
  return make_tensor_from_op(
      "minimum", std::move(out.shape), std::move(out.data), {a, b},
      [a, b](const Tensor& g) {
        NoGradGuard ng;
        Tensor mask = broadcast_binary_forward(
            a, b, [](float x, float y) { return x <= y ? 1.0f : 0.0f; });
        Tensor inv = 1.0f - mask;
        return std::vector<Tensor>{sum_to(mul(g, mask), a.shape()),
                                   sum_to(mul(g, inv), b.shape())};
      });
}

Tensor neg(const Tensor& a) {
  return map_unary(
      "neg", a, [](float x) { return -x; },
      [](const Tensor&, const Tensor&, const Tensor& g) { return neg(g); },
      simd::neg_n);
}

Tensor exp(const Tensor& a) {
  return map_unary(
      "exp", a, [](float x) { return std::exp(x); },
      [](const Tensor&, const Tensor& y, const Tensor& g) { return mul(g, y); });
}

Tensor log(const Tensor& a) {
  return map_unary(
      "log", a, [](float x) { return std::log(x); },
      [](const Tensor& x, const Tensor&, const Tensor& g) { return div(g, x); });
}

Tensor sqrt(const Tensor& a) {
  return map_unary(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](const Tensor&, const Tensor& y, const Tensor& g) {
        return div(g, mul(Tensor::scalar(2.0f), y));
      },
      simd::sqrt_n);
}

Tensor square(const Tensor& a) {
  return map_unary(
      "square", a, [](float x) { return x * x; },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, mul(Tensor::scalar(2.0f), x));
      },
      square_kernel);
}

Tensor abs(const Tensor& a) {
  return map_unary(
      "abs", a, [](float x) { return std::fabs(x); },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        NoGradGuard ng;
        Tensor sign = broadcast_binary_forward(
            x, Tensor::scalar(0.0f),
            [](float v, float) { return v >= 0.0f ? 1.0f : -1.0f; });
        return mul(g, sign);
      },
      simd::abs_n);
}

Tensor tanh(const Tensor& a) {
  return map_unary(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](const Tensor&, const Tensor& y, const Tensor& g) {
        return mul(g, sub(Tensor::scalar(1.0f), mul(y, y)));
      });
}

Tensor sigmoid(const Tensor& a) {
  return map_unary(
      "sigmoid", a,
      [](float x) {
        // Stable logistic function.
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](const Tensor&, const Tensor& y, const Tensor& g) {
        return mul(g, mul(y, sub(Tensor::scalar(1.0f), y)));
      });
}

Tensor relu(const Tensor& a) {
  return map_unary(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        NoGradGuard ng;
        Tensor mask = broadcast_binary_forward(
            x, Tensor::scalar(0.0f),
            [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
        return mul(g, mask);
      },
      simd::relu_n);
}

Tensor softplus(const Tensor& a) {
  return map_unary(
      "softplus", a,
      [](float x) {
        // log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}) for stability.
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, sigmoid(x));
      });
}

Tensor sin(const Tensor& a) {
  return map_unary(
      "sin", a, [](float x) { return std::sin(x); },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, cos(x));
      });
}

Tensor cos(const Tensor& a) {
  return map_unary(
      "cos", a, [](float x) { return std::cos(x); },
      [](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, neg(sin(x)));
      });
}

Tensor erf(const Tensor& a) {
  constexpr float kTwoOverSqrtPi = 1.1283791670955126f;
  return map_unary(
      "erf", a, [](float x) { return std::erf(x); },
      [kTwoOverSqrtPi](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, mul(Tensor::scalar(kTwoOverSqrtPi), exp(neg(mul(x, x)))));
      });
}

Tensor pow_scalar(const Tensor& a, float p) {
  return map_unary(
      "pow_scalar", a, [p](float x) { return std::pow(x, p); },
      [p](const Tensor& x, const Tensor&, const Tensor& g) {
        return mul(g, mul(Tensor::scalar(p), pow_scalar(x, p - 1.0f)));
      });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  TX_CHECK(lo <= hi, "clamp: lo > hi");
  return map_unary(
      "clamp", a,
      [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](const Tensor& x, const Tensor&, const Tensor& g) {
        NoGradGuard ng;
        Tensor mask = broadcast_binary_forward(
            x, Tensor::scalar(0.0f), [lo, hi](float v, float) {
              return (v >= lo && v <= hi) ? 1.0f : 0.0f;
            });
        return mul(g, mask);
      });
}

Tensor clamp_min(const Tensor& a, float lo) {
  return clamp(a, lo, std::numeric_limits<float>::infinity());
}

Tensor clamp_max(const Tensor& a, float hi) {
  return clamp(a, -std::numeric_limits<float>::infinity(), hi);
}

}  // namespace tx
