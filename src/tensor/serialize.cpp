#include "tensor/serialize.h"

#include <fstream>
#include <sstream>

namespace tx {

namespace {
constexpr const char* kMagic = "TXT1";
}  // namespace

void save_tensor(std::ostream& os, const Tensor& t) {
  TX_CHECK(t.defined(), "save_tensor: undefined tensor");
  os << kMagic << ' ' << t.rank();
  for (auto d : t.shape()) os << ' ' << d;
  os << '\n';
  os << std::hexfloat;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    os << t.at(i) << (i + 1 == t.numel() ? '\n' : ' ');
  }
  if (t.numel() == 0) os << '\n';
  os << std::defaultfloat;
  TX_CHECK(os.good(), "save_tensor: stream write failed");
}

Tensor load_tensor(std::istream& is) {
  std::string magic;
  is >> magic;
  TX_CHECK(is.good() && magic == kMagic, "load_tensor: bad magic '", magic, "'");
  std::int64_t rank = 0;
  is >> rank;
  TX_CHECK(is.good() && rank >= 0 && rank <= 16, "load_tensor: bad rank");
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) {
    is >> d;
    TX_CHECK(is.good() && d >= 0, "load_tensor: bad dimension");
  }
  const std::int64_t n = numel_of(shape);
  std::vector<float> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    // std::hexfloat parsing via operator>> is unreliable pre-C++23; parse
    // tokens with strtof, which accepts hexfloat.
    std::string token;
    is >> token;
    TX_CHECK(!token.empty() && is, "load_tensor: truncated values");
    char* end = nullptr;
    v = std::strtof(token.c_str(), &end);
    TX_CHECK(end != token.c_str(), "load_tensor: bad value token '", token, "'");
  }
  return Tensor(std::move(shape), std::move(values));
}

void save_tensor_file(const std::string& path, const Tensor& t) {
  std::ofstream os(path);
  TX_CHECK(os.is_open(), "save_tensor_file: cannot open ", path);
  save_tensor(os, t);
}

Tensor load_tensor_file(const std::string& path) {
  std::ifstream is(path);
  TX_CHECK(is.is_open(), "load_tensor_file: cannot open ", path);
  return load_tensor(is);
}

}  // namespace tx
