// tx::simd — runtime-dispatched SIMD kernels with a bitwise-determinism
// contract.
//
// Every kernel here is implemented once per instruction-set level (scalar,
// AVX2 on x86-64, NEON on aarch64) but all levels compute THE SAME canonical
// arithmetic, element for element and — for reductions — in the same fixed
// association order. Consequences:
//
//   * Elementwise kernels (add/sub/mul/div/min/max/axpy/mul_add/...) are
//     lane-independent: each output element is one IEEE-754 expression of its
//     inputs, so vector and scalar levels agree bitwise by construction.
//     Hardware FMA is never used (mul and add round separately at every
//     level), and the build disables FP contraction globally.
//   * Reduction kernels (dot / sum / sumsq) use 8 virtual accumulator lanes:
//     lane l accumulates elements l, l+8, l+16, ... in ascending order, the
//     eight partials are combined with the fixed tree
//     ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)), and any tail (n % 8) is folded
//     in sequentially after the tree. The scalar level implements exactly
//     this algorithm, so SIMD on/off produces bitwise-identical sums.
//
// The active level is resolved once at startup from CPU capabilities and the
// TYXE_SIMD environment variable (off|scalar|avx2|neon|auto); tests can
// force a level with set_level_for_testing(). Because the choice is runtime
// (one binary serves every level), CI's simd-equivalence job builds once and
// runs the bench under TYXE_SIMD=off and =auto.
#pragma once

#include <cstdint>

namespace tx::simd {

enum class Level {
  kScalar = 0,  // portable canonical implementation ("off")
  kAVX2 = 1,    // x86-64 AVX2 (no FMA)
  kNEON = 2,    // aarch64 NEON
};

// Level selected at startup (CPU detection + TYXE_SIMD override).
Level active_level();
// Human-readable name of the active level: "off", "avx2", "neon".
const char* level_name();
// True if the given level can run on this machine/build.
bool level_available(Level level);
// Force a level for tests; clamped to scalar if unavailable. Returns the
// level actually installed.
Level set_level_for_testing(Level level);

// --- Elementwise kernels (lane-independent, full overwrite of o[0..n)) ---
void add_n(const float* a, const float* b, float* o, std::int64_t n);
void sub_n(const float* a, const float* b, float* o, std::int64_t n);
void mul_n(const float* a, const float* b, float* o, std::int64_t n);
void div_n(const float* a, const float* b, float* o, std::int64_t n);
void max_n(const float* a, const float* b, float* o, std::int64_t n);
void min_n(const float* a, const float* b, float* o, std::int64_t n);
// o[i] = a[i] * b[i] + c[i], rounded twice (no FMA).
void mul_add_n(const float* a, const float* b, const float* c, float* o,
               std::int64_t n);
// o[i] += s * x[i], rounded twice (no FMA). The GEMM inner loop.
void axpy_n(float s, const float* x, float* o, std::int64_t n);
// o[i] = s * a[i].
void scale_n(const float* a, float s, float* o, std::int64_t n);
void neg_n(const float* a, float* o, std::int64_t n);
void abs_n(const float* a, float* o, std::int64_t n);
void relu_n(const float* a, float* o, std::int64_t n);
void sqrt_n(const float* a, float* o, std::int64_t n);
void clamp_n(const float* a, float lo, float hi, float* o, std::int64_t n);
void copy_n(const float* src, float* dst, std::int64_t n);

// --- Canonical reductions (8 virtual lanes + fixed combine tree) ---
// Float accumulation: sum_i a[i]*b[i], each product rounded before adding.
float dot8(const float* a, const float* b, std::int64_t n);
// Float accumulation of a[i] (used for per-cell axis reductions).
float sum8f(const float* x, std::int64_t n);
// Double accumulation of a[i] (full-tensor sum; each float promoted exactly).
double sum8(const float* x, std::int64_t n);
// Double accumulation of a[i]^2 (square rounded in float, promoted exactly).
double sumsq8(const float* x, std::int64_t n);

}  // namespace tx::simd
