// Runtime dispatch + portable canonical implementations for tx::simd.
//
// The scalar kernels below are the specification: every vector backend must
// match them bitwise. Reductions therefore use the same 8-lane virtual
// accumulator layout and fixed combine tree the vector backends use, and no
// kernel relies on FP contraction (the build passes -ffp-contract=off).
#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/manifest.h"

namespace tx::simd {

#if defined(TX_SIMD_BUILD_AVX2)
namespace avx2 {
void add_n(const float* a, const float* b, float* o, std::int64_t n);
void sub_n(const float* a, const float* b, float* o, std::int64_t n);
void mul_n(const float* a, const float* b, float* o, std::int64_t n);
void div_n(const float* a, const float* b, float* o, std::int64_t n);
void max_n(const float* a, const float* b, float* o, std::int64_t n);
void min_n(const float* a, const float* b, float* o, std::int64_t n);
void mul_add_n(const float* a, const float* b, const float* c, float* o,
               std::int64_t n);
void axpy_n(float s, const float* x, float* o, std::int64_t n);
void scale_n(const float* a, float s, float* o, std::int64_t n);
void neg_n(const float* a, float* o, std::int64_t n);
void abs_n(const float* a, float* o, std::int64_t n);
void relu_n(const float* a, float* o, std::int64_t n);
void sqrt_n(const float* a, float* o, std::int64_t n);
void clamp_n(const float* a, float lo, float hi, float* o, std::int64_t n);
float dot8(const float* a, const float* b, std::int64_t n);
float sum8f(const float* x, std::int64_t n);
double sum8(const float* x, std::int64_t n);
double sumsq8(const float* x, std::int64_t n);
}  // namespace avx2
#endif

namespace {

// ---- Scalar canonical kernels ----

void scalar_add_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
void scalar_sub_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
void scalar_mul_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
void scalar_div_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
// max/min mirror vmaxps/vminps exactly: (a OP b) ? a : b, second operand on
// unordered comparisons.
void scalar_max_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = (a[i] > b[i]) ? a[i] : b[i];
}
void scalar_min_n(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = (a[i] < b[i]) ? a[i] : b[i];
}
void scalar_mul_add_n(const float* a, const float* b, const float* c, float* o,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float prod = a[i] * b[i];
    o[i] = prod + c[i];
  }
}
void scalar_axpy_n(float s, const float* x, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float prod = s * x[i];
    o[i] = o[i] + prod;
  }
}
void scalar_scale_n(const float* a, float s, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = s * a[i];
}
void scalar_neg_n(const float* a, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = -a[i];
}
void scalar_abs_n(const float* a, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::fabs(a[i]);
}
void scalar_relu_n(const float* a, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = (a[i] > 0.0f) ? a[i] : 0.0f;
}
void scalar_sqrt_n(const float* a, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::sqrt(a[i]);
}
void scalar_clamp_n(const float* a, float lo, float hi, float* o,
                    std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = (a[i] > lo) ? a[i] : lo;
    o[i] = (v < hi) ? v : hi;
  }
}

float scalar_dot8(const float* a, const float* b, std::int64_t n) {
  float p[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      const float prod = a[i + l] * b[i + l];
      p[l] = p[l] + prod;
    }
  }
  float total = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
  for (std::int64_t i = main_n; i < n; ++i) {
    const float prod = a[i] * b[i];
    total = total + prod;
  }
  return total;
}

float scalar_sum8f(const float* x, std::int64_t n) {
  float p[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    for (int l = 0; l < 8; ++l) p[l] = p[l] + x[i + l];
  }
  float total = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
  for (std::int64_t i = main_n; i < n; ++i) total = total + x[i];
  return total;
}

double scalar_sum8(const float* x, std::int64_t n) {
  double p[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    for (int l = 0; l < 8; ++l) p[l] = p[l] + static_cast<double>(x[i + l]);
  }
  double total = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
  for (std::int64_t i = main_n; i < n; ++i) {
    total = total + static_cast<double>(x[i]);
  }
  return total;
}

double scalar_sumsq8(const float* x, std::int64_t n) {
  double p[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      const float sq = x[i + l] * x[i + l];
      p[l] = p[l] + static_cast<double>(sq);
    }
  }
  double total = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
  for (std::int64_t i = main_n; i < n; ++i) {
    const float sq = x[i] * x[i];
    total = total + static_cast<double>(sq);
  }
  return total;
}

// ---- Level selection ----

Level detect_best() {
#if defined(TX_SIMD_BUILD_AVX2)
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
#endif
#if defined(TX_SIMD_BUILD_NEON)
  return Level::kNEON;
#endif
  return Level::kScalar;
}

Level resolve_startup_level() {
  const char* env = std::getenv("TYXE_SIMD");
  if (env == nullptr || *env == '\0') return detect_best();
  const std::string v(env);
  Level want = Level::kScalar;
  if (v == "auto") return detect_best();
  if (v == "off" || v == "scalar") {
    want = Level::kScalar;
  } else if (v == "avx2") {
    want = Level::kAVX2;
  } else if (v == "neon") {
    want = Level::kNEON;
  } else {
    std::fprintf(stderr,
                 "tx::simd: unknown TYXE_SIMD value '%s' "
                 "(expected off|scalar|avx2|neon|auto); using auto\n",
                 env);
    return detect_best();
  }
  if (!level_available(want)) {
    std::fprintf(stderr,
                 "tx::simd: TYXE_SIMD=%s not available on this machine/build; "
                 "falling back to scalar\n",
                 env);
    return Level::kScalar;
  }
  return want;
}

std::atomic<Level>& level_slot() {
  static std::atomic<Level> slot{resolve_startup_level()};
  return slot;
}

inline Level level() { return level_slot().load(std::memory_order_relaxed); }

}  // namespace

Level active_level() { return level(); }

const char* level_name() {
  switch (level()) {
    case Level::kAVX2:
      return "avx2";
    case Level::kNEON:
      return "neon";
    default:
      return "off";
  }
}

namespace {
// Publish the dispatch level actually selected (not the requested one) into
// the tx.manifest.v1 run manifest, so bench_diff.py can refuse to compare
// an AVX2 baseline against a scalar candidate.
const bool g_manifest_provider_registered = [] {
  obs::manifest::register_provider(
      [] { obs::manifest::set_field("simd_level", level_name()); });
  return true;
}();
}  // namespace

bool level_available(Level l) {
  switch (l) {
    case Level::kScalar:
      return true;
    case Level::kAVX2:
#if defined(TX_SIMD_BUILD_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNEON:
#if defined(TX_SIMD_BUILD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level set_level_for_testing(Level l) {
  if (!level_available(l)) l = Level::kScalar;
  level_slot().store(l, std::memory_order_relaxed);
  return l;
}

// ---- Dispatch ----
//
// A single branch per kernel call; calls are chunk-granular (thousands of
// elements), so the dispatch cost is noise. NEON would slot in here the same
// way AVX2 does; until an aarch64 backend lands, kNEON resolves to scalar at
// the dispatch layer (level_available(kNEON) is false on this build anyway).

#if defined(TX_SIMD_BUILD_AVX2)
#define TX_SIMD_DISPATCH(fn, ...)                                 \
  do {                                                            \
    if (level() == Level::kAVX2) return avx2::fn(__VA_ARGS__);    \
    return scalar_##fn(__VA_ARGS__);                              \
  } while (0)
#else
#define TX_SIMD_DISPATCH(fn, ...) return scalar_##fn(__VA_ARGS__)
#endif

void add_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(add_n, a, b, o, n);
}
void sub_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(sub_n, a, b, o, n);
}
void mul_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(mul_n, a, b, o, n);
}
void div_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(div_n, a, b, o, n);
}
void max_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(max_n, a, b, o, n);
}
void min_n(const float* a, const float* b, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(min_n, a, b, o, n);
}
void mul_add_n(const float* a, const float* b, const float* c, float* o,
               std::int64_t n) {
  TX_SIMD_DISPATCH(mul_add_n, a, b, c, o, n);
}
void axpy_n(float s, const float* x, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(axpy_n, s, x, o, n);
}
void scale_n(const float* a, float s, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(scale_n, a, s, o, n);
}
void neg_n(const float* a, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(neg_n, a, o, n);
}
void abs_n(const float* a, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(abs_n, a, o, n);
}
void relu_n(const float* a, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(relu_n, a, o, n);
}
void sqrt_n(const float* a, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(sqrt_n, a, o, n);
}
void clamp_n(const float* a, float lo, float hi, float* o, std::int64_t n) {
  TX_SIMD_DISPATCH(clamp_n, a, lo, hi, o, n);
}
void copy_n(const float* src, float* dst, std::int64_t n) {
  std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
}
float dot8(const float* a, const float* b, std::int64_t n) {
  TX_SIMD_DISPATCH(dot8, a, b, n);
}
float sum8f(const float* x, std::int64_t n) { TX_SIMD_DISPATCH(sum8f, x, n); }
double sum8(const float* x, std::int64_t n) { TX_SIMD_DISPATCH(sum8, x, n); }
double sumsq8(const float* x, std::int64_t n) {
  TX_SIMD_DISPATCH(sumsq8, x, n);
}

#undef TX_SIMD_DISPATCH

}  // namespace tx::simd
