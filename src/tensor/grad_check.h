// Finite-difference gradient checking used throughout the test suite.
#pragma once

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace tx {

/// Compares the analytic gradient of `fn` (a scalar-valued function of the
/// given inputs) against central finite differences. Returns the maximum
/// absolute deviation across all input elements.
///
/// Inputs must be leaf tensors; their requires_grad flags are forced on.
double max_grad_error(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-3f);

/// Convenience assertion form: true if the gradients match within tolerance.
bool grad_check(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                std::vector<Tensor> inputs, float eps = 1e-3f,
                double tol = 5e-2);

}  // namespace tx
