// Shape manipulation ops: reshape, permute, broadcast, concatenation,
// slicing, indexing, one-hot. Pure data movement — output buffers come from
// tx::alloc and are fully overwritten before use, so recycling cannot affect
// values.
#include <algorithm>
#include <cmath>

#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tx {

Tensor reshape(const Tensor& a, Shape new_shape) {
  // Support a single -1 wildcard dimension.
  std::int64_t wildcard = -1;
  std::int64_t known = 1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TX_CHECK(wildcard == -1, "reshape: more than one -1 in [",
               join(new_shape), "]");
      wildcard = static_cast<std::int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (wildcard >= 0) {
    TX_CHECK(known > 0 && a.numel() % known == 0, "reshape: cannot infer -1");
    new_shape[static_cast<std::size_t>(wildcard)] = a.numel() / known;
  }
  TX_CHECK(numel_of(new_shape) == a.numel(), "reshape: numel mismatch [",
           join(a.shape()), "] -> [", join(new_shape), "]");
  const Shape old_shape = a.shape();
  std::vector<float> out = alloc::buffer_uninit(a.numel());
  simd::copy_n(a.data(), out.data(), a.numel());
  return make_tensor_from_op(
      "reshape", new_shape, std::move(out), {a},
      [old_shape](const Tensor& g) {
        return std::vector<Tensor>{reshape(g, old_shape)};
      });
}

Tensor permute(const Tensor& a, const std::vector<std::int64_t>& dims) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  TX_CHECK(static_cast<std::int64_t>(dims.size()) == rank,
           "permute: dims arity mismatch");
  std::vector<bool> seen(dims.size(), false);
  Shape out_shape(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const std::int64_t d = normalize_axis(dims[i], rank);
    TX_CHECK(!seen[static_cast<std::size_t>(d)], "permute: repeated dim ", d);
    seen[static_cast<std::size_t>(d)] = true;
    out_shape[i] = a.shape()[static_cast<std::size_t>(d)];
  }
  const Shape in_strides = contiguous_strides(a.shape());
  std::vector<float> out = alloc::buffer_uninit(a.numel());
  const float* pa = a.data();
  for_each_index(out_shape, [&](const std::vector<std::int64_t>& idx,
                                std::int64_t flat) {
    std::int64_t src = 0;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const std::int64_t d = dims[i] < 0 ? dims[i] + rank : dims[i];
      src += idx[i] * in_strides[static_cast<std::size_t>(d)];
    }
    out[static_cast<std::size_t>(flat)] = pa[src];
  });
  // Inverse permutation for the backward pass.
  std::vector<std::int64_t> inverse(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const std::int64_t d = dims[i] < 0 ? dims[i] + rank : dims[i];
    inverse[static_cast<std::size_t>(d)] = static_cast<std::int64_t>(i);
  }
  return make_tensor_from_op(
      "permute", out_shape, std::move(out), {a},
      [inverse](const Tensor& g) {
        return std::vector<Tensor>{permute(g, inverse)};
      });
}

Tensor transpose(const Tensor& a, std::int64_t d0, std::int64_t d1) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  d0 = normalize_axis(d0, rank);
  d1 = normalize_axis(d1, rank);
  std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
  for (std::int64_t i = 0; i < rank; ++i) dims[static_cast<std::size_t>(i)] = i;
  std::swap(dims[static_cast<std::size_t>(d0)], dims[static_cast<std::size_t>(d1)]);
  return permute(a, dims);
}

Tensor broadcast_to(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  const Shape strides = broadcast_strides(a.shape(), target);
  std::vector<float> out = alloc::buffer_uninit(numel_of(target));
  const float* pa = a.data();
  for_each_index(target, [&](const std::vector<std::int64_t>& idx,
                             std::int64_t flat) {
    std::int64_t src = 0;
    for (std::size_t d = 0; d < target.size(); ++d) src += idx[d] * strides[d];
    out[static_cast<std::size_t>(flat)] = pa[src];
  });
  const Shape in_shape = a.shape();
  return make_tensor_from_op(
      "broadcast_to", target, std::move(out), {a},
      [in_shape](const Tensor& g) {
        return std::vector<Tensor>{sum_to(g, in_shape)};
      });
}

Tensor sum_to(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  const auto target_rank = static_cast<std::int64_t>(target.size());
  TX_CHECK(target_rank <= rank, "sum_to: target rank ", target_rank,
           " exceeds input rank ", rank);
  const std::int64_t extra = rank - target_rank;
  std::vector<std::int64_t> axes;
  for (std::int64_t i = 0; i < extra; ++i) axes.push_back(i);
  for (std::int64_t i = 0; i < target_rank; ++i) {
    const std::int64_t ad = a.shape()[static_cast<std::size_t>(extra + i)];
    const std::int64_t td = target[static_cast<std::size_t>(i)];
    TX_CHECK(td == ad || td == 1, "sum_to: [", join(a.shape()),
             "] not reducible to [", join(target), "]");
    if (td == 1 && ad != 1) axes.push_back(extra + i);
  }
  Tensor result = axes.empty() ? a : sum(a, axes, /*keepdim=*/true);
  return reshape(result, target);
}

Tensor cat(const std::vector<Tensor>& parts, std::int64_t axis) {
  TX_CHECK(!parts.empty(), "cat: no tensors");
  const auto rank = static_cast<std::int64_t>(parts[0].shape().size());
  axis = normalize_axis(axis, rank);
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<std::size_t>(axis)] = 0;
  std::vector<std::int64_t> sizes;
  for (const auto& p : parts) {
    TX_CHECK(static_cast<std::int64_t>(p.shape().size()) == rank,
             "cat: rank mismatch");
    for (std::int64_t d = 0; d < rank; ++d) {
      if (d == axis) continue;
      TX_CHECK(p.shape()[static_cast<std::size_t>(d)] ==
                   parts[0].shape()[static_cast<std::size_t>(d)],
               "cat: non-axis dim mismatch");
    }
    sizes.push_back(p.shape()[static_cast<std::size_t>(axis)]);
    out_shape[static_cast<std::size_t>(axis)] += sizes.back();
  }
  // outer = product of dims before axis, inner = product after.
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < axis; ++d) {
    outer *= out_shape[static_cast<std::size_t>(d)];
  }
  for (std::int64_t d = axis + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<std::size_t>(d)];
  }
  const std::int64_t total_axis = out_shape[static_cast<std::size_t>(axis)];
  std::vector<float> out = alloc::buffer_uninit(numel_of(out_shape));
  std::int64_t offset = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const float* src = parts[p].data();
    const std::int64_t len = sizes[p];
    for (std::int64_t o = 0; o < outer; ++o) {
      for (std::int64_t k = 0; k < len; ++k) {
        const auto dst_base =
            static_cast<std::size_t>((o * total_axis + offset + k) * inner);
        const auto src_base = static_cast<std::size_t>((o * len + k) * inner);
        std::copy_n(src + src_base, inner, out.begin() + static_cast<std::ptrdiff_t>(dst_base));
      }
    }
    offset += len;
  }
  const std::int64_t ax = axis;
  return make_tensor_from_op(
      "cat", out_shape, std::move(out), parts,
      [sizes, ax](const Tensor& g) {
        std::vector<Tensor> grads;
        std::int64_t start = 0;
        for (auto len : sizes) {
          grads.push_back(slice(g, ax, start, start + len));
          start += len;
        }
        return grads;
      });
}

Tensor stack(const std::vector<Tensor>& parts, std::int64_t axis) {
  TX_CHECK(!parts.empty(), "stack: no tensors");
  std::vector<Tensor> reshaped;
  reshaped.reserve(parts.size());
  const auto rank = static_cast<std::int64_t>(parts[0].shape().size());
  axis = normalize_axis(axis, rank + 1);
  for (const auto& p : parts) {
    Shape s = p.shape();
    s.insert(s.begin() + axis, 1);
    reshaped.push_back(reshape(p, s));
  }
  return cat(reshaped, axis);
}

Tensor slice(const Tensor& a, std::int64_t axis, std::int64_t start,
             std::int64_t end) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  axis = normalize_axis(axis, rank);
  const std::int64_t len = a.shape()[static_cast<std::size_t>(axis)];
  if (start < 0) start += len;
  if (end < 0) end += len;
  TX_CHECK(0 <= start && start <= end && end <= len, "slice range [", start,
           ", ", end, ") invalid for axis of size ", len);
  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(axis)] = end - start;
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < axis; ++d) outer *= a.shape()[static_cast<std::size_t>(d)];
  for (std::int64_t d = axis + 1; d < rank; ++d) inner *= a.shape()[static_cast<std::size_t>(d)];
  std::vector<float> out = alloc::buffer_uninit(numel_of(out_shape));
  const float* pa = a.data();
  const std::int64_t span = end - start;
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t k = 0; k < span; ++k) {
      const auto src = static_cast<std::size_t>((o * len + start + k) * inner);
      const auto dst = static_cast<std::size_t>((o * span + k) * inner);
      std::copy_n(pa + src, inner, out.begin() + static_cast<std::ptrdiff_t>(dst));
    }
  }
  const Shape in_shape = a.shape();
  const std::int64_t ax = axis, st = start, sp = span, in_len = len,
                     out_r = outer, in_r = inner;
  return make_tensor_from_op(
      "slice", out_shape, std::move(out), {a},
      [in_shape, ax, st, sp, in_len, out_r, in_r](const Tensor& g) {
        Tensor ga = zeros(in_shape);
        float* pg = ga.data();
        const float* src = g.data();
        for (std::int64_t o = 0; o < out_r; ++o) {
          for (std::int64_t k = 0; k < sp; ++k) {
            const auto dst = static_cast<std::size_t>((o * in_len + st + k) * in_r);
            const auto s = static_cast<std::size_t>((o * sp + k) * in_r);
            for (std::int64_t i = 0; i < in_r; ++i) {
              pg[dst + static_cast<std::size_t>(i)] += src[s + static_cast<std::size_t>(i)];
            }
          }
        }
        return std::vector<Tensor>{ga};
      });
}

Tensor index_select(const Tensor& a, std::int64_t axis,
                    const std::vector<std::int64_t>& indices) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  axis = normalize_axis(axis, rank);
  const std::int64_t len = a.shape()[static_cast<std::size_t>(axis)];
  for (auto idx : indices) {
    TX_CHECK(idx >= 0 && idx < len, "index_select: index ", idx,
             " out of range [0, ", len, ")");
  }
  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(axis)] =
      static_cast<std::int64_t>(indices.size());
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < axis; ++d) outer *= a.shape()[static_cast<std::size_t>(d)];
  for (std::int64_t d = axis + 1; d < rank; ++d) inner *= a.shape()[static_cast<std::size_t>(d)];
  std::vector<float> out = alloc::buffer_uninit(numel_of(out_shape));
  const float* pa = a.data();
  const auto k_out = static_cast<std::int64_t>(indices.size());
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t k = 0; k < k_out; ++k) {
      const auto src = static_cast<std::size_t>((o * len + indices[static_cast<std::size_t>(k)]) * inner);
      const auto dst = static_cast<std::size_t>((o * k_out + k) * inner);
      std::copy_n(pa + src, inner, out.begin() + static_cast<std::ptrdiff_t>(dst));
    }
  }
  const Shape in_shape = a.shape();
  const std::int64_t in_len = len, out_r = outer, in_r = inner;
  return make_tensor_from_op(
      "index_select", out_shape, std::move(out), {a},
      [in_shape, indices, in_len, out_r, in_r](const Tensor& g) {
        Tensor ga = zeros(in_shape);
        float* pg = ga.data();
        const float* src = g.data();
        const auto k_n = static_cast<std::int64_t>(indices.size());
        for (std::int64_t o = 0; o < out_r; ++o) {
          for (std::int64_t k = 0; k < k_n; ++k) {
            const auto dst = static_cast<std::size_t>(
                (o * in_len + indices[static_cast<std::size_t>(k)]) * in_r);
            const auto s = static_cast<std::size_t>((o * k_n + k) * in_r);
            for (std::int64_t i = 0; i < in_r; ++i) {
              pg[dst + static_cast<std::size_t>(i)] += src[s + static_cast<std::size_t>(i)];
            }
          }
        }
        return std::vector<Tensor>{ga};
      });
}

Tensor gather_last(const Tensor& a, const Tensor& index) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  TX_CHECK(rank >= 1, "gather_last needs rank >= 1");
  const std::int64_t classes = a.shape().back();
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  TX_CHECK(index.shape() == out_shape, "gather_last: index shape [",
           join(index.shape()), "] must equal leading dims [", join(out_shape),
           "]");
  const std::int64_t rows = numel_of(out_shape);
  std::vector<float> out = alloc::buffer_uninit(rows);
  std::vector<std::int64_t> picks(static_cast<std::size_t>(rows));
  const float* pa = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto c = static_cast<std::int64_t>(std::llround(index.at(r)));
    TX_CHECK(c >= 0 && c < classes, "gather_last: class index ", c,
             " out of range [0, ", classes, ")");
    picks[static_cast<std::size_t>(r)] = c;
    out[static_cast<std::size_t>(r)] = pa[r * classes + c];
  }
  const Shape in_shape = a.shape();
  return make_tensor_from_op(
      "gather_last", out_shape, std::move(out), {a, index},
      [in_shape, picks, classes](const Tensor& g) {
        Tensor ga = zeros(in_shape);
        for (std::size_t r = 0; r < picks.size(); ++r) {
          ga.at(static_cast<std::int64_t>(r) * classes + picks[r]) +=
              g.at(static_cast<std::int64_t>(r));
        }
        return std::vector<Tensor>{ga, Tensor()};
      });
}

Tensor one_hot(const Tensor& labels, std::int64_t depth) {
  Shape out_shape = labels.shape();
  out_shape.push_back(depth);
  Tensor out = zeros(out_shape);
  for (std::int64_t i = 0; i < labels.numel(); ++i) {
    const auto c = static_cast<std::int64_t>(std::llround(labels.at(i)));
    TX_CHECK(c >= 0 && c < depth, "one_hot: label ", c, " out of range [0, ",
             depth, ")");
    out.at(i * depth + c) = 1.0f;
  }
  return out;
}

}  // namespace tx
