// AVX2 backend for tx::simd. Compiled with -mavx2 (and ONLY -mavx2: FMA is
// deliberately not enabled, and the build passes -ffp-contract=off, so every
// multiply and add rounds separately — exactly like the scalar canonical
// kernels). Only the dispatch layer calls into this file, and only after
// __builtin_cpu_supports("avx2") confirmed the ISA at startup.
//
// Reductions keep 8 accumulator lanes in ymm registers; lane l holds the
// partial over elements l, l+8, l+16, ... — the identical layout the scalar
// canonical implementation maintains in its p[8] array — and the final
// combine uses the same fixed tree ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)).
#if defined(TX_SIMD_BUILD_AVX2)

#include <immintrin.h>

#include <cstdint>

namespace tx::simd::avx2 {

namespace {

// Combine one float accumulator register with the canonical tree.
inline float combine8(__m256 acc) {
  alignas(32) float p[8];
  _mm256_store_ps(p, acc);
  return ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
}

// Combine two double accumulator registers (lanes 0-3 and 4-7).
inline double combine8d(__m256d lo, __m256d hi) {
  alignas(32) double a[4];
  alignas(32) double b[4];
  _mm256_store_pd(a, lo);
  _mm256_store_pd(b, hi);
  return ((a[0] + a[1]) + (a[2] + a[3])) + ((b[0] + b[1]) + (b[2] + b[3]));
}

}  // namespace

void add_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void sub_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void mul_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void div_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] / b[i];
}

void max_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = (a[i] > b[i]) ? a[i] : b[i];
}

void min_n(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_min_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = (a[i] < b[i]) ? a[i] : b[i];
}

void mul_add_n(const float* a, const float* b, const float* c, float* o,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(o + i, _mm256_add_ps(prod, _mm256_loadu_ps(c + i)));
  }
  for (; i < n; ++i) {
    const float prod = a[i] * b[i];
    o[i] = prod + c[i];
  }
}

void axpy_n(float s, const float* x, float* o, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(vs, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(o + i), prod));
  }
  for (; i < n; ++i) {
    const float prod = s * x[i];
    o[i] = o[i] + prod;
  }
}

void scale_n(const float* a, float s, float* o, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(vs, _mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = s * a[i];
}

void neg_n(const float* a, float* o, std::int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  for (; i < n; ++i) o[i] = -a[i];
}

void abs_n(const float* a, float* o, std::int64_t n) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_and_ps(_mm256_loadu_ps(a + i), mask));
  }
  for (; i < n; ++i) o[i] = __builtin_fabsf(a[i]);
}

void relu_n(const float* a, float* o, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < n; ++i) o[i] = (a[i] > 0.0f) ? a[i] : 0.0f;
}

void sqrt_n(const float* a, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sqrt_ps(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = __builtin_sqrtf(a[i]);
}

void clamp_n(const float* a, float lo, float hi, float* o, std::int64_t n) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_max_ps(_mm256_loadu_ps(a + i), vlo);
    _mm256_storeu_ps(o + i, _mm256_min_ps(v, vhi));
  }
  for (; i < n; ++i) {
    const float v = (a[i] > lo) ? a[i] : lo;
    o[i] = (v < hi) ? v : hi;
  }
}

float dot8(const float* a, const float* b, std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, prod);
  }
  float total = combine8(acc);
  for (std::int64_t i = main_n; i < n; ++i) {
    const float prod = a[i] * b[i];
    total = total + prod;
  }
  return total;
}

float sum8f(const float* x, std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  }
  float total = combine8(acc);
  for (std::int64_t i = main_n; i < n; ++i) total = total + x[i];
  return total;
}

double sum8(const float* x, std::int64_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double total = combine8d(acc_lo, acc_hi);
  for (std::int64_t i = main_n; i < n; ++i) {
    total = total + static_cast<double>(x[i]);
  }
  return total;
}

double sumsq8(const float* x, std::int64_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 sq = _mm256_mul_ps(v, v);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(sq)));
    acc_hi =
        _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(sq, 1)));
  }
  double total = combine8d(acc_lo, acc_hi);
  for (std::int64_t i = main_n; i < n; ++i) {
    const float sq = x[i] * x[i];
    total = total + static_cast<double>(sq);
  }
  return total;
}

}  // namespace tx::simd::avx2

#endif  // TX_SIMD_BUILD_AVX2
