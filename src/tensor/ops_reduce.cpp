// Reductions: sum/mean over axis sets, max/min over a single axis,
// logsumexp, softmax, log_softmax, cumsum, argmax.
//
// Axis sums above kReduceParThreshold elements fan out over output cells via
// tx::par. Each cell folds its contributions in a fixed per-cell order that
// is a pure function of the shape — never of the thread count or SIMD level —
// so results are bitwise-identical at every TYXE_NUM_THREADS and TYXE_SIMD.
// The full sum uses the canonical 8-lane double reduction (tx::simd::sum8);
// contiguous-innermost axis cells use the canonical float reduction (sum8f).
// Extremum scans and cumsum are order-sensitive and stay sequential scalar.
#include <algorithm>
#include <cmath>

#include "obs/event_sink.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tx {

namespace {

/// Elements above which an axis reduction fans out.
constexpr std::int64_t kReduceParThreshold = std::int64_t{1} << 15;

/// Maps every flat input index to its flat output index for a keepdim
/// reduction over `axes`.
struct ReducePlan {
  Shape keep_shape;               // input shape with reduced dims set to 1
  std::vector<std::int64_t> map;  // input flat -> output flat
};

ReducePlan make_reduce_plan(const Shape& in_shape,
                            const std::vector<std::int64_t>& axes) {
  const auto rank = static_cast<std::int64_t>(in_shape.size());
  std::vector<bool> reduce(in_shape.size(), false);
  for (auto ax : axes) {
    reduce[static_cast<std::size_t>(normalize_axis(ax, rank))] = true;
  }
  ReducePlan plan;
  plan.keep_shape = in_shape;
  for (std::size_t i = 0; i < in_shape.size(); ++i) {
    if (reduce[i]) plan.keep_shape[i] = 1;
  }
  const Shape out_strides = contiguous_strides(plan.keep_shape);
  plan.map.resize(static_cast<std::size_t>(numel_of(in_shape)));
  for_each_index(in_shape, [&](const std::vector<std::int64_t>& idx,
                               std::int64_t flat) {
    std::int64_t out = 0;
    for (std::size_t d = 0; d < in_shape.size(); ++d) {
      if (!reduce[d]) out += idx[d] * out_strides[d];
    }
    plan.map[static_cast<std::size_t>(flat)] = out;
  });
  return plan;
}

}  // namespace

Tensor sum(const Tensor& a) {
  const double s = simd::sum8(a.data(), a.numel());
  const Shape in_shape = a.shape();
  return make_tensor_from_op(
      "sum", Shape{}, {static_cast<float>(s)}, {a},
      [in_shape](const Tensor& g) {
        return std::vector<Tensor>{broadcast_to(g, in_shape)};
      });
}

Tensor sum(const Tensor& a, const std::vector<std::int64_t>& axes,
           bool keepdim) {
  TX_CHECK(!axes.empty(), "sum: empty axis list (use sum(a) for full sum)");
  const ReducePlan plan = make_reduce_plan(a.shape(), axes);
  const std::int64_t out_n = numel_of(plan.keep_shape);
  std::vector<float> out = alloc::buffer(out_n);
  const float* pa = a.data();
  const std::int64_t n = a.numel();
  if (n >= kReduceParThreshold && out_n > 1) {
    obs::TraceSpan trace(
        "par.reduce_sum",
        obs::tracing()
            ? obs::Event().set("n", n).set("out_n", out_n).to_json()
            : std::string());
    obs::prof::KernelScope prof("reduce_sum", n, 4 * (n + out_n));
    // Per-output-cell kernel with disjoint writes. An input flat index
    // decomposes as base(cell) + offset(reduced coords); for a fixed cell,
    // ascending offset order equals ascending input flat order, so folding
    // each cell over ascending offsets reproduces the sequential loop's
    // per-cell accumulation order bitwise.
    const auto rank = static_cast<std::int64_t>(a.shape().size());
    std::vector<bool> reduce(a.shape().size(), false);
    for (auto ax : axes) {
      reduce[static_cast<std::size_t>(normalize_axis(ax, rank))] = true;
    }
    const Shape in_strides = contiguous_strides(a.shape());
    Shape red_shape;        // reduced dims only, original order
    Shape red_strides;      // their input strides
    for (std::size_t d = 0; d < a.shape().size(); ++d) {
      if (reduce[d]) {
        red_shape.push_back(a.shape()[d]);
        red_strides.push_back(in_strides[d]);
      }
    }
    // Lexicographic enumeration over the reduced dims yields strictly
    // ascending flat offsets (mixed-radix carry argument).
    std::vector<std::int64_t> offsets;
    offsets.reserve(static_cast<std::size_t>(numel_of(red_shape)));
    for_each_index(red_shape, [&](const std::vector<std::int64_t>& idx,
                                  std::int64_t) {
      std::int64_t off = 0;
      for (std::size_t d = 0; d < red_shape.size(); ++d) {
        off += idx[d] * red_strides[d];
      }
      offsets.push_back(off);
    });
    std::vector<std::int64_t> bases(static_cast<std::size_t>(out_n));
    for_each_index(plan.keep_shape, [&](const std::vector<std::int64_t>& idx,
                                        std::int64_t flat) {
      std::int64_t base = 0;
      for (std::size_t d = 0; d < plan.keep_shape.size(); ++d) {
        if (!reduce[d]) base += idx[d] * in_strides[d];
      }
      bases[static_cast<std::size_t>(flat)] = base;
    });
    const auto r = static_cast<std::int64_t>(offsets.size());
    const std::int64_t grain = std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, r));
    float* po = out.data();
    // When the reduced dims form the innermost contiguous block, offsets are
    // exactly 0..r-1 (strictly ascending from 0, so back()==r-1 suffices) and
    // each cell is a dense run: use the canonical 8-lane float reduction.
    // The choice is a pure function of the shape, so it cannot vary across
    // thread counts or SIMD levels.
    const bool dense_cells = !offsets.empty() && offsets.back() == r - 1;
    par::parallel_for(0, out_n, grain, [&](std::int64_t o0, std::int64_t o1) {
      for (std::int64_t o = o0; o < o1; ++o) {
        const std::int64_t base = bases[static_cast<std::size_t>(o)];
        if (dense_cells) {
          po[o] = simd::sum8f(pa + base, r);
          continue;
        }
        float acc = 0.0f;
        for (std::int64_t j = 0; j < r; ++j) {
          acc += pa[base + offsets[static_cast<std::size_t>(j)]];
        }
        po[o] = acc;
      }
    });
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(plan.map[static_cast<std::size_t>(i)])] += pa[i];
    }
  }
  const Shape final_shape =
      keepdim ? plan.keep_shape : reduced_shape(a.shape(), axes, false);
  const Shape in_shape = a.shape();
  const Shape keep_shape = plan.keep_shape;
  return make_tensor_from_op(
      "sum_axes", final_shape, std::move(out), {a},
      [in_shape, keep_shape](const Tensor& g) {
        return std::vector<Tensor>{
            broadcast_to(reshape(g, keep_shape), in_shape)};
      });
}

Tensor mean(const Tensor& a) {
  return div(sum(a), Tensor::scalar(static_cast<float>(a.numel())));
}

Tensor mean(const Tensor& a, const std::vector<std::int64_t>& axes,
            bool keepdim) {
  Tensor s = sum(a, axes, keepdim);
  const float scale = static_cast<float>(s.numel()) /
                      static_cast<float>(a.numel());
  return mul(s, Tensor::scalar(scale));
}

namespace {

/// Shared implementation of max/min over one axis; `sign` +1 for max, -1 for
/// min. Gradient routes to the first extremal element along the axis.
Tensor extremum(const Tensor& a, std::int64_t axis, bool keepdim, float sign,
                const char* name) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  axis = normalize_axis(axis, rank);
  const ReducePlan plan = make_reduce_plan(a.shape(), {axis});
  const std::int64_t out_n = numel_of(plan.keep_shape);
  std::vector<float> out = alloc::buffer_uninit(out_n);
  std::fill(out.begin(), out.end(), -std::numeric_limits<float>::infinity());
  std::vector<std::int64_t> arg(static_cast<std::size_t>(out_n), -1);
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const auto o = static_cast<std::size_t>(plan.map[static_cast<std::size_t>(i)]);
    const float v = sign * pa[i];
    if (v > out[o]) {
      out[o] = v;
      arg[o] = i;
    }
  }
  for (auto& v : out) v *= sign;
  const Shape final_shape =
      keepdim ? plan.keep_shape : reduced_shape(a.shape(), {axis}, false);
  const Shape in_shape = a.shape();
  return make_tensor_from_op(
      name, final_shape, std::move(out), {a},
      [in_shape, arg](const Tensor& g) {
        Tensor ga = zeros(in_shape);
        for (std::size_t o = 0; o < arg.size(); ++o) {
          ga.at(arg[o]) += g.at(static_cast<std::int64_t>(o));
        }
        return std::vector<Tensor>{ga};
      });
}

}  // namespace

Tensor max(const Tensor& a, std::int64_t axis, bool keepdim) {
  return extremum(a, axis, keepdim, 1.0f, "max");
}

Tensor min(const Tensor& a, std::int64_t axis, bool keepdim) {
  return extremum(a, axis, keepdim, -1.0f, "min");
}

Tensor logsumexp(const Tensor& a, std::int64_t axis, bool keepdim) {
  // Subtracting the detached max is exact: the max term cancels analytically.
  Tensor m;
  {
    NoGradGuard ng;
    m = max(a, axis, /*keepdim=*/true);
  }
  Tensor shifted = sub(a, m);
  Tensor lse = add(log(sum(exp(shifted), {axis}, /*keepdim=*/true)), m);
  if (!keepdim) {
    lse = reshape(lse, reduced_shape(a.shape(), {axis}, false));
  }
  return lse;
}

Tensor softmax(const Tensor& a, std::int64_t axis) {
  Tensor m;
  {
    NoGradGuard ng;
    m = max(a, axis, /*keepdim=*/true);
  }
  Tensor e = exp(sub(a, m));
  return div(e, sum(e, {axis}, /*keepdim=*/true));
}

Tensor log_softmax(const Tensor& a, std::int64_t axis) {
  return sub(a, logsumexp(a, axis, /*keepdim=*/true));
}

Tensor cumsum(const Tensor& a, std::int64_t axis) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  axis = normalize_axis(axis, rank);
  const Shape& shape = a.shape();
  const Shape strides = contiguous_strides(shape);
  const std::int64_t len = shape[static_cast<std::size_t>(axis)];
  const std::int64_t stride = strides[static_cast<std::size_t>(axis)];
  // Iterate over all "lines" along the axis.
  const std::int64_t n = a.numel();
  std::vector<float> out = alloc::buffer_uninit(n);
  simd::copy_n(a.data(), out.data(), n);
  const std::int64_t line_block = stride * len;
  for (std::int64_t base = 0; base < n; base += line_block) {
    for (std::int64_t off = 0; off < stride; ++off) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < len; ++k) {
        const auto idx = static_cast<std::size_t>(base + off + k * stride);
        acc += out[idx];
        out[idx] = static_cast<float>(acc);
      }
    }
  }
  const std::int64_t ax = axis;
  return make_tensor_from_op(
      "cumsum", shape, std::move(out), {a},
      [shape, strides, len, stride, ax](const Tensor& g) {
        // d/dx_i sum over outputs j>=i -> reverse cumulative sum of g.
        std::vector<float> gv = alloc::buffer_uninit(g.numel());
        simd::copy_n(g.data(), gv.data(), g.numel());
        const std::int64_t total = static_cast<std::int64_t>(gv.size());
        const std::int64_t block = stride * len;
        for (std::int64_t base = 0; base < total; base += block) {
          for (std::int64_t off = 0; off < stride; ++off) {
            double acc = 0.0;
            for (std::int64_t k = len - 1; k >= 0; --k) {
              const auto idx = static_cast<std::size_t>(base + off + k * stride);
              acc += gv[idx];
              gv[idx] = static_cast<float>(acc);
            }
          }
        }
        (void)ax;
        return std::vector<Tensor>{Tensor(shape, std::move(gv))};
      });
}

Tensor argmax(const Tensor& a, std::int64_t axis) {
  const auto rank = static_cast<std::int64_t>(a.shape().size());
  axis = normalize_axis(axis, rank);
  const ReducePlan plan = make_reduce_plan(a.shape(), {axis});
  const std::int64_t out_n = numel_of(plan.keep_shape);
  std::vector<float> best(static_cast<std::size_t>(out_n),
                          -std::numeric_limits<float>::infinity());
  std::vector<float> arg(static_cast<std::size_t>(out_n), 0.0f);
  // Recover the coordinate along `axis` from the flat index.
  const Shape strides = contiguous_strides(a.shape());
  const std::int64_t ax_stride = strides[static_cast<std::size_t>(axis)];
  const std::int64_t ax_len = a.shape()[static_cast<std::size_t>(axis)];
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const auto o = static_cast<std::size_t>(plan.map[static_cast<std::size_t>(i)]);
    if (pa[i] > best[o]) {
      best[o] = pa[i];
      arg[o] = static_cast<float>((i / ax_stride) % ax_len);
    }
  }
  return Tensor(reduced_shape(a.shape(), {axis}, false), std::move(arg));
}

}  // namespace tx
