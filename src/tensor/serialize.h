// Tensor serialization: a simple self-describing text format ("TXT1") used
// for checkpointing module state dicts and parameter stores. Values are
// written as lossless hexfloats.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.h"

namespace tx {

/// Write one tensor (shape + values). Gradients and autograd state are not
/// serialized; loaded tensors are plain leaves.
void save_tensor(std::ostream& os, const Tensor& t);
Tensor load_tensor(std::istream& is);

/// Convenience file round trip for a single tensor.
void save_tensor_file(const std::string& path, const Tensor& t);
Tensor load_tensor_file(const std::string& path);

}  // namespace tx
