// Fused single-pass kernels for the chains that dominate SVI/HMC steps:
//   fma(a, b, c)              = add(mul(a, b), c)      (rsample, leapfrog)
//   square_sum(a)             = sum(square(a))         (grad-norm instrument)
//   gauss_logpdf_sum(v, l, s) = sum(Normal(l,s).log_prob(v))  (ELBO terms)
//
// Each replaces a multi-op graph (one intermediate tensor per op) with one
// output tensor and, for gauss_logpdf_sum, two cached backward tensors —
// cutting allocator traffic and memory churn per step.
//
// Determinism contract: multiplies and adds round separately (the build sets
// -ffp-contract=off and the simd kernels never use hardware FMA), reductions
// use the canonical 8-lane tree from tx::simd, and every branch below is a
// pure function of shapes — so results are bitwise identical across
// TYXE_NUM_THREADS and TYXE_SIMD settings.
#include <cmath>

#include "obs/event_sink.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tx {

namespace {

/// Elements above which fma fans out (same thresholds as ops_elementwise).
constexpr std::int64_t kFusedParThreshold = std::int64_t{1} << 15;
constexpr std::int64_t kFusedGrain = std::int64_t{1} << 12;

/// log(sqrt(2*pi)), rounded to float once so every path subtracts the same
/// constant.
constexpr float kLogSqrt2Pi = 0.9189385332046727f;

}  // namespace

Tensor fma(const Tensor& a, const Tensor& b, const Tensor& c) {
  const Shape out_shape =
      broadcast_shapes(broadcast_shapes(a.shape(), b.shape()), c.shape());
  const std::int64_t n = numel_of(out_shape);
  std::vector<float> out = alloc::buffer_uninit(n);
  const float* pa = a.data();
  const float* pb = b.data();
  const float* pc = c.data();
  float* po = out.data();
  // 2 flops per element (mul + add); three reads, one write.
  obs::prof::KernelScope prof("fused_fma", 2 * n, 16 * n);
  if (a.shape() == out_shape && b.shape() == out_shape &&
      c.shape() == out_shape) {
    if (n >= kFusedParThreshold) {
      obs::TraceSpan trace(
          "par.fused_fma",
          obs::tracing() ? obs::Event().set("n", n).to_json() : std::string());
      par::parallel_for(0, n, kFusedGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          simd::mul_add_n(pa + i0, pb + i0, pc + i0, po + i0,
                                          i1 - i0);
                        });
    } else {
      simd::mul_add_n(pa, pb, pc, po, n);
    }
  } else {
    const Shape as = broadcast_strides(a.shape(), out_shape);
    const Shape bs = broadcast_strides(b.shape(), out_shape);
    const Shape cs = broadcast_strides(c.shape(), out_shape);
    for_each_index(out_shape, [&](const std::vector<std::int64_t>& idx,
                                  std::int64_t flat) {
      std::int64_t ao = 0, bo = 0, co = 0;
      for (std::size_t d = 0; d < out_shape.size(); ++d) {
        ao += idx[d] * as[d];
        bo += idx[d] * bs[d];
        co += idx[d] * cs[d];
      }
      po[flat] = pa[ao] * pb[bo] + pc[co];
    });
  }
  const Shape a_shape = a.shape(), b_shape = b.shape(), c_shape = c.shape();
  return make_tensor_from_op(
      "fused_fma", out_shape, std::move(out), {a, b, c},
      [a, b, a_shape, b_shape, c_shape](const Tensor& g) {
        return std::vector<Tensor>{sum_to(mul(g, b), a_shape),
                                   sum_to(mul(g, a), b_shape),
                                   sum_to(g, c_shape)};
      });
}

Tensor square_sum(const Tensor& a) {
  const std::int64_t n = a.numel();
  double s = 0.0;
  {
    // One mul + one add per element; input read once, scalar written.
    obs::prof::KernelScope prof("square_sum", 2 * n, 4 * (n + 1));
    s = simd::sumsq8(a.data(), n);
  }
  return make_tensor_from_op(
      "square_sum", Shape{}, {static_cast<float>(s)}, {a},
      [a](const Tensor& g) {
        return std::vector<Tensor>{mul(a, mul(g, Tensor::scalar(2.0f)))};
      });
}

Tensor gauss_logpdf_sum(const Tensor& value, const Tensor& loc,
                        const Tensor& scale) {
  const Shape& vshape = value.shape();
  TX_CHECK(broadcast_shapes(vshape, loc.shape()) == vshape,
           "gauss_logpdf_sum: loc [", join(loc.shape()),
           "] must broadcast to value [", join(vshape), "]");
  TX_CHECK(broadcast_shapes(vshape, scale.shape()) == vshape,
           "gauss_logpdf_sum: scale [", join(scale.shape()),
           "] must broadcast to value [", join(vshape), "]");
  const std::int64_t n = value.numel();
  const std::int64_t sn = scale.numel();
  const float* pv = value.data();
  const float* pl = loc.data();
  const float* ps = scale.data();
  // z is cached for the backward pass; lp is pure scratch for the canonical
  // reduction and stays a plain (unobserved) vector like other op scratch.
  std::vector<float> zb = alloc::buffer_uninit(n);
  std::vector<float> invb = alloc::buffer_uninit(sn);
  for (std::int64_t j = 0; j < sn; ++j) invb[j] = 1.0f / ps[j];
  std::vector<float> lp(static_cast<std::size_t>(n));
  double s = 0.0;
  {
    // Per element: sub, div, two muls, two subs, plus the log (counted as 2).
    obs::prof::KernelScope prof("gauss_logpdf", 8 * n, 4 * (4 * n + 1));
    if (loc.numel() == 1 && sn == 1) {
      const float l0 = pl[0], s0 = ps[0];
      const float log_s = std::log(s0);
      for (std::int64_t i = 0; i < n; ++i) {
        const float z = (pv[i] - l0) / s0;
        zb[static_cast<std::size_t>(i)] = z;
        lp[static_cast<std::size_t>(i)] =
            -0.5f * (z * z) - log_s - kLogSqrt2Pi;
      }
    } else if (loc.shape() == vshape && scale.shape() == vshape) {
      for (std::int64_t i = 0; i < n; ++i) {
        const float z = (pv[i] - pl[i]) / ps[i];
        zb[static_cast<std::size_t>(i)] = z;
        lp[static_cast<std::size_t>(i)] =
            -0.5f * (z * z) - std::log(ps[i]) - kLogSqrt2Pi;
      }
    } else {
      const Shape ls = broadcast_strides(loc.shape(), vshape);
      const Shape ss = broadcast_strides(scale.shape(), vshape);
      for_each_index(vshape, [&](const std::vector<std::int64_t>& idx,
                                 std::int64_t flat) {
        std::int64_t lo = 0, so = 0;
        for (std::size_t d = 0; d < vshape.size(); ++d) {
          lo += idx[d] * ls[d];
          so += idx[d] * ss[d];
        }
        const float z = (pv[flat] - pl[lo]) / ps[so];
        zb[static_cast<std::size_t>(flat)] = z;
        lp[static_cast<std::size_t>(flat)] =
            -0.5f * (z * z) - std::log(ps[so]) - kLogSqrt2Pi;
      });
    }
    s = simd::sum8(lp.data(), n);
  }
  // Detached caches: z = (v - loc)/scale and 1/scale (per scale element).
  Tensor Z(vshape, std::move(zb));
  Tensor INV(scale.shape(), std::move(invb));
  const Shape loc_shape = loc.shape(), scale_shape = scale.shape();
  return make_tensor_from_op(
      "gauss_logpdf_sum", Shape{}, {static_cast<float>(s)},
      {value, loc, scale},
      [Z, INV, loc_shape, scale_shape](const Tensor& g) {
        // d/dv = -g*z/s, d/dloc = g*z/s, d/dscale = g*(z^2 - 1)/s.
        Tensor t = mul(mul(Z, INV), g);
        Tensor dv = neg(t);
        Tensor dl = sum_to(t, loc_shape);
        Tensor z2m1 = sub(mul(Z, Z), Tensor::scalar(1.0f));
        Tensor ds = sum_to(mul(mul(z2m1, INV), g), scale_shape);
        return std::vector<Tensor>{dv, dl, ds};
      });
}

}  // namespace tx
