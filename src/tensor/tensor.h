// Dense float tensor with reverse-mode automatic differentiation.
//
// Design notes:
//  * Tensors are handles (shared_ptr to TensorImpl), like torch: copying a
//    Tensor aliases the same storage and autograd state.
//  * Storage is always contiguous row-major. Views (reshape/permute/slice)
//    copy; at the scales of this library that is cheap and keeps every kernel
//    trivially correct.
//  * Autograd is a classic tape: ops attach a GradNode holding the input
//    handles and a backward closure; Tensor::backward() topologically sorts
//    the graph and accumulates gradients into each impl's grad buffer.
//  * Backward closures must never capture their own output Tensor (that would
//    create a shared_ptr cycle); capture out.detach() instead when the output
//    values are needed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/common.h"
#include "util/random.h"

namespace tx {

class Tensor;

/// Autograd tape node: remembers the op's inputs and how to turn the output
/// gradient into input gradients (one slot per input; undefined Tensor for
/// non-differentiable slots).
struct GradNode {
  std::string op_name;
  std::vector<Tensor> inputs;
  std::function<std::vector<Tensor>(const Tensor& grad_out)> backward_fn;
  // Alternative backward that additionally receives the op's own output as a
  // zero-copy alias. Ops whose gradient reuses forward results register this
  // (via make_tensor_from_op_with_out) instead of capturing a detached copy
  // of the output in the closure. Exactly one of the two is set.
  std::function<std::vector<Tensor>(const Tensor& grad_out, const Tensor& out)>
      backward_with_out_fn;
};

struct TensorImpl {
  TensorImpl();
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until a gradient is accumulated
  bool requires_grad = false;
  std::shared_ptr<GradNode> grad_fn;  // null for leaves

  /// Re-sync tx::obs::mem accounting with the current data/grad capacity.
  /// Every code path that resizes either buffer calls this afterwards.
  /// Growth served from the tx::alloc step pool is recognized via the
  /// thread's acquisition credit and not re-reported as fresh heap traffic.
  void account();

  /// Release the grad buffer, donating it to the step pool when one is
  /// active (otherwise freeing it), with exact accounting either way.
  void release_grad();

 private:
  std::int64_t accounted_bytes_ = 0;
};

/// Is gradient recording currently enabled (thread-local)?
bool grad_enabled();

/// RAII guard disabling gradient recording, like torch.no_grad().
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// RAII override of the thread-local grad-recording flag to an explicit
/// value (either direction). tx::par uses this to propagate the caller's
/// grad mode into pool worker tasks.
class GradModeScope {
 public:
  explicit GradModeScope(bool enabled);
  ~GradModeScope();
  GradModeScope(const GradModeScope&) = delete;
  GradModeScope& operator=(const GradModeScope&) = delete;

 private:
  bool previous_;
};

class Tensor {
 public:
  /// Undefined tensor (null handle). defined() is false.
  Tensor() = default;

  /// Tensor of the given shape filled with `fill`.
  explicit Tensor(Shape shape, float fill = 0.0f);

  /// Tensor adopting the given data; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor scalar(float v) { return Tensor(Shape{}, {v}); }

  /// 1-D tensor from values.
  static Tensor from_vector(std::vector<float> values);

  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const;
  std::int64_t rank() const { return static_cast<std::int64_t>(shape().size()); }
  /// Size of dimension i (negative indices count from the back).
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const;

  float* data();
  const float* data() const;
  std::vector<float> to_vector() const;

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  /// Flat element access (row-major).
  float& at(std::int64_t flat);
  float at(std::int64_t flat) const;

  bool requires_grad() const;
  /// Mark a leaf as requiring gradient; illegal on op results.
  Tensor& set_requires_grad(bool value);
  bool is_leaf() const;

  /// True once a gradient has been accumulated for this tensor.
  bool has_grad() const;
  /// Copy of the accumulated gradient as a tensor (zeros if none yet).
  Tensor grad() const;
  /// Direct read-only access to the gradient buffer (sized 0 if none).
  const std::vector<float>& grad_buffer() const;
  void zero_grad();

  /// Run reverse-mode autodiff from this scalar tensor.
  void backward() const;

  /// New leaf tensor with copied data and no autograd history.
  Tensor detach() const;
  /// Differentiable copy (identity op on the tape).
  Tensor clone() const;

  // ---- in-place mutation (leaf tensors only; bypasses autograd). Used by
  // optimizers and parameter initialization.
  void add_(const Tensor& other, float alpha = 1.0f);
  void mul_(float s);
  void fill_(float v);
  void copy_(const Tensor& src);

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  // ---- convenience member forms of common free-function ops.
  Tensor reshape(Shape new_shape) const;
  Tensor flatten(std::int64_t start_dim = 0) const;
  Tensor transpose(std::int64_t a, std::int64_t b) const;
  Tensor sum() const;
  Tensor mean() const;

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<TensorImpl> impl_;

  friend Tensor make_tensor_from_op(
      std::string op_name, Shape shape, std::vector<float> data,
      std::vector<Tensor> inputs,
      std::function<std::vector<Tensor>(const Tensor&)> backward_fn);
};

/// Core helper every op uses: build the result tensor and, if gradients are
/// enabled and any input participates in the graph, attach the tape node.
Tensor make_tensor_from_op(
    std::string op_name, Shape shape, std::vector<float> data,
    std::vector<Tensor> inputs,
    std::function<std::vector<Tensor>(const Tensor&)> backward_fn);

/// Variant whose backward receives (grad_out, out): `out` aliases the op's
/// output impl (no copy, no shared_ptr cycle — the tape node does not own
/// it). Use when the gradient is a function of the forward result, e.g.
/// y' = y for exp or y' = 1 - y^2 for tanh.
Tensor make_tensor_from_op_with_out(
    std::string op_name, Shape shape, std::vector<float> data,
    std::vector<Tensor> inputs,
    std::function<std::vector<Tensor>(const Tensor&, const Tensor&)>
        backward_fn);

// ---- factories -----------------------------------------------------------

Tensor zeros(Shape shape);
Tensor ones(Shape shape);
Tensor full(Shape shape, float v);
Tensor zeros_like(const Tensor& t);
Tensor ones_like(const Tensor& t);
/// [0, 1, ..., n-1] as floats.
Tensor arange(std::int64_t n);
Tensor linspace(float lo, float hi, std::int64_t n);
Tensor eye(std::int64_t n);

/// Standard-normal samples; uses the global generator when gen is null.
Tensor randn(Shape shape, Generator* gen = nullptr);
/// Uniform [lo, hi) samples.
Tensor rand_uniform(Shape shape, float lo = 0.0f, float hi = 1.0f,
                    Generator* gen = nullptr);
/// Integer samples in [lo, hi] stored as floats.
Tensor randint(Shape shape, std::int64_t lo, std::int64_t hi,
               Generator* gen = nullptr);
/// Random ±1 signs.
Tensor rand_sign(Shape shape, Generator* gen = nullptr);

// ---- elementwise binary (NumPy broadcasting) ------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
/// max(a, b) elementwise; gradient routes to the winning side (ties to a).
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return add(a, Tensor::scalar(s)); }
inline Tensor operator-(const Tensor& a, float s) { return sub(a, Tensor::scalar(s)); }
inline Tensor operator*(const Tensor& a, float s) { return mul(a, Tensor::scalar(s)); }
inline Tensor operator/(const Tensor& a, float s) { return div(a, Tensor::scalar(s)); }
inline Tensor operator+(float s, const Tensor& a) { return add(Tensor::scalar(s), a); }
inline Tensor operator-(float s, const Tensor& a) { return sub(Tensor::scalar(s), a); }
inline Tensor operator*(float s, const Tensor& a) { return mul(Tensor::scalar(s), a); }
inline Tensor operator/(float s, const Tensor& a) { return div(Tensor::scalar(s), a); }

// ---- elementwise unary -----------------------------------------------------

Tensor neg(const Tensor& a);
inline Tensor operator-(const Tensor& a) { return neg(a); }
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor relu(const Tensor& a);
/// log(1 + exp(x)) computed stably.
Tensor softplus(const Tensor& a);
Tensor sin(const Tensor& a);
Tensor cos(const Tensor& a);
Tensor erf(const Tensor& a);
/// x^p for scalar p (x must be positive when p is non-integer).
Tensor pow_scalar(const Tensor& a, float p);
/// Clamp with gradient passing only through unclamped elements.
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor clamp_min(const Tensor& a, float lo);
Tensor clamp_max(const Tensor& a, float hi);

// ---- fused single-pass kernels ---------------------------------------------

/// Elementwise a*b + c with NumPy broadcasting in one pass (multiply and add
/// round separately — not a hardware FMA — so the result is bitwise equal to
/// add(mul(a, b), c)). Collapses the rsample/leapfrog mul+add chains.
Tensor fma(const Tensor& a, const Tensor& b, const Tensor& c);
/// sum(square(a)) as a rank-0 tensor in one pass (canonical order-fixed
/// reduction; bitwise-invariant to thread count and SIMD level).
Tensor square_sum(const Tensor& a);
/// Sum of elementwise Normal(loc, scale) log-densities of `value` in one
/// pass; loc/scale broadcast to value's shape. The fused ELBO/leapfrog
/// log_prob_sum kernel.
Tensor gauss_logpdf_sum(const Tensor& value, const Tensor& loc,
                        const Tensor& scale);

// ---- reductions ------------------------------------------------------------

/// Sum of all elements (rank-0 result).
Tensor sum(const Tensor& a);
/// Sum over the given axes.
Tensor sum(const Tensor& a, const std::vector<std::int64_t>& axes,
           bool keepdim = false);
Tensor mean(const Tensor& a);
Tensor mean(const Tensor& a, const std::vector<std::int64_t>& axes,
            bool keepdim = false);
/// Max over one axis. Gradient flows to the (first) argmax element.
Tensor max(const Tensor& a, std::int64_t axis, bool keepdim = false);
Tensor min(const Tensor& a, std::int64_t axis, bool keepdim = false);
/// Stable log-sum-exp over one axis.
Tensor logsumexp(const Tensor& a, std::int64_t axis, bool keepdim = false);
Tensor softmax(const Tensor& a, std::int64_t axis = -1);
Tensor log_softmax(const Tensor& a, std::int64_t axis = -1);
/// Inclusive cumulative sum along an axis.
Tensor cumsum(const Tensor& a, std::int64_t axis);

/// Argmax indices along an axis (no gradient; float-encoded indices).
Tensor argmax(const Tensor& a, std::int64_t axis);

// ---- shape ops -------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape new_shape);
Tensor permute(const Tensor& a, const std::vector<std::int64_t>& dims);
Tensor transpose(const Tensor& a, std::int64_t d0, std::int64_t d1);
/// Materialized broadcast; backward sums over broadcast dims.
Tensor broadcast_to(const Tensor& a, const Shape& target);
/// Reduce-sum a down to `target` (inverse of broadcast_to).
Tensor sum_to(const Tensor& a, const Shape& target);
Tensor cat(const std::vector<Tensor>& parts, std::int64_t axis);
Tensor stack(const std::vector<Tensor>& parts, std::int64_t axis = 0);
/// Contiguous sub-range [start, end) along an axis.
Tensor slice(const Tensor& a, std::int64_t axis, std::int64_t start,
             std::int64_t end);
/// Rows (or general axis entries) selected by integer indices; repeats allowed.
Tensor index_select(const Tensor& a, std::int64_t axis,
                    const std::vector<std::int64_t>& indices);
/// out[i, :] pattern: picks a[i..., index[i...]] along the last axis.
/// `index` holds float-encoded integers and is not differentiated.
Tensor gather_last(const Tensor& a, const Tensor& index);
/// One-hot encoding of float-encoded integer labels; result shape + [depth].
Tensor one_hot(const Tensor& labels, std::int64_t depth);

// ---- linear algebra ---------------------------------------------------------

/// 2-D matrix product (M,K) x (K,N) -> (M,N).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Batched matmul (B,M,K) x (B,K,N) -> (B,M,N).
Tensor bmm(const Tensor& a, const Tensor& b);
/// x (N,I) times weight (O,I) transposed, plus optional bias (O): the
/// torch F.linear contract.
Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias);

// ---- convolution / pooling ---------------------------------------------------

/// NCHW conv2d with square stride/padding; weight (OC, IC, KH, KW),
/// optional bias (OC).
Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t stride = 1, std::int64_t padding = 0);
Tensor max_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);
Tensor avg_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);

// ---- small dense SPD linear algebra -------------------------------------------

/// log|A| of a symmetric positive-definite matrix (differentiable).
Tensor logdet_spd(const Tensor& a);
/// A^{-1} of a symmetric positive-definite matrix (differentiable).
Tensor inverse_spd(const Tensor& a);

// ---- comparisons / misc (no gradients) ---------------------------------------

/// Elementwise a == b within tolerance, as 0/1 floats (no broadcast).
Tensor isclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);
std::string to_string(const Tensor& t, std::int64_t max_elems = 32);

}  // namespace tx
