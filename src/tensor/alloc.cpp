#include "tensor/alloc.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "obs/manifest.h"
#include "obs/mem.h"

namespace tx::alloc {

namespace {

constexpr std::int64_t kBytesPerFloat =
    static_cast<std::int64_t>(sizeof(float));

std::int64_t default_pool_cap_bytes() {
  // Per-thread ledger cap; donations beyond it are freed normally.
  std::int64_t cap_mb = 256;
  if (const char* env = std::getenv("TYXE_ARENA_CAP_MB")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) cap_mb = v;
  }
  return cap_mb << 20;
}

bool enabled_from_env() {
  const char* env = std::getenv("TYXE_ARENA");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "off" || v == "0" || v == "false");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

std::atomic<int> g_step_depth{0};

// Arena state for the tx.manifest.v1 run manifest — whether recycling is on
// and the per-thread cap, so provenance records the allocator configuration.
const bool g_manifest_provider_registered = [] {
  obs::manifest::register_provider([] {
    obs::manifest::set_field("arena",
                             enabled_flag().load(std::memory_order_relaxed)
                                 ? std::string("on")
                                 : std::string("off"));
    obs::manifest::set_field("arena_cap_mb", default_pool_cap_bytes() >> 20);
  });
  return true;
}();

struct ThreadPool {
  // capacity (floats) -> idle buffers of that capacity.
  std::multimap<std::size_t, std::vector<float>> buckets;
  std::int64_t ledger_bytes = 0;
  std::int64_t cap_bytes = default_pool_cap_bytes();
  Stats stats;

  ~ThreadPool() { release_all(); }

  void release_all() {
    if (ledger_bytes != 0) obs::mem::on_bytes_delta(-ledger_bytes);
    buckets.clear();
    ledger_bytes = 0;
  }

  // Pull a buffer with capacity in [n, 2n]; empty optional-style miss is
  // signalled by a zero-capacity vector alongside `hit == false`.
  bool acquire(std::int64_t n, std::vector<float>& out) {
    const auto want = static_cast<std::size_t>(n);
    auto it = buckets.lower_bound(want);
    if (it == buckets.end() || it->first > 2 * want) return false;
    out = std::move(it->second);
    buckets.erase(it);
    const std::int64_t bytes =
        static_cast<std::int64_t>(out.capacity()) * kBytesPerFloat;
    ledger_bytes -= bytes;
    return true;
  }
};

ThreadPool& pool() {
  thread_local ThreadPool tp;
  return tp;
}

thread_local std::int64_t t_credit_bytes = 0;

}  // namespace

StepScope::StepScope() {
  g_step_depth.fetch_add(1, std::memory_order_relaxed);
}

StepScope::~StepScope() {
  const int prev = g_step_depth.fetch_sub(1, std::memory_order_relaxed);
  if (prev == 1 && t_credit_bytes != 0) {
    // A buffer was acquired but never adopted by a tensor (error path):
    // its bytes left the ledger and then died unobserved. Settle the books.
    obs::mem::on_bytes_delta(-t_credit_bytes);
    t_credit_bytes = 0;
  }
}

bool active() {
  return enabled_flag().load(std::memory_order_relaxed) &&
         g_step_depth.load(std::memory_order_relaxed) > 0;
}

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

std::vector<float> buffer_uninit(std::int64_t n) {
  if (n <= 0) return {};
  if (active() && n * kBytesPerFloat <= kMaxPooledBytes) {
    ThreadPool& tp = pool();
    std::vector<float> v;
    if (tp.acquire(n, v)) {
      ++tp.stats.hits;
      t_credit_bytes +=
          static_cast<std::int64_t>(v.capacity()) * kBytesPerFloat;
      v.resize(static_cast<std::size_t>(n));
      return v;
    }
    ++tp.stats.misses;
  }
  return std::vector<float>(static_cast<std::size_t>(n));
}

std::vector<float> buffer(std::int64_t n) {
  if (n <= 0) return {};
  if (active() && n * kBytesPerFloat <= kMaxPooledBytes) {
    ThreadPool& tp = pool();
    std::vector<float> v;
    if (tp.acquire(n, v)) {
      ++tp.stats.hits;
      t_credit_bytes +=
          static_cast<std::int64_t>(v.capacity()) * kBytesPerFloat;
      v.assign(static_cast<std::size_t>(n), 0.0f);
      return v;
    }
    ++tp.stats.misses;
  }
  return std::vector<float>(static_cast<std::size_t>(n));
}

std::int64_t donate(std::vector<float>& v) {
  const std::int64_t bytes =
      static_cast<std::int64_t>(v.capacity()) * kBytesPerFloat;
  if (bytes == 0) return 0;
  if (!active() || bytes > kMaxPooledBytes) return 0;
  ThreadPool& tp = pool();
  if (tp.ledger_bytes + bytes > tp.cap_bytes) {
    ++tp.stats.rejected;
    return 0;
  }
  const auto cap = v.capacity();
  tp.buckets.emplace(cap, std::move(v));
  v = std::vector<float>();
  tp.ledger_bytes += bytes;
  ++tp.stats.donated;
  return bytes;
}

std::int64_t consume_credit(std::int64_t want) {
  if (want <= 0 || t_credit_bytes <= 0) return 0;
  const std::int64_t used = want < t_credit_bytes ? want : t_credit_bytes;
  t_credit_bytes -= used;
  return used;
}

void trim_thread_pool() { pool().release_all(); }

Stats thread_stats() {
  ThreadPool& tp = pool();
  Stats s = tp.stats;
  s.pooled_bytes = tp.ledger_bytes;
  s.pooled_buffers = static_cast<std::int64_t>(tp.buckets.size());
  return s;
}

void reset_thread_stats() { pool().stats = Stats{}; }

}  // namespace tx::alloc
