// Matrix products. Kernels use the i-k-j loop order so the inner loop streams
// contiguously through both the B matrix and the output row; the K dimension
// is cache-blocked and the inner loops dispatch through tx::simd.
//
// Above kParFlopThreshold flops the kernels split over output rows via
// tx::par. Every output element is computed in the same accumulation order
// as the single-threaded scalar path (tiling keeps k ascending per cell; the
// simd kernels mirror the scalar arithmetic exactly), so results are
// bitwise-identical for every TYXE_NUM_THREADS and every TYXE_SIMD level.
#include "obs/event_sink.h"
#include "obs/prof.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "resil/fault.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

#include <algorithm>

namespace tx {

namespace {

/// Trace-slice args for a (possibly batched) matrix product. Only called
/// behind obs::tracing() so the JSON cost is trace-mode-only.
std::string gemm_trace_args(std::int64_t batch, std::int64_t m, std::int64_t k,
                            std::int64_t n) {
  obs::Event e;
  if (batch > 1) e.set("batch", batch);
  e.set("m", m).set("k", k).set("n", n).set("flops", 2 * batch * m * k * n);
  return e.to_json();
}

/// Flop count (m*k*n) above which a product is worth fanning out.
constexpr std::int64_t kParFlopThreshold = std::int64_t{1} << 16;
/// Minimum output rows per chunk.
constexpr std::int64_t kRowGrain = 4;
/// K-dimension tile: keeps a ~kKTile x n panel of B hot in cache while it is
/// streamed over every output row. Tiles are visited in ascending order and
/// each cell accumulates k ascending within a tile, so the per-cell
/// accumulation order is identical to the untiled loop — tiling never
/// reassociates sums.
constexpr std::int64_t kKTile = 128;

/// C(M,N) += A(M,K) * B(K,N) over raw buffers. The inner loop over the
/// output row is a simd axpy (two roundings per element, exactly the scalar
/// crow[j] += av * brow[j]).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  for (std::int64_t p0 = 0; p0 < k; p0 += kKTile) {
    const std::int64_t p1 = std::min(k, p0 + kKTile);
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::int64_t p = p0; p < p1; ++p) {
        simd::axpy_n(arow[p], b + p * n, crow, n);
      }
    }
  }
}

/// C(M,N) += A(M,K) * B(N,K)^T. Each cell is one canonical 8-lane dot.
void gemm_bt_accumulate(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      crow[j] += simd::dot8(arow, b + j * k, k);
    }
  }
}

/// C(K,N) += A(M,K)^T * B(M,N).
void gemm_at_accumulate(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      simd::axpy_n(arow[p], brow, c + p * n, n);
    }
  }
}

/// gemm_at restricted to output rows [p0, p1). Per cell the accumulation
/// order over i is ascending, exactly as in gemm_at_accumulate, so the two
/// are bitwise-interchangeable; this variant has disjoint output rows and is
/// safe to run chunked in parallel.
void gemm_at_rows(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, std::int64_t p0,
                  std::int64_t p1) {
  for (std::int64_t p = p0; p < p1; ++p) {
    float* crow = c + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      simd::axpy_n(a[i * k + p], b + i * n, crow, n);
    }
  }
}

/// Row-parallel C(M,N) += A(M,K) * B(K,N) above the flop threshold.
void gemm_dispatch(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  if (m * k * n < kParFlopThreshold) {
    gemm_accumulate(a, b, c, m, k, n);
    return;
  }
  par::parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    gemm_accumulate(a + i0 * k, b, c + i0 * n, i1 - i0, k, n);
  });
}

/// Row-parallel C(M,N) += A(M,K) * B(N,K)^T above the flop threshold.
void gemm_bt_dispatch(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n) {
  if (m * k * n < kParFlopThreshold) {
    gemm_bt_accumulate(a, b, c, m, k, n);
    return;
  }
  par::parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    gemm_bt_accumulate(a + i0 * k, b, c + i0 * n, i1 - i0, k, n);
  });
}

/// Output-row-parallel C(K,N) += A(M,K)^T * B(M,N) above the flop threshold.
void gemm_at_dispatch(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n) {
  if (m * k * n < kParFlopThreshold) {
    gemm_at_accumulate(a, b, c, m, k, n);
    return;
  }
  par::parallel_for(0, k, kRowGrain, [&](std::int64_t p0, std::int64_t p1) {
    gemm_at_rows(a, b, c, m, k, n, p0, p1);
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  fault::check_alloc("tensor.matmul");
  TX_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects 2-D tensors, got [",
           join(a.shape()), "] x [", join(b.shape()), "]");
  const std::int64_t m = a.dim(0), k = a.dim(1), k2 = b.dim(0), n = b.dim(1);
  TX_CHECK(k == k2, "matmul inner dims mismatch: ", k, " vs ", k2);
  std::vector<float> out = alloc::buffer(m * n);
  {
    obs::ScopedTimer span("par.matmul", obs::tracing()
                                            ? gemm_trace_args(1, m, k, n)
                                            : std::string());
    // Roofline model: 2mkn flops; each operand read once, output written once.
    obs::prof::KernelScope prof("matmul", 2 * m * k * n,
                                4 * (m * k + k * n + m * n));
    gemm_dispatch(a.data(), b.data(), out.data(), m, k, n);
  }
  return make_tensor_from_op(
      "matmul", Shape{m, n}, std::move(out), {a, b},
      [a, b, m, k, n](const Tensor& g) {
        // dA = g * B^T, dB = A^T * g.
        Tensor ga = zeros(Shape{m, k});
        Tensor gb = zeros(Shape{k, n});
        obs::ScopedTimer span("par.matmul_bwd", obs::tracing()
                                                    ? gemm_trace_args(1, m, k, n)
                                                    : std::string());
        // Two products (dA = g B^T, dB = A^T g): 4mkn flops, each of g/A/B
        // read once per product and each gradient written once.
        obs::prof::KernelScope prof("matmul_bwd", 4 * m * k * n,
                                    8 * (m * n + m * k + k * n));
        gemm_bt_dispatch(g.data(), b.data(), ga.data(), m, n, k);
        gemm_at_dispatch(a.data(), g.data(), gb.data(), m, k, n);
        return std::vector<Tensor>{ga, gb};
      });
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  TX_CHECK(a.rank() == 3 && b.rank() == 3, "bmm expects 3-D tensors");
  const std::int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  TX_CHECK(b.dim(0) == batch && b.dim(1) == k, "bmm shape mismatch: [",
           join(a.shape()), "] x [", join(b.shape()), "]");
  const std::int64_t n = b.dim(2);
  std::vector<float> out = alloc::buffer(batch * m * n);
  {
    obs::ScopedTimer span("par.bmm", obs::tracing()
                                         ? gemm_trace_args(batch, m, k, n)
                                         : std::string());
    obs::prof::KernelScope prof("bmm", 2 * batch * m * k * n,
                                4 * batch * (m * k + k * n + m * n));
    // Batch entries are independent; below the threshold parallel_for
    // collapses to one inline call, the legacy loop.
    const std::int64_t grain =
        batch * m * k * n < kParFlopThreshold ? batch : 1;
    par::parallel_for(0, batch, grain, [&](std::int64_t b0, std::int64_t b1) {
      for (std::int64_t i = b0; i < b1; ++i) {
        gemm_accumulate(a.data() + i * m * k, b.data() + i * k * n,
                        out.data() + i * m * n, m, k, n);
      }
    });
  }
  return make_tensor_from_op(
      "bmm", Shape{batch, m, n}, std::move(out), {a, b},
      [a, b, batch, m, k, n](const Tensor& g) {
        Tensor ga = zeros(Shape{batch, m, k});
        Tensor gb = zeros(Shape{batch, k, n});
        obs::ScopedTimer span("par.bmm_bwd", obs::tracing()
                                                 ? gemm_trace_args(batch, m, k, n)
                                                 : std::string());
        obs::prof::KernelScope prof("bmm_bwd", 4 * batch * m * k * n,
                                    8 * batch * (m * n + m * k + k * n));
        const std::int64_t grain =
            batch * m * k * n < kParFlopThreshold ? batch : 1;
        par::parallel_for(
            0, batch, grain, [&](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t i = b0; i < b1; ++i) {
                gemm_bt_accumulate(g.data() + i * m * n, b.data() + i * k * n,
                                   ga.data() + i * m * k, m, n, k);
                gemm_at_accumulate(a.data() + i * m * k, g.data() + i * m * n,
                                   gb.data() + i * k * n, m, k, n);
              }
            });
        return std::vector<Tensor>{ga, gb};
      });
}

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  TX_CHECK(x.rank() >= 1 && weight.rank() == 2,
           "linear expects x rank >= 1 and 2-D weight");
  const std::int64_t in_features = weight.dim(1);
  const std::int64_t out_features = weight.dim(0);
  TX_CHECK(x.dim(-1) == in_features, "linear: x last dim ", x.dim(-1),
           " != in_features ", in_features);
  // Flatten leading dims into a row dimension and use matmul.
  Shape lead(x.shape().begin(), x.shape().end() - 1);
  Tensor x2 = reshape(x, Shape{-1, in_features});
  Tensor out = matmul(x2, transpose(weight, 0, 1));
  if (bias.defined()) {
    TX_CHECK(bias.rank() == 1 && bias.dim(0) == out_features,
             "linear: bias shape mismatch");
    out = add(out, bias);
  }
  Shape out_shape = lead;
  out_shape.push_back(out_features);
  return reshape(out, out_shape);
}

}  // namespace tx
