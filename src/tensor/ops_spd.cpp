// Small dense symmetric-positive-definite helpers (log-determinant and
// inverse) used by the low-rank-plus-diagonal Gaussian guide. Implemented as
// custom autograd ops: forward in double precision via Cholesky /
// Gauss-Jordan, backward via the standard matrix-calculus identities.
#include <cmath>

#include "tensor/tensor.h"

namespace tx {

namespace {

/// Cholesky factor (lower) of an SPD matrix in doubles; throws on failure.
std::vector<double> cholesky(const std::vector<double>& m, std::int64_t n) {
  std::vector<double> l(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double s = m[static_cast<std::size_t>(i * n + j)];
      for (std::int64_t k = 0; k < j; ++k) {
        s -= l[static_cast<std::size_t>(i * n + k)] *
             l[static_cast<std::size_t>(j * n + k)];
      }
      if (i == j) {
        TX_CHECK(s > 0.0, "cholesky: matrix not positive definite (pivot ", s,
                 " at ", i, ")");
        l[static_cast<std::size_t>(i * n + i)] = std::sqrt(s);
      } else {
        l[static_cast<std::size_t>(i * n + j)] =
            s / l[static_cast<std::size_t>(j * n + j)];
      }
    }
  }
  return l;
}

/// Inverse of an SPD matrix via its Cholesky factor.
std::vector<double> spd_inverse(const std::vector<double>& m, std::int64_t n) {
  const std::vector<double> l = cholesky(m, n);
  // Invert L (lower triangular) by forward substitution.
  std::vector<double> linv(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    linv[static_cast<std::size_t>(j * n + j)] =
        1.0 / l[static_cast<std::size_t>(j * n + j)];
    for (std::int64_t i = j + 1; i < n; ++i) {
      double s = 0.0;
      for (std::int64_t k = j; k < i; ++k) {
        s += l[static_cast<std::size_t>(i * n + k)] *
             linv[static_cast<std::size_t>(k * n + j)];
      }
      linv[static_cast<std::size_t>(i * n + j)] =
          -s / l[static_cast<std::size_t>(i * n + i)];
    }
  }
  // A^{-1} = L^{-T} L^{-1}.
  std::vector<double> inv(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t k = std::max(i, j); k < n; ++k) {
        s += linv[static_cast<std::size_t>(k * n + i)] *
             linv[static_cast<std::size_t>(k * n + j)];
      }
      inv[static_cast<std::size_t>(i * n + j)] = s;
    }
  }
  return inv;
}

std::vector<double> to_double(const Tensor& t) {
  std::vector<double> v(static_cast<std::size_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) v[static_cast<std::size_t>(i)] = t.at(i);
  return v;
}

std::vector<float> to_float(const std::vector<double>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(v[i]);
  return out;
}

}  // namespace

Tensor logdet_spd(const Tensor& a) {
  TX_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1), "logdet_spd expects square");
  const std::int64_t n = a.dim(0);
  const std::vector<double> m = to_double(a);
  const std::vector<double> l = cholesky(m, n);
  double logdet = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    logdet += 2.0 * std::log(l[static_cast<std::size_t>(i * n + i)]);
  }
  const std::vector<double> inv = spd_inverse(m, n);
  const Shape shape = a.shape();
  return make_tensor_from_op(
      "logdet_spd", Shape{}, {static_cast<float>(logdet)}, {a},
      [inv, shape](const Tensor& g) {
        // d logdet(A) / dA = A^{-T} = A^{-1} for symmetric A.
        Tensor ga(shape, to_float(inv));
        return std::vector<Tensor>{mul(ga, g)};
      });
}

Tensor inverse_spd(const Tensor& a) {
  TX_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1), "inverse_spd expects square");
  const std::int64_t n = a.dim(0);
  const std::vector<double> inv = spd_inverse(to_double(a), n);
  Tensor inv_t(a.shape(), to_float(inv));
  Tensor inv_detached = inv_t.detach();
  return make_tensor_from_op(
      "inverse_spd", a.shape(), inv_t.to_vector(), {a},
      [inv_detached](const Tensor& g) {
        // dA = -A^{-T} G A^{-T}; A^{-1} symmetric here.
        Tensor ga = neg(matmul(matmul(inv_detached, g), inv_detached));
        return std::vector<Tensor>{ga};
      });
}

}  // namespace tx
