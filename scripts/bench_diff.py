#!/usr/bin/env python3
"""Compare tx.obs.v1 benchmark snapshots against a committed baseline and
exit nonzero on regression — the perf gate behind CI's perf-gate job.

Usage:
  scripts/bench_diff.py [options] BASELINE CURRENT [CURRENT ...]

With several CURRENT files (repeated runs of the same bench), each metric is
reduced to its median before comparison, which absorbs one-off timing
outliers without hiding a real shift.

Metrics fall into three classes with different noise characteristics:

* EXACT — per-kernel call/FLOP/byte counts from the prof section
  (prof.kernels.<name>.{calls,flops,bytes}). These are closed-form functions
  of the workload, machine-independent, and bitwise-reproducible at every
  thread count; ANY drift is a regression (or an intentional workload change
  that must be re-baselined). Always gating, except under --no-gate-exact
  (for google-benchmark snapshots whose per-kernel totals scale with the
  time-adaptive iteration count and are therefore machine-dependent).
* COUNT — integer aggregates that are deterministic for a fixed build but
  legitimately move when behavior changes by design: allocator-churn totals,
  mem.* byte gauges, counter values. Compared with --count-rtol relative
  tolerance (default 0.25). Gating unless --no-gate-counts (used for
  google-benchmark snapshots whose iteration counts are time-adaptive and
  therefore machine-dependent).
* TIMING — seconds, GFLOP/s, GB/s, histogram timing summaries. Compared
  with --timing-rtol (default 0.5) but WARN-ONLY by default: CI containers
  (1 core, noisy neighbors) cannot gate on wall time honestly. --gate-timing
  turns violations into failures for dedicated perf hardware.

A metric present in the baseline but missing from CURRENT (or vice versa) is
a schema drift: gating for EXACT/COUNT metrics, warn-only for TIMING.
--allow-new-keys demotes only the "new metric not in baseline" direction to a
warning (used by scripts/refresh_baselines.sh to sanity-check a fresh
baseline against a build that may have grown kernels); a metric that is in
the baseline but missing from CURRENT still gates.

Snapshots carrying a tx.manifest.v1 "manifest" section have their run
provenance compared as well: manifest fields never become diff keys, but a
baseline/candidate mismatch in SIMD dispatch level, thread count, or build
type prints a MANIFEST warning so apples-to-oranges timing comparisons are
visible in the gate log.

Exit codes: 0 clean (warnings allowed), 1 regression(s), 2 usage/IO error.
"""
import argparse
import json
import sys
from statistics import median

# Substrings that mark a metric as timing-class wherever it appears.
TIMING_MARKERS = (
    "seconds",
    "gflops",
    "gbps",
    ".speedup",
    "_per_step",
    "wall_time",
    "intensity",
)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def flatten(doc):
    """Flatten a snapshot into {metric_path: number}.

    Covers counters, gauges, histogram summary fields, and the prof section.
    Series are skipped (their shape is workload-defined, not comparable
    pointwise across runs). The "manifest" section (tx.manifest.v1 run
    provenance) is deliberately NOT flattened: provenance fields are not
    metrics and must never produce diff keys — they are compared separately
    by compare_manifests(), which warns when the two runs were produced
    under different SIMD levels or thread counts.
    """
    out = {}
    for name, v in (doc.get("counters") or {}).items():
        if is_number(v):
            out[f"counters.{name}"] = v
    for name, v in (doc.get("gauges") or {}).items():
        if is_number(v):
            out[f"gauges.{name}"] = v
    for name, h in (doc.get("histograms") or {}).items():
        if isinstance(h, dict):
            for field in ("count", "sum", "mean", "p50", "p90", "p99"):
                if is_number(h.get(field)):
                    out[f"histograms.{name}.{field}"] = h[field]
    prof = doc.get("prof")
    if isinstance(prof, dict):
        for name, k in (prof.get("kernels") or {}).items():
            if isinstance(k, dict):
                for field in ("calls", "flops", "bytes", "seconds", "gflops",
                              "gbps", "intensity"):
                    if is_number(k.get(field)):
                        out[f"prof.kernels.{name}.{field}"] = k[field]
        churn = prof.get("churn")
        if isinstance(churn, dict):
            for field in ("attributed_allocs", "attributed_bytes"):
                if is_number(churn.get(field)):
                    out[f"prof.churn.{field}"] = churn[field]
            for span, s in (churn.get("spans") or {}).items():
                if isinstance(s, dict):
                    for field in ("allocs", "bytes"):
                        if is_number(s.get(field)):
                            out[f"prof.churn.spans.{span}.{field}"] = s[field]
    return out


def classify(path):
    """EXACT / COUNT / TIMING class of one flattened metric path."""
    lowered = path.lower()
    if path.startswith("prof.kernels.") and path.rsplit(".", 1)[-1] in (
        "calls",
        "flops",
        "bytes",
    ):
        return "EXACT"
    # span.* histograms record wall-clock durations; every summary field
    # except the (deterministic) entry count is timing.
    if path.startswith("histograms.span.") and not path.endswith(".count"):
        return "TIMING"
    if any(m in lowered for m in TIMING_MARKERS):
        return "TIMING"
    return "COUNT"


def load(path, role="current"):
    """Parse one tx.obs.v1 snapshot. `role` ("baseline" or "current") shapes
    the error message: a missing/corrupt committed baseline is an operator
    problem with a known fix (refresh it), not a bench failure, and the exit
    message must say so instead of a bare traceback-ish one-liner."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        if role == "baseline":
            raise SystemExit(
                f"bench_diff: baseline snapshot {path} is missing or "
                f"unparseable ({e}).\n"
                "  The baseline is the committed reference the perf gate "
                "compares against; without it no comparison can run.\n"
                "  Fix: regenerate and commit it with "
                "scripts/refresh_baselines.sh, or pass the correct "
                "baseline path as the first argument."
            )
        raise SystemExit(f"bench_diff: {path}: unreadable or invalid JSON ({e})")
    if not isinstance(doc, dict) or doc.get("schema") != "tx.obs.v1":
        if role == "baseline":
            raise SystemExit(
                f"bench_diff: baseline snapshot {path} is not a tx.obs.v1 "
                "document.\n"
                "  Fix: regenerate it with scripts/refresh_baselines.sh "
                "(it may predate a schema change or point at the wrong file)."
            )
        raise SystemExit(f"bench_diff: {path}: not a tx.obs.v1 snapshot")
    return doc


def compare_manifests(baseline_doc, current_docs, current_paths):
    """Warn when baseline and candidate provenance disagree on the fields
    that make timing/count comparisons apples-to-oranges.

    A baseline snapshot that predates tx.manifest.v1 has no manifest; that
    is fine and produces no warnings. Differences never gate — the metric
    classes already decide what gates — but an operator reading a perf-gate
    log must see that the machines differed before trusting the numbers.
    """
    warnings = []
    base_m = baseline_doc.get("manifest")
    if not isinstance(base_m, dict):
        return warnings
    for doc, path in zip(current_docs, current_paths):
        cur_m = doc.get("manifest")
        if not isinstance(cur_m, dict):
            warnings.append(
                f"[MANIFEST] {path}: baseline has a manifest but this run "
                "does not (old binary?)"
            )
            continue
        for key in ("simd_level", "threads"):
            b, c = base_m.get(key), cur_m.get(key)
            if b is not None and c is not None and b != c:
                warnings.append(
                    f"[MANIFEST] {key}: baseline ran with {b!r}, {path} ran "
                    f"with {c!r} — timing comparisons are apples-to-oranges"
                )
        for key in ("build_type",):
            b, c = base_m.get(key), cur_m.get(key)
            if b is not None and c is not None and b != c:
                warnings.append(
                    f"[MANIFEST] {key}: baseline {b!r} vs {path} {c!r}"
                )
    return warnings


def rel_delta(base, cur):
    if base == cur:
        return 0.0
    denom = max(abs(base), abs(cur), 1e-12)
    return (cur - base) / denom


def main(argv):
    ap = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="Compare tx.obs.v1 snapshots; exit nonzero on regression.",
    )
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="+")
    ap.add_argument("--count-rtol", type=float, default=0.25,
                    help="relative tolerance for COUNT metrics (default 0.25)")
    ap.add_argument("--timing-rtol", type=float, default=0.5,
                    help="relative tolerance for TIMING metrics (default 0.5)")
    ap.add_argument("--gate-timing", action="store_true",
                    help="fail (not just warn) on TIMING violations")
    ap.add_argument("--no-gate-counts", action="store_true",
                    help="demote COUNT violations to warnings (for "
                         "machine-dependent snapshots like microbench)")
    ap.add_argument("--allow-new-keys", action="store_true",
                    help="warn (don't fail) on metrics present in CURRENT "
                         "but absent from BASELINE; baseline keys missing "
                         "from CURRENT still gate")
    ap.add_argument("--no-gate-exact", action="store_true",
                    help="demote EXACT violations to warnings (for "
                         "time-adaptive google-benchmark snapshots whose "
                         "per-kernel totals scale with iteration count)")
    ap.add_argument("--quiet", action="store_true",
                    help="print violations/warnings only, no per-metric OK lines")
    args = ap.parse_args(argv[1:])

    base_doc = load(args.baseline, role="baseline")
    current_docs = [load(p) for p in args.current]
    base = flatten(base_doc)
    currents = [flatten(doc) for doc in current_docs]
    # Median-of-N per metric; a metric must appear in every CURRENT file to
    # count as present (a partial appearance is itself schema drift).
    cur = {}
    for key in currents[0]:
        if all(key in c for c in currents):
            cur[key] = median(c[key] for c in currents)
    dropped = set().union(*currents) - set(cur)

    failures = []
    warnings = compare_manifests(base_doc, current_docs, args.current)

    def record(cls, msg, gate):
        (failures if gate else warnings).append(f"[{cls}] {msg}")

    def gate_for(cls):
        if cls == "EXACT":
            return not args.no_gate_exact
        if cls == "COUNT":
            return not args.no_gate_counts
        return args.gate_timing

    for key in sorted(set(base) | set(cur)):
        cls = classify(key)
        if key not in cur:
            record(cls, f"{key}: in baseline but missing from current run",
                   gate_for(cls))
            continue
        if key not in base:
            record(cls, f"{key}: new metric not in baseline (re-baseline?)",
                   gate_for(cls) and not args.allow_new_keys)
            continue
        b, c = base[key], cur[key]
        delta = rel_delta(b, c)
        if cls == "EXACT":
            if b != c:
                record(cls, f"{key}: {b} -> {c} (exact metric drifted)",
                       gate_for(cls))
            elif not args.quiet:
                print(f"[EXACT] {key}: {b} OK")
            continue
        rtol = args.count_rtol if cls == "COUNT" else args.timing_rtol
        if abs(delta) > rtol:
            record(
                cls,
                f"{key}: {b:g} -> {c:g} ({delta:+.1%}, tolerance ±{rtol:.0%})",
                gate_for(cls),
            )
        elif not args.quiet:
            print(f"[{cls}] {key}: {b:g} -> {c:g} ({delta:+.1%}) OK")

    for key in sorted(dropped):
        warnings.append(
            f"[{classify(key)}] {key}: present in only some current runs"
        )

    for w in warnings:
        print(f"WARN {w}", file=sys.stderr)
    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    n = len(set(base) | set(cur))
    print(
        f"bench_diff: {n} metrics compared, "
        f"{len(failures)} failure(s), {len(warnings)} warning(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
