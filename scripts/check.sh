#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the observability tests.
#
#   scripts/check.sh          # build + full ctest + ASan/UBSan obs_test
#   SKIP_ASAN=1 scripts/check.sh   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

# --- tier-1: the exact command ROADMAP.md pins.
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

# --- sanitizer pass: the obs registry/timer code is the only lock-free
# atomics in the tree; run its test binary under ASan+UBSan.
if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  cmake -B build-asan -S . -DTYXE_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target obs_test
  ./build-asan/tests/obs_test
fi

echo "check.sh: all green"
