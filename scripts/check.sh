#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the concurrency-sensitive
# test binaries.
#
#   scripts/check.sh                   # build + full ctest + ASan/UBSan pass
#   SKIP_ASAN=1 scripts/check.sh       # tier-1 only
#   BUILD_DIR=out scripts/check.sh     # use a different build tree
#   SANITIZE=thread scripts/check.sh   # TSan instead of ASan for the san pass
#   REQUIRE_BENCH=1 scripts/check.sh   # zero BENCH_*.json snapshots = failure
#
# An existing CMake cache in ${BUILD_DIR} is reused as-is (no reconfigure),
# so repeated runs — and CI with a restored cache — skip configure entirely.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR="${BUILD_DIR:-build}"
SANITIZE="${SANITIZE:-address}"

# --- tier-1: the exact command ROADMAP.md pins.
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}"
(cd "${BUILD_DIR}" && ctest --output-on-failure -j "${JOBS}")

# --- snapshot validation: every BENCH_*.json anywhere under the build tree
# (benches write into their cwd, which varies: build/, build/prof-run*/,
# build/simd-*/...). Discovered by find rather than a hand-maintained list so
# a new bench cannot ship unvalidated snapshots. Event streams (*.jsonl) are
# not snapshots and are skipped.
mapfile -t BENCH_JSON < <(find "${BUILD_DIR}" -name 'BENCH_*.json' -type f | sort)
if [[ "${#BENCH_JSON[@]}" -gt 0 ]]; then
  echo "check.sh: validating ${#BENCH_JSON[@]} BENCH snapshot(s)"
  python3 scripts/validate_bench.py "${BENCH_JSON[@]}"
else
  # An empty find must never silently pass when snapshots were expected:
  # either the caller demanded them (REQUIRE_BENCH=1, the CI bench legs) or
  # bench event streams prove a bench ran but failed to write its snapshot.
  mapfile -t BENCH_STREAMS < <(find "${BUILD_DIR}" -name 'BENCH_*.jsonl' -type f | sort)
  if [[ "${REQUIRE_BENCH:-0}" == "1" || "${#BENCH_STREAMS[@]}" -gt 0 ]]; then
    echo "check.sh: FAIL: zero BENCH_*.json under ${BUILD_DIR} to validate" >&2
    if [[ "${#BENCH_STREAMS[@]}" -gt 0 ]]; then
      echo "check.sh: ${#BENCH_STREAMS[@]} BENCH_*.jsonl event stream(s) exist (e.g. ${BENCH_STREAMS[0]}), so a bench ran without producing its snapshot" >&2
    else
      echo "check.sh: REQUIRE_BENCH=1 is set but no bench wrote a snapshot; run the bench targets first" >&2
    fi
    exit 1
  fi
  echo "check.sh: no BENCH_*.json under ${BUILD_DIR} (no benches ran); set REQUIRE_BENCH=1 to make this an error"
fi

# --- sanitizer pass: the obs registry/timer code and the tx::par pool are
# the concurrent parts of the tree; run their test binaries sanitized.
if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  case "${SANITIZE}" in
    address) SAN_DIR="${BUILD_DIR}-asan" ;;
    thread)  SAN_DIR="${BUILD_DIR}-tsan" ;;
    *) echo "check.sh: unknown SANITIZE='${SANITIZE}'" >&2; exit 1 ;;
  esac
  if [[ ! -f "${SAN_DIR}/CMakeCache.txt" ]]; then
    cmake -B "${SAN_DIR}" -S . -DTYXE_SANITIZE="${SANITIZE}"
  fi
  # Separate invocations: on a stale cache, one make run loads the Makefile
  # from before CMake regenerates it and can miss newly added targets.
  cmake --build "${SAN_DIR}" -j "${JOBS}" --target obs_test
  cmake --build "${SAN_DIR}" -j "${JOBS}" --target par_test
  ./"${SAN_DIR}"/tests/obs_test
  TYXE_NUM_THREADS=4 ./"${SAN_DIR}"/tests/par_test
fi

echo "check.sh: all green"
