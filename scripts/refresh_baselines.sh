#!/usr/bin/env bash
# Re-record bench/baselines/*.json from the current build.
#
#   scripts/refresh_baselines.sh                 # build, run, copy, verify
#   BUILD_DIR=out scripts/refresh_baselines.sh   # use a different build tree
#
# Run this whenever a change intentionally shifts the EXACT or COUNT metric
# classes the perf-gate CI job enforces — new kernels, changed per-kernel
# FLOP/byte closed forms, or allocator behavior that moves churn/mem totals.
# The perf gate compares at TYXE_NUM_THREADS=1, so baselines are recorded at
# one pool thread too (par.* chunk/job counters depend on the thread count,
# and per-span churn attribution is scheduling-dependent once the arena pool
# is shared across workers).
#
# After copying, each fresh baseline is re-diffed against the run that
# produced it (must be self-identical) with --allow-new-keys, which also
# prints the full metric list for eyeballing before you commit.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR="${BUILD_DIR:-build}"
export TYXE_NUM_THREADS=1

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target fig1_regression
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target par_scaling
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target microbench

# Each bench writes BENCH_<name>.json into its cwd; isolate them so a stale
# snapshot from an earlier manual run can't be copied by mistake.
RUN_DIR="${BUILD_DIR}/baseline-run"
rm -rf "${RUN_DIR}"
mkdir -p "${RUN_DIR}"
(cd "${RUN_DIR}" && "../bench/fig1_regression" --prof)
(cd "${RUN_DIR}" && "../bench/par_scaling" --prof)
# Older google-benchmark rejects the duration-suffixed form of
# --benchmark_min_time; newer releases deprecate the bare-number form but
# still accept it. Try suffixed first, fall back.
(cd "${RUN_DIR}" && "../bench/microbench" --prof --benchmark_min_time=0.05s) ||
  (cd "${RUN_DIR}" && "../bench/microbench" --prof --benchmark_min_time=0.05)

python3 scripts/validate_bench.py --prof \
  "${RUN_DIR}/BENCH_fig1_regression.json" \
  "${RUN_DIR}/BENCH_par_scaling.json" \
  "${RUN_DIR}/BENCH_microbench.json"

for name in fig1_regression par_scaling microbench; do
  cp "${RUN_DIR}/BENCH_${name}.json" "bench/baselines/BENCH_${name}.json"
  python3 scripts/bench_diff.py --quiet --allow-new-keys \
    "bench/baselines/BENCH_${name}.json" "${RUN_DIR}/BENCH_${name}.json"
done

echo "refresh_baselines: bench/baselines/ updated; review with git diff" \
     "and commit together with the change that moved the metrics."
