#!/usr/bin/env python3
"""Validate BENCH_*.json snapshots, tx.trace.v1 Chrome-trace exports,
tx.diag.v1 inference-health snapshots, tx.manifest.v1 run manifests, and
tx.ckpt.v1 checkpoint bundles.

Usage: scripts/validate_bench.py [--trace | --diag | --ckpt | --prof | --pq | --manifest] FILE ...

Five file kinds are understood; all but checkpoints are JSON and
auto-detected by shape, checkpoints are text-framed binary selected with
--ckpt:

* Metric snapshots (tx.obs.v1, written by EventSink::write_snapshot): checks
  the structural contract documented in docs/observability.md — top-level
  schema/bench strings, integer counters, numeric gauges, histogram summaries
  with the required numeric fields and a well-formed bucket list, and numeric
  series arrays.
* Chrome traces (tx.trace.v1, written by obs::write_trace): checks the file
  is well-formed JSON with a traceEvents list, that every event carries
  ph/pid/tid (and a numeric ts for non-metadata phases), that timestamps are
  monotone non-decreasing per (pid, tid) track, and that duration events are
  balanced — every E closes the matching open B on its track and no B is
  left open at end of file.
* Diag snapshots (tx.diag.v1, written by obs::diag::write_snapshot): checks
  the svi/mcmc/events sections, that the "steps" record indices are strictly
  increasing, and that every per-site / per-param statistic is a finite
  number (the writer's contract is to omit undefined fields, never to emit
  NaN/Infinity/null).
* Checkpoint bundles (tx.ckpt.v1, written by resil::Bundle::write_file,
  --ckpt only): re-verifies the FNV-1a 64 checksum footer, the header
  section count, per-section byte framing, and that section names are
  sorted and unique — i.e. the file would load, without needing the C++
  loader.

Metric snapshots additionally have their `resil.*` counters and gauges
checked against the schema documented in docs/robustness.md: unknown
resil names, negative counters, or non-finite gauges are violations.

Snapshots may embed an optional "prof" section (schema tx.prof.v1, written
when the run profiled with --prof): per-kernel calls/flops/bytes plus derived
gflops/gbps/intensity, and the allocator-churn table (per-span allocs, bytes,
size-class histogram, coverage vs mem.total_allocated_bytes). The section is
validated whenever present; `--prof` additionally *requires* it.

Snapshots may embed a "pq" section (schema tx.pq.v1, written when the run
streamed predictive quality with --pq): per-stream calibration accumulators
(reliability bins, streaming NLL/Brier/accuracy/ECE), the predictive-entropy
decomposition (aleatoric + epistemic must reconstruct the predictive mean to
a ulp-scaled tolerance), max-probability score histograms whose counts must
sum to the stream's example totals, and binned OOD AUROCs in [0, 1]. The
section is validated whenever present; `--pq` additionally *requires* it.

Snapshots may also embed a "manifest" section (schema tx.manifest.v1,
obs/manifest.h): run provenance — git sha, build type, SIMD dispatch level,
arena state, thread count, seed, and the full TYXE_* environment table.
Validated whenever present; the same document served standalone by the live
server's /manifest endpoint is auto-detected by its schema string (or
required with `--manifest`).

`--trace` / `--diag` / `--prof` / `--manifest` additionally *require* each
named file to be of that kind, so a glob that accidentally matches the wrong
file fails loudly instead of passing under the wrong checker. Exits non-zero
with one line per violation, so CI can gate on it.
"""
import json
import sys

REQUIRED_TOP = ["bench", "schema", "counters", "gauges", "histograms", "series"]
REQUIRED_HIST = ["count", "sum", "mean", "min", "max", "p50", "p90", "p99", "buckets"]

# The resil.* metric schema (docs/robustness.md). Counters and gauges under
# the resil. prefix must come from these sets; anything else is a typo or an
# undocumented metric and fails validation.
RESIL_COUNTERS = {
    "resil.svi.resumes",
    "resil.svi.rollbacks",
    "resil.svi.retries_exhausted",
    "resil.svi.budget_stops",
    "resil.mcmc.resumes",
    "resil.mcmc.restarts",
    "resil.ckpt.snapshots",
    "resil.ckpt.writes",
    "resil.ckpt.write_failures",
}
RESIL_GAUGES = {
    "resil.svi.lr",
    "resil.svi.consecutive_rollbacks",
    "resil.svi.checkpoint_step",
    "resil.svi.rollbacks_total",
    "resil.mcmc.restarts_total",
}
RESIL_GAUGE_PREFIXES = ("resil.mcmc.step_size.chain",)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_snapshot(path, doc):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    for key in REQUIRED_TOP:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "tx.obs.v1":
        err(f"schema is {doc['schema']!r}, expected 'tx.obs.v1'")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        err("'bench' must be a non-empty string")

    if not isinstance(doc["counters"], dict):
        err("'counters' must be an object")
    else:
        for name, v in doc["counters"].items():
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"counter '{name}' is not an integer: {v!r}")
            elif name.startswith("resil."):
                if name not in RESIL_COUNTERS:
                    err(f"counter '{name}' is not a documented resil.* counter")
                elif v < 0:
                    err(f"resil counter '{name}' is negative: {v}")

    if not isinstance(doc["gauges"], dict):
        err("'gauges' must be an object")
    else:
        for name, v in doc["gauges"].items():
            if not is_number(v):
                err(f"gauge '{name}' is not a number: {v!r}")
            elif name.startswith("resil."):
                if name not in RESIL_GAUGES and not any(
                    name.startswith(p) for p in RESIL_GAUGE_PREFIXES
                ):
                    err(f"gauge '{name}' is not a documented resil.* gauge")
                elif v != v or v in (float("inf"), float("-inf")):
                    err(f"resil gauge '{name}' is not finite: {v!r}")

    if not isinstance(doc["histograms"], dict):
        err("'histograms' must be an object")
    else:
        for name, h in doc["histograms"].items():
            if not isinstance(h, dict):
                err(f"histogram '{name}' is not an object")
                continue
            for field in REQUIRED_HIST:
                if field not in h:
                    err(f"histogram '{name}' missing field '{field}'")
            if not isinstance(h.get("count"), int):
                err(f"histogram '{name}' count is not an integer")
            for field in ("sum", "mean", "min", "max", "p50", "p90", "p99"):
                if field in h and not is_number(h[field]):
                    err(f"histogram '{name}' field '{field}' is not a number")
            buckets = h.get("buckets")
            if not isinstance(buckets, list):
                err(f"histogram '{name}' buckets is not a list")
            else:
                for i, b in enumerate(buckets):
                    if not isinstance(b, dict) or "le" not in b or "count" not in b:
                        err(f"histogram '{name}' bucket {i} malformed: {b!r}")
                        continue
                    if not (is_number(b["le"]) or b["le"] == "inf"):
                        err(f"histogram '{name}' bucket {i} 'le' invalid: {b['le']!r}")
                    if not isinstance(b["count"], int):
                        err(f"histogram '{name}' bucket {i} 'count' not an integer")

    if not isinstance(doc["series"], dict):
        err("'series' must be an object")
    else:
        for name, values in doc["series"].items():
            if not isinstance(values, list):
                err(f"series '{name}' is not a list")
            elif not all(is_number(v) for v in values):
                err(f"series '{name}' has non-numeric entries")

    if "prof" in doc:
        errors.extend(validate_prof_section(path, doc["prof"]))
    if "pq" in doc:
        errors.extend(validate_pq_section(path, doc["pq"]))
    if "manifest" in doc:
        errors.extend(validate_manifest(path, doc["manifest"]))

    return errors


def validate_manifest(path, m):
    """Validate a tx.manifest.v1 document (standalone or embedded)."""
    errors = []

    def err(msg):
        errors.append(f"{path}: manifest: {msg}")

    if not isinstance(m, dict):
        return [f"{path}: 'manifest' must be an object"]
    if m.get("schema") != "tx.manifest.v1":
        err(f"schema is {m.get('schema')!r}, expected 'tx.manifest.v1'")
    for key in ("git_sha", "build_type"):
        if not isinstance(m.get(key), str) or not m.get(key):
            err(f"'{key}' must be a non-empty string")
    # Provider fields are optional (a binary that does not link a provider
    # omits its fields) but typed when present.
    if "simd_level" in m and m["simd_level"] not in ("off", "scalar", "avx2", "neon"):
        err(f"'simd_level' invalid: {m['simd_level']!r}")
    for key in ("threads", "arena_cap_mb", "seed"):
        if key in m and (not isinstance(m[key], int) or isinstance(m[key], bool)):
            err(f"'{key}' must be an integer: {m[key]!r}")
    if "arena" in m and m["arena"] not in ("on", "off"):
        err(f"'arena' invalid: {m['arena']!r}")

    env = m.get("env")
    if not isinstance(env, dict) or not env:
        err("'env' must be a non-empty object")
    else:
        for name, e in env.items():
            if not name.startswith("TYXE_"):
                err(f"env var '{name}' does not start with TYXE_")
            if not isinstance(e, dict):
                err(f"env var '{name}' entry is not an object")
                continue
            if not isinstance(e.get("set"), bool):
                err(f"env var '{name}' field 'set' is not a bool")
            if e.get("set") and not isinstance(e.get("value"), str):
                err(f"env var '{name}' is set but 'value' is not a string")
            if not e.get("set") and e.get("value") is not None:
                err(f"env var '{name}' is unset but 'value' is not null")
            if not isinstance(e.get("default"), str):
                err(f"env var '{name}' field 'default' is not a string")

    unknown = m.get("unknown_env")
    if not isinstance(unknown, list) or not all(
        isinstance(u, str) for u in unknown
    ):
        err("'unknown_env' must be a list of strings")

    return errors


PROF_KERNEL_INTS = ("calls", "flops", "bytes")
PROF_KERNEL_FLOATS = ("seconds", "gflops", "gbps", "intensity")
PROF_SPAN_INTS = ("allocs", "bytes")


def validate_prof_section(path, prof):
    errors = []

    def err(msg):
        errors.append(f"{path}: prof: {msg}")

    if not isinstance(prof, dict):
        return [f"{path}: 'prof' must be an object"]
    if prof.get("schema") != "tx.prof.v1":
        err(f"schema is {prof.get('schema')!r}, expected 'tx.prof.v1'")
    if not is_number(prof.get("seconds_enabled")):
        err("'seconds_enabled' is not a number")
    if not isinstance(prof.get("steps"), int):
        err("'steps' is not an integer")

    kernels = prof.get("kernels")
    if not isinstance(kernels, dict):
        err("'kernels' must be an object")
    else:
        for name, k in kernels.items():
            if not isinstance(k, dict):
                err(f"kernel '{name}' is not an object")
                continue
            for field in PROF_KERNEL_INTS:
                v = k.get(field)
                if not isinstance(v, int) or isinstance(v, bool):
                    err(f"kernel '{name}' field '{field}' is not an integer: {v!r}")
                elif v < 0:
                    err(f"kernel '{name}' field '{field}' is negative: {v}")
            for field in PROF_KERNEL_FLOATS:
                if not is_number(k.get(field)):
                    err(f"kernel '{name}' field '{field}' is not a number")
            if isinstance(k.get("calls"), int) and k["calls"] == 0:
                err(f"kernel '{name}' has zero calls but was recorded")

    churn = prof.get("churn")
    if not isinstance(churn, dict):
        err("'churn' must be an object")
        return errors
    for field in ("attributed_allocs", "attributed_bytes", "window_allocated_bytes"):
        v = churn.get(field)
        if not isinstance(v, int) or isinstance(v, bool):
            err(f"churn field '{field}' is not an integer: {v!r}")
    if not is_number(churn.get("coverage")):
        err("churn field 'coverage' is not a number")
    spans = churn.get("spans")
    if not isinstance(spans, dict):
        err("churn 'spans' must be an object")
        return errors
    total_allocs = total_bytes = 0
    for span, s in spans.items():
        if not isinstance(s, dict):
            err(f"churn span '{span}' is not an object")
            continue
        for field in PROF_SPAN_INTS:
            v = s.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"churn span '{span}' field '{field}' is not an integer: {v!r}")
        if not is_number(s.get("bytes_per_step")):
            err(f"churn span '{span}' field 'bytes_per_step' is not a number")
        classes = s.get("size_classes")
        if not isinstance(classes, list):
            err(f"churn span '{span}' size_classes is not a list")
        else:
            class_total = 0
            for i, b in enumerate(classes):
                if not isinstance(b, dict) or "le" not in b or "count" not in b:
                    err(f"churn span '{span}' size class {i} malformed: {b!r}")
                    continue
                if not (is_number(b["le"]) or b["le"] == "inf"):
                    err(f"churn span '{span}' size class {i} 'le' invalid: {b['le']!r}")
                if not isinstance(b["count"], int):
                    err(f"churn span '{span}' size class {i} 'count' not an integer")
                else:
                    class_total += b["count"]
            if isinstance(s.get("allocs"), int) and class_total != s["allocs"]:
                err(
                    f"churn span '{span}' size-class counts sum to "
                    f"{class_total}, expected allocs = {s['allocs']}"
                )
        if isinstance(s.get("allocs"), int):
            total_allocs += s["allocs"]
        if isinstance(s.get("bytes"), int):
            total_bytes += s["bytes"]
    if (
        isinstance(churn.get("attributed_allocs"), int)
        and total_allocs != churn["attributed_allocs"]
    ):
        err(
            f"span alloc counts sum to {total_allocs}, expected "
            f"attributed_allocs = {churn['attributed_allocs']}"
        )
    if (
        isinstance(churn.get("attributed_bytes"), int)
        and total_bytes != churn["attributed_bytes"]
    ):
        err(
            f"span byte counts sum to {total_bytes}, expected "
            f"attributed_bytes = {churn['attributed_bytes']}"
        )
    return errors


PQ_STREAM_INTS = ("examples", "labeled", "correct")

# 64-bit double epsilon; the entropy decomposition identity holds to the
# rounding of one division, so a few ulps of the predictive mean.
_EPS = 2.220446049250313e-16


def validate_pq_section(path, pq):
    errors = []

    def err(msg):
        errors.append(f"{path}: pq: {msg}")

    if not isinstance(pq, dict):
        return [f"{path}: 'pq' must be an object"]
    if pq.get("schema") != "tx.pq.v1":
        err(f"schema is {pq.get('schema')!r}, expected 'tx.pq.v1'")
    reliability_bins = pq.get("reliability_bins")
    score_bins = pq.get("score_bins")
    for key, v in (("reliability_bins", reliability_bins), ("score_bins", score_bins)):
        if not isinstance(v, int) or isinstance(v, bool) or v < 1:
            err(f"'{key}' is not a positive integer: {v!r}")

    streams = pq.get("streams")
    if not isinstance(streams, dict):
        err("'streams' must be an object")
        streams = {}
    for name, s in streams.items():
        if not isinstance(s, dict):
            err(f"stream '{name}' is not an object")
            continue
        for field in PQ_STREAM_INTS:
            v = s.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"stream '{name}' field '{field}' is not an integer: {v!r}")
            elif v < 0:
                err(f"stream '{name}' field '{field}' is negative: {v}")
        labeled = s.get("labeled")
        examples = s.get("examples")
        if isinstance(s.get("correct"), int) and isinstance(labeled, int):
            if s["correct"] > labeled:
                err(f"stream '{name}' correct {s['correct']} > labeled {labeled}")

        # The reliability bins are the streaming calibration accumulator:
        # their counts must account for every labeled example exactly.
        bins = s.get("reliability")
        if not isinstance(bins, list):
            err(f"stream '{name}' 'reliability' is not a list")
        else:
            if isinstance(reliability_bins, int) and len(bins) != reliability_bins:
                err(
                    f"stream '{name}' has {len(bins)} reliability bins, "
                    f"expected {reliability_bins}"
                )
            count_total = 0
            for i, b in enumerate(bins):
                if not isinstance(b, dict) or "le" not in b or "count" not in b:
                    err(f"stream '{name}' reliability bin {i} malformed: {b!r}")
                    continue
                if not isinstance(b["count"], int) or b["count"] < 0:
                    err(f"stream '{name}' reliability bin {i} count invalid: {b['count']!r}")
                else:
                    count_total += b["count"]
                for field in ("le", "confidence_sum", "accuracy_sum"):
                    if not is_number(b.get(field)):
                        err(f"stream '{name}' reliability bin {i} '{field}' is not a number")
            if isinstance(labeled, int) and count_total != labeled:
                err(
                    f"stream '{name}' reliability counts sum to {count_total}, "
                    f"expected labeled = {labeled}"
                )

        # Score histogram: one entry per prediction seen on the stream.
        scores = s.get("scores")
        if not isinstance(scores, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in scores
        ):
            err(f"stream '{name}' 'scores' is not a list of non-negative integers")
        else:
            if isinstance(score_bins, int) and len(scores) != score_bins:
                err(
                    f"stream '{name}' has {len(scores)} score bins, "
                    f"expected {score_bins}"
                )
            if isinstance(examples, int) and sum(scores) != examples:
                err(
                    f"stream '{name}' score counts sum to {sum(scores)}, "
                    f"expected examples = {examples}"
                )

        if isinstance(examples, int) and examples > 0:
            if not is_number(s.get("confidence_mean")):
                err(f"stream '{name}' 'confidence_mean' is not a number")
            entropy = s.get("entropy")
            if not isinstance(entropy, dict):
                err(f"stream '{name}' 'entropy' is not an object")
            else:
                for field in (
                    "predictive_sum",
                    "aleatoric_sum",
                    "predictive_mean",
                    "aleatoric_mean",
                    "epistemic_mean",
                ):
                    if not is_number(entropy.get(field)):
                        err(f"stream '{name}' entropy '{field}' is not a number")
                if all(
                    is_number(entropy.get(f))
                    for f in ("predictive_mean", "aleatoric_mean", "epistemic_mean")
                ):
                    pred = entropy["predictive_mean"]
                    recon = entropy["aleatoric_mean"] + entropy["epistemic_mean"]
                    tol = 4.0 * _EPS * max(1.0, abs(pred))
                    if abs(recon - pred) > tol:
                        err(
                            f"stream '{name}' entropy decomposition broken: "
                            f"aleatoric + epistemic = {recon!r} vs "
                            f"predictive = {pred!r}"
                        )

        if isinstance(labeled, int) and labeled > 0:
            for field in ("accuracy", "nll", "brier", "ece"):
                if not is_number(s.get(field)):
                    err(f"stream '{name}' '{field}' is not a number")
            if is_number(s.get("accuracy")) and isinstance(s.get("correct"), int):
                if s["accuracy"] != s["correct"] / labeled:
                    err(
                        f"stream '{name}' accuracy {s['accuracy']!r} != "
                        f"correct/labeled = {s['correct'] / labeled!r}"
                    )
            if is_number(s.get("ece")) and not 0.0 <= s["ece"] <= 1.0:
                err(f"stream '{name}' ece out of [0, 1]: {s['ece']!r}")

        if "mc_samples" in s:
            for field in ("mc_samples", "sample_batches"):
                v = s.get(field)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    err(f"stream '{name}' '{field}' is not a non-negative integer: {v!r}")
            v = s.get("across_sample_variance_mean")
            if not is_number(v) or v < 0:
                err(f"stream '{name}' 'across_sample_variance_mean' invalid: {v!r}")

        # Guard degradation marker: emitted only when at least one batch was
        # budget-truncated, so a present key must be a positive integer.
        if "degraded_batches" in s:
            v = s["degraded_batches"]
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                err(f"stream '{name}' 'degraded_batches' is not a positive integer: {v!r}")

    ood = pq.get("ood")
    if not isinstance(ood, dict):
        err("'ood' must be an object")
    else:
        for prefix, v in ood.items():
            if not is_number(v) or not 0.0 <= v <= 1.0:
                err(f"ood '{prefix}' AUROC out of [0, 1]: {v!r}")
            if f"{prefix}/test" not in streams or f"{prefix}/ood" not in streams:
                err(f"ood '{prefix}' has no matching '/test' + '/ood' stream pair")

    return errors


def validate_trace(path, doc):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be a list"]
    other = doc.get("otherData", {})
    if isinstance(other, dict) and "schema" in other and other["schema"] != "tx.trace.v1":
        err(f"otherData.schema is {other['schema']!r}, expected 'tx.trace.v1'")

    last_ts = {}  # (pid, tid) -> last seen ts
    open_spans = {}  # (pid, tid) -> stack of open B-event names
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            err(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            err(f"event {i} has invalid ph: {ph!r}")
            continue
        if "pid" not in ev or "tid" not in ev:
            err(f"event {i} (ph={ph}) missing pid/tid")
            continue
        if not isinstance(ev.get("name"), str):
            err(f"event {i} (ph={ph}) missing string name")
            continue
        track = (ev["pid"], ev["tid"])
        if ph == "M":  # metadata carries no timestamp
            continue
        ts = ev.get("ts")
        if not is_number(ts):
            err(f"event {i} ({ev['name']!r}) has non-numeric ts: {ts!r}")
            continue
        if track in last_ts and ts < last_ts[track]:
            err(
                f"event {i} ({ev['name']!r}) ts {ts} goes backwards on "
                f"track {track} (previous {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                err(f"event {i}: E {ev['name']!r} on track {track} with no open B")
            else:
                if stack[-1] != ev["name"]:
                    err(
                        f"event {i}: E {ev['name']!r} does not match open B "
                        f"{stack[-1]!r} on track {track}"
                    )
                stack.pop()
    for track, stack in sorted(open_spans.items()):
        if stack:
            err(f"track {track} ends with unclosed B events: {stack}")

    return errors


DIAG_SVI_SITE_INTS = ("count", "numel", "nonfinite", "kl_count")
DIAG_PARAM_INTS = ("steps", "nonfinite")
DIAG_MCMC_SITE_INTS = ("draws", "transitions", "moved", "divergence_blame")


def validate_diag(path, doc):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    if doc.get("schema") != "tx.diag.v1":
        err(f"schema is {doc.get('schema')!r}, expected 'tx.diag.v1'")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        err("'bench' must be a non-empty string")

    steps = doc.get("steps")
    if not isinstance(steps, list):
        err("'steps' must be a list")
    else:
        for i, s in enumerate(steps):
            if not isinstance(s, int) or isinstance(s, bool):
                err(f"steps[{i}] is not an integer: {s!r}")
            elif i > 0 and s <= steps[i - 1]:
                err(f"steps[{i}] = {s} not strictly increasing (previous {steps[i - 1]})")

    def check_stats(section, name, stats, int_fields):
        if not isinstance(stats, dict):
            err(f"{section} '{name}' is not an object")
            return
        for field, v in stats.items():
            if not is_number(v):
                err(f"{section} '{name}' field '{field}' is not a number: {v!r}")
            elif v != v or v in (float("inf"), float("-inf")):
                err(f"{section} '{name}' field '{field}' is not finite: {v!r}")
            elif field in int_fields and not isinstance(v, int):
                err(f"{section} '{name}' field '{field}' is not an integer: {v!r}")

    svi = doc.get("svi")
    if not isinstance(svi, dict):
        err("'svi' must be an object")
    else:
        if not isinstance(svi.get("steps"), int):
            err("svi.steps is not an integer")
        for key in ("elbo_mean", "elbo_std", "elbo_last"):
            if key in svi and not is_number(svi[key]):
                err(f"svi.{key} is not a number: {svi[key]!r}")
        for name, stats in (svi.get("sites") or {}).items():
            check_stats("svi site", name, stats, DIAG_SVI_SITE_INTS)
        for name, stats in (svi.get("params") or {}).items():
            check_stats("svi param", name, stats, DIAG_PARAM_INTS)

    mcmc = doc.get("mcmc")
    if not isinstance(mcmc, dict):
        err("'mcmc' must be an object")
    else:
        for key in ("chains", "transitions", "divergences"):
            if not isinstance(mcmc.get(key), int):
                err(f"mcmc.{key} is not an integer")
        if "accept_prob_mean" in mcmc and not is_number(mcmc["accept_prob_mean"]):
            err(f"mcmc.accept_prob_mean is not a number: {mcmc['accept_prob_mean']!r}")
        for name, stats in (mcmc.get("sites") or {}).items():
            check_stats("mcmc site", name, stats, DIAG_MCMC_SITE_INTS)

    events = doc.get("events")
    if not isinstance(events, dict):
        err("'events' must be an object")
    else:
        for key in ("nan_trips", "forensic_dumps", "records"):
            if not isinstance(events.get(key), int):
                err(f"events.{key} is not an integer")

    return errors


def fnv1a64(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def validate_ckpt(path):
    """Re-implements the tx.ckpt.v1 loader's integrity checks in Python."""
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        return [f"{path}: unreadable ({e})"]

    footer_tag = b"@checksum "
    footer_size = len(footer_tag) + 17  # tag + 16 hex digits + newline
    if (
        len(data) <= footer_size
        or not data.endswith(b"\n")
        or data[-footer_size : -footer_size + len(footer_tag)] != footer_tag
    ):
        return [f"{path}: missing or truncated checksum footer"]
    hex_digits = data[-17:-1]
    try:
        want = int(hex_digits, 16)
    except ValueError:
        return [f"{path}: malformed checksum footer {hex_digits!r}"]
    body = data[:-footer_size]
    got = fnv1a64(body)
    if got != want:
        err(f"checksum mismatch: footer {want:016x}, body hashes to {got:016x}")

    nl = body.find(b"\n")
    if nl < 0:
        return errors + [f"{path}: truncated header"]
    header = body[:nl].split(b" ")
    if len(header) != 2 or header[0] != b"tx.ckpt.v1":
        return errors + [f"{path}: bad header {body[:nl]!r}"]
    try:
        count = int(header[1])
    except ValueError:
        return errors + [f"{path}: bad section count {header[1]!r}"]

    pos = nl + 1
    names = []
    for i in range(count):
        nl = body.find(b"\n", pos)
        if nl < 0:
            return errors + [f"{path}: truncated section header {i}"]
        parts = body[pos:nl].split(b" ")
        if len(parts) != 3 or parts[0] != b"@" or not parts[1]:
            return errors + [f"{path}: bad section header {body[pos:nl]!r}"]
        try:
            nbytes = int(parts[2])
        except ValueError:
            return errors + [f"{path}: bad section size {parts[2]!r}"]
        pos = nl + 1
        if pos + nbytes >= len(body) or body[pos + nbytes] != ord("\n"):
            return errors + [f"{path}: truncated section {parts[1].decode()!r}"]
        names.append(parts[1].decode())
        pos += nbytes + 1
    if pos != len(body):
        err(f"{len(body) - pos} trailing bytes after the last section")
    if names != sorted(names):
        err(f"section names not sorted: {names}")
    if len(set(names)) != len(names):
        err(f"duplicate section names: {names}")
    return errors


def validate(path, require_trace=False, require_diag=False, require_prof=False,
             require_pq=False, require_manifest=False):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: unreadable or invalid JSON ({e})"]

    if not isinstance(doc, dict):
        return None, [f"{path}: top level is not an object"]
    if doc.get("schema") == "tx.manifest.v1":
        return "tx.manifest.v1", validate_manifest(path, doc)
    if require_manifest:
        return None, [f"{path}: expected a run manifest (schema != 'tx.manifest.v1')"]
    if doc.get("schema") == "tx.diag.v1":
        return "tx.diag.v1", validate_diag(path, doc)
    if require_diag:
        return None, [f"{path}: expected a diag snapshot (schema != 'tx.diag.v1')"]
    if "traceEvents" in doc:
        return "tx.trace.v1", validate_trace(path, doc)
    if require_trace:
        return None, [f"{path}: expected a Chrome trace (no 'traceEvents' key)"]
    if require_prof and "prof" not in doc:
        return None, [f"{path}: expected a profiled snapshot (no 'prof' section)"]
    if require_pq and "pq" not in doc:
        return None, [f"{path}: expected a pq-streamed snapshot (no 'pq' section)"]
    kind = "tx.obs.v1"
    if "prof" in doc:
        kind += "+prof"
    if "pq" in doc:
        kind += "+pq"
    return kind, validate_snapshot(path, doc)


def main(argv):
    args = argv[1:]
    require_trace = False
    require_diag = False
    require_ckpt = False
    require_prof = False
    require_pq = False
    require_manifest = False
    if args and args[0] == "--trace":
        require_trace = True
        args = args[1:]
    elif args and args[0] == "--diag":
        require_diag = True
        args = args[1:]
    elif args and args[0] == "--ckpt":
        require_ckpt = True
        args = args[1:]
    elif args and args[0] == "--prof":
        require_prof = True
        args = args[1:]
    elif args and args[0] == "--pq":
        require_pq = True
        args = args[1:]
    elif args and args[0] == "--manifest":
        require_manifest = True
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in args:
        if require_ckpt:
            kind, errs = "tx.ckpt.v1", validate_ckpt(path)
        else:
            kind, errs = validate(path, require_trace=require_trace,
                                  require_diag=require_diag,
                                  require_prof=require_prof,
                                  require_pq=require_pq,
                                  require_manifest=require_manifest)
        if errs:
            all_errors.extend(errs)
        else:
            print(f"{path}: OK ({kind})")
    for e in all_errors:
        print(e, file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
