#!/usr/bin/env python3
"""Validate BENCH_*.json snapshots and tx.trace.v1 Chrome-trace exports.

Usage: scripts/validate_bench.py [--trace] FILE [FILE ...]

Two file kinds are understood, auto-detected by shape:

* Metric snapshots (tx.obs.v1, written by EventSink::write_snapshot): checks
  the structural contract documented in docs/observability.md — top-level
  schema/bench strings, integer counters, numeric gauges, histogram summaries
  with the required numeric fields and a well-formed bucket list, and numeric
  series arrays.
* Chrome traces (tx.trace.v1, written by obs::write_trace): checks the file
  is well-formed JSON with a traceEvents list, that every event carries
  ph/pid/tid (and a numeric ts for non-metadata phases), that timestamps are
  monotone non-decreasing per (pid, tid) track, and that duration events are
  balanced — every E closes the matching open B on its track and no B is
  left open at end of file.

`--trace` additionally *requires* each named file to be a trace, so a glob
that accidentally matches a snapshot fails loudly instead of passing under
the wrong checker. Exits non-zero with one line per violation, so CI can
gate on it.
"""
import json
import sys

REQUIRED_TOP = ["bench", "schema", "counters", "gauges", "histograms", "series"]
REQUIRED_HIST = ["count", "sum", "mean", "min", "max", "p50", "p90", "p99", "buckets"]


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_snapshot(path, doc):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    for key in REQUIRED_TOP:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "tx.obs.v1":
        err(f"schema is {doc['schema']!r}, expected 'tx.obs.v1'")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        err("'bench' must be a non-empty string")

    if not isinstance(doc["counters"], dict):
        err("'counters' must be an object")
    else:
        for name, v in doc["counters"].items():
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"counter '{name}' is not an integer: {v!r}")

    if not isinstance(doc["gauges"], dict):
        err("'gauges' must be an object")
    else:
        for name, v in doc["gauges"].items():
            if not is_number(v):
                err(f"gauge '{name}' is not a number: {v!r}")

    if not isinstance(doc["histograms"], dict):
        err("'histograms' must be an object")
    else:
        for name, h in doc["histograms"].items():
            if not isinstance(h, dict):
                err(f"histogram '{name}' is not an object")
                continue
            for field in REQUIRED_HIST:
                if field not in h:
                    err(f"histogram '{name}' missing field '{field}'")
            if not isinstance(h.get("count"), int):
                err(f"histogram '{name}' count is not an integer")
            for field in ("sum", "mean", "min", "max", "p50", "p90", "p99"):
                if field in h and not is_number(h[field]):
                    err(f"histogram '{name}' field '{field}' is not a number")
            buckets = h.get("buckets")
            if not isinstance(buckets, list):
                err(f"histogram '{name}' buckets is not a list")
            else:
                for i, b in enumerate(buckets):
                    if not isinstance(b, dict) or "le" not in b or "count" not in b:
                        err(f"histogram '{name}' bucket {i} malformed: {b!r}")
                        continue
                    if not (is_number(b["le"]) or b["le"] == "inf"):
                        err(f"histogram '{name}' bucket {i} 'le' invalid: {b['le']!r}")
                    if not isinstance(b["count"], int):
                        err(f"histogram '{name}' bucket {i} 'count' not an integer")

    if not isinstance(doc["series"], dict):
        err("'series' must be an object")
    else:
        for name, values in doc["series"].items():
            if not isinstance(values, list):
                err(f"series '{name}' is not a list")
            elif not all(is_number(v) for v in values):
                err(f"series '{name}' has non-numeric entries")

    return errors


def validate_trace(path, doc):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be a list"]
    other = doc.get("otherData", {})
    if isinstance(other, dict) and "schema" in other and other["schema"] != "tx.trace.v1":
        err(f"otherData.schema is {other['schema']!r}, expected 'tx.trace.v1'")

    last_ts = {}  # (pid, tid) -> last seen ts
    open_spans = {}  # (pid, tid) -> stack of open B-event names
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            err(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            err(f"event {i} has invalid ph: {ph!r}")
            continue
        if "pid" not in ev or "tid" not in ev:
            err(f"event {i} (ph={ph}) missing pid/tid")
            continue
        if not isinstance(ev.get("name"), str):
            err(f"event {i} (ph={ph}) missing string name")
            continue
        track = (ev["pid"], ev["tid"])
        if ph == "M":  # metadata carries no timestamp
            continue
        ts = ev.get("ts")
        if not is_number(ts):
            err(f"event {i} ({ev['name']!r}) has non-numeric ts: {ts!r}")
            continue
        if track in last_ts and ts < last_ts[track]:
            err(
                f"event {i} ({ev['name']!r}) ts {ts} goes backwards on "
                f"track {track} (previous {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                err(f"event {i}: E {ev['name']!r} on track {track} with no open B")
            else:
                if stack[-1] != ev["name"]:
                    err(
                        f"event {i}: E {ev['name']!r} does not match open B "
                        f"{stack[-1]!r} on track {track}"
                    )
                stack.pop()
    for track, stack in sorted(open_spans.items()):
        if stack:
            err(f"track {track} ends with unclosed B events: {stack}")

    return errors


def validate(path, require_trace=False):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: unreadable or invalid JSON ({e})"]

    if not isinstance(doc, dict):
        return None, [f"{path}: top level is not an object"]
    if "traceEvents" in doc:
        return "tx.trace.v1", validate_trace(path, doc)
    if require_trace:
        return None, [f"{path}: expected a Chrome trace (no 'traceEvents' key)"]
    return "tx.obs.v1", validate_snapshot(path, doc)


def main(argv):
    args = argv[1:]
    require_trace = False
    if args and args[0] == "--trace":
        require_trace = True
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in args:
        kind, errs = validate(path, require_trace=require_trace)
        if errs:
            all_errors.extend(errs)
        else:
            print(f"{path}: OK ({kind})")
    for e in all_errors:
        print(e, file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
