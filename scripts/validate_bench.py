#!/usr/bin/env python3
"""Validate BENCH_*.json snapshots against the tx.obs.v1 shape.

Usage: scripts/validate_bench.py BENCH_a.json [BENCH_b.json ...]

Checks the structural contract EventSink::write_snapshot promises (see
docs/observability.md): top-level schema/bench strings, integer counters,
numeric (or "inf"-free) gauges, histogram summaries with the required numeric
fields and a well-formed bucket list, and numeric series arrays. Exits
non-zero with one line per violation, so CI can gate on it.
"""
import json
import sys

REQUIRED_TOP = ["bench", "schema", "counters", "gauges", "histograms", "series"]
REQUIRED_HIST = ["count", "sum", "mean", "min", "max", "p50", "p90", "p99", "buckets"]


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON ({e})"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    for key in REQUIRED_TOP:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "tx.obs.v1":
        err(f"schema is {doc['schema']!r}, expected 'tx.obs.v1'")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        err("'bench' must be a non-empty string")

    if not isinstance(doc["counters"], dict):
        err("'counters' must be an object")
    else:
        for name, v in doc["counters"].items():
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"counter '{name}' is not an integer: {v!r}")

    if not isinstance(doc["gauges"], dict):
        err("'gauges' must be an object")
    else:
        for name, v in doc["gauges"].items():
            if not is_number(v):
                err(f"gauge '{name}' is not a number: {v!r}")

    if not isinstance(doc["histograms"], dict):
        err("'histograms' must be an object")
    else:
        for name, h in doc["histograms"].items():
            if not isinstance(h, dict):
                err(f"histogram '{name}' is not an object")
                continue
            for field in REQUIRED_HIST:
                if field not in h:
                    err(f"histogram '{name}' missing field '{field}'")
            if not isinstance(h.get("count"), int):
                err(f"histogram '{name}' count is not an integer")
            for field in ("sum", "mean", "min", "max", "p50", "p90", "p99"):
                if field in h and not is_number(h[field]):
                    err(f"histogram '{name}' field '{field}' is not a number")
            buckets = h.get("buckets")
            if not isinstance(buckets, list):
                err(f"histogram '{name}' buckets is not a list")
            else:
                for i, b in enumerate(buckets):
                    if not isinstance(b, dict) or "le" not in b or "count" not in b:
                        err(f"histogram '{name}' bucket {i} malformed: {b!r}")
                        continue
                    if not (is_number(b["le"]) or b["le"] == "inf"):
                        err(f"histogram '{name}' bucket {i} 'le' invalid: {b['le']!r}")
                    if not isinstance(b["count"], int):
                        err(f"histogram '{name}' bucket {i} 'count' not an integer")

    if not isinstance(doc["series"], dict):
        err("'series' must be an object")
    else:
        for name, values in doc["series"].items():
            if not isinstance(values, list):
                err(f"series '{name}' is not a list")
            elif not all(is_number(v) for v in values):
                err(f"series '{name}' has non-numeric entries")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        errs = validate(path)
        if errs:
            all_errors.extend(errs)
        else:
            print(f"{path}: OK (tx.obs.v1)")
    for e in all_errors:
        print(e, file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
