#!/usr/bin/env python3
"""Strict checker for the /metrics Prometheus text exposition of tx::obs::live.

Usage:
  scripts/check_prometheus.py [--expect-prefix=PREFIX] SCRAPE [SCRAPE2]

With --expect-prefix=PREFIX, additionally requires every scrape to expose at
least one metric family whose name starts with PREFIX (e.g.
--expect-prefix=tx_pq_ gates on the predictive-quality metrics actually
reaching /metrics, not just parsing cleanly).

Validates one scrape (a file containing the raw /metrics body):

* every non-comment line is `name value` or `name{le="bound"} value` with
  the metric name restricted to the Prometheus charset
  [a-zA-Z_:][a-zA-Z0-9_:]* and a parseable value (numbers, +Inf, -Inf, NaN);
* every sample is preceded by a `# TYPE <name> <counter|gauge|histogram>`
  line for its family (histogram samples belong to the family named by
  stripping the _bucket/_sum/_count suffix), and no family is declared twice;
* counters are non-negative;
* histograms are internally consistent: le= bounds strictly increasing,
  bucket values cumulative (non-decreasing), a final le="+Inf" bucket equal
  to the family's _count sample, and _sum/_count present.

With a second scrape (taken later from the same live process), additionally
checks monotonicity across time: every counter and every histogram _count /
_bucket value in SCRAPE2 must be >= its SCRAPE value, and no family may
disappear — the registry never removes metrics, so a shrinking value means
the server handed out a torn or stale view.

Exits nonzero with one line per violation, so CI can gate on it.
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{le=\"(?P<le>[^\"]+)\"\})?"
    r" (?P<value>\S+)$"
)
TYPE_RE = re.compile(r"^# TYPE (?P<name>\S+) (?P<kind>counter|gauge|histogram)$")


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def family_of(name):
    """Histogram samples roll up to the family named in their TYPE line."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_scrape(path):
    """Returns (families, samples, errors).

    families: {name: kind}; samples: list of (name, le, value, line_no).
    """
    errors = []
    families = {}
    samples = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return {}, [], [f"{path}: unreadable ({e})"]

    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                name = m.group("name")
                if not NAME_RE.match(name):
                    errors.append(f"{path}:{i}: bad metric name {name!r}")
                if name in families:
                    errors.append(f"{path}:{i}: family {name!r} declared twice")
                families[name] = m.group("kind")
            elif line.startswith("# TYPE"):
                errors.append(f"{path}:{i}: malformed TYPE line: {line!r}")
            # other comments (# HELP etc.) are allowed and ignored
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{path}:{i}: unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"{path}:{i}: bad value {m.group('value')!r}")
            continue
        fam = family_of(name)
        if fam not in families:
            errors.append(
                f"{path}:{i}: sample {name!r} has no preceding TYPE line "
                f"for family {fam!r}"
            )
            continue
        kind = families[fam]
        is_hist_part = name != fam
        if is_hist_part and kind != "histogram":
            errors.append(
                f"{path}:{i}: {name!r} looks like a histogram sample but "
                f"family {fam!r} is a {kind}"
            )
        if not is_hist_part and kind == "histogram":
            errors.append(
                f"{path}:{i}: bare sample {name!r} for histogram family"
            )
        if m.group("le") is not None and not name.endswith("_bucket"):
            errors.append(f"{path}:{i}: le label on non-bucket sample {name!r}")
        samples.append((name, m.group("le"), value, i))
    return families, samples, errors


def check_scrape(path, families, samples):
    errors = []
    counters = {}
    hist = {}  # family -> {"buckets": [(le, value)], "sum": v, "count": v}
    for name, le, value, line_no in samples:
        fam = family_of(name)
        kind = families.get(fam)
        if kind == "counter":
            counters[name] = value
            if not value >= 0:
                errors.append(f"{path}:{line_no}: counter {name!r} is negative")
        elif kind == "histogram":
            h = hist.setdefault(fam, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(f"{path}:{line_no}: bucket without le label")
                    continue
                bound = parse_value(le)
                h["buckets"].append((bound, value, line_no))
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value

    for fam, h in sorted(hist.items()):
        if h["sum"] is None:
            errors.append(f"{path}: histogram {fam!r} missing _sum")
        if h["count"] is None:
            errors.append(f"{path}: histogram {fam!r} missing _count")
        buckets = h["buckets"]
        if not buckets:
            errors.append(f"{path}: histogram {fam!r} has no buckets")
            continue
        prev_bound = None
        prev_value = None
        for bound, value, line_no in buckets:
            if prev_bound is not None and not bound > prev_bound:
                errors.append(
                    f"{path}:{line_no}: histogram {fam!r} le bounds not "
                    f"strictly increasing ({prev_bound} then {bound})"
                )
            if prev_value is not None and value < prev_value:
                errors.append(
                    f"{path}:{line_no}: histogram {fam!r} buckets not "
                    f"cumulative ({prev_value} then {value})"
                )
            prev_bound, prev_value = bound, value
        last_bound, last_value, _ = buckets[-1]
        if last_bound != float("inf"):
            errors.append(f"{path}: histogram {fam!r} missing +Inf bucket")
        elif h["count"] is not None and last_value != h["count"]:
            errors.append(
                f"{path}: histogram {fam!r} +Inf bucket ({last_value}) != "
                f"_count ({h['count']})"
            )
    return errors


def monotone_values(families, samples):
    """Every value that must be non-decreasing over the process lifetime,
    keyed to compare across scrapes."""
    out = {}
    for name, le, value, _line in samples:
        fam = family_of(name)
        kind = families.get(fam)
        if kind == "counter":
            out[name] = value
        elif kind == "histogram" and (
            name.endswith("_count") or name.endswith("_bucket")
        ):
            out[(name, le)] = value
    return out


def main(argv):
    args = argv[1:]
    expect_prefix = None
    if args and args[0].startswith("--expect-prefix="):
        expect_prefix = args[0][len("--expect-prefix="):]
        args = args[1:]
    if len(args) not in (1, 2) or not expect_prefix and expect_prefix is not None:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    parsed = []
    for path in args:
        families, samples, errs = parse_scrape(path)
        errors.extend(errs)
        errors.extend(check_scrape(path, families, samples))
        parsed.append((path, families, samples))
        if expect_prefix is not None:
            matching = [f for f in families if f.startswith(expect_prefix)]
            if not matching:
                errors.append(
                    f"{path}: no metric family starts with {expect_prefix!r}"
                )
            else:
                print(
                    f"{path}: {len(matching)} families match "
                    f"prefix {expect_prefix!r}"
                )
        if not errs:
            n_fam = len(families)
            print(f"{path}: OK ({n_fam} families, {len(samples)} samples)")

    if len(parsed) == 2:
        (path1, fam1, s1), (path2, fam2, s2) = parsed
        for fam in fam1:
            if fam not in fam2:
                errors.append(
                    f"{path2}: family {fam!r} present in {path1} disappeared"
                )
        first = monotone_values(fam1, s1)
        second = monotone_values(fam2, s2)
        for key, v1 in sorted(first.items(), key=str):
            v2 = second.get(key)
            if v2 is None:
                errors.append(f"{path2}: monotone sample {key!r} disappeared")
            elif v2 < v1:
                errors.append(
                    f"{path2}: {key!r} went backwards across scrapes "
                    f"({v1} -> {v2})"
                )
        if not errors:
            print(
                f"monotonicity: OK ({len(first)} counter/bucket samples "
                f"compared across scrapes)"
            )

    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
