# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/ppl_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/core_priors_test[1]_include.cmake")
include("/root/repo/build/tests/core_likelihoods_test[1]_include.cmake")
include("/root/repo/build/tests/core_poutine_test[1]_include.cmake")
include("/root/repo/build/tests/core_bnn_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/likelihood_integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/predictive_test[1]_include.cmake")
