file(REMOVE_RECURSE
  "CMakeFiles/ppl_test.dir/ppl_test.cpp.o"
  "CMakeFiles/ppl_test.dir/ppl_test.cpp.o.d"
  "ppl_test"
  "ppl_test.pdb"
  "ppl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
