# Empty compiler generated dependencies file for core_poutine_test.
# This may be replaced when dependencies are built.
