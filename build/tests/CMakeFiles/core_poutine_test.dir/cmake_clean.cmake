file(REMOVE_RECURSE
  "CMakeFiles/core_poutine_test.dir/core_poutine_test.cpp.o"
  "CMakeFiles/core_poutine_test.dir/core_poutine_test.cpp.o.d"
  "core_poutine_test"
  "core_poutine_test.pdb"
  "core_poutine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_poutine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
