file(REMOVE_RECURSE
  "CMakeFiles/core_bnn_test.dir/core_bnn_test.cpp.o"
  "CMakeFiles/core_bnn_test.dir/core_bnn_test.cpp.o.d"
  "core_bnn_test"
  "core_bnn_test.pdb"
  "core_bnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
