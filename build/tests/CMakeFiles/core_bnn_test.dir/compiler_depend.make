# Empty compiler generated dependencies file for core_bnn_test.
# This may be replaced when dependencies are built.
