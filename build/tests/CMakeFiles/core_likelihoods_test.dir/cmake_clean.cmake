file(REMOVE_RECURSE
  "CMakeFiles/core_likelihoods_test.dir/core_likelihoods_test.cpp.o"
  "CMakeFiles/core_likelihoods_test.dir/core_likelihoods_test.cpp.o.d"
  "core_likelihoods_test"
  "core_likelihoods_test.pdb"
  "core_likelihoods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_likelihoods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
