# Empty compiler generated dependencies file for core_likelihoods_test.
# This may be replaced when dependencies are built.
