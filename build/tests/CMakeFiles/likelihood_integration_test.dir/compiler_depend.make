# Empty compiler generated dependencies file for likelihood_integration_test.
# This may be replaced when dependencies are built.
