file(REMOVE_RECURSE
  "CMakeFiles/likelihood_integration_test.dir/likelihood_integration_test.cpp.o"
  "CMakeFiles/likelihood_integration_test.dir/likelihood_integration_test.cpp.o.d"
  "likelihood_integration_test"
  "likelihood_integration_test.pdb"
  "likelihood_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/likelihood_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
