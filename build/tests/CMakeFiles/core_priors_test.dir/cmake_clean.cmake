file(REMOVE_RECURSE
  "CMakeFiles/core_priors_test.dir/core_priors_test.cpp.o"
  "CMakeFiles/core_priors_test.dir/core_priors_test.cpp.o.d"
  "core_priors_test"
  "core_priors_test.pdb"
  "core_priors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_priors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
