# Empty compiler generated dependencies file for core_priors_test.
# This may be replaced when dependencies are built.
