file(REMOVE_RECURSE
  "libtx_ppl.a"
)
