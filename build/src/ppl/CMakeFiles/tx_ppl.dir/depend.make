# Empty dependencies file for tx_ppl.
# This may be replaced when dependencies are built.
