file(REMOVE_RECURSE
  "CMakeFiles/tx_ppl.dir/handlers.cpp.o"
  "CMakeFiles/tx_ppl.dir/handlers.cpp.o.d"
  "CMakeFiles/tx_ppl.dir/messenger.cpp.o"
  "CMakeFiles/tx_ppl.dir/messenger.cpp.o.d"
  "CMakeFiles/tx_ppl.dir/param_store.cpp.o"
  "CMakeFiles/tx_ppl.dir/param_store.cpp.o.d"
  "CMakeFiles/tx_ppl.dir/trace.cpp.o"
  "CMakeFiles/tx_ppl.dir/trace.cpp.o.d"
  "libtx_ppl.a"
  "libtx_ppl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_ppl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
