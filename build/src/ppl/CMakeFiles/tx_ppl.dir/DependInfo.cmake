
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppl/handlers.cpp" "src/ppl/CMakeFiles/tx_ppl.dir/handlers.cpp.o" "gcc" "src/ppl/CMakeFiles/tx_ppl.dir/handlers.cpp.o.d"
  "/root/repo/src/ppl/messenger.cpp" "src/ppl/CMakeFiles/tx_ppl.dir/messenger.cpp.o" "gcc" "src/ppl/CMakeFiles/tx_ppl.dir/messenger.cpp.o.d"
  "/root/repo/src/ppl/param_store.cpp" "src/ppl/CMakeFiles/tx_ppl.dir/param_store.cpp.o" "gcc" "src/ppl/CMakeFiles/tx_ppl.dir/param_store.cpp.o.d"
  "/root/repo/src/ppl/trace.cpp" "src/ppl/CMakeFiles/tx_ppl.dir/trace.cpp.o" "gcc" "src/ppl/CMakeFiles/tx_ppl.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/tx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
