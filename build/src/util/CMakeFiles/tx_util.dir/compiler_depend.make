# Empty compiler generated dependencies file for tx_util.
# This may be replaced when dependencies are built.
