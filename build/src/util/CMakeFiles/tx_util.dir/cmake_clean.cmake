file(REMOVE_RECURSE
  "CMakeFiles/tx_util.dir/random.cpp.o"
  "CMakeFiles/tx_util.dir/random.cpp.o.d"
  "CMakeFiles/tx_util.dir/table.cpp.o"
  "CMakeFiles/tx_util.dir/table.cpp.o.d"
  "libtx_util.a"
  "libtx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
