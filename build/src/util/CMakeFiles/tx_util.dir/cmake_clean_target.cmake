file(REMOVE_RECURSE
  "libtx_util.a"
)
