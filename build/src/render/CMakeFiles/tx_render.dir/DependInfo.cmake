
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/camera.cpp" "src/render/CMakeFiles/tx_render.dir/camera.cpp.o" "gcc" "src/render/CMakeFiles/tx_render.dir/camera.cpp.o.d"
  "/root/repo/src/render/volume.cpp" "src/render/CMakeFiles/tx_render.dir/volume.cpp.o" "gcc" "src/render/CMakeFiles/tx_render.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ppl/CMakeFiles/tx_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
