file(REMOVE_RECURSE
  "CMakeFiles/tx_render.dir/camera.cpp.o"
  "CMakeFiles/tx_render.dir/camera.cpp.o.d"
  "CMakeFiles/tx_render.dir/volume.cpp.o"
  "CMakeFiles/tx_render.dir/volume.cpp.o.d"
  "libtx_render.a"
  "libtx_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
