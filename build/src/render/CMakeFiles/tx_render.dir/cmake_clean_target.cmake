file(REMOVE_RECURSE
  "libtx_render.a"
)
