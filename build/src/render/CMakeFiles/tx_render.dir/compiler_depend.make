# Empty compiler generated dependencies file for tx_render.
# This may be replaced when dependencies are built.
