file(REMOVE_RECURSE
  "libtx_data.a"
)
