# Empty compiler generated dependencies file for tx_data.
# This may be replaced when dependencies are built.
