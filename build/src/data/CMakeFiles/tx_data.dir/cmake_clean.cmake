file(REMOVE_RECURSE
  "CMakeFiles/tx_data.dir/datasets.cpp.o"
  "CMakeFiles/tx_data.dir/datasets.cpp.o.d"
  "libtx_data.a"
  "libtx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
