
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/tx_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/functional.cpp" "src/nn/CMakeFiles/tx_nn.dir/functional.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/functional.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/tx_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/tx_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/tx_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/multihead.cpp" "src/nn/CMakeFiles/tx_nn.dir/multihead.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/multihead.cpp.o.d"
  "/root/repo/src/nn/resnet.cpp" "src/nn/CMakeFiles/tx_nn.dir/resnet.cpp.o" "gcc" "src/nn/CMakeFiles/tx_nn.dir/resnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ppl/CMakeFiles/tx_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
