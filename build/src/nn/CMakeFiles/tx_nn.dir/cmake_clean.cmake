file(REMOVE_RECURSE
  "CMakeFiles/tx_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/tx_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/tx_nn.dir/functional.cpp.o"
  "CMakeFiles/tx_nn.dir/functional.cpp.o.d"
  "CMakeFiles/tx_nn.dir/init.cpp.o"
  "CMakeFiles/tx_nn.dir/init.cpp.o.d"
  "CMakeFiles/tx_nn.dir/layers.cpp.o"
  "CMakeFiles/tx_nn.dir/layers.cpp.o.d"
  "CMakeFiles/tx_nn.dir/module.cpp.o"
  "CMakeFiles/tx_nn.dir/module.cpp.o.d"
  "CMakeFiles/tx_nn.dir/multihead.cpp.o"
  "CMakeFiles/tx_nn.dir/multihead.cpp.o.d"
  "CMakeFiles/tx_nn.dir/resnet.cpp.o"
  "CMakeFiles/tx_nn.dir/resnet.cpp.o.d"
  "libtx_nn.a"
  "libtx_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
