file(REMOVE_RECURSE
  "libtx_nn.a"
)
