# Empty dependencies file for tx_nn.
# This may be replaced when dependencies are built.
