# Empty dependencies file for tx_graph.
# This may be replaced when dependencies are built.
