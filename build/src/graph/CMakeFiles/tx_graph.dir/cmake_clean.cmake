file(REMOVE_RECURSE
  "CMakeFiles/tx_graph.dir/gcn.cpp.o"
  "CMakeFiles/tx_graph.dir/gcn.cpp.o.d"
  "CMakeFiles/tx_graph.dir/graph.cpp.o"
  "CMakeFiles/tx_graph.dir/graph.cpp.o.d"
  "libtx_graph.a"
  "libtx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
