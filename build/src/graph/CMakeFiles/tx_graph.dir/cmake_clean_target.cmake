file(REMOVE_RECURSE
  "libtx_graph.a"
)
