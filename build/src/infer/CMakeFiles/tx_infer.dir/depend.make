# Empty dependencies file for tx_infer.
# This may be replaced when dependencies are built.
