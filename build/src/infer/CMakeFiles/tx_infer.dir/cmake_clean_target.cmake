file(REMOVE_RECURSE
  "libtx_infer.a"
)
