
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infer/autoguide.cpp" "src/infer/CMakeFiles/tx_infer.dir/autoguide.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/autoguide.cpp.o.d"
  "/root/repo/src/infer/diagnostics.cpp" "src/infer/CMakeFiles/tx_infer.dir/diagnostics.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/diagnostics.cpp.o.d"
  "/root/repo/src/infer/elbo.cpp" "src/infer/CMakeFiles/tx_infer.dir/elbo.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/elbo.cpp.o.d"
  "/root/repo/src/infer/hmc.cpp" "src/infer/CMakeFiles/tx_infer.dir/hmc.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/hmc.cpp.o.d"
  "/root/repo/src/infer/mcmc.cpp" "src/infer/CMakeFiles/tx_infer.dir/mcmc.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/mcmc.cpp.o.d"
  "/root/repo/src/infer/nuts.cpp" "src/infer/CMakeFiles/tx_infer.dir/nuts.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/nuts.cpp.o.d"
  "/root/repo/src/infer/optim.cpp" "src/infer/CMakeFiles/tx_infer.dir/optim.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/optim.cpp.o.d"
  "/root/repo/src/infer/predictive.cpp" "src/infer/CMakeFiles/tx_infer.dir/predictive.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/predictive.cpp.o.d"
  "/root/repo/src/infer/sgld.cpp" "src/infer/CMakeFiles/tx_infer.dir/sgld.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/sgld.cpp.o.d"
  "/root/repo/src/infer/svi.cpp" "src/infer/CMakeFiles/tx_infer.dir/svi.cpp.o" "gcc" "src/infer/CMakeFiles/tx_infer.dir/svi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppl/CMakeFiles/tx_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
