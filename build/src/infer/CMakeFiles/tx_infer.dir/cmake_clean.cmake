file(REMOVE_RECURSE
  "CMakeFiles/tx_infer.dir/autoguide.cpp.o"
  "CMakeFiles/tx_infer.dir/autoguide.cpp.o.d"
  "CMakeFiles/tx_infer.dir/diagnostics.cpp.o"
  "CMakeFiles/tx_infer.dir/diagnostics.cpp.o.d"
  "CMakeFiles/tx_infer.dir/elbo.cpp.o"
  "CMakeFiles/tx_infer.dir/elbo.cpp.o.d"
  "CMakeFiles/tx_infer.dir/hmc.cpp.o"
  "CMakeFiles/tx_infer.dir/hmc.cpp.o.d"
  "CMakeFiles/tx_infer.dir/mcmc.cpp.o"
  "CMakeFiles/tx_infer.dir/mcmc.cpp.o.d"
  "CMakeFiles/tx_infer.dir/nuts.cpp.o"
  "CMakeFiles/tx_infer.dir/nuts.cpp.o.d"
  "CMakeFiles/tx_infer.dir/optim.cpp.o"
  "CMakeFiles/tx_infer.dir/optim.cpp.o.d"
  "CMakeFiles/tx_infer.dir/predictive.cpp.o"
  "CMakeFiles/tx_infer.dir/predictive.cpp.o.d"
  "CMakeFiles/tx_infer.dir/sgld.cpp.o"
  "CMakeFiles/tx_infer.dir/sgld.cpp.o.d"
  "CMakeFiles/tx_infer.dir/svi.cpp.o"
  "CMakeFiles/tx_infer.dir/svi.cpp.o.d"
  "libtx_infer.a"
  "libtx_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
