file(REMOVE_RECURSE
  "libtyxe_core.a"
)
