file(REMOVE_RECURSE
  "CMakeFiles/tyxe_core.dir/bnn.cpp.o"
  "CMakeFiles/tyxe_core.dir/bnn.cpp.o.d"
  "CMakeFiles/tyxe_core.dir/guides.cpp.o"
  "CMakeFiles/tyxe_core.dir/guides.cpp.o.d"
  "CMakeFiles/tyxe_core.dir/likelihoods.cpp.o"
  "CMakeFiles/tyxe_core.dir/likelihoods.cpp.o.d"
  "CMakeFiles/tyxe_core.dir/poutine.cpp.o"
  "CMakeFiles/tyxe_core.dir/poutine.cpp.o.d"
  "CMakeFiles/tyxe_core.dir/priors.cpp.o"
  "CMakeFiles/tyxe_core.dir/priors.cpp.o.d"
  "CMakeFiles/tyxe_core.dir/vcl.cpp.o"
  "CMakeFiles/tyxe_core.dir/vcl.cpp.o.d"
  "libtyxe_core.a"
  "libtyxe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tyxe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
