# Empty dependencies file for tyxe_core.
# This may be replaced when dependencies are built.
