
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/grad_check.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/grad_check.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/grad_check.cpp.o.d"
  "/root/repo/src/tensor/ops_conv.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_conv.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_conv.cpp.o.d"
  "/root/repo/src/tensor/ops_elementwise.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_elementwise.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_elementwise.cpp.o.d"
  "/root/repo/src/tensor/ops_linalg.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_linalg.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_linalg.cpp.o.d"
  "/root/repo/src/tensor/ops_reduce.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_reduce.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_reduce.cpp.o.d"
  "/root/repo/src/tensor/ops_shape.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_shape.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_shape.cpp.o.d"
  "/root/repo/src/tensor/ops_spd.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/ops_spd.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/ops_spd.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/serialize.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/serialize.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/shape.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/tx_tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/tx_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
