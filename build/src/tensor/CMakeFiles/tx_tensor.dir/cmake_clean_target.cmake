file(REMOVE_RECURSE
  "libtx_tensor.a"
)
