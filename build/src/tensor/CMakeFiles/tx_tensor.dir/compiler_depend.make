# Empty compiler generated dependencies file for tx_tensor.
# This may be replaced when dependencies are built.
