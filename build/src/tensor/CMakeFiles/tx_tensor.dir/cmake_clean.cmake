file(REMOVE_RECURSE
  "CMakeFiles/tx_tensor.dir/grad_check.cpp.o"
  "CMakeFiles/tx_tensor.dir/grad_check.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_conv.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_conv.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_elementwise.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_elementwise.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_linalg.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_linalg.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_reduce.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_reduce.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_shape.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_shape.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/ops_spd.cpp.o"
  "CMakeFiles/tx_tensor.dir/ops_spd.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/serialize.cpp.o"
  "CMakeFiles/tx_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/shape.cpp.o"
  "CMakeFiles/tx_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/tx_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tx_tensor.dir/tensor.cpp.o.d"
  "libtx_tensor.a"
  "libtx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
