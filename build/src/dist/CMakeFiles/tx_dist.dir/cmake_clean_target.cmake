file(REMOVE_RECURSE
  "libtx_dist.a"
)
