
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/discrete.cpp" "src/dist/CMakeFiles/tx_dist.dir/discrete.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/discrete.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/tx_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/kl.cpp" "src/dist/CMakeFiles/tx_dist.dir/kl.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/kl.cpp.o.d"
  "/root/repo/src/dist/lowrank_normal.cpp" "src/dist/CMakeFiles/tx_dist.dir/lowrank_normal.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/lowrank_normal.cpp.o.d"
  "/root/repo/src/dist/mixture.cpp" "src/dist/CMakeFiles/tx_dist.dir/mixture.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/mixture.cpp.o.d"
  "/root/repo/src/dist/normal.cpp" "src/dist/CMakeFiles/tx_dist.dir/normal.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/normal.cpp.o.d"
  "/root/repo/src/dist/poisson.cpp" "src/dist/CMakeFiles/tx_dist.dir/poisson.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/poisson.cpp.o.d"
  "/root/repo/src/dist/uniform.cpp" "src/dist/CMakeFiles/tx_dist.dir/uniform.cpp.o" "gcc" "src/dist/CMakeFiles/tx_dist.dir/uniform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
