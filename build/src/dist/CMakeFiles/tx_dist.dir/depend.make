# Empty dependencies file for tx_dist.
# This may be replaced when dependencies are built.
