file(REMOVE_RECURSE
  "CMakeFiles/tx_dist.dir/discrete.cpp.o"
  "CMakeFiles/tx_dist.dir/discrete.cpp.o.d"
  "CMakeFiles/tx_dist.dir/distribution.cpp.o"
  "CMakeFiles/tx_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/tx_dist.dir/kl.cpp.o"
  "CMakeFiles/tx_dist.dir/kl.cpp.o.d"
  "CMakeFiles/tx_dist.dir/lowrank_normal.cpp.o"
  "CMakeFiles/tx_dist.dir/lowrank_normal.cpp.o.d"
  "CMakeFiles/tx_dist.dir/mixture.cpp.o"
  "CMakeFiles/tx_dist.dir/mixture.cpp.o.d"
  "CMakeFiles/tx_dist.dir/normal.cpp.o"
  "CMakeFiles/tx_dist.dir/normal.cpp.o.d"
  "CMakeFiles/tx_dist.dir/poisson.cpp.o"
  "CMakeFiles/tx_dist.dir/poisson.cpp.o.d"
  "CMakeFiles/tx_dist.dir/uniform.cpp.o"
  "CMakeFiles/tx_dist.dir/uniform.cpp.o.d"
  "libtx_dist.a"
  "libtx_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
