# Empty dependencies file for tx_metrics.
# This may be replaced when dependencies are built.
