# Empty compiler generated dependencies file for tx_metrics.
# This may be replaced when dependencies are built.
