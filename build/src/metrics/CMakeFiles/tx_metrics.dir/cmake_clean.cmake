file(REMOVE_RECURSE
  "CMakeFiles/tx_metrics.dir/metrics.cpp.o"
  "CMakeFiles/tx_metrics.dir/metrics.cpp.o.d"
  "libtx_metrics.a"
  "libtx_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
