file(REMOVE_RECURSE
  "libtx_metrics.a"
)
