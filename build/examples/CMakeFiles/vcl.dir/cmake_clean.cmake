file(REMOVE_RECURSE
  "CMakeFiles/vcl.dir/vcl.cpp.o"
  "CMakeFiles/vcl.dir/vcl.cpp.o.d"
  "vcl"
  "vcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
