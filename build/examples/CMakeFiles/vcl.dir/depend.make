# Empty dependencies file for vcl.
# This may be replaced when dependencies are built.
