# Empty compiler generated dependencies file for resnet.
# This may be replaced when dependencies are built.
