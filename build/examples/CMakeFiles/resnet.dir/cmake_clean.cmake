file(REMOVE_RECURSE
  "CMakeFiles/resnet.dir/resnet.cpp.o"
  "CMakeFiles/resnet.dir/resnet.cpp.o.d"
  "resnet"
  "resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
