# Empty dependencies file for gnn.
# This may be replaced when dependencies are built.
