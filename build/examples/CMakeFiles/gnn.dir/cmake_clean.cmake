file(REMOVE_RECURSE
  "CMakeFiles/gnn.dir/gnn.cpp.o"
  "CMakeFiles/gnn.dir/gnn.cpp.o.d"
  "gnn"
  "gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
