file(REMOVE_RECURSE
  "CMakeFiles/raw_ppl_resnet.dir/raw_ppl_resnet.cpp.o"
  "CMakeFiles/raw_ppl_resnet.dir/raw_ppl_resnet.cpp.o.d"
  "raw_ppl_resnet"
  "raw_ppl_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_ppl_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
