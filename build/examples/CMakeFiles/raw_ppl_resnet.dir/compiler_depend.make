# Empty compiler generated dependencies file for raw_ppl_resnet.
# This may be replaced when dependencies are built.
