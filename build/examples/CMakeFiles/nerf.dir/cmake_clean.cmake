file(REMOVE_RECURSE
  "CMakeFiles/nerf.dir/nerf.cpp.o"
  "CMakeFiles/nerf.dir/nerf.cpp.o.d"
  "nerf"
  "nerf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
