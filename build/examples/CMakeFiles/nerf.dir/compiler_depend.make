# Empty compiler generated dependencies file for nerf.
# This may be replaced when dependencies are built.
