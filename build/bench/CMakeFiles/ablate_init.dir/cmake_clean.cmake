file(REMOVE_RECURSE
  "CMakeFiles/ablate_init.dir/ablate_init.cpp.o"
  "CMakeFiles/ablate_init.dir/ablate_init.cpp.o.d"
  "ablate_init"
  "ablate_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
