# Empty dependencies file for ablate_init.
# This may be replaced when dependencies are built.
