# Empty dependencies file for table2_gnn.
# This may be replaced when dependencies are built.
