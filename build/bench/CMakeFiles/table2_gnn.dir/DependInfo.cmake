
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_gnn.cpp" "bench/CMakeFiles/table2_gnn.dir/table2_gnn.cpp.o" "gcc" "bench/CMakeFiles/table2_gnn.dir/table2_gnn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tyxe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tx_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/tx_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ppl/CMakeFiles/tx_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
