file(REMOVE_RECURSE
  "CMakeFiles/table2_gnn.dir/table2_gnn.cpp.o"
  "CMakeFiles/table2_gnn.dir/table2_gnn.cpp.o.d"
  "table2_gnn"
  "table2_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
