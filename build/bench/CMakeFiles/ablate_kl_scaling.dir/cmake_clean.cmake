file(REMOVE_RECURSE
  "CMakeFiles/ablate_kl_scaling.dir/ablate_kl_scaling.cpp.o"
  "CMakeFiles/ablate_kl_scaling.dir/ablate_kl_scaling.cpp.o.d"
  "ablate_kl_scaling"
  "ablate_kl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_kl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
