# Empty dependencies file for ablate_kl_scaling.
# This may be replaced when dependencies are built.
