file(REMOVE_RECURSE
  "CMakeFiles/fig4_vcl.dir/fig4_vcl.cpp.o"
  "CMakeFiles/fig4_vcl.dir/fig4_vcl.cpp.o.d"
  "fig4_vcl"
  "fig4_vcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
