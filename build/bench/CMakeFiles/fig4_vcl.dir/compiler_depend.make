# Empty compiler generated dependencies file for fig4_vcl.
# This may be replaced when dependencies are built.
