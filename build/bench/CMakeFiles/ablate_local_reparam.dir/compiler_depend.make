# Empty compiler generated dependencies file for ablate_local_reparam.
# This may be replaced when dependencies are built.
