file(REMOVE_RECURSE
  "CMakeFiles/ablate_local_reparam.dir/ablate_local_reparam.cpp.o"
  "CMakeFiles/ablate_local_reparam.dir/ablate_local_reparam.cpp.o.d"
  "ablate_local_reparam"
  "ablate_local_reparam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_local_reparam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
