file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_harness.dir/table1_harness.cpp.o"
  "CMakeFiles/bench_table1_harness.dir/table1_harness.cpp.o.d"
  "libbench_table1_harness.a"
  "libbench_table1_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
