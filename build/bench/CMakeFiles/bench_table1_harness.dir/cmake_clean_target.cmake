file(REMOVE_RECURSE
  "libbench_table1_harness.a"
)
