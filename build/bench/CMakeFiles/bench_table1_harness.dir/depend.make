# Empty dependencies file for bench_table1_harness.
# This may be replaced when dependencies are built.
