file(REMOVE_RECURSE
  "CMakeFiles/fig2_calibration.dir/fig2_calibration.cpp.o"
  "CMakeFiles/fig2_calibration.dir/fig2_calibration.cpp.o.d"
  "fig2_calibration"
  "fig2_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
