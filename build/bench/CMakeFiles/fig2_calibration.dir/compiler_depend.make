# Empty compiler generated dependencies file for fig2_calibration.
# This may be replaced when dependencies are built.
