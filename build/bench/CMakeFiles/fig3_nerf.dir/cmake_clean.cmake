file(REMOVE_RECURSE
  "CMakeFiles/fig3_nerf.dir/fig3_nerf.cpp.o"
  "CMakeFiles/fig3_nerf.dir/fig3_nerf.cpp.o.d"
  "fig3_nerf"
  "fig3_nerf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nerf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
