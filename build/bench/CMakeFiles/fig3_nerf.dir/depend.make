# Empty dependencies file for fig3_nerf.
# This may be replaced when dependencies are built.
