# Empty compiler generated dependencies file for table1_resnet.
# This may be replaced when dependencies are built.
