file(REMOVE_RECURSE
  "CMakeFiles/table1_resnet.dir/table1_resnet.cpp.o"
  "CMakeFiles/table1_resnet.dir/table1_resnet.cpp.o.d"
  "table1_resnet"
  "table1_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
