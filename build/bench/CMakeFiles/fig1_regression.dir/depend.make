# Empty dependencies file for fig1_regression.
# This may be replaced when dependencies are built.
