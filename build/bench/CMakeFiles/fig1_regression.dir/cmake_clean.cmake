file(REMOVE_RECURSE
  "CMakeFiles/fig1_regression.dir/fig1_regression.cpp.o"
  "CMakeFiles/fig1_regression.dir/fig1_regression.cpp.o.d"
  "fig1_regression"
  "fig1_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
