// Quickstart: the paper's Listings 1 & 2 — Bayesian nonlinear regression in
// five statements, fit with local reparameterization, then predict.
//
//   net        = nn.Sequential(nn.Linear(1, 50), nn.Tanh(), nn.Linear(50, 1))
//   likelihood = tyxe.likelihoods.HomoskedasticGaussian(n, scale=0.1)
//   prior      = tyxe.priors.IIDPrior(dist.Normal(0, 1))
//   guide      = tyxe.guides.AutoNormal
//   bnn        = tyxe.VariationalBNN(net, prior, likelihood, guide)
#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);
  const std::int64_t n = 64;
  auto data = tx::data::make_foong_regression(n, gen);

  // Listing 1, line for line.
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto likelihood = std::make_shared<tyxe::HomoskedasticGaussian>(n, 0.1f);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  auto guide_factory = tyxe::guides::auto_normal_factory();
  tyxe::VariationalBNN bnn(net, prior, likelihood, guide_factory);

  // Listing 2: fit inside the local_reparameterization context.
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    tyxe::poutine::LocalReparameterization local_reparameterization;
    bnn.fit({{{data.x}, data.y}}, optim, 1000);
  }

  // Predict on a grid and print mean ± std (the Fig. 1 bands).
  tx::Tensor grid = tx::linspace(-1.5f, 1.5f, 31).reshape({31, 1});
  tx::Tensor stacked = bnn.predict(grid, /*num_predictions=*/32,
                                   /*aggregate=*/false);
  tx::Tensor mean = likelihood->aggregate_predictions(stacked);
  tx::Tensor std = likelihood->predictive_std(stacked);

  std::printf("%8s  %10s  %10s\n", "x", "mean", "std");
  for (std::int64_t i = 0; i < 31; ++i) {
    std::printf("%8.3f  %10.4f  %10.4f\n", grid.at(i), mean.at(i), std.at(i));
  }
  auto [ll, err] = bnn.evaluate({data.x}, data.y, 32);
  std::printf("\ntrain log-likelihood %.3f, mse %.4f\n", ll, err);
  return 0;
}
