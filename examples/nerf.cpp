// The paper's Listing 5: a Bayesian Neural Radiance Field via PytorchBNN.
// The rendering loss is not a likelihood, so the BNN is used as a drop-in
// module: ordinary optimizer, custom loss, plus the cached KL as regularizer.
#include <cstdio>

#include "core/tyxe.h"
#include "render/volume.h"

using namespace tx::render;

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);

  // Training views on a 270° arc, held-out views on the remaining 90°.
  const float kThreeQuarters = 4.712389f;
  auto train_cams = circle_cameras(8, 2.5f, 0.4f, 8.0f, 12, 0.0f, kThreeQuarters);
  auto held_cams = circle_cameras(3, 2.5f, 0.4f, 8.0f, 12, kThreeQuarters + 0.3f,
                                  6.0f);
  RenderConfig cfg;
  cfg.num_samples = 16;
  cfg.t_near = 1.0f;
  cfg.t_far = 4.5f;
  auto train_targets = ground_truth_views(train_cams, cfg);
  auto held_targets = ground_truth_views(held_cams, cfg);

  auto nerf_net = std::make_shared<NeRFField>(4, 48, 2, &gen);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  tyxe::guides::AutoNormalConfig guide_cfg;
  guide_cfg.init_scale = 1e-2f;
  tyxe::PytorchBNN nerf_bnn(nerf_net, prior,
                            tyxe::guides::auto_normal_factory(guide_cfg));

  // Listing 5: parameter collection needs one traced batch.
  tx::infer::Adam optim(1e-3);
  optim.add_params(nerf_bnn.pytorch_parameters({tx::randn({4, 3}, &gen)}));

  auto bnn_field = [&nerf_bnn](const tx::Tensor& pts) {
    return nerf_bnn.forward(pts);
  };
  const float kl_scale = 1e-6f;
  for (int iter = 0; iter < 300; ++iter) {
    const auto view = static_cast<std::size_t>(iter) % train_cams.size();
    optim.zero_grad();
    auto rendered = render_rays(bnn_field, camera_rays(train_cams[view]), cfg);
    tx::Tensor image_loss = render_loss(rendered, train_targets[view]);
    tx::Tensor loss = tx::add(
        image_loss, tx::mul(nerf_bnn.cached_kl_loss(),
                            tx::Tensor::scalar(kl_scale)));
    loss.backward();
    optim.step();
    if (iter % 100 == 0) {
      std::printf("iter %4d  image loss %.5f  kl %.1f\n", iter,
                  image_loss.item(), nerf_bnn.cached_kl_loss().item());
    }
  }

  // Held-out evaluation: average 8 posterior renders per view (Fig. 3).
  tx::NoGradGuard ng;
  double total_err = 0.0, total_unc = 0.0;
  for (std::size_t v = 0; v < held_cams.size(); ++v) {
    RayBatch rays = camera_rays(held_cams[v]);
    std::vector<tx::Tensor> renders;
    for (int s = 0; s < 8; ++s) {
      renders.push_back(render_rays(bnn_field, rays, cfg).rgb.detach());
    }
    tx::Tensor stacked = tx::stack(renders, 0);
    tx::Tensor mean = tx::mean(stacked, {0});
    tx::Tensor var = tx::mean(tx::square(tx::sub(stacked, mean)), {0});
    total_err += tx::mean(tx::square(tx::sub(mean, held_targets[v].rgb))).item();
    total_unc += tx::mean(var).item();
  }
  std::printf("held-out mse %.5f, mean predictive variance %.3e\n",
              total_err / static_cast<double>(held_cams.size()),
              total_unc / static_cast<double>(held_cams.size()));
  return 0;
}
