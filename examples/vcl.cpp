// The paper's Listing 6 / Section 5: variational continual learning. After
// each task the guide's detached posteriors become the next task's prior.
#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "metrics/metrics.h"

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);

  tx::data::SyntheticImageConfig cfg;
  cfg.num_classes = 10;
  cfg.channels = 1;
  cfg.size = 8;
  auto tasks = tx::data::make_split_tasks(cfg, 5, 40, 20, gen);

  // Shared body, one head per task (the Split-MNIST protocol of Nguyen et
  // al.); the prior covers body and all heads.
  auto body = tx::nn::make_mlp({64, 100}, "relu", &gen);
  auto net = std::make_shared<tx::nn::MultiHeadNet>(body, 100, 2, 5, &gen);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  auto likelihood = std::make_shared<tyxe::Categorical>(80);
  tyxe::guides::AutoNormalConfig guide_cfg;
  guide_cfg.init_scale = 1e-4f;  // paper appendix: stds start at 1e-4
  tyxe::VariationalBNN bnn(net, prior, likelihood,
                           tyxe::guides::auto_normal_factory(guide_cfg));

  auto flatten = [](const tx::Tensor& images) {
    return images.flatten(1);
  };

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    auto optim = std::make_shared<tx::infer::Adam>(1e-2);
    net->set_active_head(static_cast<std::int64_t>(t));
    likelihood->set_dataset_size(tasks[t].train.labels.numel());
    bnn.fit({{{flatten(tasks[t].train.images)}, tasks[t].train.labels}}, optim,
            200);
    // Listing 6: collect sites, detach posteriors, update the prior. Heads
    // of tasks not seen yet keep their fresh N(0, 1) prior (their variational
    // posteriors are untrained artifacts, not task knowledge).
    auto sites = tyxe::util::pyro_sample_sites(bnn);
    auto posteriors = bnn.net_guide().get_detached_distributions(sites);
    for (auto& [name, d] : posteriors) {
      for (std::size_t future = t + 1; future < tasks.size(); ++future) {
        if (name.find("head" + std::to_string(future) + ".") != std::string::npos) {
          d = std::make_shared<tx::dist::Normal>(tx::zeros(d->shape()),
                                                 tx::ones(d->shape()));
        }
      }
    }
    bnn.update_prior(std::make_shared<tyxe::DictPrior>(posteriors));

    // Accuracy on every task seen so far.
    double mean_acc = 0.0;
    std::printf("after task %zu:", t + 1);
    for (std::size_t s = 0; s <= t; ++s) {
      net->set_active_head(static_cast<std::int64_t>(s));
      tx::Tensor probs = bnn.predict(flatten(tasks[s].test.images), 8);
      const double acc = tx::metrics::accuracy(probs, tasks[s].test.labels);
      mean_acc += acc;
      std::printf("  task%zu %.3f", s + 1, acc);
    }
    std::printf("  | mean %.3f\n", mean_acc / static_cast<double>(t + 1));
  }
  return 0;
}
