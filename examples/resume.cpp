// Crash-safe training with tx::resil: the quickstart regression fit under a
// RetryPolicy. Run it once and it trains to completion, writing a tx.ckpt.v1
// checkpoint every 200 steps; kill it mid-run (Ctrl-C, SIGKILL, power loss —
// the atomic writer makes no difference which) and the next invocation
// resumes from the last checkpoint and produces bitwise-identical results to
// a run that was never interrupted. Delete resume.ckpt to start over.
//
// Try it with fault injection, too:
//
//   TYXE_FAULT='nan-grad=net@50x2' ./resume    # poisoned grads -> rollback
//   TYXE_FAULT='write-open=2'      ./resume    # failed writes  -> keep going
#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "resil/fault.h"

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);
  const std::int64_t n = 64;
  auto data = tx::data::make_foong_regression(n, gen);

  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto likelihood = std::make_shared<tyxe::HomoskedasticGaussian>(n, 0.1f);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  tyxe::VariationalBNN bnn(net, prior, likelihood,
                           tyxe::guides::auto_normal_factory());

  // Bitwise resume needs the fit's sampling pinned to a private generator —
  // its engine state rides along in the checkpoint (docs/robustness.md).
  tx::Generator fit_gen(1);
  bnn.set_generator(&fit_gen);

  if (tx::fault::install_from_env()) {
    std::printf("fault plan installed from TYXE_FAULT\n");
  }

  tx::resil::RetryPolicy policy;
  policy.checkpoint_path = "resume.ckpt";
  policy.checkpoint_every = 200;  // steps between tx.ckpt.v1 snapshots
  policy.max_retries = 3;         // rollbacks per segment before giving up
  policy.lr_decay = 0.5;          // lr multiplier applied on each rollback

  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  tx::resil::FitReport report = bnn.fit({{{data.x}, data.y}}, optim,
                                        /*epochs=*/2000, policy);

  std::printf("%s at step %lld/%lld: %lld steps this run, %lld checkpoints, "
              "%lld rollbacks\n",
              report.resumed ? "resumed" : "started fresh",
              static_cast<long long>(report.steps_completed), 2000LL,
              static_cast<long long>(report.steps_run),
              static_cast<long long>(report.checkpoints),
              static_cast<long long>(report.rollbacks));
  if (report.exhausted) {
    std::printf("retries exhausted: %s\n", report.failure_reason.c_str());
    return 1;
  }

  // Posterior-predictive check, as in the quickstart.
  tx::Tensor grid = tx::linspace(-1.5f, 1.5f, 7).reshape({7, 1});
  tx::Tensor stacked = bnn.predict(grid, /*num_predictions=*/32,
                                   /*aggregate=*/false);
  tx::Tensor mean = likelihood->aggregate_predictions(stacked);
  tx::Tensor std = likelihood->predictive_std(stacked);
  for (std::int64_t i = 0; i < grid.numel(); ++i) {
    std::printf("x=%6.2f  mean=%7.3f  std=%6.3f\n", grid.at(i), mean.at(i),
                std.at(i));
  }
  std::printf("final loss %.4f; checkpoint left at %s\n", report.final_loss,
              policy.checkpoint_path.c_str());
  return 0;
}
