// The paper's Listing 4: a Bayesian graph neural network. The GCN comes from
// the graph library unchanged; prior/guide/likelihood are constructed exactly
// as in the other examples, and selective_mask restricts the likelihood to
// labelled nodes (semi-supervised node classification on the Cora analogue).
#include <cstdio>

#include "core/tyxe.h"
#include "graph/gcn.h"
#include "metrics/metrics.h"

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);

  tx::graph::SbmConfig cfg;
  auto cora = tx::graph::make_sbm_citation(cfg, gen);
  std::printf("Cora analogue: %lld nodes, %lld edges, homophily %.2f\n",
              static_cast<long long>(cora.graph.num_nodes()),
              static_cast<long long>(cora.graph.num_edges()),
              cora.graph.homophily(cora.labels));

  auto gnn = std::make_shared<tx::graph::GCN>(&cora.graph, cfg.num_features,
                                              16, cfg.num_classes, &gen);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  tyxe::guides::AutoNormalConfig guide_cfg;
  guide_cfg.max_scale = 0.3f;
  guide_cfg.init_scale = 1e-4f;
  // Full-batch + mask: dataset_size equals the node count so the likelihood
  // scale is 1 (the mask already restricts the sum to labelled nodes).
  auto likelihood =
      std::make_shared<tyxe::Categorical>(cora.graph.num_nodes());
  tyxe::VariationalBNN bgnn(gnn, prior, likelihood,
                            tyxe::guides::auto_normal_factory(guide_cfg));

  // Listing 4: fit under selective_mask so only labelled nodes contribute.
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    tyxe::poutine::SelectiveMask sm(cora.train_mask(), {"likelihood.data"});
    bgnn.fit({{{cora.features}, cora.labels}}, optim, 300);
  }

  tx::Tensor probs = bgnn.predict(cora.features, /*num_predictions=*/8);
  tx::Tensor test_probs = tx::index_select(probs, 0, cora.test_idx);
  tx::Tensor test_labels = cora.labels_at(cora.test_idx);
  std::printf("Bayesian GNN test metrics (mean-field, 8 samples):\n");
  std::printf("  accuracy %.3f\n",
              tx::metrics::accuracy(test_probs, test_labels));
  std::printf("  nll      %.3f\n", tx::metrics::nll(test_probs, test_labels));
  std::printf("  ece      %.3f\n",
              tx::metrics::expected_calibration_error(test_probs, test_labels));
  return 0;
}
