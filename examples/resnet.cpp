// The paper's Listing 3: turn a pre-trained ResNet into a Bayesian one. The
// prior hides BatchNorm modules; the guide fixes the means to the pre-trained
// weights and learns only the standard deviations ("MF sd-only"). Runs on the
// synthetic CIFAR analogue (see DESIGN.md).
#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "metrics/metrics.h"

using tyxe::guides::AutoNormalConfig;

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);

  tx::data::SyntheticImageConfig img_cfg;
  img_cfg.num_classes = 10;
  img_cfg.per_class = 40;
  img_cfg.size = 16;
  auto train = tx::data::make_pattern_images(img_cfg, gen);
  img_cfg.per_class = 20;
  auto test = tx::data::make_pattern_images(img_cfg, gen);
  const std::int64_t n_train = train.labels.numel();

  // "Pre-trained" ResNet: a short maximum-likelihood run.
  auto resnet = tx::nn::make_resnet8(10, 8, 3, &gen);
  {
    tx::infer::Adam optim(1e-3);
    for (auto& slot : resnet->named_parameter_slots()) optim.add_param(*slot.slot);
    tx::data::DataLoader loader(train.images, train.labels, 64);
    for (int epoch = 0; epoch < 8; ++epoch) {
      for (auto& [inputs, targets] : loader.batches(&gen)) {
        optim.zero_grad();
        tx::Tensor logits = resnet->forward(inputs[0]);
        tx::Tensor loss = tx::neg(
            tx::mean(tx::gather_last(tx::log_softmax(logits, -1), targets)));
        loss.backward();
        optim.step();
      }
    }
  }

  // Listing 3: prior excludes BatchNorm; guide means init to pre-trained
  // values and stay fixed; scales init small.
  tyxe::HideExpose filter;
  filter.hide_module_types = {"BatchNorm2d"};
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f), filter);
  AutoNormalConfig guide_cfg;
  guide_cfg.init_loc = tyxe::guides::init_to_value(
      tyxe::guides::pretrained_dict(*resnet));
  guide_cfg.init_scale = 1e-4f;
  guide_cfg.train_loc = false;  // fit only the variances
  guide_cfg.max_scale = 0.1f;
  auto likelihood = std::make_shared<tyxe::Categorical>(n_train);
  tyxe::VariationalBNN bnn(resnet, prior, likelihood,
                           tyxe::guides::auto_normal_factory(guide_cfg));

  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  tx::data::DataLoader loader(train.images, train.labels, 64);
  {
    tyxe::poutine::LocalReparameterization lr;
    bnn.fit([&] { return loader.batches(&gen); }, optim, 5);
  }

  bnn.eval();
  tx::Tensor probs = bnn.predict(test.images, /*num_predictions=*/8);
  std::printf("Bayesian ResNet (MF sd-only) on synthetic CIFAR:\n");
  std::printf("  accuracy %.3f\n", tx::metrics::accuracy(probs, test.labels));
  std::printf("  nll      %.3f\n", tx::metrics::nll(probs, test.labels));
  std::printf("  ece      %.3f\n",
              tx::metrics::expected_calibration_error(probs, test.labels));
  return 0;
}
