// Appendix B of the paper: the same variational network expressed directly
// against the PPL core, with none of the tyxe abstractions. Compare with
// examples/resnet.cpp — here the user must (a) replace parameters with
// sample sites by hand, (b) write the model function and the likelihood
// scaling themselves, (c) hand-roll the guide, the SVI loop, and the
// prediction averaging. This file exists to make the boilerplate gap
// measurable (see EXPERIMENTS.md, LST7).
#include <cstdio>

#include "data/datasets.h"
#include "dist/distributions.h"
#include "infer/infer.h"
#include "metrics/metrics.h"
#include "nn/nn.h"

namespace nd = tx::dist;
using tx::Tensor;

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);

  tx::data::SyntheticImageConfig img_cfg;
  img_cfg.num_classes = 10;
  img_cfg.per_class = 20;
  img_cfg.size = 16;
  auto train = tx::data::make_pattern_images(img_cfg, gen);
  const std::int64_t n_train = train.labels.numel();

  auto net = tx::nn::make_resnet8(10, 8, 3, &gen);

  // --- manual prior definition: walk the modules, replace Linear/Conv2d
  // parameters with sample sites, keep everything else deterministic.
  struct Site {
    std::string name;
    tx::Tensor* slot;
    std::shared_ptr<nd::Normal> prior;
  };
  std::vector<Site> sites;
  tx::ppl::ParamStore store;
  for (auto& slot : net->named_parameter_slots()) {
    const std::string type = slot.owner->type_name();
    if (type == "Linear" || type == "Conv2d") {
      auto prior = std::make_shared<nd::Normal>(tx::zeros(slot.slot->shape()),
                                                tx::ones(slot.slot->shape()));
      sites.push_back({"net." + slot.name, slot.slot, prior});
    } else {
      store.set("net." + slot.name, *slot.slot);  // ML for BatchNorm etc.
    }
  }

  // --- manual model: sample every site, run the net, scale the likelihood.
  auto model = [&](const Tensor& x, const Tensor& y) {
    for (auto& s : sites) {
      *s.slot = tx::ppl::sample(s.name, s.prior);
    }
    Tensor logits = net->forward(x);
    const double scale =
        static_cast<double>(n_train) / static_cast<double>(x.dim(0));
    tx::ppl::ScaleMessenger sm(scale);
    tx::ppl::HandlerScope scope(sm);
    tx::ppl::sample("data", std::make_shared<nd::Categorical>(logits), y);
  };

  // --- manual guide: per-site loc/scale parameters and Normal samples.
  auto guide = [&] {
    for (auto& s : sites) {
      Tensor loc = store.get_or_create("loc." + s.name,
                                       [&] { return s.slot->detach(); });
      Tensor scale_u = store.get_or_create("scale_u." + s.name, [&] {
        return tx::full(s.prior->shape(),
                        tx::infer::softplus_inverse(1e-2f));
      });
      tx::ppl::sample(s.name, std::make_shared<nd::Normal>(
                                  loc, tx::softplus(scale_u)));
    }
  };

  // --- manual SVI loop over mini-batches.
  tx::infer::TraceELBO elbo;
  tx::infer::Adam optim(1e-3);
  tx::data::DataLoader loader(train.images, train.labels, 64);
  for (int epoch = 0; epoch < 6; ++epoch) {
    double total = 0.0;
    int batches = 0;
    for (auto& [inputs, targets] : loader.batches(&gen)) {
      for (auto& [name, p] : store.items()) p.zero_grad();
      Tensor x = inputs[0];
      Tensor y = targets;
      Tensor loss = elbo.differentiable_loss([&] { model(x, y); }, guide);
      loss.backward();
      for (auto& [name, p] : store.items()) optim.add_param(p);
      optim.step();
      total += loss.item();
      ++batches;
    }
    std::printf("epoch %d  -elbo %.1f\n", epoch, total / batches);
  }

  // --- manual prediction: trace the guide, replay the net, average probs.
  tx::NoGradGuard ng;
  std::vector<Tensor> prob_draws;
  for (int s = 0; s < 8; ++s) {
    tx::ppl::Trace tr = tx::ppl::trace_fn(guide);
    tx::ppl::ReplayMessenger replay(tr);
    tx::ppl::HandlerScope scope(replay);
    for (auto& site : sites) {
      *site.slot = tx::ppl::sample(site.name, site.prior);
    }
    prob_draws.push_back(tx::softmax(net->forward(train.images), -1).detach());
  }
  Tensor probs = tx::mean(tx::stack(prob_draws, 0), {0});
  std::printf("train accuracy (raw PPL variational ResNet): %.3f\n",
              tx::metrics::accuracy(probs, train.labels));
  return 0;
}
