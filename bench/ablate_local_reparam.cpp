// Ablation: gradient variance of the ELBO with naive weight sampling vs
// local reparameterization vs flipout, across batch sizes — the quantitative
// backing of the paper's claim that these effect handlers are "essential
// techniques for well-performing BNNs" (Sec. 2.4). Expected shape: naive
// variance grows ~linearly with batch size (shared weight noise correlates
// all examples); local reparameterization and flipout stay flat/lower.
#include <cstdio>

#include "core/tyxe.h"
#include "util/table.h"

using tx::Tensor;

namespace {

enum class Mode { kNaive, kLocalReparam, kFlipout };

/// Variance of d(mean squared output)/d(loc[0]) over repeated single-sample
/// estimates for a linear layer with a factorized Gaussian posterior.
double gradient_variance(Mode mode, std::int64_t batch, int reps,
                         const Tensor& loc0, const Tensor& scale,
                         const Tensor& x_row) {
  Tensor x = tx::broadcast_to(x_row, {batch, x_row.dim(1)}).detach();

  std::vector<double> grads;
  grads.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Tensor loc = loc0.detach().set_requires_grad(true);
    auto wd = std::make_shared<tx::dist::Normal>(loc, scale);
    Tensor loss;
    auto run = [&] {
      Tensor w = tx::ppl::sample("w", wd);
      loss = tx::mean(tx::square(tx::nn::functional::linear(x, w, Tensor())));
    };
    switch (mode) {
      case Mode::kNaive:
        run();
        break;
      case Mode::kLocalReparam: {
        tyxe::poutine::LocalReparameterization scope;
        run();
        break;
      }
      case Mode::kFlipout: {
        tyxe::poutine::Flipout scope;
        run();
        break;
      }
    }
    loss.backward();
    grads.push_back(loc.grad().at(0));
  }
  double mean = 0;
  for (double g : grads) mean += g;
  mean /= static_cast<double>(grads.size());
  double var = 0;
  for (double g : grads) var += (g - mean) * (g - mean);
  return var / static_cast<double>(grads.size());
}

}  // namespace

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);
  const int kReps = 1500;
  std::printf("Ablation: variance of a single-sample ELBO-style gradient "
              "(d loss / d loc[0]),\n%d replicates, linear layer 32->16, "
              "posterior std 0.2.\n\n",
              kReps);
  // One fixed problem (posterior means, input) shared by every cell so the
  // comparison isolates the estimator.
  const std::int64_t in = 32, out = 16;
  Tensor loc0 = tx::randn({out, in}, &gen);
  Tensor scale = tx::full({out, in}, 0.2f);
  Tensor x_row = tx::randn({1, in}, &gen);
  tx::Table table({"batch", "naive", "local reparam", "flipout"});
  for (std::int64_t batch : {4, 16, 64, 256}) {
    const double naive =
        gradient_variance(Mode::kNaive, batch, kReps, loc0, scale, x_row);
    const double lr = gradient_variance(Mode::kLocalReparam, batch, kReps,
                                        loc0, scale, x_row);
    const double flip =
        gradient_variance(Mode::kFlipout, batch, kReps, loc0, scale, x_row);
    table.add_row({std::to_string(batch), tx::Table::fmt(naive * 1e4, 2),
                   tx::Table::fmt(lr * 1e4, 2), tx::Table::fmt(flip * 1e4, 2)});
  }
  table.print("gradient variance (x 1e-4):");
  std::printf("\nshape: with identical inputs repeated across the batch, the "
              "naive estimator's variance\ndoes not shrink with batch size, "
              "while the reparameterized estimators' do.\n");
  return 0;
}
