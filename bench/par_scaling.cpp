// tx::par scaling benchmark: wall-time of the two acceptance-criterion hot
// paths — a 512x512 matmul and a 4-chain MCMC run — at 1 vs 4 threads, plus
// a bitwise determinism cross-check between the two thread counts. Writes
// BENCH_par_scaling.json in the tx.obs.v1 snapshot schema.
//
// On single-core machines the speedup gauges will sit near (or below) 1.0;
// the determinism gauge must be 1.0 everywhere.
#include <cstdio>
#include <memory>
#include <vector>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "obs/obs.h"
#include "par/par.h"
#include "ppl/ppl.h"

using tx::Tensor;

namespace {

/// Best-of-`reps` wall time of fn().
template <typename Fn>
double time_best(int reps, Fn fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = tx::obs::now_seconds();
    fn();
    const double dt = tx::obs::now_seconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

std::vector<double> run_chains() {
  tx::infer::Program model = [] {
    Tensor z = tx::ppl::sample(
        "z", std::make_shared<tx::dist::Normal>(tx::zeros({8}), tx::ones({8})));
    tx::ppl::sample("obs",
                    std::make_shared<tx::dist::Normal>(z, Tensor::scalar(0.5f)),
                    tx::ones({8}));
  };
  tx::Generator gen(0);
  tx::infer::MCMC mcmc([] { return std::make_shared<tx::infer::HMC>(0.1, 10); },
                       /*num_samples=*/100, /*warmup_steps=*/50,
                       /*num_chains=*/4);
  mcmc.run(model, &gen);
  return mcmc.coordinate_chain(0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== par_scaling: tx::par hot paths at 1 vs 4 threads ==\n");
  auto& reg = tx::obs::registry();

  // --trace <path> (or TYXE_TRACE) records the whole comparison as a Chrome
  // trace: matmul slices with shape/FLOP args, par-worker chunk tracks, and
  // per-chain mcmc.chain / mcmc.step slices. --prof (or TYXE_PROF) adds the
  // kernel roofline / churn "prof" section to BENCH_par_scaling.json.
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  const std::string& trace_path = obs_flags.trace_path;
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  if (!trace_path.empty()) {
    tx::obs::set_trace_thread_name("main");
    tx::obs::start_tracing();
  }
  tx::obs::manifest::set_field("seed", std::int64_t{0});

  // --obs-http[=PORT] / TYXE_OBS_HTTP: live telemetry for the whole run
  // (/metrics, /healthz, /snapshot, /manifest); read-only, so the bitwise
  // determinism checks below hold with the server on or off.
  tx::obs::live::Server live_server({obs_flags.http_port, "par_scaling"});
  if (obs_flags.http_port >= 0 && live_server.start()) {
    std::printf("obs-http: serving on http://127.0.0.1:%d\n",
                live_server.port());
  }

  // --- 512x512 matmul.
  tx::Generator gen(0);
  const Tensor a = tx::randn({512, 512}, &gen);
  const Tensor b = tx::randn({512, 512}, &gen);
  tx::NoGradGuard ng;
  tx::par::set_num_threads(1);
  (void)tx::matmul(a, b);  // warm the pool/pages outside the timer
  const double mm_1t = time_best(5, [&] { (void)tx::matmul(a, b); });
  const std::vector<float> mm_ref = tx::matmul(a, b).to_vector();
  tx::par::set_num_threads(4);
  (void)tx::matmul(a, b);
  const double mm_4t = time_best(5, [&] { (void)tx::matmul(a, b); });
  const bool mm_same = tx::matmul(a, b).to_vector() == mm_ref;
  std::printf("  matmul 512x512: %.4fs @1t, %.4fs @4t, speedup %.2fx, "
              "bitwise %s\n",
              mm_1t, mm_4t, mm_1t / mm_4t, mm_same ? "same" : "DIFFERENT");

  // --- 4-chain MCMC.
  tx::par::set_num_threads(1);
  const std::vector<double> chain_ref = run_chains();
  const double mc_1t = time_best(2, [] { (void)run_chains(); });
  tx::par::set_num_threads(4);
  const double mc_4t = time_best(2, [] { (void)run_chains(); });
  const bool mc_same = run_chains() == chain_ref;
  std::printf("  mcmc 4 chains:  %.4fs @1t, %.4fs @4t, speedup %.2fx, "
              "bitwise %s\n",
              mc_1t, mc_4t, mc_1t / mc_4t, mc_same ? "same" : "DIFFERENT");

  reg.gauge("par_scaling.matmul.seconds_1t").set(mm_1t);
  reg.gauge("par_scaling.matmul.seconds_4t").set(mm_4t);
  reg.gauge("par_scaling.matmul.speedup").set(mm_1t / mm_4t);
  reg.gauge("par_scaling.mcmc.seconds_1t").set(mc_1t);
  reg.gauge("par_scaling.mcmc.seconds_4t").set(mc_4t);
  reg.gauge("par_scaling.mcmc.speedup").set(mc_1t / mc_4t);
  reg.gauge("par_scaling.deterministic").set(mm_same && mc_same ? 1.0 : 0.0);

  tx::obs::EventSink::write_snapshot(
      "BENCH_par_scaling.json", "par_scaling", reg,
      {{"matmul_seconds", {mm_1t, mm_4t}}, {"mcmc_seconds", {mc_1t, mc_4t}}});
  std::printf("  metrics: BENCH_par_scaling.json\n");
  if (!trace_path.empty()) {
    tx::obs::stop_tracing();
    const bool ok = tx::obs::write_trace(trace_path);
    std::printf("  trace:   %s (%lld events, %lld dropped)%s\n",
                trace_path.c_str(),
                static_cast<long long>(tx::obs::trace_event_count()),
                static_cast<long long>(tx::obs::trace_dropped_count()),
                ok ? "" : " [WRITE FAILED]");
    if (!ok) return 1;
  }
  return (mm_same && mc_same) ? 0 : 1;
}
