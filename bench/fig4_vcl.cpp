// Reproduces Figure 4 of the paper: mean accuracy over tasks seen so far for
// variational continual learning (VCL) vs maximum likelihood on Split-MNIST
// and Split-CIFAR analogues (5 tasks x 2 classes). Protocol: multi-head, as
// in Nguyen et al. (2018) / Swaroop et al. (2019) — a shared body with one
// output head per task. Sequential ML training drifts the shared body and
// forgets old tasks; VCL's posterior-to-prior update anchors it
// (DESIGN.md, FIG4).
#include <cstdio>
#include <map>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "metrics/metrics.h"
#include "obs/event_sink.h"
#include "obs/flags.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/pq.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "util/stats.h"

using tx::Tensor;

namespace {

constexpr int kTasks = 5;
constexpr int kClasses = 10;

struct Curve {
  std::array<double, kTasks> mean_acc{};  // over tasks seen so far
};

Tensor flat(const Tensor& images) { return images.flatten(1); }

Curve run_vcl(const std::vector<tx::data::SplitTask>& tasks,
              std::int64_t input_dim, std::uint64_t seed, int epochs) {
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  // A narrow shared body: the capacity-pressure regime in which the
  // continual-learning problem is non-trivial at this scale.
  auto body = tx::nn::make_mlp({input_dim, 8}, "relu", &gen);
  auto net = std::make_shared<tx::nn::MultiHeadNet>(body, 8, 2, kTasks, &gen);
  auto likelihood = std::make_shared<tyxe::Categorical>(1);
  tyxe::guides::AutoNormalConfig g;
  g.init_scale = 0.05f;  // scales must be trainable within the epoch budget
                          // (1e-4 would freeze the VCL prior artificially)
  tyxe::VariationalBNN bnn(net,
                           std::make_shared<tyxe::IIDPrior>(
                               std::make_shared<tx::dist::Normal>(0.0f, 1.0f)),
                           likelihood, tyxe::guides::auto_normal_factory(g));
  Curve curve;
  for (int t = 0; t < kTasks; ++t) {
    const auto& task = tasks[static_cast<std::size_t>(t)];
    net->set_active_head(t);
    likelihood->set_dataset_size(task.train.labels.numel());
    auto optim = std::make_shared<tx::infer::Adam>(1e-3);  // paper A.4
    tx::data::DataLoader loader(flat(task.train.images), task.train.labels, 32);
    bnn.fit([&] { return loader.batches(&gen); }, optim, epochs);

    // Posterior -> prior; heads of unseen tasks keep their fresh N(0, 1)
    // prior (their variational posteriors are untrained artifacts).
    auto posteriors =
        bnn.net_guide().get_detached_distributions(bnn.site_names());
    for (auto& [name, d] : posteriors) {
      for (int future = t + 1; future < kTasks; ++future) {
        if (name.find("head" + std::to_string(future) + ".") !=
            std::string::npos) {
          d = std::make_shared<tx::dist::Normal>(tx::zeros(d->shape()),
                                                 tx::ones(d->shape()));
        }
      }
    }
    bnn.update_prior(std::make_shared<tyxe::DictPrior>(posteriors));

    double total = 0.0;
    for (int s = 0; s <= t; ++s) {
      net->set_active_head(s);
      Tensor probs =
          bnn.predict(flat(tasks[static_cast<std::size_t>(s)].test.images), 8);
      total += tx::metrics::accuracy(
          probs, tasks[static_cast<std::size_t>(s)].test.labels);
    }
    curve.mean_acc[static_cast<std::size_t>(t)] = total / (t + 1);
  }
  return curve;
}

Curve run_ml(const std::vector<tx::data::SplitTask>& tasks,
             std::int64_t input_dim, std::uint64_t seed, int epochs) {
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  auto body = tx::nn::make_mlp({input_dim, 8}, "relu", &gen);
  auto net = std::make_shared<tx::nn::MultiHeadNet>(body, 8, 2, kTasks, &gen);
  tx::infer::Adam optim(1e-3);  // paper A.4
  for (auto& slot : net->named_parameter_slots()) optim.add_param(*slot.slot);
  Curve curve;
  for (int t = 0; t < kTasks; ++t) {
    const auto& task = tasks[static_cast<std::size_t>(t)];
    net->set_active_head(t);
    tx::data::DataLoader loader(flat(task.train.images), task.train.labels, 32);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      for (auto& [inputs, targets] : loader.batches(&gen)) {
        optim.zero_grad();
        Tensor logits = net->forward(inputs[0]);
        tx::neg(tx::mean(tx::gather_last(tx::log_softmax(logits, -1), targets)))
            .backward();
        optim.step();
      }
    }
    double total = 0.0;
    for (int s = 0; s <= t; ++s) {
      net->set_active_head(s);
      tx::NoGradGuard ng;
      Tensor probs = tx::softmax(
          net->forward(flat(tasks[static_cast<std::size_t>(s)].test.images)),
          -1);
      total += tx::metrics::accuracy(
          probs.detach(), tasks[static_cast<std::size_t>(s)].test.labels);
    }
    curve.mean_acc[static_cast<std::size_t>(t)] = total / (t + 1);
  }
  return curve;
}

/// Mean-over-runs accuracy curve, one point per task, for the BENCH
/// snapshot's series section.
void append_series(std::map<std::string, std::vector<double>>& series,
                   const std::string& name, const std::vector<Curve>& curves) {
  std::vector<double> mean;
  for (int t = 0; t < kTasks; ++t) {
    std::vector<double> at_t;
    for (const auto& c : curves) {
      at_t.push_back(c.mean_acc[static_cast<std::size_t>(t)]);
    }
    mean.push_back(tx::mean_of(at_t));
  }
  series[name] = std::move(mean);
}

void report(const char* title, const std::vector<Curve>& vcl,
            const std::vector<Curve>& ml) {
  std::printf("\n%s — mean accuracy on tasks seen so far (± 2 s.e., %zu runs)\n",
              title, vcl.size());
  std::printf("%12s %18s %18s\n", "after task", "VCL", "ML");
  for (int t = 0; t < kTasks; ++t) {
    std::vector<double> v, m;
    for (const auto& c : vcl) v.push_back(c.mean_acc[static_cast<std::size_t>(t)]);
    for (const auto& c : ml) m.push_back(c.mean_acc[static_cast<std::size_t>(t)]);
    std::printf("%12d %10.3f ±%.3f %10.3f ±%.3f\n", t + 1, tx::mean_of(v),
                tx::two_stderr_of(v), tx::mean_of(m), tx::two_stderr_of(m));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Shared observability switches (--trace/--diag/--prof/--pq/--obs-http),
  // same surface as fig1/fig2/par_scaling. parse_bench_flags also audits
  // TYXE_* env vars and freezes the run manifest.
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  if (obs_flags.pq) tx::obs::pq::set_enabled(true);
  tx::obs::live::Server live_server({obs_flags.http_port, "fig4_vcl"});
  if (obs_flags.http_port >= 0 && live_server.start()) {
    std::printf("obs-http: serving on http://127.0.0.1:%d\n",
                live_server.port());
  }
  // Base data seed of run 0; per-run seeds derive from it (+run offsets).
  tx::obs::manifest::set_field("seed", static_cast<std::int64_t>(500));

  const int kRuns = 3;
  std::printf("Figure 4 reproduction: VCL vs ML, multi-head split "
              "streams (%d runs each)\n",
              kRuns);
  std::map<std::string, std::vector<double>> series;

  // Split-MNIST analogue: 8x8 single-channel patterns, MLP(64, 100, 10).
  {
    std::vector<Curve> vcl, ml;
    for (int run = 0; run < kRuns; ++run) {
      tx::Generator data_gen(500 + static_cast<std::uint64_t>(run));
      tx::data::SyntheticImageConfig cfg;
      cfg.num_classes = kClasses;
      cfg.channels = 1;
      cfg.size = 8;
      cfg.noise = 1.5f;
      cfg.pattern_seed = 900 + static_cast<std::uint64_t>(run);
      auto tasks = tx::data::make_split_tasks(cfg, kTasks, 250, 50, data_gen);
      vcl.push_back(run_vcl(tasks, 64, 10 + static_cast<std::uint64_t>(run), 200));
      ml.push_back(run_ml(tasks, 64, 10 + static_cast<std::uint64_t>(run), 200));
    }
    report("Split-MNIST analogue", vcl, ml);
    append_series(series, "vcl_mean_acc.split_mnist", vcl);
    append_series(series, "ml_mean_acc.split_mnist", ml);
  }

  // Split-CIFAR analogue: 3-channel 8x8 colour patterns.
  {
    std::vector<Curve> vcl, ml;
    for (int run = 0; run < kRuns; ++run) {
      tx::Generator data_gen(700 + static_cast<std::uint64_t>(run));
      tx::data::SyntheticImageConfig cfg;
      cfg.num_classes = kClasses;
      cfg.channels = 3;
      cfg.size = 8;
      cfg.noise = 2.4f;
      cfg.pattern_seed = 1700 + static_cast<std::uint64_t>(run);
      auto tasks = tx::data::make_split_tasks(cfg, kTasks, 250, 50, data_gen);
      vcl.push_back(run_vcl(tasks, 192, 20 + static_cast<std::uint64_t>(run), 300));
      ml.push_back(run_ml(tasks, 192, 20 + static_cast<std::uint64_t>(run), 300));
    }
    report("Split-CIFAR analogue", vcl, ml);
    append_series(series, "vcl_mean_acc.split_cifar", vcl);
    append_series(series, "ml_mean_acc.split_cifar", ml);
  }

  std::printf("\npaper shape: ML's mean accuracy decays across tasks "
              "(forgetting); VCL degrades far more slowly.\n");
  tx::obs::EventSink::write_snapshot("BENCH_fig4_vcl.json", "fig4_vcl",
                                     tx::obs::registry(), series);
  std::printf("metrics: BENCH_fig4_vcl.json\n");
  return 0;
}
