// Reproduces Table 2 of the paper: deterministic vs Bayesian GNNs on the
// Cora analogue — NLL / accuracy / ECE for ML, MAP and mean-field VI, mean ±
// two standard errors over 5 runs, model selected at the lowest-validation-
// NLL epoch (DESIGN.md, TAB2).
#include <cstdio>
#include <limits>

#include "core/tyxe.h"
#include "graph/gcn.h"
#include "metrics/metrics.h"
#include "util/stats.h"
#include "util/table.h"

using tx::Tensor;

namespace {

struct RunMetrics {
  double nll = 0.0, acc = 0.0, ece = 0.0;
};

RunMetrics eval_probs(const Tensor& probs, const tx::graph::CitationDataset& d,
                      const std::vector<std::int64_t>& idx) {
  Tensor sel = tx::index_select(probs, 0, idx);
  Tensor labels = d.labels_at(idx);
  return RunMetrics{tx::metrics::nll(sel, labels),
                    tx::metrics::accuracy(sel, labels),
                    tx::metrics::expected_calibration_error(sel, labels, 10)};
}

/// Deterministic training (ML or MAP via weight decay-like prior term is
/// approximated by MAP = BNN+AutoDelta below; ML here is plain training) with
/// early selection on validation NLL.
RunMetrics run_ml(const tx::graph::CitationDataset& d, std::uint64_t seed,
                  bool early_stop = true) {
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  tx::graph::GCN gcn(&d.graph, d.features.dim(1), 16,
                     static_cast<std::int64_t>(7), &gen);
  tx::infer::Adam optim(1e-2);
  for (auto& s : gcn.named_parameter_slots()) optim.add_param(*s.slot);
  Tensor train_labels = d.labels_at(d.train_idx);
  double best_val_nll = std::numeric_limits<double>::infinity();
  RunMetrics best;
  for (int step = 0; step < 200; ++step) {
    optim.zero_grad();
    Tensor logits = gcn.forward(d.features);
    Tensor train_logits = tx::index_select(logits, 0, d.train_idx);
    Tensor loss = tx::neg(
        tx::mean(tx::gather_last(tx::log_softmax(train_logits, -1), train_labels)));
    loss.backward();
    optim.step();
    if (step % 5 == 0) {
      tx::NoGradGuard ng;
      Tensor probs = tx::softmax(gcn.forward(d.features), -1).detach();
      const double val_nll = eval_probs(probs, d, d.val_idx).nll;
      if (!early_stop || val_nll < best_val_nll) {
        best_val_nll = val_nll;
        best = eval_probs(probs, d, d.test_idx);
      }
    }
  }
  return best;
}

/// Bayesian runs: MAP (AutoDelta) or mean-field (AutoNormal, max std 0.3),
/// following the paper's appendix A.2 schedule.
RunMetrics run_bayesian(const tx::graph::CitationDataset& d, std::uint64_t seed,
                        bool mean_field, bool early_stop = true) {
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  auto gcn = std::make_shared<tx::graph::GCN>(&d.graph, d.features.dim(1), 16,
                                              7, &gen);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  // Full-batch training with a mask: every "batch" is the whole graph, so
  // dataset_size must equal the node count for a unit likelihood scale (the
  // mask already restricts the sum to the labelled nodes).
  auto likelihood =
      std::make_shared<tyxe::Categorical>(d.graph.num_nodes());
  // Paper appendix A.2: means initialized to the random initialization of
  // the deterministic network.
  auto init = tyxe::guides::init_to_value(tyxe::guides::pretrained_dict(*gcn));
  tyxe::guides::GuideFactory factory;
  if (mean_field) {
    tyxe::guides::AutoNormalConfig g;
    g.max_scale = 0.3f;
    g.init_scale = 1e-4f;
    g.init_loc = init;
    factory = tyxe::guides::auto_normal_factory(g);
  } else {
    factory = tyxe::guides::auto_delta_factory(init);
  }
  tyxe::VariationalBNN bnn(gcn, prior, likelihood, factory);

  const int iters = mean_field ? 400 : 200;
  auto optim = std::make_shared<tx::infer::Adam>(mean_field ? 0.1 : 1e-2);
  tx::infer::StepLR sched(*optim, 100, 0.1);
  const int eval_samples = mean_field ? 8 : 1;
  Tensor mask = d.train_mask();
  double best_val_nll = std::numeric_limits<double>::infinity();
  RunMetrics best;
  for (int step = 0; step < iters; ++step) {
    {
      tyxe::poutine::SelectiveMask sm(mask, {"likelihood.data"});
      bnn.fit({{{d.features}, d.labels}}, optim, 1);
    }
    if (mean_field) sched.step();
    if (step % 10 == 0 || step == iters - 1) {
      Tensor probs = bnn.predict(d.features, eval_samples);
      const double val_nll = eval_probs(probs, d, d.val_idx).nll;
      if (!early_stop || val_nll < best_val_nll) {
        best_val_nll = val_nll;
        best = eval_probs(probs, d, d.test_idx);
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  const int kRuns = 5;
  std::printf("Table 2 reproduction: GNN on the Cora analogue (%d runs)\n",
              kRuns);

  std::vector<std::string> names{"ML", "MAP", "MF"};
  std::vector<std::vector<double>> nlls(3), accs(3), eces(3);
  std::vector<std::vector<double>> sel_nlls(3), sel_accs(3), sel_eces(3);
  for (int run = 0; run < kRuns; ++run) {
    // A fresh dataset per run, like resampling Cora splits.
    tx::Generator data_gen(100 + static_cast<std::uint64_t>(run));
    // Tuned to land near Cora's difficulty (ML ~75% with overconfident
    // predictions): weak feature signal, sparse homophilous graph.
    tx::graph::SbmConfig cfg;
    cfg.num_features = 128;       // sparse bag-of-words like Cora's binary
    cfg.sparse_features = true;   // features; heavy keyword overlap makes
    cfg.keywords_per_class = 48;  // classes partially ambiguous
    cfg.p_keyword = 0.15;
    cfg.p_background = 0.03;
    cfg.p_intra = 0.015;
    cfg.p_inter = 0.003;
    auto d = tx::graph::make_sbm_citation(cfg, data_gen);
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(run);
    // Fixed-budget protocol (the regime where the paper's overconfidence
    // shape lives on this substrate).
    const RunMetrics fixed[3] = {
        run_ml(d, seed, /*early_stop=*/false),
        run_bayesian(d, seed, /*mean_field=*/false, /*early_stop=*/false),
        run_bayesian(d, seed, /*mean_field=*/true, /*early_stop=*/false)};
    // Paper protocol: test metrics at the lowest-validation-NLL checkpoint.
    const RunMetrics selected[3] = {
        run_ml(d, seed), run_bayesian(d, seed, false), run_bayesian(d, seed, true)};
    for (int s = 0; s < 3; ++s) {
      nlls[static_cast<std::size_t>(s)].push_back(fixed[s].nll);
      accs[static_cast<std::size_t>(s)].push_back(100.0 * fixed[s].acc);
      eces[static_cast<std::size_t>(s)].push_back(100.0 * fixed[s].ece);
      sel_nlls[static_cast<std::size_t>(s)].push_back(selected[s].nll);
      sel_accs[static_cast<std::size_t>(s)].push_back(100.0 * selected[s].acc);
      sel_eces[static_cast<std::size_t>(s)].push_back(100.0 * selected[s].ece);
    }
    std::printf("  run %d done\n", run + 1);
  }

  tx::Table table({"Inference", "NLL(down)", "Acc(up, %)", "ECE(down, %)"});
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({names[s],
                   tx::Table::fmt_pm(tx::mean_of(nlls[s]), tx::two_stderr_of(nlls[s])),
                   tx::Table::fmt_pm(tx::mean_of(accs[s]), tx::two_stderr_of(accs[s])),
                   tx::Table::fmt_pm(tx::mean_of(eces[s]), tx::two_stderr_of(eces[s]))});
  }
  table.print("\nGNN on Cora analogue, fixed training budget, mean ± 2 s.e. "
              "over 5 runs (paper Table 2):");
  tx::Table sel_table({"Inference", "NLL(down)", "Acc(up, %)", "ECE(down, %)"});
  for (std::size_t s = 0; s < 3; ++s) {
    sel_table.add_row(
        {names[s],
         tx::Table::fmt_pm(tx::mean_of(sel_nlls[s]), tx::two_stderr_of(sel_nlls[s])),
         tx::Table::fmt_pm(tx::mean_of(sel_accs[s]), tx::two_stderr_of(sel_accs[s])),
         tx::Table::fmt_pm(tx::mean_of(sel_eces[s]), tx::two_stderr_of(sel_eces[s]))});
  }
  sel_table.print("\nSame runs at the lowest-validation-NLL checkpoint (on "
                  "this easier synthetic substrate early\nstopping rescues "
                  "ML's calibration; see EXPERIMENTS.md):");
  std::printf("\nPaper (Cora): ML 1.01/75.64/15.38, MAP 0.93/75.94/12.78, "
              "MF 0.77/78.02/10.22\nShape to verify: MF best NLL and ECE; ML "
              "worst calibrated.\n");
  return 0;
}
