#include "table1_harness.h"

#include <cstdio>
#include <memory>

#include "metrics/metrics.h"
#include "metrics/pq_feed.h"
#include "obs/obs.h"

namespace bench {

namespace {

namespace nd = tx::dist;
namespace obs = tx::obs;
using tx::Tensor;
using tyxe::guides::AutoNormalConfig;

struct Data {
  tx::data::ImageDataset train, test, ood;
};

Data make_data(const Table1Config& cfg, tx::Generator& gen) {
  tx::data::SyntheticImageConfig img;
  img.num_classes = cfg.num_classes;
  img.per_class = cfg.per_class_train;
  img.size = cfg.image_size;
  img.noise = cfg.noise;
  Data data;
  data.train = tx::data::make_pattern_images(img, gen);
  img.per_class = cfg.per_class_test;
  data.test = tx::data::make_pattern_images(img, gen);
  // OOD: blend of unseen class patterns (fresh pattern seed) with seen ones
  // — plausible, semantically *related* images whose content the classifier
  // has never seen, the analogue of SVHN-vs-CIFAR relatedness.
  img.per_class = cfg.num_ood / cfg.num_classes;
  tx::data::ImageDataset seen_like = tx::data::make_pattern_images(img, gen);
  img.pattern_seed += 9999;
  tx::data::ImageDataset unseen = tx::data::make_pattern_images(img, gen);
  data.ood = unseen;
  for (std::int64_t i = 0; i < data.ood.images.numel(); ++i) {
    data.ood.images.at(i) =
        0.5f * data.ood.images.at(i) + 0.5f * seen_like.images.at(i);
  }
  return data;
}

/// Plain maximum-likelihood training; returns the trained network.
std::shared_ptr<tx::nn::ResNet> train_ml(const Table1Config& cfg,
                                         const Data& data,
                                         tx::Generator& gen) {
  auto net = tx::nn::make_resnet8(cfg.num_classes, cfg.base_width, 3, &gen);
  tx::infer::Adam optim(1e-3);
  for (auto& slot : net->named_parameter_slots()) optim.add_param(*slot.slot);
  tx::data::DataLoader loader(data.train.images, data.train.labels,
                              cfg.batch_size);
  net->train();
  for (int epoch = 0; epoch < cfg.ml_epochs; ++epoch) {
    for (auto& [inputs, targets] : loader.batches(&gen)) {
      optim.zero_grad();
      Tensor logits = net->forward(inputs[0]);
      Tensor loss =
          tx::neg(tx::mean(tx::gather_last(tx::log_softmax(logits, -1), targets)));
      loss.backward();
      optim.step();
    }
  }
  return net;
}

Tensor ml_probs(tx::nn::ResNet& net, const Tensor& images) {
  tx::NoGradGuard ng;
  net.eval();
  return tx::softmax(net.forward(images), -1).detach();
}

/// Evaluate any probability table against labels + OOD probabilities.
/// `streamed_via_predict` says the predict path already fed the label-free
/// pq streams "<name>/test" and "<name>/ood" (false for point-estimate
/// strategies whose probabilities bypass BNN::predict).
StrategyResult finish(std::string name, Tensor test_probs, Tensor ood_probs,
                      const Tensor& labels, bool streamed_via_predict) {
  StrategyResult r;
  r.name = std::move(name);
  r.test_probs = test_probs;
  r.ood_probs = ood_probs;
  r.nll = tx::metrics::nll(test_probs, labels);
  r.accuracy = tx::metrics::accuracy(test_probs, labels);
  r.ece = tx::metrics::expected_calibration_error(test_probs, labels);
  r.ood_auroc = tx::metrics::auroc(tx::metrics::max_probability(test_probs),
                                   tx::metrics::max_probability(ood_probs));
  if (tx::obs::pq::enabled()) {
    if (!streamed_via_predict) {
      tx::obs::pq::StreamScope test_scope(r.name + "/test");
      tx::metrics::pq_observe_probs(test_probs);
      tx::obs::pq::StreamScope ood_scope(r.name + "/ood");
      tx::metrics::pq_observe_probs(ood_probs);
    }
    const std::string stream = r.name + "/test";
    {
      tx::obs::pq::StreamScope scope(stream);
      tx::metrics::pq_observe_labeled(test_probs, labels);
    }
    // Self-enforcing contract: the streaming aggregates must equal the batch
    // metrics *bitwise* on the same data (this is what makes the telemetry
    // trustworthy as a live stand-in for the paper's table values).
    TX_CHECK(tx::obs::pq::streaming_ece(stream) == r.ece,
             "pq: streaming ECE diverged from batch ECE");
    TX_CHECK(tx::obs::pq::streaming_nll(stream) == r.nll,
             "pq: streaming NLL diverged from batch NLL");
    TX_CHECK(tx::obs::pq::streaming_accuracy(stream) == r.accuracy,
             "pq: streaming accuracy diverged from batch accuracy");
  }
  return r;
}

/// Builds, fits and evaluates one Bayesian strategy on top of the pretrained
/// network weights.
StrategyResult run_bayesian(const std::string& name, const Table1Config& cfg,
                            const Data& data, tx::Generator& gen,
                            const std::vector<std::pair<std::string, Tensor>>&
                                pretrained_state,
                            const tyxe::HideExpose& filter,
                            const tyxe::guides::GuideFactory& guide_factory,
                            int epochs, bool freeze_hidden,
                            bool use_local_reparam, obs::EventSink* sink,
                            std::map<std::string, std::vector<double>>* series) {
  auto net = tx::nn::make_resnet8(cfg.num_classes, cfg.base_width, 3, &gen);
  net->load_state_dict(pretrained_state);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<nd::Normal>(0.0f, 1.0f), filter);
  auto likelihood =
      std::make_shared<tyxe::Categorical>(data.train.labels.numel());
  tyxe::VariationalBNN bnn(net, prior, likelihood, guide_factory);
  if (freeze_hidden) {
    // Last-layer strategies keep the pretrained body fixed.
    for (auto& [pname, p] : bnn.param_store().items()) {
      if (pname.rfind("net.", 0) == 0 &&
          pname.find(".fc.") == std::string::npos) {
        p.set_requires_grad(false);
      }
    }
  }
  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  tx::data::DataLoader loader(data.train.images, data.train.labels,
                              cfg.batch_size);
  net->train();
  std::vector<double> losses;
  bnn.set_step_callback([&](const tx::infer::SVIStepInfo& s) {
    losses.push_back(s.loss);
    if (sink) {
      obs::Event e;
      e.set("strategy", name)
          .set("step", s.step)
          .set("loss", s.loss)
          .set("grad_norm", s.grad_norm)
          .set("seconds", s.seconds);
      sink->emit(e);
    }
  });
  {
    obs::ScopedTimer span("table1.fit");
    if (use_local_reparam) {
      tyxe::poutine::LocalReparameterization lr;
      bnn.fit([&] { return loader.batches(&gen); }, optim, epochs);
    } else {
      bnn.fit([&] { return loader.batches(&gen); }, optim, epochs);
    }
  }
  if (series) (*series)["loss." + name] = std::move(losses);
  net->eval();
  // Label the pq streams so the predict path lands test and OOD telemetry
  // in per-strategy buckets ("MF/test", "MF/ood", ...).
  Tensor test_probs = [&] {
    tx::obs::pq::StreamScope scope(name + "/test");
    return bnn.predict(data.test.images, cfg.num_pred_samples);
  }();
  Tensor ood_probs = [&] {
    tx::obs::pq::StreamScope scope(name + "/ood");
    return bnn.predict(data.ood.images, cfg.num_pred_samples);
  }();
  return finish(name, test_probs, ood_probs, data.test.labels,
                /*streamed_via_predict=*/true);
}

}  // namespace

Table1Run run_table1(const Table1Config& cfg) {
  tx::manual_seed(cfg.seed);
  tx::Generator gen(cfg.seed);
  Data data = make_data(cfg, gen);

  Table1Run run;
  run.test_labels = data.test.labels;

  // Observability: every strategy streams its per-step loss through one JSONL
  // sink, and the final registry snapshot (timing histograms + loss series)
  // goes to cfg.metrics_path.
  std::unique_ptr<obs::EventSink> sink;
  if (!cfg.events_path.empty()) {
    sink = std::make_unique<obs::EventSink>(cfg.events_path);
  }
  std::map<std::string, std::vector<double>> series;

  // --- ML: the deterministic baseline and the pretrained initialization.
  auto ml_net = [&] {
    obs::ScopedTimer span("table1.train_ml");
    return train_ml(cfg, data, gen);
  }();
  const auto pretrained_state = ml_net->state_dict();
  run.strategies.push_back(finish("ML", ml_probs(*ml_net, data.test.images),
                                  ml_probs(*ml_net, data.ood.images),
                                  data.test.labels,
                                  /*streamed_via_predict=*/false));
  std::printf("  [done] ML\n");

  tyxe::HideExpose hide_bn;
  hide_bn.hide_module_types = {"BatchNorm2d"};
  const auto pretrained_init = [&] {
    // Site names are "net.<path>"; build the init map once per strategy from
    // the pretrained state dict.
    std::map<std::string, Tensor> init;
    for (const auto& [name, value] : pretrained_state) {
      init.emplace("net." + name, value);
    }
    return tyxe::guides::init_to_value(std::move(init));
  }();

  // --- MAP: point-mass guide initialized at the pretrained weights.
  run.strategies.push_back(run_bayesian(
      "MAP", cfg, data, gen, pretrained_state, hide_bn,
      tyxe::guides::auto_delta_factory(pretrained_init), cfg.map_epochs,
      /*freeze_hidden=*/false, /*use_local_reparam=*/false, sink.get(),
      &series));
  std::printf("  [done] MAP\n");

  // --- MF (sd only): means pinned to pretrained weights, fit variances.
  {
    AutoNormalConfig g;
    g.init_loc = pretrained_init;
    g.init_scale = 1e-4f;
    g.max_scale = 0.1f;
    g.train_loc = false;
    run.strategies.push_back(run_bayesian(
        "MF (sd only)", cfg, data, gen, pretrained_state, hide_bn,
        tyxe::guides::auto_normal_factory(g), cfg.vi_epochs, false, true,
        sink.get(), &series));
    std::printf("  [done] MF (sd only)\n");
  }

  // --- MF: free means (pretrained init) with clipped scales.
  {
    AutoNormalConfig g;
    g.init_loc = pretrained_init;
    g.init_scale = 1e-4f;
    g.max_scale = 0.1f;
    run.strategies.push_back(run_bayesian(
        "MF", cfg, data, gen, pretrained_state, hide_bn,
        tyxe::guides::auto_normal_factory(g), cfg.vi_epochs, false, true,
        sink.get(), &series));
    std::printf("  [done] MF\n");
  }

  // --- Last-layer strategies: inference over fc only, body frozen.
  tyxe::HideExpose expose_fc;
  expose_fc.expose_modules = {"fc"};
  {
    AutoNormalConfig g;
    g.init_loc = pretrained_init;
    g.init_scale = 1e-4f;
    run.strategies.push_back(run_bayesian(
        "LL MF", cfg, data, gen, pretrained_state, expose_fc,
        tyxe::guides::auto_normal_factory(g), cfg.vi_epochs, true, true,
        sink.get(), &series));
    std::printf("  [done] LL MF\n");
  }
  {
    run.strategies.push_back(run_bayesian(
        "LL low rank", cfg, data, gen, pretrained_state, expose_fc,
        tyxe::guides::auto_lowrank_factory(10, 1e-2f, pretrained_init),
        cfg.vi_epochs, true, false, sink.get(), &series));
    std::printf("  [done] LL low rank\n");
  }

  if (sink) {
    for (const auto& r : run.strategies) {
      obs::Event e;
      e.set("event", "strategy_result")
          .set("strategy", r.name)
          .set("nll", r.nll)
          .set("accuracy", r.accuracy)
          .set("ece", r.ece)
          .set("ood_auroc", r.ood_auroc);
      sink->emit(e);
    }
    std::printf("  events:  %s (%lld lines)\n", sink->path().c_str(),
                static_cast<long long>(sink->events_written()));
  }
  if (!cfg.metrics_path.empty()) {
    obs::EventSink::write_snapshot(cfg.metrics_path, "table1_harness",
                                   obs::registry(), series);
    std::printf("  metrics: %s\n", cfg.metrics_path.c_str());
  }

  return run;
}

}  // namespace bench
