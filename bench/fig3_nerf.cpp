// Reproduces Figure 3 of the paper: deterministic vs (pseudo-)Bayesian NeRF.
// Train on a 270° arc of views of the analytic scene, hold out 90°; compare
// held-out reconstruction error and report the predictive uncertainty map
// statistics. Paper numbers: heldout error 9.4e-3 (deterministic) vs 8.1e-3
// (Bayesian) — the shape to reproduce is "Bayesian < deterministic, and the
// uncertainty concentrates on the object" (DESIGN.md, FIG3).
#include <cstdio>

#include "core/tyxe.h"
#include "render/volume.h"

using namespace tx::render;
using tx::Tensor;

namespace {

struct Setup {
  std::vector<Camera> train_cams, held_cams;
  std::vector<RenderResult> train_targets, held_targets;
  RenderConfig cfg;
};

Setup make_setup() {
  Setup s;
  const float kThreeQuarters = 4.712389f;
  s.train_cams = circle_cameras(10, 2.5f, 0.4f, 8.0f, 12, 0.0f, kThreeQuarters);
  s.held_cams =
      circle_cameras(4, 2.5f, 0.4f, 8.0f, 12, kThreeQuarters + 0.2f, 6.1f);
  s.cfg.num_samples = 16;
  s.cfg.t_near = 1.0f;
  s.cfg.t_far = 4.5f;
  s.train_targets = ground_truth_views(s.train_cams, s.cfg);
  s.held_targets = ground_truth_views(s.held_cams, s.cfg);
  return s;
}

/// Train a deterministic NeRF; returns the net and its held-out error.
std::shared_ptr<NeRFField> train_deterministic(const Setup& s, int iters,
                                               tx::Generator& gen) {
  auto net = std::make_shared<NeRFField>(4, 48, 2, &gen);
  tx::infer::Adam optim(1e-3);
  for (auto& slot : net->named_parameter_slots()) optim.add_param(*slot.slot);
  for (int it = 0; it < iters; ++it) {
    const auto v = static_cast<std::size_t>(it) % s.train_cams.size();
    optim.zero_grad();
    auto rendered = render_rays([&](const Tensor& p) { return net->forward(p); },
                                camera_rays(s.train_cams[v]), s.cfg);
    render_loss(rendered, s.train_targets[v]).backward();
    optim.step();
  }
  return net;
}

double held_out_error(const std::function<Tensor(const RayBatch&)>& render_mean,
                      const Setup& s) {
  tx::NoGradGuard ng;
  double total = 0.0;
  for (std::size_t v = 0; v < s.held_cams.size(); ++v) {
    Tensor mean_rgb = render_mean(camera_rays(s.held_cams[v]));
    total += tx::mean(tx::square(tx::sub(mean_rgb, s.held_targets[v].rgb))).item();
  }
  return total / static_cast<double>(s.held_cams.size());
}

}  // namespace

int main() {
  const std::uint64_t seed = 0;
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  std::printf("Figure 3 reproduction (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  Setup s = make_setup();

  const int kDetIters = 900;
  auto det_net = train_deterministic(s, kDetIters, gen);
  const double det_err = held_out_error(
      [&](const RayBatch& rays) {
        return render_rays([&](const Tensor& p) { return det_net->forward(p); },
                           rays, s.cfg)
            .rgb.detach();
      },
      s);
  std::printf("deterministic NeRF trained (%d iters), held-out mse %.2e\n",
              kDetIters, det_err);

  // Bayesian NeRF: PytorchBNN with means initialized to the deterministic
  // net, stds to 1e-2; KL weight annealed linearly (paper appendix A.3).
  auto bayes_net = std::make_shared<NeRFField>(4, 48, 2, &gen);
  bayes_net->load_state_dict(det_net->state_dict());
  tyxe::guides::AutoNormalConfig g;
  g.init_loc = tyxe::guides::init_to_value(
      tyxe::guides::pretrained_dict(*bayes_net));
  g.init_scale = 1e-2f;
  tyxe::PytorchBNN bnn(bayes_net,
                       std::make_shared<tyxe::IIDPrior>(
                           std::make_shared<tx::dist::Normal>(0.0f, 1.0f)),
                       tyxe::guides::auto_normal_factory(g));
  tx::infer::Adam optim(5e-4);
  optim.add_params(bnn.pytorch_parameters({tx::randn({4, 3}, &gen)}));

  const int kBayesIters = 600;
  const auto pixels_per_view =
      static_cast<float>(s.train_targets[0].rgb.numel() +
                         s.train_targets[0].alpha.numel());
  const float kl_target = 1.0f / (pixels_per_view *
                                  static_cast<float>(s.train_cams.size()));
  auto bnn_field = [&bnn](const Tensor& p) { return bnn.forward(p); };
  for (int it = 0; it < kBayesIters; ++it) {
    const auto v = static_cast<std::size_t>(it) % s.train_cams.size();
    // Linear KL annealing over the first half of training.
    const float anneal =
        std::min(1.0f, static_cast<float>(it) /
                           (0.5f * static_cast<float>(kBayesIters)));
    optim.zero_grad();
    auto rendered = render_rays(bnn_field, camera_rays(s.train_cams[v]), s.cfg);
    Tensor loss = tx::add(
        render_loss(rendered, s.train_targets[v]),
        tx::mul(bnn.cached_kl_loss(), tx::Tensor::scalar(anneal * kl_target)));
    loss.backward();
    optim.step();
  }

  const int kPredSamples = 8;
  double mean_var = 0.0;
  const double bayes_err = held_out_error(
      [&](const RayBatch& rays) {
        std::vector<Tensor> draws;
        for (int i = 0; i < kPredSamples; ++i) {
          draws.push_back(render_rays(bnn_field, rays, s.cfg).rgb.detach());
        }
        Tensor stacked = tx::stack(draws, 0);
        Tensor mean = tx::mean(stacked, {0});
        mean_var +=
            tx::mean(tx::mean(tx::square(tx::sub(stacked, mean)), {0})).item();
        return mean;
      },
      s);
  mean_var /= static_cast<double>(s.held_cams.size());

  std::printf("Bayesian NeRF trained (%d iters), held-out mse %.2e, mean "
              "predictive variance %.2e\n",
              kBayesIters, bayes_err, mean_var);
  std::printf("\nresult: deterministic %.2e vs Bayesian %.2e -> %s\n", det_err,
              bayes_err,
              bayes_err < det_err ? "Bayesian better (matches paper shape)"
                                  : "Bayesian worse (paper shape NOT matched)");
  std::printf("paper: deterministic 9.4e-3 vs Bayesian 8.1e-3 on 10 held-out "
              "angles of the cow scene.\n");
  return 0;
}
