// Ablation: initialization "tricks of the trade" the paper's introduction
// says ad-hoc BNN implementations lack. Sweeps (a) the initial posterior
// standard deviation and (b) the mean-initialization strategy (prior sample
// vs fan-based vs pretrained) on the regression task, reporting the ELBO and
// test error after a fixed budget.
#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "util/table.h"

using tx::Tensor;
namespace nd = tx::dist;

namespace {

struct Outcome {
  double elbo;
  double mse;
};

Outcome run(tyxe::guides::AutoNormalConfig guide_cfg, std::uint64_t seed,
            int epochs) {
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  auto data = tx::data::make_foong_regression(64, gen);
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto bnn = std::make_shared<tyxe::VariationalBNN>(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(64, 0.1f),
      tyxe::guides::auto_normal_factory(guide_cfg));
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  double elbo = 0.0;
  {
    tyxe::poutine::LocalReparameterization lr;
    elbo = bnn->fit({{{data.x}, data.y}}, optim, epochs);
  }
  auto [ll, err] = bnn->evaluate({data.x}, data.y, 16);
  (void)ll;
  return Outcome{elbo, err};
}

}  // namespace

int main() {
  const int kEpochs = 400;
  std::printf("Ablation: guide initialization on the Fig. 1 regression task "
              "(%d epochs, 3 seeds averaged)\n\n",
              kEpochs);

  auto averaged = [&](tyxe::guides::AutoNormalConfig cfg) {
    Outcome total{0.0, 0.0};
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Outcome o = run(cfg, seed, kEpochs);
      total.elbo += o.elbo / 3.0;
      total.mse += o.mse / 3.0;
    }
    return total;
  };

  tx::Table sigma_table({"init std", "final ELBO", "train MSE"});
  for (float s : {0.5f, 0.1f, 1e-2f, 1e-4f}) {
    tyxe::guides::AutoNormalConfig cfg;
    cfg.init_scale = s;
    Outcome o = averaged(cfg);
    sigma_table.add_row({tx::Table::fmt(s, 4), tx::Table::fmt(o.elbo, 1),
                         tx::Table::fmt(o.mse, 4)});
  }
  sigma_table.print("(a) initial posterior std sweep (means from the prior sample):");

  tx::Table mean_table({"mean init", "final ELBO", "train MSE"});
  {
    tyxe::guides::AutoNormalConfig cfg;
    cfg.init_scale = 1e-2f;
    cfg.init_loc = tyxe::guides::init_to_sample();
    Outcome o = averaged(cfg);
    mean_table.add_row({"prior sample", tx::Table::fmt(o.elbo, 1),
                        tx::Table::fmt(o.mse, 4)});
  }
  {
    tyxe::guides::AutoNormalConfig cfg;
    cfg.init_scale = 1e-2f;
    cfg.init_loc = tyxe::guides::init_to_normal_fan("radford");
    Outcome o = averaged(cfg);
    mean_table.add_row({"fan-based (radford)", tx::Table::fmt(o.elbo, 1),
                        tx::Table::fmt(o.mse, 4)});
  }
  {
    // Pretrained means: a quick deterministic fit first.
    tx::manual_seed(99);
    tx::Generator gen(99);
    auto data = tx::data::make_foong_regression(64, gen);
    auto det = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
    tx::infer::Adam optim(1e-2);
    for (auto& s : det->named_parameter_slots()) optim.add_param(*s.slot);
    for (int e = 0; e < 400; ++e) {
      optim.zero_grad();
      tx::mean(tx::square(tx::sub(det->forward(data.x), data.y))).backward();
      optim.step();
    }
    tyxe::guides::AutoNormalConfig cfg;
    cfg.init_scale = 1e-2f;
    cfg.init_loc = tyxe::guides::init_to_value(tyxe::guides::pretrained_dict(*det));
    Outcome o = averaged(cfg);
    mean_table.add_row({"pretrained", tx::Table::fmt(o.elbo, 1),
                        tx::Table::fmt(o.mse, 4)});
  }
  mean_table.print("\n(b) mean initialization sweep (init std 1e-2):");
  std::printf("\nshape: very large init stds underfit within the budget; "
              "fan-based or pretrained\nmeans dominate raw prior samples — "
              "the defaults TyXe ships with.\n");
  return 0;
}
